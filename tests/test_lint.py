"""The invariant linter: pinned fixture findings, pragma discipline,
and the guarantee that the shipped tree lints clean.

The fixture expectations live in ``tests/lint_fixtures/expected.json``
— the same document CI diffs against ``python -m repro lint
tests/lint_fixtures --format json`` — so the test suite and the CI gate
can never drift apart. The pragma-removal tests rewrite *copies* of the
real allow-sites to prove each pragma is load-bearing: delete one and
the lint fails.
"""

import json
import os
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import CATALOG, lint_paths, render_json, render_text
from repro.lint.engine import lint_file, scan_pragmas
from repro.util.errors import ConfigurationError

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "lint_fixtures"
EXPECTED = json.loads((FIXTURES / "expected.json").read_text())

#: The real audited allow-sites in the shipped tree, one per rule pack
#: (plus every extra R302 witness): removing the pragma from a copy of
#: the file must resurrect the finding.
ALLOW_SITES = [
    ("src/repro/experiments/store.py", "R101"),
    ("src/repro/util/rng.py", "R102"),
    ("src/repro/experiments/sweep.py", "R301"),
    ("src/repro/cli.py", "R301"),
    ("src/repro/fullinfo/scenarios.py", "R302"),
    ("src/repro/trees/scenarios.py", "R302"),
]

PRAGMA_LINE = re.compile(r"#\s*repro-lint:\s*allow\[[^\]]*\][^\n]*")


def fixture_findings():
    return lint_paths([str(FIXTURES)])


class TestPinnedFixtures:
    def test_json_output_matches_pinned_document(self, monkeypatch):
        # CI runs the linter from the repo root; the pinned document
        # records repo-relative paths, so the comparison does too.
        monkeypatch.chdir(ROOT)
        rendered = render_json(lint_paths(["tests/lint_fixtures"]))
        assert json.loads(rendered) == EXPECTED

    def test_text_output_pins_rule_file_line(self, monkeypatch):
        monkeypatch.chdir(ROOT)
        text = render_text(lint_paths(["tests/lint_fixtures"]))
        lines = text.splitlines()
        assert len(lines) == len(EXPECTED["findings"])
        for finding in EXPECTED["findings"]:
            prefix = (
                f"{finding['file']}:{finding['line']}:{finding['col']}: "
                f"{finding['rule']} "
            )
            assert any(line.startswith(prefix) for line in lines), prefix

    def test_every_rule_pack_is_demonstrated(self):
        rules = {f["rule"] for f in EXPECTED["findings"]}
        # At least one R1xx, R2xx, and R3xx finding, plus the malformed
        # pragma — the acceptance criterion's three demonstrations.
        assert any(r.startswith("R1") for r in rules)
        assert any(r.startswith("R2") for r in rules)
        assert any(r.startswith("R3") for r in rules)
        assert "R002" in rules

    def test_findings_are_sorted_and_stable(self):
        findings = fixture_findings()
        keys = [f.sort_key() for f in findings]
        assert keys == sorted(keys)
        assert [f.sort_key() for f in fixture_findings()] == keys


class TestCliGate:
    def test_shipped_tree_lints_clean(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        assert main(["lint", "src/"]) == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_fixture_findings_exit_one_in_both_formats(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(ROOT)
        assert main(["lint", "tests/lint_fixtures"]) == 1
        text = capsys.readouterr().out
        assert main(
            ["lint", "tests/lint_fixtures", "--format", "json"]
        ) == 1
        document = json.loads(capsys.readouterr().out)
        assert document == EXPECTED
        # Same finding set in both formats.
        assert len(text.splitlines()) == len(document["findings"])

    def test_select_narrows_and_ignore_drops(self, monkeypatch, capsys):
        monkeypatch.chdir(ROOT)
        assert main(
            ["lint", "tests/lint_fixtures", "--select", "R2",
             "--format", "json"]
        ) == 1
        rules = {
            f["rule"]
            for f in json.loads(capsys.readouterr().out)["findings"]
        }
        assert rules == {"R201", "R202"}
        assert main(
            ["lint", "tests/lint_fixtures", "--ignore",
             "R1,R2,R3,R001,R002"]
        ) == 0

    def test_unknown_selector_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["lint", "tests/lint_fixtures", "--select", "R9"])

    def test_missing_path_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["lint", "no/such/path"])


class TestEngine:
    def test_syntax_error_is_a_single_r001(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_file(str(bad))
        assert [f.rule for f in findings] == ["R001"]
        assert findings[0].line == 1

    def test_pragma_in_a_string_literal_suppresses_nothing(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            'NOTE = "# repro-lint: allow[R101] not a comment"\n'
            "t = time.time()\n"
        )
        assert [f.rule for f in lint_file(str(mod))] == ["R101"]

    @pytest.mark.parametrize(
        "pragma",
        [
            "# repro-lint: allow[R101]",  # no reason
            "# repro-lint: allow[] why",  # no rules
            "# repro-lint: allow[R999] why",  # unknown rule
        ],
    )
    def test_malformed_pragmas_are_r002_and_void(self, tmp_path, pragma):
        mod = tmp_path / "mod.py"
        mod.write_text(f"t = time.time()  {pragma}\n")
        rules = sorted(f.rule for f in lint_file(str(mod)))
        assert rules == ["R002", "R101"]

    def test_allow_file_exempts_the_whole_file(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "# repro-lint: allow-file[R101] generated fixture\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert lint_file(str(mod)) == []

    def test_catalog_and_selectors_agree(self):
        for rule_id in CATALOG:
            assert lint_paths([str(FIXTURES)], select=rule_id) is not None
        with pytest.raises(ConfigurationError):
            lint_paths([str(FIXTURES)], select="bogus")


class TestRealAllowSites:
    """Each shipped pragma is load-bearing: strip it from a copy and
    the finding it was auditing comes back."""

    @pytest.mark.parametrize("rel_path,rule", ALLOW_SITES)
    def test_removing_the_pragma_fails_the_lint(
        self, tmp_path, rel_path, rule
    ):
        source = (ROOT / rel_path).read_text()
        assert PRAGMA_LINE.search(source), f"no pragma left in {rel_path}"
        copy = tmp_path / os.path.basename(rel_path)

        # With its pragmas intact the copy lints clean — same result as
        # the shipped tree.
        copy.write_text(source)
        assert lint_file(str(copy)) == []

        # Pragmas stripped (comment text only; line numbers preserved),
        # the audited finding resurfaces.
        copy.write_text(PRAGMA_LINE.sub("", source))
        resurrected = {f.rule for f in lint_file(str(copy))}
        assert rule in resurrected

    def test_shipped_pragmas_all_carry_reasons(self):
        for rel_path, _ in ALLOW_SITES:
            source = (ROOT / rel_path).read_text()
            pragmas = scan_pragmas(source, rel_path)
            assert pragmas.malformed == []
            assert pragmas.line_rules  # at least one live allow-site
