"""Unit tests for trace event records and undelivered accounting."""

import pytest

from repro.sim.events import (
    AbortEvent,
    ReceiveEvent,
    SendEvent,
    TerminateEvent,
    WakeupEvent,
)
from repro.sim.execution import run_protocol
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import unidirectional_ring


class TestEventRecords:
    def test_events_are_frozen(self):
        e = SendEvent(1, "a", "b", 0, 1)
        with pytest.raises(Exception):
            e.value = 9

    def test_equality_by_value(self):
        assert SendEvent(1, "a", "b", 0, 1) == SendEvent(1, "a", "b", 0, 1)
        assert WakeupEvent(1, "a") != WakeupEvent(2, "a")

    def test_receive_event_fields(self):
        e = ReceiveEvent(3, "x", "y", "payload", 7)
        assert (e.sender, e.receiver, e.seq) == ("x", "y", 7)

    def test_terminate_and_abort(self):
        t = TerminateEvent(1, "p", 42)
        a = AbortEvent(2, "p", "bad")
        assert t.output == 42 and a.reason == "bad"


class TestUndeliveredAccounting:
    def test_undelivered_messages_reported(self):
        class Spammer(Strategy):
            def on_wakeup(self, ctx: Context) -> None:
                for i in range(5):
                    ctx.send_next(i)
                ctx.terminate(0)

            def on_receive(self, ctx, value, sender):
                pass

        class EarlyStopper(Strategy):
            def on_wakeup(self, ctx: Context) -> None:
                ctx.terminate(0)

            def on_receive(self, ctx, value, sender):
                pass

        ring = unidirectional_ring(2)
        res = run_protocol(ring, {1: Spammer(), 2: EarlyStopper()})
        # All 5 messages get *delivered* (and dropped by the terminated
        # receiver), so nothing remains queued.
        assert res.outcome == 0
        assert not res.undelivered

    def test_queued_messages_surface_on_stall(self):
        class BurstThenWait(Strategy):
            def on_wakeup(self, ctx: Context) -> None:
                ctx.send_next("x")
                ctx.send_next("y")

            def on_receive(self, ctx, value, sender):
                pass  # never terminates, never responds

        ring = unidirectional_ring(2)
        res = run_protocol(
            ring, {1: BurstThenWait(), 2: BurstThenWait()}
        )
        assert res.failed
        # Deliveries happened (receivers just ignored them); the ring
        # quiesced with no backlog.
        assert res.quiesced
