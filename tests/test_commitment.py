"""Commitment-structure tests: information timing is the whole game.

The buffering delay means a processor's secret is committed before any
information about the others reaches it (the second observation in
Section 5). These tests make the point operationally: an adversary that
*keeps the protocol's message discipline* but chooses its secret
adaptively — as any function of what it has seen so far — gains exactly
nothing, because at secret-choice time it has seen nothing that
correlates with the honest secrets it would need.
"""

from collections import Counter

from repro.analysis.distribution import (
    OutcomeDistribution,
    chi_square_uniformity,
)
from repro.protocols.alead_uni import (
    ALeadNormalStrategy,
    ALeadOriginStrategy,
)
from repro.protocols.outcome import residue_to_id
from repro.sim.execution import run_protocol
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import unidirectional_ring
from repro.util.modmath import canonical_mod


class AdaptiveSecretAdversary(Strategy):
    """Honest-discipline A-LEADuni processor with an adaptive secret.

    Identical to the honest normal strategy except the value it commits
    as its "secret" is an arbitrary function of its (empty!) pre-commit
    view — modelled as a fixed preferred residue. Because commitment
    precedes information, this cannot shift the outcome distribution.
    """

    def __init__(self, n: int, preferred_residue: int):
        self.n = n
        self.secret = preferred_residue % n
        self.buffer = self.secret
        self.rounds = 0
        self.total = 0

    def on_wakeup(self, ctx: Context) -> None:
        pass

    def on_receive(self, ctx: Context, value, sender) -> None:
        value = canonical_mod(int(value), self.n)
        ctx.send_next(self.buffer)
        self.buffer = value
        self.rounds += 1
        self.total = canonical_mod(self.total + value, self.n)
        if self.rounds == self.n:
            if value == self.secret:
                ctx.terminate(residue_to_id(self.total, self.n))
            else:
                ctx.abort("own value did not return")


def test_adaptive_secret_gains_nothing():
    """Pinning one's own secret leaves the outcome uniform.

    The adversary always contributes residue 0 hoping to elect itself;
    the other n-1 uniform secrets re-randomize the sum completely, so
    its election probability stays at 1/n.
    """
    n = 8
    adversary_pid = 3
    ring = unidirectional_ring(n)
    counts = Counter()
    trials = 400
    for s in range(trials):
        protocol = {
            pid: (
                ALeadOriginStrategy(n)
                if pid == 1
                else ALeadNormalStrategy(n)
            )
            for pid in ring.nodes
        }
        protocol[adversary_pid] = AdaptiveSecretAdversary(
            n, preferred_residue=adversary_pid
        )
        res = run_protocol(ring, protocol, seed=s)
        counts[res.outcome] += 1
    dist = OutcomeDistribution(n=n, trials=trials, counts=counts)
    assert dist.fail_count == 0
    assert chi_square_uniformity(dist) > 1e-4
    # In particular the adversary itself is not elected above 1/n + noise.
    assert dist.probability(adversary_pid) < 1.0 / n + 0.07


def test_consecutive_coalition_with_chosen_secrets_uniform():
    """Claim D.1 empirically: a *consecutive* coalition that keeps the
    message discipline but pins all its secrets cannot bias the election
    — the honest segment's secrets re-randomize the sum completely."""
    n = 8
    coalition = [3, 4, 5]  # consecutive along the ring
    ring = unidirectional_ring(n)
    counts = Counter()
    trials = 400
    for s in range(trials):
        protocol = {
            pid: (
                ALeadOriginStrategy(n)
                if pid == 1
                else ALeadNormalStrategy(n)
            )
            for pid in ring.nodes
        }
        for pid in coalition:
            protocol[pid] = AdaptiveSecretAdversary(n, preferred_residue=0)
        res = run_protocol(ring, protocol, seed=s)
        counts[res.outcome] += 1
    dist = OutcomeDistribution(n=n, trials=trials, counts=counts)
    assert dist.fail_count == 0
    assert chi_square_uniformity(dist) > 1e-4
    for pid in coalition:
        assert dist.probability(pid) < 1.0 / n + 0.07


def test_adaptive_secret_on_basic_lead_also_uniform():
    """Even on Basic-LEAD, a *non-waiting* fixed secret gains nothing —
    the Claim B.1 power comes from waiting, not from choosing."""
    from repro.protocols.basic_lead import BasicLeadStrategy

    class FixedSecretBasic(BasicLeadStrategy):
        def on_wakeup(self, ctx: Context) -> None:
            self.secret = 0  # chosen, not random — but sent immediately
            ctx.send_next(self.secret)

    n = 6
    ring = unidirectional_ring(n)
    counts = Counter()
    trials = 300
    for s in range(trials):
        protocol = {pid: BasicLeadStrategy(n) for pid in ring.nodes}
        protocol[2] = FixedSecretBasic(n)
        res = run_protocol(ring, protocol, seed=s)
        counts[res.outcome] += 1
    dist = OutcomeDistribution(n=n, trials=trials, counts=counts)
    assert dist.fail_count == 0
    assert chi_square_uniformity(dist) > 1e-4
