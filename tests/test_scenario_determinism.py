"""Registry-wide determinism: the engine's core contract, per scenario.

The experiment engine promises that the rows an experiment produces are
a pure function of ``(scenario, params, trials, base_seed)`` — the
worker count, chunking, and process boundaries must never show. PR 1
asserted this for one ring scenario; with the registry now spanning
every subsystem (sync engine, tree games, coin-toss reductions,
full-information games, building blocks, fuzzer, frontier families),
this suite holds *every* registered name to the contract.

A spec that closes over process-local state — a module-level
``random.Random``, an unseeded cache, behaviour sampled outside the
trial's private registry — produces different rows under ``workers=4``
(real subprocesses) than under ``workers=1`` and fails here by name.
"""

import json

import pytest

from repro.experiments import ExperimentRunner, run_one_trial, scenario_names
from repro.experiments.scenario import get_scenario

#: Per-scenario parameter shrinkage so the sweep stays test-suite fast.
#: Determinism must hold at *any* parameters, so probing small ones is
#: as binding as the defaults.
SMALL_PARAMS = {
    "attack/random-location": {"n": 64},
    "attack/cubic": {"n": 34, "k": 4},
    "attack/basic-cheat": {"n": 16},
    "attack/equal-spacing": {"n": 25},
    "attack/partial-sum": {"n": 24},
    "attack/phase-rushing": {"n": 25},
    "honest/basic-lead": {"n": 8},
    "honest/alead-uni": {"n": 8},
    "honest/phase-async": {"n": 8},
    "honest/wakeup-alead": {"n": 8},
    "fullinfo/baton": {"n": 16, "k": 3},
    "fuzz/random-deviation": {"n": 16, "k": 2},
    "placement/random-segments": {"n": 64},
    "tree/clique-caterpillar": {"blocks": 2},
}

TRIALS = 8
BASE_SEED = 7


def _row(name, **runner_kwargs):
    runner = ExperimentRunner(**runner_kwargs)
    result = runner.run(
        name, trials=TRIALS, base_seed=BASE_SEED,
        params=SMALL_PARAMS.get(name),
    )
    return result.to_row(), [
        (t.index, t.outcome, t.steps, t.success) for t in result.outcomes
    ]


@pytest.mark.parametrize("name", scenario_names())
def test_rows_identical_across_worker_counts(name):
    """workers=1 and workers=4 (real processes) must agree exactly."""
    serial_row, serial_outcomes = _row(name, workers=1)
    parallel_row, parallel_outcomes = _row(name, workers=4)
    assert serial_row == parallel_row
    assert serial_outcomes == parallel_outcomes
    # Rows must be JSON-stable too: the sweep command streams them.
    assert json.loads(json.dumps(serial_row, sort_keys=True)) == serial_row


@pytest.mark.parametrize("name", scenario_names())
def test_trial_is_pure_in_base_seed_and_index(name):
    """Re-running one trial reproduces it; the worker layout cannot leak
    in because there is none at this level."""
    spec = get_scenario(name)
    params = spec.resolve_params(SMALL_PARAMS.get(name))
    first = run_one_trial(spec, params, base_seed=3, index=5)
    again = run_one_trial(spec, params, base_seed=3, index=5)
    assert first == again


def test_chunk_size_never_changes_rows():
    """Chunking is pure scheduling — spot-check on a randomised spec."""
    name = "fuzz/random-deviation"
    a, _ = _row(name, workers=2, chunk_size=1)
    b, _ = _row(name, workers=2, chunk_size=7)
    assert a == b
