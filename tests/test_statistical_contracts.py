"""Statistical-contract tests: estimates vs the paper's analytic values.

The golden-row and determinism suites pin the engine's *reproducibility*
— the same request always yields byte-identical rows. None of that would
notice if every row were reproducibly *wrong*: a bias in the per-trial
seed derivation, a success predicate drifting off its scenario, or a
fold miscounting successes would sail through byte-identity checks.

This layer closes that gap for the scenarios whose success probabilities
the paper gives in closed form: the fair coin extracted from an honest
election (Theorem 8.1), the deterministically forced biased coin, the
uniform synchronous broadcast election, Saks' pass-the-baton game
against the greedy coalition (computed exactly by a tiny Markov-chain
DP below, independent of the simulation code), and the sequential coin
game's exact backward induction (cross-checked against a closed-form
binomial tail).

Each contract runs the scenario at a fixed seed and asserts the
estimate's own 99% Wilson interval contains the analytic value — at one
worker and at four, through one shared pool. The checks are fully
deterministic (fixed seed, worker-invariant rows), so a failure is a
real regression, never test flake; the (seed, trials) pairs below were
chosen once and verified against the 99% band. Run just this layer with
``pytest -m statistical``.
"""

import math
from functools import lru_cache

import pytest

from repro.analysis.stats import wilson_interval
from repro.experiments import WorkerPool, run_scenario

pytestmark = pytest.mark.statistical

#: Two-sided 99% normal critical value: the contracts' Wilson z.
Z99 = 2.576


# ----------------------------------------------------------------------
# Analytic values, derived independently of the simulation code
# ----------------------------------------------------------------------


def baton_coalition_win(n: int, k: int) -> float:
    """Exact Pr[leader in coalition] for the greedy baton deviation.

    The game state reduces to ``(honest unheld, coalition unheld,
    holder-is-coalition)``: coalition holders burn an honest unheld
    player whenever one exists, honest holders pass uniformly over all
    unheld, and the leader is the last player added — so the chain below
    is an exact description of ``repro.fullinfo.baton.pass_the_baton``'s
    rules without sharing a line of its code.
    """

    @lru_cache(maxsize=None)
    def win(h: int, c: int, holder_coalition: bool) -> float:
        if h == 0 and c == 0:
            return 1.0 if holder_coalition else 0.0
        if holder_coalition:
            return win(h - 1, c, False) if h > 0 else win(h, c - 1, True)
        total = h + c
        p = 0.0
        if h:
            p += (h / total) * win(h - 1, c, False)
        if c:
            p += (c / total) * win(h, c - 1, True)
        return p

    # Start holder uniform over all n players; guard each branch so a
    # zero-probability start (k = 0 or k = n) is never evaluated.
    p = 0.0
    if n > k:
        p += ((n - k) / n) * win(n - k - 1, k, False)
    if k:
        p += (k / n) * win(n - k, k - 1, True)
    return p


def majority_forced_probability(n: int, k: int) -> float:
    """Closed-form forced probability for ``k`` late movers on majority.

    The coalition moves last and sets its ``k`` bits to 1, so the
    outcome is 1 iff the ``n - k`` honest fair bits already carry at
    least ``ceil((n+1)/2) - k`` ones: a plain binomial tail.
    """
    honest = n - k
    need = (n + 1 + 1) // 2 - k  # majority of n needs ceil((n+1)/2) ones
    return sum(math.comb(honest, s) for s in range(max(need, 0), honest + 1)) / (
        2 ** honest
    )


# ----------------------------------------------------------------------
# The contracts
# ----------------------------------------------------------------------

#: (id, scenario, params, trials, base_seed, [(check-id, analytic p,
#: observed-count extractor)]). One scenario run serves every check in
#: its list; extractors read either the success counter or one outcome's
#: histogram count, so both the success predicate and the outcome
#: distribution are under contract.
CONTRACTS = [
    (
        "sync-broadcast",
        "sync/broadcast",
        {"n": 6},
        300,
        0,
        [
            # The honest lockstep broadcast always elects (never FAILs)...
            ("always-elects", 1.0, lambda r: r.successes.successes),
            # ...and elects uniformly: each of the 6 ids at rate 1/6.
            ("uniform-leader", 1 / 6, lambda r: r.distribution.counts.get(1, 0)),
        ],
    ),
    (
        "fle-coin",
        "cointoss/fle-coin",
        {"n": 8},
        400,
        0,
        [
            # An honest A-LEADuni election never fails...
            ("always-tosses", 1.0, lambda r: r.successes.successes),
            # ...and a uniform leader's low bit is a fair coin (Thm 8.1).
            ("fair-coin", 0.5, lambda r: r.distribution.counts.get(1, 0)),
        ],
    ),
    (
        "biased-coin",
        "cointoss/biased-coin",
        {"n": 8},
        300,
        0,
        [
            # The Basic-LEAD cheater forces its target deterministically
            # (Claim B.1), so the coin always lands on the forced parity
            # — the saturated end of the (n/2)-epsilon bias bound.
            ("forced-parity", 1.0, lambda r: r.successes.successes),
        ],
    ),
    (
        "baton-12-2",
        "fullinfo/baton",
        {"n": 12, "k": 2},
        600,
        0,
        [
            (
                "coalition-win",
                baton_coalition_win(12, 2),
                lambda r: r.successes.successes,
            ),
        ],
    ),
    (
        "baton-16-3",
        "fullinfo/baton",
        {"n": 16, "k": 3},
        2000,
        0,
        [
            (
                "coalition-win",
                baton_coalition_win(16, 3),
                lambda r: r.successes.successes,
            ),
        ],
    ),
    (
        "sequential-parity",
        "fullinfo/sequential-coin",
        {"game": "parity", "n": 6, "k": 1, "target": 1},
        16,
        0,
        [
            # One late mover always forces parity: forced probability 1,
            # so the bias-achieved predicate fires on every trial.
            ("always-forced", 1.0, lambda r: r.successes.successes),
        ],
    ),
    (
        "sequential-majority",
        "fullinfo/sequential-coin",
        {"game": "majority", "n": 7, "k": 2, "target": 1},
        16,
        0,
        [
            # 13/16 > 1/2, so the coalition beats the honest half in
            # every (deterministic) trial.
            ("bias-achieved", 1.0, lambda r: r.successes.successes),
        ],
    ),
    (
        "fair-renaming",
        "blocks/fair-renaming",
        {"n": 6},
        300,
        0,
        [
            # The honest renaming block always completes (never FAILs)...
            ("always-renames", 1.0, lambda r: r.successes.successes),
            # ...and the uniform origin-of-names rotation makes processor
            # 1's new name uniform over [6]: name 1 at rate 1/6 — the
            # fairness claim E12 measures.
            ("uniform-first-name", 1 / 6, lambda r: r.distribution.counts.get(1, 0)),
        ],
    ),
    (
        "xor-chain-dictator",
        "tree/xor-chain",
        {"chain": 3, "expect": "B"},
        16,
        0,
        [
            # Lemma F.3: collapsing an XOR chain to two parties leaves
            # the last mover B a dictator, and the Lemma F.2 search must
            # find (and witness-verify) exactly that on every run — the
            # game is deterministic, so anything below 1.0 is a real
            # regression in the tree machinery.
            ("dictator-found", 1.0, lambda r: r.successes.successes),
        ],
    ),
]

CONTRACT_IDS = [contract[0] for contract in CONTRACTS]


@pytest.fixture(scope="module")
def shared_pool():
    """One 4-worker pool for every parallel contract (spawn cost paid
    once for the whole module)."""
    with WorkerPool(4) as pool:
        yield pool


def _check_contract(contract, pool=None):
    _, scenario, params, trials, base_seed, checks = contract
    result = run_scenario(
        scenario,
        trials,
        base_seed=base_seed,
        params=params,
        keep_outcomes=False,
        pool=pool,
        workers=pool.workers if pool is not None else 1,
    )
    assert result.trials == trials
    for check_id, analytic, observed_count in checks:
        count = observed_count(result)
        low, high = wilson_interval(count, trials, Z99)
        assert low <= analytic <= high, (
            f"{scenario} {params} [{check_id}]: analytic {analytic:.4f} "
            f"outside 99% Wilson [{low:.4f}, {high:.4f}] "
            f"({count}/{trials} at seed {base_seed})"
        )


@pytest.mark.parametrize("contract", CONTRACTS, ids=CONTRACT_IDS)
def test_estimate_brackets_analytic_value_serial(contract):
    _check_contract(contract)


@pytest.mark.parametrize("contract", CONTRACTS, ids=CONTRACT_IDS)
def test_estimate_brackets_analytic_value_4_workers(contract, shared_pool):
    _check_contract(contract, pool=shared_pool)


class TestExactValues:
    """Contracts that hold exactly, not just statistically."""

    def test_sequential_majority_matches_binomial_closed_form(self):
        """The game engine's backward induction over the majority-of-7
        tree must land on the closed-form binomial tail: 13/16."""
        analytic = majority_forced_probability(7, 2)
        assert analytic == 13 / 16
        result = run_scenario(
            "fullinfo/sequential-coin",
            4,
            params={"game": "majority", "n": 7, "k": 2, "target": 1},
        )
        (outcome,) = result.distribution.counts
        assert outcome == round(analytic, 6)

    def test_sequential_parity_is_fully_forced(self):
        """Any late mover flips the last bit: forced probability exactly 1."""
        result = run_scenario(
            "fullinfo/sequential-coin",
            4,
            params={"game": "parity", "n": 6, "k": 1, "target": 1},
        )
        (outcome,) = result.distribution.counts
        assert outcome == 1.0

    def test_baton_dp_matches_honest_uniformity_at_k_0(self):
        """Sanity-check the independent DP itself: with no coalition the
        greedy deviation vanishes and the win probability is k/n = 0."""
        assert baton_coalition_win(10, 0) == 0.0

    def test_xor_chain_dictator_is_exactly_the_last_mover(self):
        """The collapsed XOR chain's outcome distribution is the single
        dictator label on every trial, not merely a 100% success rate —
        pinning the outcome itself, not just the predicate."""
        result = run_scenario("tree/xor-chain", 8, params={"chain": 3})
        assert dict(result.distribution.counts) == {"B": 8}
