"""Tests for the full-information coin-flipping comparators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fullinfo.baton import baton_survival_probability, pass_the_baton
from repro.fullinfo.boolean import (
    best_coalition_influence,
    coalition_influence,
    majority_function,
    parity_function,
    tribes_function,
)
from repro.fullinfo.games import SequentialCoinGame, optimal_coalition_bias
from repro.util.errors import ConfigurationError


class TestBooleanFunctions:
    def test_parity_values(self):
        f = parity_function(4)
        assert f([0, 0, 0, 0]) == 0
        assert f([1, 0, 1, 1]) == 1

    def test_majority_values(self):
        f = majority_function(5)
        assert f([1, 1, 1, 0, 0]) == 1
        assert f([1, 0, 0, 0, 1]) == 0

    def test_majority_rejects_even(self):
        with pytest.raises(ConfigurationError):
            majority_function(4)

    def test_tribes_values(self):
        f = tribes_function(2, 3)  # 3 tribes of size 2
        assert f([1, 1, 0, 0, 0, 0]) == 1  # first tribe unanimous
        assert f([1, 0, 0, 1, 0, 1]) == 0


class TestInfluence:
    def test_parity_single_player_controls(self):
        f = parity_function(5)
        assert coalition_influence(f, [2]) == 1.0

    def test_majority_single_player_partial(self):
        f = majority_function(9)
        inf = coalition_influence(f, [0])
        # Exactly Pr[other 8 bits split 4-4] = C(8,4)/2^8.
        assert inf == pytest.approx(70 / 256)

    def test_majority_influence_monotone_in_k(self):
        f = majority_function(9)
        infs = [coalition_influence(f, list(range(k))) for k in (1, 2, 3, 4)]
        assert infs == sorted(infs)

    def test_tribes_own_tribe_constant_influence(self):
        f = tribes_function(2, 4)
        inf = coalition_influence(f, [0, 1])  # owns a whole tribe
        assert inf > 0.3  # can always force 1; forcing 0 blocked sometimes

    def test_out_of_range_coalition_rejected(self):
        with pytest.raises(ConfigurationError):
            coalition_influence(parity_function(4), [9])

    def test_sampled_close_to_exact(self):
        f = majority_function(9)
        exact = coalition_influence(f, [0, 1])
        sampled = coalition_influence(
            f, [0, 1], samples=1500, rng=random.Random(4)
        )
        assert abs(exact - sampled) < 0.06

    def test_best_coalition_parity(self):
        inf, coalition = best_coalition_influence(parity_function(4), 1)
        assert inf == 1.0 and len(coalition) == 1


class TestSequentialGames:
    def test_parity_last_mover_dictates(self):
        f = parity_function(4)
        game = SequentialCoinGame(f, [3])
        assert game.forced_probability(0) == 1.0
        assert game.forced_probability(1) == 1.0

    def test_parity_first_mover_powerless(self):
        """An early parity mover gains nothing: later bits re-randomize."""
        f = parity_function(4)
        game = SequentialCoinGame(f, [0])
        assert game.forced_probability(1) == pytest.approx(0.5)

    def test_honest_game_balanced(self):
        f = majority_function(5)
        game = SequentialCoinGame(f, [])
        assert game.forced_probability(1) == pytest.approx(0.5)

    def test_majority_late_movers_gain(self):
        f = majority_function(7)
        late = SequentialCoinGame(f, [5, 6]).forced_probability(1)
        assert 0.5 < late < 1.0

    def test_optimal_bias_parity(self):
        assert optimal_coalition_bias(parity_function(3), [2]) == pytest.approx(0.5)

    @given(k=st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_bias_monotone_in_coalition(self, k):
        f = majority_function(7)
        smaller = optimal_coalition_bias(f, list(range(6, 6 - k, -1)))
        larger = optimal_coalition_bias(f, list(range(6, 5 - k, -1)))
        assert larger >= smaller - 1e-12

    def test_rejects_bad_coalition(self):
        with pytest.raises(ConfigurationError):
            SequentialCoinGame(parity_function(3), [5])


class TestBaton:
    def test_honest_uniform(self):
        from collections import Counter

        n = 6
        counts = Counter(
            pass_the_baton(n, rng=random.Random(s)) for s in range(1200)
        )
        assert set(counts) == set(range(n))
        assert max(counts.values()) < 2 * 1200 / n

    def test_singleton_coalition_near_honest(self):
        p = baton_survival_probability(48, [0], trials=600)
        assert p < 0.08  # ~1/48 honest; greedy deviation adds little

    def test_half_coalition_total_control(self):
        p = baton_survival_probability(32, range(16), trials=200)
        assert p == 1.0

    def test_bias_grows_with_k(self):
        n = 48
        ps = [
            baton_survival_probability(n, range(k), trials=300) - k / n
            for k in (4, 12, 20)
        ]
        assert ps[0] < ps[1] < ps[2]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            pass_the_baton(0)
        with pytest.raises(ConfigurationError):
            pass_the_baton(4, coalition=[9])
