"""The distributed campaign: coordinator, leases, nodes, and identity.

The load-bearing assertion is byte-identity: a campaign sharded across
any number of nodes at any lease size — including after a node dies
mid-lease — emits exactly the rows the single-host orchestrator does.
Everything else (exactly-once folding, expiry, the HTTP protocol, the
``/metrics`` surface) exists in service of that contract.
"""

import json
import socket
import threading
import time
import urllib.request

import pytest

from repro.cli import main
from repro.experiments import (
    CampaignCoordinator,
    CoordinatorClient,
    WorkerPool,
    expand_manifest,
    lease_fold,
    run_campaign,
    run_node,
    serve_coordinator,
    slice_ranges,
)
from repro.metrics import parse_text
from repro.util.errors import ConfigurationError

MANIFEST = {
    "trials": 40,
    "base_seed": 3,
    "entries": [
        {"scenario": "attack/basic-cheat", "grid": {"n": [16, 24], "target": 5}},
        {"scenario": "cointoss/biased-coin", "grid": {"n": 8}},
        {
            "scenario": "attack/basic-cheat",
            "grid": {"n": 20, "target": 5},
            "budget": {"ci_width": 0.2, "min_trials": 8, "max_trials": 64},
        },
    ],
}


def single_host_rows(points):
    return sorted(
        json.dumps(r.to_row(), sort_keys=True)
        for r in run_campaign(points, workers=1)
    )


def drive(coordinator, nodes=1, fail=None):
    """Drain a coordinator with ``nodes`` in-process lease loops.

    ``fail(lease) -> bool`` marks leases to swallow (simulating a node
    that died holding them — it never reports).
    """

    def loop(worker_name):
        pool = WorkerPool(1)
        node = coordinator.register(name=worker_name)["node"]
        try:
            while True:
                answer = coordinator.lease(node)
                if answer["done"]:
                    return
                if not answer["leases"]:
                    time.sleep(0.005)
                    continue
                for lease in answer["leases"]:
                    if fail is not None and fail(lease):
                        continue
                    report = lease_fold(lease, pool)
                    report["node"] = node
                    coordinator.report(report)
        finally:
            pool.close()

    threads = [
        threading.Thread(target=loop, args=(f"w{i}",)) for i in range(nodes)
    ]
    for t in threads:
        t.start()
    rows = [
        json.dumps(r.to_row(), sort_keys=True) for r in coordinator.results()
    ]
    for t in threads:
        t.join()
    return sorted(rows)


class TestSliceRanges:
    def test_covers_the_interval_disjointly(self):
        assert slice_ranges(0, 10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert slice_ranges(5, 6, 100) == [(5, 6)]
        assert slice_ranges(3, 3, 4) == []

    def test_rejects_bad_lease_sizes(self):
        with pytest.raises(ConfigurationError):
            slice_ranges(0, 10, 0)
        with pytest.raises(ConfigurationError):
            slice_ranges(0, 10, True)


class TestByteIdentity:
    def test_sharded_rows_match_single_host(self):
        points = expand_manifest(MANIFEST)
        expected = single_host_rows(points)
        for lease_trials, nodes in [(7, 1), (16, 3)]:
            coordinator = CampaignCoordinator(
                points, lease_trials=lease_trials
            )
            assert drive(coordinator, nodes=nodes) == expected

    def test_adaptive_budget_converges_identically(self):
        # The batch barrier is what makes adaptive points shardable: the
        # stop decision happens only after every slice folded.
        points = [
            p
            for p in expand_manifest(MANIFEST)
            if p.budget is not None
        ]
        assert points, "manifest must carry an adaptive point"
        expected = single_host_rows(points)
        coordinator = CampaignCoordinator(points, lease_trials=3)
        assert drive(coordinator, nodes=2) == expected

    def test_completed_points_are_skipped(self):
        points = expand_manifest(MANIFEST)
        done = {points[0].key()}
        coordinator = CampaignCoordinator(points, completed=done)
        rows = drive(coordinator, nodes=1)
        assert len(rows) == len(points) - 1
        assert coordinator.skipped_points == 1

    def test_empty_campaign_is_immediately_done(self):
        points = expand_manifest(MANIFEST)
        coordinator = CampaignCoordinator(
            points, completed={p.key() for p in points}
        )
        assert list(coordinator.results()) == []
        assert coordinator.done


class TestLeaseLifecycle:
    def test_expired_lease_is_requeued_and_rerun(self):
        points = expand_manifest(
            {
                "trials": 12,
                "base_seed": 1,
                "entries": [
                    {"scenario": "attack/basic-cheat",
                     "grid": {"n": 16, "target": 5}},
                ],
            }
        )
        expected = single_host_rows(points)
        coordinator = CampaignCoordinator(
            points, lease_trials=4, lease_ttl=0.05
        )
        swallowed = []

        def fail(lease):
            # The first node to see range [4, 8) dies holding it.
            if lease["start"] == 4 and not swallowed:
                swallowed.append(lease["lease"])
                return True
            return False

        assert drive(coordinator, nodes=2, fail=fail) == expected
        assert swallowed, "the failure injection must have fired"
        expired = coordinator.metrics.counter("repro_leases_expired_total")
        assert expired.value() >= 1

    def test_duplicate_report_is_dropped_not_double_counted(self):
        points = expand_manifest(
            {
                "trials": 6,
                "base_seed": 0,
                "entries": [
                    {"scenario": "attack/basic-cheat",
                     "grid": {"n": 16, "target": 5}},
                ],
            }
        )
        coordinator = CampaignCoordinator(points, lease_trials=3)
        pool = WorkerPool(1)
        try:
            node = coordinator.register(name="dup")["node"]
            reports = []
            while not coordinator.done:
                answer = coordinator.lease(node)
                for lease in answer["leases"]:
                    report = lease_fold(lease, pool)
                    report["node"] = node
                    assert coordinator.report(report)["status"] == "accepted"
                    reports.append(report)
                if not answer["leases"] and not answer["done"]:
                    time.sleep(0.005)
            # Replays: the point finalized, so its ranges are purged.
            for report in reports:
                assert coordinator.report(report)["status"] == "unknown"
        finally:
            pool.close()
        (row,) = [r.to_row() for r in coordinator.results()]
        assert row["trials"] == 6

    def test_partial_fold_is_rejected(self):
        points = expand_manifest(
            {
                "trials": 8,
                "base_seed": 0,
                "entries": [
                    {"scenario": "attack/basic-cheat",
                     "grid": {"n": 16, "target": 5}},
                ],
            }
        )
        coordinator = CampaignCoordinator(points, lease_trials=8)
        node = coordinator.register()["node"]
        (lease,) = coordinator.lease(node)["leases"]
        with pytest.raises(ConfigurationError):
            coordinator.report(
                {
                    "node": node,
                    "lease": lease["lease"],
                    "point": lease["point"],
                    "start": lease["start"],
                    "end": lease["end"],
                    "counts": {"5": 3},
                    "successes": 3,
                    "steps_total": 9,
                    "trials": 3,  # != end - start
                }
            )

    def test_report_rejects_bool_smuggled_integers(self):
        points = expand_manifest(
            {
                "trials": 4,
                "base_seed": 0,
                "entries": [
                    {"scenario": "attack/basic-cheat",
                     "grid": {"n": 16, "target": 5}},
                ],
            }
        )
        coordinator = CampaignCoordinator(points, lease_trials=4)
        node = coordinator.register()["node"]
        (lease,) = coordinator.lease(node)["leases"]
        with pytest.raises(ConfigurationError):
            coordinator.report(
                {
                    "node": node,
                    "point": lease["point"],
                    "start": lease["start"],
                    "end": lease["end"],
                    "counts": {"5": 4},
                    "successes": True,
                    "steps_total": 12,
                    "trials": 4,
                }
            )


class TestHTTP:
    @pytest.fixture()
    def served(self):
        points = expand_manifest(MANIFEST)
        coordinator = CampaignCoordinator(points, lease_trials=16)
        server, thread = serve_coordinator(coordinator, "127.0.0.1", 0)
        host, port = server.server_address[:2]
        try:
            yield coordinator, f"{host}:{port}", points
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_run_node_over_real_http_matches_single_host(self, served):
        coordinator, address, points = served
        expected = single_host_rows(points)
        exit_codes = []
        nodes = [
            threading.Thread(
                target=lambda: exit_codes.append(
                    run_node(address, workers=1, poll=0.01, retries=2)
                )
            )
            for _ in range(2)
        ]
        for t in nodes:
            t.start()
        rows = sorted(
            json.dumps(r.to_row(), sort_keys=True)
            for r in coordinator.results()
        )
        coordinator.await_nodes_done(timeout=5.0)
        for t in nodes:
            t.join(timeout=30)
        assert rows == expected
        assert exit_codes == [0, 0]

    def test_metrics_endpoint_is_valid_prometheus_text(self, served):
        coordinator, address, points = served
        run_node(address, workers=1, poll=0.01, retries=2, name="probe")
        list(coordinator.results())
        with urllib.request.urlopen(f"http://{address}/metrics") as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            families = parse_text(resp.read().decode("utf-8"))
        total = sum(p.trials or 0 for p in points if p.budget is None)
        assert families["repro_trials_total"][0][1] >= total
        for family in (
            "repro_trials_per_second",
            "repro_lease_queue_depth",
            "repro_leases_active",
            "repro_node_per_trial_seconds",
            "repro_node_healthy",
            "repro_reports_total",
            "repro_http_disconnects_total",
        ):
            assert family in families
        ((labels, healthy),) = [
            s for s in families["repro_node_healthy"]
            if s[0].get("node", "").startswith("probe")
        ]
        assert healthy == 1

    def test_status_and_healthz(self, served):
        coordinator, address, _ = served
        with urllib.request.urlopen(f"http://{address}/healthz") as resp:
            assert json.loads(resp.read())["status"] == "ok"
        with urllib.request.urlopen(f"http://{address}/status") as resp:
            status = json.loads(resp.read())
        assert status["pending"] == status["points"]
        assert not status["done"]

    def test_client_surfaces_protocol_errors(self, served):
        _, address, _ = served
        client = CoordinatorClient(address)
        with pytest.raises(ConfigurationError, match="missing 'node'"):
            client.post("/lease", {})
        with pytest.raises(ConfigurationError, match="unknown path"):
            client.post("/nonsense", {})


class TestCli:
    def test_campaign_coordinate_cli_matches_local_run(self, tmp_path):
        """``campaign --coordinate`` + an in-process node produce the
        same ``--out`` file a plain ``campaign`` run writes."""
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps(MANIFEST))
        local = tmp_path / "local.jsonl"
        assert main(["campaign", str(manifest), "--out", str(local)]) == 0

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        sharded = tmp_path / "sharded.jsonl"
        exit_codes = []

        def coordinate():
            exit_codes.append(
                main(
                    [
                        "campaign", str(manifest), "--coordinate",
                        "--listen", f"127.0.0.1:{port}",
                        "--lease-trials", "8",
                        "--out", str(sharded),
                    ]
                )
            )

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()
        assert run_node(
            f"127.0.0.1:{port}", workers=1, poll=0.01, retries=50,
            retry_delay=0.1,
        ) == 0
        coordinator.join(timeout=60)
        assert exit_codes == [0]
        assert sorted(local.read_text().splitlines()) == sorted(
            sharded.read_text().splitlines()
        )

    def test_coordinate_defaults_lease_trials(self, tmp_path):
        """A bare ``--coordinate`` (no ``--lease-trials``) falls back to
        the coordinator default instead of rejecting the unset flag."""
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps(MANIFEST))
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        out = tmp_path / "default.jsonl"
        exit_codes = []

        def coordinate():
            exit_codes.append(
                main(
                    [
                        "campaign", str(manifest), "--coordinate",
                        "--listen", f"127.0.0.1:{port}",
                        "--out", str(out),
                    ]
                )
            )

        coordinator = threading.Thread(target=coordinate)
        coordinator.start()
        assert run_node(
            f"127.0.0.1:{port}", workers=1, poll=0.01, retries=50,
            retry_delay=0.1,
        ) == 0
        coordinator.join(timeout=60)
        assert exit_codes == [0]
        assert sorted(out.read_text().splitlines()) == single_host_rows(
            expand_manifest(MANIFEST)
        )

    def test_coordinate_rejects_max_wall_clock(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps(MANIFEST))
        with pytest.raises(SystemExit, match="max-wall-clock"):
            main(
                [
                    "campaign", str(manifest), "--coordinate",
                    "--max-wall-clock", "5",
                    "--out", str(tmp_path / "x.jsonl"),
                ]
            )
