"""Golden-row regression: sweep output pinned per subsystem.

``tests/data/golden_rows.json`` holds the exact ``to_row()`` output of a
small experiment for one scenario per subsystem, produced at a fixed
``(trials, base_seed)``. Byte-identical reproduction is asserted here,
so a refactor of the executor, the RNG derivation, a protocol, or the
row serialisation cannot silently shift published estimates — it either
reproduces history exactly or fails this test and must say so.

To *intentionally* change the numbers (e.g. a new seed derivation),
regenerate the fixture with the snippet in this file's docstring and
call the change out in the PR::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.experiments import run_scenario
    from tests.test_golden_rows import CASES, TRIALS, BASE_SEED
    rows = [
        run_scenario(n, trials=TRIALS, base_seed=BASE_SEED, params=p).to_row()
        for n, p in CASES
    ]
    with open("tests/data/golden_rows.json", "w") as f:
        json.dump(rows, f, indent=2, sort_keys=True); f.write("\\n")
    EOF
"""

import json
import os

import pytest

from repro.experiments import run_scenario

#: One scenario per subsystem, small enough to re-run in milliseconds.
CASES = [
    ("honest/alead-uni", {"n": 8}),
    ("attack/cubic", {"n": 34, "k": 4}),
    ("sync/broadcast", {"n": 6}),
    ("tree/xor-chain", {}),
    ("cointoss/coin-fle", {"n": 8}),
    ("fullinfo/baton", {"n": 16, "k": 3}),
    ("blocks/fair-renaming", {"n": 6}),
    ("fuzz/random-deviation", {"n": 16, "k": 2}),
    ("placement/random-segments", {"n": 64}),
]
TRIALS = 6
BASE_SEED = 42

FIXTURE = os.path.join(os.path.dirname(__file__), "data", "golden_rows.json")


def _golden_rows():
    with open(FIXTURE) as f:
        return json.load(f)


def test_fixture_covers_every_subsystem():
    prefixes = {row["scenario"].split("/", 1)[0] for row in _golden_rows()}
    assert {
        "honest", "attack", "sync", "tree", "cointoss", "fullinfo",
        "blocks", "fuzz", "placement",
    } <= prefixes


@pytest.mark.parametrize(
    "case, golden",
    list(zip(CASES, _golden_rows())),
    ids=[name for name, _ in CASES],
)
def test_rows_reproduce_byte_identically(case, golden):
    name, params = case
    assert golden["scenario"] == name, "fixture order drifted from CASES"
    row = run_scenario(
        name, trials=TRIALS, base_seed=BASE_SEED, params=params
    ).to_row()
    assert json.dumps(row, sort_keys=True) == json.dumps(golden, sort_keys=True)


def test_workers_reproduce_the_same_golden_rows():
    """The fixture is also the parallel path's contract."""
    name, params = CASES[0]
    row = run_scenario(
        name, trials=TRIALS, base_seed=BASE_SEED, params=params, workers=3
    ).to_row()
    assert json.dumps(row, sort_keys=True) == json.dumps(
        _golden_rows()[0], sort_keys=True
    )
