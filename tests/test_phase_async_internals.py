"""White-box tests for PhaseAsyncLead: framing, parity, abort paths.

The protocol's punishment mechanism rests on strict message framing
(tagged tuples) and data/validation alternation. These tests drive the
strategies directly with crafted contexts to pin every abort path, and
run small adversarial injections through the executor to confirm the
punishments reach the global outcome.
"""

import pytest

from repro.protocols.phase_async import (
    DATA,
    VALIDATION,
    PhaseAsyncParams,
    PhaseNormalStrategy,
    PhaseOriginStrategy,
    phase_async_protocol,
)
from repro.sim.execution import ABORT, FAIL, run_protocol
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import unidirectional_ring
from repro.util.rng import RngRegistry


def _ctx(pid=2, n=4):
    return Context(
        pid=pid,
        out_neighbors=[pid % n + 1],
        n=n,
        rng=RngRegistry(0).stream(f"proc:{pid}"),
    )


def _started_normal(pid=2, n=4):
    params = PhaseAsyncParams(n=n)
    strat = PhaseNormalStrategy(pid, params)
    ctx = _ctx(pid, n)
    strat.on_wakeup(ctx)
    return strat


class TestFraming:
    def test_malformed_message_aborts(self):
        strat = _started_normal()
        ctx = _ctx()
        strat.on_receive(ctx, "not-a-tuple", 1)
        assert ctx.terminated and ctx.output == ABORT

    def test_wrong_arity_tuple_aborts(self):
        strat = _started_normal()
        ctx = _ctx()
        strat.on_receive(ctx, (DATA, 1, 2), 1)
        assert ctx.output == ABORT

    def test_validation_first_aborts(self):
        """Incoming #1 must be data; a validation message is punished."""
        strat = _started_normal()
        ctx = _ctx()
        strat.on_receive(ctx, (VALIDATION, 5), 1)
        assert ctx.output == ABORT

    def test_data_at_even_position_aborts(self):
        strat = _started_normal()
        ctx = _ctx()
        strat.on_receive(ctx, (DATA, 1), 1)
        assert not ctx.terminated
        ctx2 = _ctx()
        strat.on_receive(ctx2, (DATA, 2), 1)  # expected validation
        assert ctx2.output == ABORT

    def test_non_integer_payload_aborts(self):
        strat = _started_normal()
        ctx = _ctx()
        strat.on_receive(ctx, (DATA, "zero"), 1)
        assert ctx.output == ABORT

    def test_unknown_tag_aborts(self):
        strat = _started_normal()
        ctx = _ctx()
        strat.on_receive(ctx, ("X", 0), 1)
        assert ctx.output == ABORT


class TestOriginFraming:
    def test_origin_expects_data_first(self):
        params = PhaseAsyncParams(n=4)
        strat = PhaseOriginStrategy(1, params)
        ctx = _ctx(1, 4)
        strat.on_wakeup(ctx)
        assert len(ctx.sends) == 2  # (D, d1) then (V, v1)
        tags = [v[0] for _, v in ctx.sends]
        assert tags == [DATA, VALIDATION]
        ctx2 = _ctx(1, 4)
        strat.on_receive(ctx2, (VALIDATION, 0), 4)
        assert ctx2.output == ABORT

    def test_origin_validation_check(self):
        """Origin aborts when round-1 validation returns corrupted."""
        params = PhaseAsyncParams(n=4)
        strat = PhaseOriginStrategy(1, params)
        ctx = _ctx(1, 4)
        strat.on_wakeup(ctx)
        own_v = strat.validation_secret
        ctx2 = _ctx(1, 4)
        strat.on_receive(ctx2, (DATA, 0), 4)
        assert not ctx2.terminated
        ctx3 = _ctx(1, 4)
        strat.on_receive(ctx3, (VALIDATION, (own_v + 1) % params.m), 4)
        assert ctx3.output == ABORT


class TestInjectionPunishments:
    """Adversarial single-processor injections through the executor."""

    def _run_with(self, adversary_cls, n=8, seed=3):
        ring = unidirectional_ring(n)
        protocol = phase_async_protocol(ring)
        protocol[4] = adversary_cls(n)
        return run_protocol(ring, protocol, seed=seed)

    def test_corrupting_validation_value_fails(self):
        class ValidationCorruptor(PhaseNormalStrategy):
            def __init__(self, n):
                super().__init__(4, PhaseAsyncParams(n=n))

            def _on_validation(self, ctx, payload):
                # Honest except round 2's validation value is perturbed.
                if self.round == 2 and self.round != self.pid:
                    payload = (payload + 1) % self.params.m
                super()._on_validation(ctx, payload)

        res = self._run_with(ValidationCorruptor)
        assert res.outcome == FAIL

    def test_corrupting_data_value_fails(self):
        class DataCorruptor(PhaseNormalStrategy):
            def __init__(self, n):
                super().__init__(4, PhaseAsyncParams(n=n))

            def _on_data(self, ctx, payload):
                if self.round == 3:
                    payload = (payload + 1) % self.n
                super()._on_data(ctx, payload)

        res = self._run_with(DataCorruptor)
        assert res.outcome == FAIL

    def test_swapping_message_order_fails(self):
        class OrderSwapper(Strategy):
            """Sends a validation message where data is expected."""

            def __init__(self, n):
                self.n = n
                self.params = PhaseAsyncParams(n=n)
                self.sent_garbage = False

            def on_wakeup(self, ctx):
                pass

            def on_receive(self, ctx, value, sender):
                if not self.sent_garbage:
                    self.sent_garbage = True
                    ctx.send_next((VALIDATION, 0))  # wrong phase
                    ctx.terminate(None)

        res = self._run_with(OrderSwapper)
        assert res.outcome == FAIL

    def test_silent_processor_fails(self):
        from repro.sim.strategy import SilentStrategy

        ring = unidirectional_ring(6)
        protocol = phase_async_protocol(ring)
        protocol[3] = SilentStrategy()
        res = run_protocol(ring, protocol, seed=1)
        assert res.outcome == FAIL


class TestParams:
    def test_rejects_tiny_n(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PhaseAsyncParams(n=1)

    def test_rejects_bad_ell(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PhaseAsyncParams(n=5, ell=9)

    def test_rejects_bad_m(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PhaseAsyncParams(n=5, m=1)

    def test_default_m_is_2n_squared(self):
        assert PhaseAsyncParams(n=7).m == 98

    def test_num_validation_inputs(self):
        p = PhaseAsyncParams(n=9, ell=4)
        assert p.num_validation_inputs == 5

    def test_sum_variant_ignores_validations(self):
        p = PhaseAsyncParams.sum_variant(5)
        out1 = p.output_fn([1, 2, 3, 4, 0], [7, 8, 9, 1, 2])
        out2 = p.output_fn([1, 2, 3, 4, 0], [0, 0, 0, 0, 0])
        assert out1 == out2
