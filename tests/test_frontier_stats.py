"""Tests for the frontier search (Conjecture 4.7) and statistics helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.frontier import (
    FrontierPoint,
    forcing_frontier,
    smallest_forcing_coalition,
)
from repro.analysis.stats import (
    Proportion,
    proportion,
    proportions_differ,
    wilson_interval,
)


class TestFrontier:
    def test_frontier_inside_gap(self):
        point = smallest_forcing_coalition(64, seeds=1)
        assert point.family in ("cubic", "rushing")
        assert point.within_gap

    def test_frontier_series(self):
        points = forcing_frontier([64, 144], seeds=1)
        assert [p.n for p in points] == [64, 144]
        for p in points:
            assert p.within_gap
            assert p.lower_bound < p.conjecture < p.upper_bound

    def test_frontier_monotone_ish(self):
        """Larger rings need (weakly) larger forcing coalitions."""
        small = smallest_forcing_coalition(36, seeds=1)
        large = smallest_forcing_coalition(256, seeds=1)
        assert large.k_min >= small.k_min

    def test_unreachable_frontier_reported(self):
        point = smallest_forcing_coalition(36, seeds=1, k_max=2)
        assert point.family == "none"
        assert point.k_min == 3


class TestWilson:
    def test_degenerate_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_interval_contains_estimate(self):
        low, high = wilson_interval(7, 10)
        assert low < 0.7 < high

    def test_extremes_stay_in_unit(self):
        low, high = wilson_interval(10, 10)
        assert 0.0 <= low <= high <= 1.0
        assert high == 1.0
        low, high = wilson_interval(0, 10)
        assert low == 0.0

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    @given(st.integers(1, 500), st.data())
    @settings(max_examples=50, deadline=None)
    def test_property_interval_valid(self, trials, data):
        successes = data.draw(st.integers(0, trials))
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_narrows_with_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])


class TestProportions:
    def test_proportion_str_fields(self):
        p = proportion(3, 4)
        assert p.estimate == 0.75
        assert p.low < 0.75 < p.high

    def test_clearly_different(self):
        a = proportion(95, 100)
        b = proportion(10, 100)
        assert proportions_differ(a, b)

    def test_clearly_same(self):
        a = proportion(50, 100)
        b = proportion(52, 100)
        assert not proportions_differ(a, b)

    def test_zero_trials_safe(self):
        assert not proportions_differ(
            Proportion(0, 0, 0, 1), proportion(5, 10)
        )

    def test_degenerate_pooled(self):
        a = proportion(10, 10)
        b = proportion(10, 10)
        assert not proportions_differ(a, b)
