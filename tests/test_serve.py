"""The estimate service: stored results first, trials only on a miss.

The load-bearing guarantees, each pinned directly:

- a cached hit answers from the store without dispatching a single
  trial (proved by making trial-running impossible, not by timing);
- a cold miss runs one adaptive point, persists it, and the identical
  re-query is then a store hit;
- a read-only service refuses a cold miss instead of computing;
- numeric param spellings alias (``n=16.0`` hits rows under ``n=16``);
- a row that ran to its trial ceiling without converging is returned
  under its exact adaptive key with ``satisfied: false`` rather than
  recomputed forever;
- distinct cold points compute *concurrently* (a barrier inside a
  monkeypatched compute proves overlap — a global compute lock would
  deadlock it) while identical in-flight queries still coalesce to one
  compute;
- the HTTP layer maps these to 200/400/404/409 end to end over a real
  ephemeral-port server.
"""

import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.serve as serve_mod
from repro.experiments import ResultStore, run_scenario
from repro.metrics import parse_text
from repro.serve import ComputeRefused, EstimateService, make_server
from repro.util.errors import ConfigurationError

POINT = {"n": 16, "target": 5}
SCENARIO = "attack/basic-cheat"
# attack/basic-cheat at these params succeeds 2/2 at base_seed 0; the
# Wilson width of 2/2 is ~0.66, so ci_width=0.9 is satisfiable by a
# 2-trial row while ci_width=0.05 is far out of its reach.
WIDE, NARROW = 0.9, 0.05


def seeded_store(tmp_path, name="r.db"):
    store = ResultStore(str(tmp_path / name))
    row = run_scenario(SCENARIO, trials=2, params=dict(POINT)).to_row()
    assert store.append_row(row) == "stored"
    return store


def no_trials_allowed(monkeypatch):
    """Make dispatching trials an error: any cache 'hit' that computes
    fails loudly instead of silently passing."""

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("a cached query dispatched trials")

    monkeypatch.setattr(serve_mod, "run_campaign", boom)


class TestEstimateService:
    def test_cached_hit_runs_no_trials(self, tmp_path, monkeypatch):
        no_trials_allowed(monkeypatch)
        with seeded_store(tmp_path) as store:
            service = EstimateService(store, min_trials=2, max_trials=2)
            answer = service.estimate(SCENARIO, dict(POINT), WIDE)
        assert answer["source"] == "store"
        assert answer["satisfied"] is True
        assert answer["trials"] == 2
        assert answer["width"] <= WIDE

    def test_numeric_aliasing_still_hits_the_cache(
        self, tmp_path, monkeypatch
    ):
        no_trials_allowed(monkeypatch)
        with seeded_store(tmp_path) as store:
            service = EstimateService(store, min_trials=2, max_trials=2)
            answer = service.estimate(
                SCENARIO, {"n": 16.0, "target": 5.0}, WIDE
            )
        assert answer["source"] == "store"

    def test_cold_miss_computes_persists_then_hits(self, tmp_path):
        with seeded_store(tmp_path) as store:
            service = EstimateService(store, min_trials=2, max_trials=2)
            try:
                cold = service.estimate(SCENARIO, {"n": 24, "target": 5}, WIDE)
                assert cold["source"] == "computed"
                assert cold["trials"] == 2  # the 2-trial adaptive point
                # persisted under fully resolved params (defaults in)
                assert len(store.lookup(
                    SCENARIO, {"cheater": 2, "n": 24, "target": 5}
                )) == 1
                again = service.estimate(
                    SCENARIO, {"n": 24, "target": 5}, WIDE
                )
                assert again["source"] == "store"
                assert again["trials"] == cold["trials"]
                assert again["successes"] == cold["successes"]
            finally:
                service.close()

    def test_read_only_miss_is_refused(self, tmp_path, monkeypatch):
        no_trials_allowed(monkeypatch)
        seeded_store(tmp_path).close()
        with ResultStore(str(tmp_path / "r.db"), read_only=True) as store:
            service = EstimateService(store)
            # read_only is inherited from the store, not just the flag
            assert service.read_only
            hit = service.estimate(SCENARIO, dict(POINT), WIDE)
            assert hit["source"] == "store"
            with pytest.raises(ComputeRefused):
                service.estimate(SCENARIO, {"n": 24, "target": 5}, WIDE)

    def test_unconverged_ceiling_row_is_returned_not_recomputed(
        self, tmp_path, monkeypatch
    ):
        """A point that ran to max_trials without reaching the width is
        stored under exactly the adaptive key this query would run;
        re-running it would spend the same trials to learn the same
        thing, so the service returns it with ``satisfied: false``."""
        with seeded_store(tmp_path) as store:
            service = EstimateService(store, min_trials=2, max_trials=2)
            first = service.estimate(SCENARIO, dict(POINT), NARROW)
            assert first["source"] == "computed"
            assert first["satisfied"] is False  # 2 trials can't pin 0.05
            no_trials_allowed(monkeypatch)
            again = service.estimate(SCENARIO, dict(POINT), NARROW)
            assert again["source"] == "store"
            assert again["satisfied"] is False
            service.close()

    def test_malformed_requests_raise_configuration_error(self, tmp_path):
        with seeded_store(tmp_path) as store:
            service = EstimateService(store)
            for bad_width in (0, -0.1, 1.5, True, "wide", None):
                with pytest.raises(ConfigurationError):
                    service.estimate(SCENARIO, dict(POINT), bad_width)
            with pytest.raises(ConfigurationError):
                service.estimate("no/such-scenario", {}, WIDE)


class TestConcurrentCompute:
    def test_distinct_cold_points_compute_concurrently(
        self, tmp_path, monkeypatch
    ):
        """Two cold queries for *different* points must both be inside
        their compute sections at the same time. The barrier makes this
        a proof, not a timing heuristic: under the old global compute
        lock the first thread would block at the barrier while holding
        the lock, the second could never enter, and both would die in
        ``BrokenBarrierError`` — per-point locks let both arrive."""
        barrier = threading.Barrier(2, timeout=10)

        def overlapping_campaign(points, pool=None, chunker=None, **kwargs):
            barrier.wait()
            point = points[0]
            yield run_scenario(
                point.scenario,
                trials=2,
                params=point.params,
                base_seed=point.base_seed,
                keep_outcomes=False,
            )

        monkeypatch.setattr(serve_mod, "run_campaign", overlapping_campaign)
        answers, errors = {}, []
        with ResultStore(str(tmp_path / "r.db")) as store:
            service = EstimateService(store, min_trials=2, max_trials=2)

            def ask(n):
                try:
                    answers[n] = service.estimate(
                        SCENARIO, {"n": n, "target": 5}, WIDE
                    )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=ask, args=(n,)) for n in (16, 24)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert answers[16]["source"] == "computed"
        assert answers[24]["source"] == "computed"
        assert answers[16]["params"]["n"] == 16
        assert answers[24]["params"]["n"] == 24

    def test_identical_inflight_queries_coalesce(self, tmp_path, monkeypatch):
        """Identical queries racing a cold point run ONE compute: the
        loser of the lock re-probes the store and answers from the
        winner's just-persisted row."""
        computes = []
        entered = threading.Event()
        release = threading.Event()

        def gated_campaign(points, pool=None, chunker=None, **kwargs):
            computes.append(points[0].key())
            entered.set()
            assert release.wait(timeout=10)
            point = points[0]
            yield run_scenario(
                point.scenario,
                trials=2,
                params=point.params,
                base_seed=point.base_seed,
                keep_outcomes=False,
            )

        monkeypatch.setattr(serve_mod, "run_campaign", gated_campaign)
        answers = []
        with ResultStore(str(tmp_path / "r.db")) as store:
            service = EstimateService(store, min_trials=2, max_trials=2)

            def ask():
                answers.append(
                    service.estimate(SCENARIO, dict(POINT), WIDE)
                )

            first = threading.Thread(target=ask)
            second = threading.Thread(target=ask)
            first.start()
            assert entered.wait(timeout=10)  # the winner is computing
            second.start()  # the loser queues on the same point lock
            release.set()
            first.join(timeout=30)
            second.join(timeout=30)
        assert len(computes) == 1  # one compute, not two
        assert sorted(a["source"] for a in answers) == ["computed", "store"]
        assert all(a["trials"] == 2 for a in answers)

    def test_lock_table_stays_empty_at_rest(self, tmp_path):
        """Entries are refcounted away: the table tracks in-flight
        points, not the query history."""
        with seeded_store(tmp_path) as store:
            service = EstimateService(store, min_trials=2, max_trials=2)
            service.estimate(SCENARIO, {"n": 24, "target": 5}, WIDE)
            service.estimate(SCENARIO, dict(POINT), WIDE)
            assert service._locks == {}
            service.close()


@pytest.fixture
def http_service(tmp_path, monkeypatch):
    """A live ephemeral-port server over a seeded store, with trial
    dispatch forbidden — every request in these tests must be answered
    from the store or rejected."""
    no_trials_allowed(monkeypatch)
    store = seeded_store(tmp_path)
    service = EstimateService(store, min_trials=2, max_trials=2)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join()
    store.close()


def fetch(url, data=None):
    try:
        with urllib.request.urlopen(url, data=data) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHttpLayer:
    def test_healthz(self, http_service):
        status, payload = fetch(http_service + "/healthz")
        assert (status, payload) == (
            200, {"status": "ok", "read_only": False}
        )

    def test_estimate_get_coerces_query_params(self, http_service):
        status, payload = fetch(
            http_service
            + f"/estimate?scenario={SCENARIO}&ci_width={WIDE}&n=16&target=5"
        )
        assert status == 200
        assert payload["source"] == "store"
        assert payload["params"]["n"] == 16  # "16" coerced, not a string

    def test_estimate_post_json_body(self, http_service):
        body = json.dumps({
            "scenario": SCENARIO, "ci_width": WIDE, "params": POINT,
        }).encode()
        status, payload = fetch(http_service + "/estimate", data=body)
        assert status == 200
        assert payload["source"] == "store"

    def test_error_statuses(self, http_service):
        assert fetch(http_service + "/nope")[0] == 404
        assert fetch(http_service + "/estimate?ci_width=0.5")[0] == 400
        assert fetch(
            http_service + f"/estimate?scenario={SCENARIO}"
        )[0] == 400
        assert fetch(
            http_service + f"/estimate?scenario={SCENARIO}&ci_width=oops"
        )[0] == 400
        assert fetch(
            http_service + "/estimate?scenario=no/such&ci_width=0.5"
        )[0] == 400
        status, _ = fetch(http_service + "/scenarios")
        assert status == 200

    def test_duplicate_query_params_are_rejected(self, http_service):
        """``?n=8&n=64`` used to silently last-win through
        ``dict(parse_qsl(...))``; ambiguity is now a 400."""
        status, payload = fetch(
            http_service
            + f"/estimate?scenario={SCENARIO}&ci_width={WIDE}"
            + "&n=8&n=64&target=5"
        )
        assert status == 400
        assert "duplicate query parameter" in payload["error"]
        assert "n" in payload["error"]

    def test_blank_query_value_is_rejected_not_dropped(self, http_service):
        """``&target=`` used to vanish from ``parse_qsl`` entirely,
        turning a typo into a silent default; it is now an explicit
        error naming the parameter."""
        status, payload = fetch(
            http_service
            + f"/estimate?scenario={SCENARIO}&ci_width={WIDE}"
            + "&n=16&target="
        )
        assert status == 400
        assert "target" in payload["error"]
        assert "blank" in payload["error"]

    def test_read_only_miss_maps_to_409(self, tmp_path, monkeypatch):
        no_trials_allowed(monkeypatch)
        seeded_store(tmp_path).close()
        store = ResultStore(str(tmp_path / "r.db"), read_only=True)
        server = make_server(EstimateService(store))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            status, _ = fetch(
                base + f"/estimate?scenario={SCENARIO}&ci_width={WIDE}"
                "&n=16&target=5"
            )
            assert status == 200  # cached reads still work
            status, payload = fetch(
                base + f"/estimate?scenario={SCENARIO}&ci_width={WIDE}"
                "&n=24&target=5"
            )
            assert status == 409
            assert "read-only" in payload["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join()
            store.close()


class TestForeignRows:
    def test_bool_successes_row_does_not_poison_the_cache(
        self, tmp_path, monkeypatch
    ):
        """``isinstance(True, int)`` holds, so a foreign row carrying
        ``"successes": true`` used to sail through the cache's integer
        guard and into the Wilson arithmetic. It must be skipped — a
        read-only service then *refuses* rather than answering from
        garbage."""
        no_trials_allowed(monkeypatch)
        with ResultStore(str(tmp_path / "r.db")) as store:
            row = run_scenario(SCENARIO, trials=2, params=dict(POINT)).to_row()
            row["successes"] = True
            assert store.append_row(row) == "stored"
        with ResultStore(str(tmp_path / "r.db"), read_only=True) as store:
            service = EstimateService(store, min_trials=2, max_trials=2)
            with pytest.raises(ComputeRefused):
                service.estimate(SCENARIO, dict(POINT), WIDE)


class TestDisconnects:
    @pytest.fixture()
    def live_service(self, tmp_path, monkeypatch):
        no_trials_allowed(monkeypatch)
        store = seeded_store(tmp_path)
        service = EstimateService(store, min_trials=2, max_trials=2)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield service, host, port
        server.shutdown()
        server.server_close()
        thread.join()
        store.close()

    def test_client_hangup_is_counted_not_a_traceback(self, live_service):
        """A client that disconnects before reading its response used to
        blow an unguarded ``wfile.write`` into a BrokenPipeError
        traceback on the server. It is now swallowed and counted, and
        the server keeps answering."""
        service, host, port = live_service
        path = (
            f"/estimate?scenario={SCENARIO}&ci_width={WIDE}&n=16&target=5"
        )
        assert service.disconnects.value() == 0
        sock = socket.create_connection((host, port), timeout=5)
        # RST on close (SO_LINGER 0): the server's response write hits a
        # dead connection deterministically instead of racing the FIN.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
        )
        sock.close()
        deadline = time.monotonic() + 5
        while (
            service.disconnects.value() == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert service.disconnects.value() >= 1
        # The server survived: a well-behaved request still answers.
        status, payload = fetch(f"http://{host}:{port}" + path)
        assert status == 200
        assert payload["source"] == "store"


class TestMetricsEndpoint:
    def test_metrics_render_store_hits_and_misses(self, http_service):
        hit = (
            f"/estimate?scenario={SCENARIO}&ci_width={WIDE}&n=16&target=5"
        )
        assert fetch(http_service + hit)[0] == 200
        assert fetch(http_service + hit)[0] == 200
        with urllib.request.urlopen(http_service + "/metrics") as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            families = parse_text(resp.read().decode("utf-8"))
        assert families["repro_store_hits_total"][0][1] == 2
        for family in (
            "repro_store_misses_total",
            "repro_trials_total",
            "repro_trials_per_second",
            "repro_http_disconnects_total",
            "repro_pool_workers",
            "repro_inflight_computes",
        ):
            assert family in families
