"""Cost-adaptive chunk sizing: the sizing math and its one contract.

Two layers, pinned separately:

- :class:`AdaptiveChunker` unit behavior — unseen scenarios decline
  (``None``), the target/balanced/floor clamps compose in the
  documented priority order, the calibration probe fires only where the
  split can pay for itself, and malformed construction/observations are
  rejected.
- The contract that makes adaptive sizing free to take: **chunking
  never affects row bytes**. Rows from pinned ``chunk_size=1``, the
  static heuristic, a cold adaptive chunker (probe path included), and
  a pre-seeded adaptive chunker are compared byte-for-byte at 1 and 4
  workers, over seeded-random parameter draws of one batched and one
  executor-backed scenario, for fixed and adaptive trial budgets.
- What the machinery buys: a budgeted point's dispatch count drops by
  an integer multiple under a seeded chunker, while trial counts (the
  worker-invariance of stop decisions) stay identical.
"""

import json
import random
import threading

import pytest

from repro.experiments import (
    CALIBRATION_TRIALS,
    AdaptiveChunker,
    CostModel,
    ExperimentRunner,
    WilsonWidthPolicy,
    get_scenario,
    run_scenario,
)
from repro.experiments.runner import chunk_payloads
from repro.util.errors import ConfigurationError

BATCHED = "cointoss/biased-coin"  # vectorized run_batch kernel
EXECUTOR = "attack/basic-cheat"  # per-trial executor simulation
MIXED_RATE = "fullinfo/baton"  # batched, p far from 0 and 1


def seeded(per_trial_seconds: float, scenario: str = "any") -> AdaptiveChunker:
    """A chunker whose cost model knows ``scenario`` costs exactly
    ``per_trial_seconds`` (one observation, so the EWMA equals it)."""
    chunker = AdaptiveChunker()
    assert chunker.observe(scenario, 1_000_000, per_trial_seconds * 1_000_000)
    return chunker


class TestAdaptiveChunkerSizing:
    def test_unseen_scenario_declines(self):
        chunker = AdaptiveChunker()
        assert chunker.chunk_size("never-seen", 10_000, workers=4) is None
        assert chunker.per_trial_seconds("never-seen") is None

    def test_empty_range_declines(self):
        assert seeded(1e-6).chunk_size("any", 0, workers=4) is None

    def test_target_caps_expensive_scenarios(self):
        # 10 ms/trial with a 0.25 s target: 25 trials per chunk, however
        # many are requested — deadline checks stay responsive.
        chunker = AdaptiveChunker()
        chunker.observe("slow", 100, 1.0)  # 10 ms/trial
        assert chunker.chunk_size("slow", 100_000, workers=1) == 25

    def test_balanced_split_when_cheap_and_large(self):
        # 1 µs/trial, 1M trials, 4 workers: the even split (250k) is
        # under the 250k-trial target cap, so load balance wins.
        assert seeded(1e-6).chunk_size("any", 1_000_000, workers=4) == 250_000

    def test_floor_overrides_load_balance_for_cheap_work(self):
        # 1 µs/trial means any chunk under 50k trials costs less than
        # MIN_CHUNK_SECONDS: a 100k range is cut in 2, never in 4.
        assert seeded(1e-6).chunk_size("any", 100_000, workers=4) == 50_000

    def test_tiny_cheap_range_is_one_chunk(self):
        # A 32-trial adaptive batch of microsecond trials must never be
        # shredded for load balance — this is where the static heuristic
        # lost its factor.
        assert seeded(1e-6).chunk_size("any", 32, workers=4) == 32

    def test_size_never_exceeds_count(self):
        # The floor asks for 50k-trial chunks; only 3 trials exist.
        assert seeded(1e-6).chunk_size("any", 3, workers=1) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveChunker(target_seconds=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveChunker(min_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            AdaptiveChunker(target_seconds=0.1, min_seconds=0.2)

    def test_garbage_observations_are_rejected_not_raised(self):
        chunker = AdaptiveChunker()
        assert not chunker.observe("any", 0, 1.0)
        assert not chunker.observe("any", 100, -1.0)
        assert chunker.chunk_size("any", 100, workers=1) is None

    def test_shared_cost_model_is_shared(self):
        # The CLI hands one model to both the scheduler and the chunker;
        # an observation through either side is visible to the other.
        model = CostModel()
        chunker = AdaptiveChunker(cost_model=model)
        model.observe("any", 1_000_000, 1.0)
        assert chunker.chunk_size("any", 10**7, workers=1) == 250_000


class TestCalibrationProbe:
    def test_small_ranges_skip_the_probe(self):
        chunker = AdaptiveChunker()
        assert chunker.calibration_trials("x", 2 * CALIBRATION_TRIALS) == 0

    def test_large_unseen_range_probes(self):
        chunker = AdaptiveChunker()
        assert (
            chunker.calibration_trials("x", 2 * CALIBRATION_TRIALS + 1)
            == CALIBRATION_TRIALS
        )

    def test_observed_scenario_skips_the_probe(self):
        assert seeded(1e-6).calibration_trials("any", 10**6) == 0


class TestExplicitChunkSizeWins:
    def test_chunk_payloads_precedence(self):
        spec = get_scenario(BATCHED)
        chunker = seeded(1e-6, spec.name)
        pinned = chunk_payloads(
            spec, spec.defaults, 0, range(100), workers=4,
            chunk_size=7, chunker=chunker,
        )
        assert [len(p[3]) for p in pinned][:2] == [7, 7]
        adaptive = chunk_payloads(
            spec, spec.defaults, 0, range(100), workers=4, chunker=chunker,
        )
        assert len(adaptive) == 1  # 100 µs of work: one chunk
        static = chunk_payloads(
            spec, spec.defaults, 0, range(100), workers=4,
        )
        assert len(static) == 17  # 100 // 16 = 6 trials per chunk


def draw_params(rng: random.Random, scenario: str) -> dict:
    n = rng.choice([8, 12, 16])
    return {"n": n, "target": rng.randint(2, 4)}


def rows_for(scenario, trials, params, budget=None, **runner_kwargs):
    runner = ExperimentRunner(**runner_kwargs)
    try:
        result = runner.run(
            scenario,
            trials,
            base_seed=11,
            params=params,
            keep_outcomes=False,
            budget=budget,
        )
        return json.dumps(result.to_row(), sort_keys=True), result
    finally:
        runner.close()


#: Every chunking mode the runner supports, as ExperimentRunner kwargs.
#: parallel=False keeps the 4-worker modes in-process (same chunking,
#: no processes) so the matrix stays fast.
MODES = {
    "chunk1-w1": dict(workers=1, chunk_size=1),
    "static-w4": dict(workers=4, parallel=False),
    "adaptive-w1": dict(workers=1, chunker=None),  # fresh per run below
    "adaptive-w4": dict(workers=4, parallel=False, chunker=None),
    "seeded-w4": dict(workers=4, parallel=False, chunker=None),
}


def mode_kwargs(name, scenario):
    kwargs = dict(MODES[name])
    if name.startswith("adaptive"):
        kwargs["chunker"] = AdaptiveChunker()
    elif name.startswith("seeded"):
        kwargs["chunker"] = seeded(1e-6, scenario)
    return kwargs


class TestRowsAreChunkingInvariant:
    """The determinism contract, mode x mode: byte-identical rows."""

    @pytest.mark.parametrize("case", range(3))
    def test_batched_fixed_trials(self, case):
        # > 2*CALIBRATION_TRIALS so the cold adaptive modes exercise the
        # probe split as well as the adaptive remainder.
        rng = random.Random(1000 + case)
        params = draw_params(rng, BATCHED)
        trials = 2 * CALIBRATION_TRIALS + rng.randint(50, 400)
        baseline, _ = rows_for(
            BATCHED, trials, params, **mode_kwargs("chunk1-w1", BATCHED)
        )
        for name in MODES:
            row, _ = rows_for(
                BATCHED, trials, params, **mode_kwargs(name, BATCHED)
            )
            assert row == baseline, name

    @pytest.mark.parametrize("case", range(2))
    def test_executor_fixed_trials(self, case):
        rng = random.Random(2000 + case)
        params = draw_params(rng, EXECUTOR)
        baseline, _ = rows_for(
            EXECUTOR, 24, params, **mode_kwargs("chunk1-w1", EXECUTOR)
        )
        for name in MODES:
            row, _ = rows_for(
                EXECUTOR, 24, params, **mode_kwargs(name, EXECUTOR)
            )
            assert row == baseline, name

    def test_batched_adaptive_budget(self):
        # Worker-invariant stop decisions: every mode runs the same
        # batches, stops at the same boundary, emits the same bytes.
        budget = lambda: WilsonWidthPolicy(  # noqa: E731 - fresh per run
            ci_width=0.12, min_trials=32, max_trials=2048
        )
        baseline, base_result = rows_for(
            MIXED_RATE, None, {"n": 16}, budget=budget(),
            **mode_kwargs("chunk1-w1", MIXED_RATE)
        )
        assert 32 <= base_result.trials <= 2048
        for name in MODES:
            row, result = rows_for(
                MIXED_RATE, None, {"n": 16}, budget=budget(),
                **mode_kwargs(name, MIXED_RATE)
            )
            assert row == baseline, name
            assert result.trials == base_result.trials, name


class TestDispatchReduction:
    def test_budgeted_point_dispatches_drop(self):
        """The headline effect: an adaptive-budget point of a cheap
        batched scenario stops paying per-batch dispatch confetti once
        the chunker knows the per-trial cost."""
        budget = lambda: WilsonWidthPolicy(  # noqa: E731
            ci_width=0.1, min_trials=32, max_trials=4096
        )
        static_row, static = rows_for(
            MIXED_RATE, None, {"n": 16}, budget=budget(),
            workers=4, parallel=False,
        )
        seeded_row, adaptive = rows_for(
            MIXED_RATE, None, {"n": 16}, budget=budget(),
            workers=4, parallel=False, chunker=seeded(1e-6, MIXED_RATE),
        )
        assert seeded_row == static_row
        assert adaptive.trials == static.trials
        # Static: ~16 chunks per doubling batch. Seeded adaptive: one
        # chunk per batch (microsecond trials never split). The exact
        # ratio depends on how many batches the stop rule needs, but an
        # integer multiple survives any in-run EWMA drift.
        assert adaptive.dispatches * 4 <= static.dispatches
        assert adaptive.dispatches >= 1

    def test_fixed_point_probe_then_one_chunk(self):
        """A large fixed point of an unseen scenario: one calibration
        chunk, then the evidence-sized remainder — not 17 static
        chunks."""
        trials = 3 * CALIBRATION_TRIALS
        static_row, static = rows_for(
            BATCHED, trials, {"n": 16, "target": 5},
            workers=4, parallel=False,
        )
        adaptive_row, adaptive = rows_for(
            BATCHED, trials, {"n": 16, "target": 5},
            workers=4, parallel=False, chunker=AdaptiveChunker(),
        )
        assert adaptive_row == static_row
        assert static.dispatches == 16  # 48-trial chunks (count // 16)
        # probe + a handful of measured chunks, whatever this machine's
        # timers said (a gross measurement still beats the static 17).
        assert adaptive.dispatches <= 8

    def test_run_scenario_defaults_to_adaptive(self):
        result = run_scenario(
            BATCHED, trials=3 * CALIBRATION_TRIALS, base_seed=11,
            keep_outcomes=False,
        )
        # workers=1 static would be 4 chunks; the probe path does better
        # and proves the default engaged.
        assert result.dispatches <= 3


class TestThreadSafety:
    def test_concurrent_observe_and_read_paths(self):
        """The coordinator's HTTP threads and a campaign's fold loop
        share one chunker: observations, sizing reads, cost reads, and
        scenario listings race freely. Every read path must take the
        model lock — a torn read surfaces here as an exception or an
        impossible value under threading."""
        chunker = AdaptiveChunker()
        scenarios = [f"s{i}" for i in range(4)]
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(2000):
                    chunker.observe(
                        scenarios[i % 4], 100 + i % 7, 1e-4 * (1 + i % 3)
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    for name in scenarios:
                        per = chunker.per_trial_seconds(name)
                        assert per is None or per > 0
                        size = chunker.chunk_size(name, 10_000, workers=4)
                        assert size is None or size >= 1
                        probe = chunker.calibration_trials(name, 10_000)
                        assert probe >= 0
                    assert set(chunker.scenarios()) <= set(scenarios)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert set(chunker.scenarios()) == set(scenarios)
