"""Parameter-space property tests: correctness across configurations.

The protocols expose tunables the paper fixes asymptotically (``ell``,
``m``, thresholds, windows). Honest correctness must hold across the
whole legal space, not just the defaults — these sweeps pin that down.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.async_complete import async_complete_protocol
from repro.protocols.phase_async import (
    PhaseAsyncParams,
    phase_async_protocol,
)
from repro.sim.execution import run_protocol
from repro.sim.topology import complete_graph, unidirectional_ring


class TestPhaseAsyncParameterSpace:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_honest_success_for_any_ell(self, data):
        """The suffix cut only changes f's input arity, never liveness."""
        n = data.draw(st.integers(3, 14))
        ell = data.draw(st.integers(0, n))
        seed = data.draw(st.integers(0, 10**5))
        ring = unidirectional_ring(n)
        params = PhaseAsyncParams(n=n, ell=ell)
        res = run_protocol(ring, phase_async_protocol(ring, params), seed=seed)
        assert not res.failed, res.fail_reason
        assert 1 <= res.outcome <= n

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_honest_success_for_any_m(self, data):
        """The validation domain size is free (paper: 2n² for the proof)."""
        n = data.draw(st.integers(3, 10))
        m = data.draw(st.integers(2, 10**6))
        seed = data.draw(st.integers(0, 10**4))
        ring = unidirectional_ring(n)
        params = PhaseAsyncParams(n=n, m=m)
        res = run_protocol(ring, phase_async_protocol(ring, params), seed=seed)
        assert not res.failed, res.fail_reason

    def test_small_m_raises_collision_but_still_honest_safe(self):
        """m=2 gives guessable validation values — irrelevant when nobody
        deviates; the honest run still succeeds."""
        n = 8
        ring = unidirectional_ring(n)
        params = PhaseAsyncParams(n=n, m=2)
        res = run_protocol(ring, phase_async_protocol(ring, params), seed=9)
        assert not res.failed


class TestShamirThresholdSpace:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_honest_success_for_any_threshold(self, data):
        n = data.draw(st.integers(2, 9))
        threshold = data.draw(st.integers(1, n))
        seed = data.draw(st.integers(0, 10**4))
        g = complete_graph(n)
        res = run_protocol(
            g, async_complete_protocol(g, threshold=threshold), seed=seed
        )
        assert not res.failed, res.fail_reason


class TestRandomLocationWindowSpace:
    @pytest.mark.parametrize("window", [1, 2, 3, 5])
    def test_window_tradeoff_runs(self, window):
        """Any window size executes; larger C trades replay length for
        fewer false wrap detections (Thm C.1's n^(2-C) term)."""
        import random

        from repro.attacks.placement import RingPlacement
        from repro.attacks.random_location import (
            random_location_attack_protocol,
        )
        from repro.sim.execution import FAIL
        from repro.util.rng import RngRegistry

        n = 128
        ring = unidirectional_ring(n)
        pl = RingPlacement.random_locations(n, 0.25, random.Random(7))
        res = run_protocol(
            ring,
            random_location_attack_protocol(ring, pl, 5, window=window),
            rng=RngRegistry(3),
        )
        assert res.outcome in (5, FAIL)


class TestCubicIntermediateSizes:
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_cubic_forces_at_any_feasible_n(self, data):
        from repro.attacks import RingPlacement, cubic_attack_protocol

        k = data.draw(st.integers(3, 7))
        n_max = k + (k - 1) * k * (k + 1) // 2
        n = data.draw(st.integers(2 * k + 2, n_max))
        target = data.draw(st.integers(1, n))
        ring = unidirectional_ring(n)
        pl = RingPlacement.cubic(n, k)
        res = run_protocol(
            ring, cubic_attack_protocol(ring, pl, target), seed=n
        )
        assert res.outcome == target, res.fail_reason
