"""Unit tests for repro.sim.topology."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.topology import (
    Topology,
    bidirectional_ring,
    complete_graph,
    line_graph,
    star_graph,
    unidirectional_ring,
)
from repro.util.errors import ConfigurationError


class TestTopologyBasics:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Topology([], [])

    def test_rejects_duplicate_nodes(self):
        with pytest.raises(ConfigurationError):
            Topology([1, 1], [])

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            Topology([1, 2], [(1, 1)])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(ConfigurationError):
            Topology([1, 2], [(1, 3)])

    def test_duplicate_edges_collapse(self):
        topo = Topology([1, 2], [(1, 2), (1, 2)])
        assert topo.edges == [(1, 2)]

    def test_successors_predecessors(self):
        topo = Topology([1, 2, 3], [(1, 2), (2, 3)])
        assert topo.successors(1) == [2]
        assert topo.predecessors(3) == [2]
        assert topo.predecessors(1) == []

    def test_has_edge(self):
        topo = Topology([1, 2], [(1, 2)])
        assert topo.has_edge(1, 2)
        assert not topo.has_edge(2, 1)

    def test_len(self):
        assert len(Topology([1, 2, 3], [])) == 3


class TestRing:
    @given(st.integers(2, 50))
    def test_unidirectional_ring_structure(self, n):
        ring = unidirectional_ring(n)
        assert len(ring) == n
        for pid in ring.nodes:
            assert len(ring.successors(pid)) == 1
            assert len(ring.predecessors(pid)) == 1
        assert ring.successors(n) == [1]

    def test_ring_too_small(self):
        with pytest.raises(ConfigurationError):
            unidirectional_ring(1)

    @given(st.integers(2, 30))
    def test_ring_strongly_connected(self, n):
        assert unidirectional_ring(n).is_strongly_connected()

    @given(st.integers(2, 30))
    def test_bidirectional_ring_degree(self, n):
        ring = bidirectional_ring(n)
        for pid in ring.nodes:
            expected = 2 if n > 2 else 1
            assert len(set(ring.successors(pid))) == expected


class TestOtherTopologies:
    def test_line_is_not_strongly_connected_when_directed_only(self):
        line = line_graph(4)
        # line is bidirectional; strongly connected
        assert line.is_strongly_connected()

    def test_line_single_node(self):
        assert len(line_graph(1)) == 1

    @given(st.integers(2, 12))
    def test_complete_graph_edges(self, n):
        g = complete_graph(n)
        assert len(g.edges) == n * (n - 1)

    @given(st.integers(2, 12))
    def test_star_hub_degree(self, n):
        g = star_graph(n)
        assert len(g.successors(1)) == n - 1
        for pid in range(2, n + 1):
            assert g.successors(pid) == [1]

    def test_undirected_edges_erase_direction(self):
        g = bidirectional_ring(4)
        assert len(g.undirected_edges()) == 4
