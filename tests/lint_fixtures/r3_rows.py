"""R3 fixture: row-integrity violations the linter must pin.

Parsed by the linter, never imported — undefined names are fine.
Line numbers are pinned in expected.json; append, don't reorder.
"""


def dump_rows_directly(rows, path):
    with open(path, "w") as handle:  # line 9: R301
        json.dump(rows, handle)  # line 10: R301


def read_rows_back(path):
    with open(path) as handle:  # no finding: default read mode
        return handle.read()
    with open(path, mode="rb") as handle:  # no finding: read mode
        return handle.read()


def run_fixture_trial(params, registry, max_steps):
    return params["target"], 0  # registry unused -> R302 at the def (line 20)


def run_fixture_batch(seeds, params, max_steps):
    return {"win": 1}  # seeds unused -> R302 at the def (line 24)


def run_honest_trial(params, registry, max_steps):
    return registry.stream("scenario").random() < params["p"], 1


# repro-lint: allow[R302] fixture: pragma on the line above suppresses
def run_audited_trial(params, registry, max_steps):
    return params["target"], 0


SPECS = [
    ScenarioSpec(name="fixture", run_trial=run_fixture_trial,
                 run_batch=run_fixture_batch),
    ScenarioSpec(name="honest", run_trial=run_honest_trial),
    ScenarioSpec(name="audited", run_trial=run_audited_trial),
]
