"""R1 fixture: determinism violations the linter must pin.

Parsed by the linter, never imported — undefined names are fine.
Line numbers are pinned in expected.json; append, don't reorder.
"""


def wall_clock_stamp(row):
    row["elapsed"] = time.time()  # line 9: R101
    row["when"] = datetime.datetime.now()  # line 10: R101
    return row


def global_randomness(n):
    draw = random.random()  # line 15: R102
    state = np.random.RandomState()  # line 16: R102 (un-seeded)
    noise = np.random.normal(0.0, 1.0)  # line 17: R102 (global generator)
    token = os.urandom(8)  # line 18: R103
    return draw, state, noise, token


def seeded_randomness_is_fine(seed):
    rng = random.Random(seed)  # no finding: instance, not module-level
    state = np.random.RandomState(seed)  # no finding: seeded
    return rng.random() + state.normal()


def set_iteration(mapping):
    total = 0
    for key in {"b", "a", "c"}:  # line 30: R104
        total += mapping[key]
    order = [v for v in set(mapping.values())]  # line 32: R104
    fold = sorted(set(mapping))  # no finding: sorted() normalises order
    peak = max(v for v in set(mapping.values()))  # no finding: reducer
    return total, order, fold, peak


def audited_scheduling_metadata(row):
    # repro-lint: allow[R101] fixture: pragma on the line above suppresses
    row["scheduled_at"] = time.time()
    row["noted_at"] = time.time()  # repro-lint: allow[R101] fixture: trailing pragma suppresses
    return row


def bad_pragma(row):
    row["t"] = time.time()  # repro-lint: allow[R101]
    # line 46 above: R002 (no reason) and R101 (pragma void, not honoured)
    return row
