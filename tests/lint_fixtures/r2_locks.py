"""R2 fixture: lock-discipline violations the linter must pin.

Parsed by the linter, never imported — undefined names are fine.
Line numbers are pinned in expected.json; append, don't reorder.
"""

import threading


class Guarded:
    _GUARDED_BY = {"_items": "_lock", "_total": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # no finding: __init__ is exempt
        self._total = 0

    def racy_read(self):
        return len(self._items)  # line 19: R201

    def racy_write(self, item):
        self._items.append(item)  # line 22: R201
        with self._lock:
            self._total += 1  # no finding: lock held

    def guarded_ok(self, item):
        with self._lock:
            self._items.append(item)
            return self._total

    def _drain_locked(self):
        return self._items.pop()  # no finding: *_locked convention

    def closure_escapes_lock(self):
        with self._lock:
            def later():
                return self._items[:]  # line 37: R201 (runs after release)
            return later

    def audited(self):
        return self._total  # repro-lint: allow[R201] fixture: trailing pragma suppresses


class Derived(Guarded):
    def inherited_racy(self):
        return list(self._items)  # line 46: R201 (map inherited)


class Broken:
    _GUARDED_BY = ["_value"]  # line 50: R202 (not a {str: str} literal)

    def touch(self):
        return self._value  # no finding: malformed map guards nothing
