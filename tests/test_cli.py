"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--protocol", "alead-uni"])
        assert args.n == 16 and args.seed == 0


class TestCommands:
    def test_run_success(self, capsys):
        rc = main(["run", "--protocol", "alead-uni", "--n", "8", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "outcome" in out

    def test_run_all_protocols(self):
        for name in ("basic-lead", "alead-uni", "phase-async", "async-complete"):
            assert main(["run", "--protocol", name, "--n", "6"]) == 0

    def test_attack_basic_cheat(self, capsys):
        rc = main(
            ["attack", "--name", "basic-cheat", "--n", "8", "--target", "3"]
        )
        assert rc == 0
        assert "FORCED" in capsys.readouterr().out

    def test_attack_rushing(self):
        assert main(
            ["attack", "--name", "rushing", "--n", "25", "--target", "5"]
        ) == 0

    def test_attack_cubic(self):
        assert main(
            ["attack", "--name", "cubic", "--n", "34", "--k", "4",
             "--target", "9"]
        ) == 0

    def test_attack_partial_sum(self):
        assert main(
            ["attack", "--name", "partial-sum", "--n", "28", "--target", "2"]
        ) == 0

    def test_attack_phase_rushing(self):
        assert main(
            ["attack", "--name", "phase-rushing", "--n", "36", "--target", "4"]
        ) == 0

    def test_attack_shamir_pool(self):
        assert main(
            ["attack", "--name", "shamir-pool", "--n", "8", "--target", "6"]
        ) == 0

    def test_bias(self, capsys):
        rc = main(
            ["bias", "--protocol", "basic-lead", "--n", "6", "--trials", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "epsilon" in out

    def test_certificate(self, capsys):
        rc = main(["certificate", "--graph", "complete", "--n", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Theorem 7.2" in out

    def test_frontier(self, capsys):
        rc = main(["frontier", "--sizes", "36"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "smallest forcing" in out

    def test_fuzz(self, capsys):
        rc = main(["fuzz", "--n", "12", "--k", "2", "--samples", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "punished" in out
