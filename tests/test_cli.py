"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--protocol", "alead-uni"])
        assert args.n == 16 and args.seed == 0


class TestCommands:
    def test_run_success(self, capsys):
        rc = main(["run", "--protocol", "alead-uni", "--n", "8", "--seed", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "outcome" in out

    def test_run_all_protocols(self):
        for name in ("basic-lead", "alead-uni", "phase-async", "async-complete"):
            assert main(["run", "--protocol", name, "--n", "6"]) == 0

    def test_attack_basic_cheat(self, capsys):
        rc = main(
            ["attack", "--name", "basic-cheat", "--n", "8", "--target", "3"]
        )
        assert rc == 0
        assert "FORCED" in capsys.readouterr().out

    def test_attack_rushing(self):
        assert main(
            ["attack", "--name", "rushing", "--n", "25", "--target", "5"]
        ) == 0

    def test_attack_cubic(self):
        assert main(
            ["attack", "--name", "cubic", "--n", "34", "--k", "4",
             "--target", "9"]
        ) == 0

    def test_attack_partial_sum(self):
        assert main(
            ["attack", "--name", "partial-sum", "--n", "28", "--target", "2"]
        ) == 0

    def test_attack_phase_rushing(self):
        assert main(
            ["attack", "--name", "phase-rushing", "--n", "36", "--target", "4"]
        ) == 0

    def test_attack_shamir_pool(self):
        assert main(
            ["attack", "--name", "shamir-pool", "--n", "8", "--target", "6"]
        ) == 0

    def test_bias(self, capsys):
        rc = main(
            ["bias", "--protocol", "basic-lead", "--n", "6", "--trials", "60"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "epsilon" in out

    def test_certificate(self, capsys):
        rc = main(["certificate", "--graph", "complete", "--n", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Theorem 7.2" in out

    def test_frontier(self, capsys):
        rc = main(["frontier", "--sizes", "36"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "smallest forcing" in out

    def test_fuzz(self, capsys):
        rc = main(["fuzz", "--n", "12", "--k", "2", "--samples", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "punished" in out


class TestMaxStepsAndExitCodes:
    def test_run_max_steps_fails_nonzero(self, capsys):
        rc = main(
            ["run", "--protocol", "alead-uni", "--n", "8", "--max-steps", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "budget" in out

    def test_attack_max_steps_fails_nonzero(self, capsys):
        rc = main(
            ["attack", "--name", "basic-cheat", "--n", "8", "--target", "3",
             "--max-steps", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "not forced" in out

    def test_attack_random_location(self):
        assert main(
            ["attack", "--name", "random-location", "--n", "256",
             "--target", "9", "--seed", "2"]
        ) == 0

    def test_bias_all_fail_exits_nonzero(self, capsys):
        rc = main(
            ["bias", "--protocol", "alead-uni", "--n", "8", "--trials", "5",
             "--max-steps", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "fail rate: 1.0000" in out


class TestSweep:
    def test_sweep_list(self, capsys):
        rc = main(["sweep", "--list"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "attack/cubic" in out
        assert "honest/alead-uni" in out

    def test_sweep_requires_scenario(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--trials", "5"])

    def test_sweep_rows_identical_across_worker_counts(self, capsys):
        import json

        def run_rows(workers):
            rc = main(
                ["sweep", "--scenario", "attack/basic-cheat",
                 "--trials", "10", "--workers", str(workers),
                 "--param", "n=8,12", "--param", "target=2"]
            )
            assert rc == 0
            return [
                json.loads(line)
                for line in capsys.readouterr().out.splitlines()
                if line.startswith("{")
            ]

        rows_serial = run_rows(1)
        rows_parallel = run_rows(4)
        assert rows_serial == rows_parallel
        assert len(rows_serial) == 2
        assert all(row["success_rate"] == 1.0 for row in rows_serial)

    def test_sweep_out_file(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "rows.jsonl"
        rc = main(
            ["sweep", "--scenario", "honest/basic-lead", "--trials", "6",
             "--param", "n=6", "--out", str(out_file)]
        )
        capsys.readouterr()
        assert rc == 0
        rows = [json.loads(l) for l in out_file.read_text().splitlines()]
        assert rows[0]["trials"] == 6
        assert sum(rows[0]["outcomes"].values()) == 6

    def test_sweep_bad_param_syntax(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "honest/basic-lead", "--param", "n"])

    def test_sweep_typo_does_not_truncate_out_file(self, tmp_path, capsys):
        """A failed invocation must leave a previous --out file intact."""
        out_file = tmp_path / "rows.jsonl"
        out_file.write_text('{"precious": "results"}\n')
        with pytest.raises(SystemExit):  # unknown scenario
            main(["sweep", "--scenario", "attack/cubik", "--trials", "2",
                  "--out", str(out_file)])
        with pytest.raises(SystemExit):  # unknown parameter key
            main(["sweep", "--scenario", "attack/cubic", "--trials", "2",
                  "--param", "kk=4", "--out", str(out_file)])
        with pytest.raises(SystemExit):  # valid keys, infeasible values
            main(["sweep", "--scenario", "attack/equal-spacing",
                  "--trials", "2", "--param", "n=8", "--param", "k=7",
                  "--out", str(out_file)])
        capsys.readouterr()
        assert out_file.read_text() == '{"precious": "results"}\n'
        assert not (tmp_path / "rows.jsonl.tmp").exists()

    def test_attack_rejects_k_when_unsupported(self, capsys):
        with pytest.raises(SystemExit):
            main(["attack", "--name", "random-location", "--n", "256",
                  "--k", "5"])
        with pytest.raises(SystemExit):
            main(["attack", "--name", "basic-cheat", "--n", "8", "--k", "2"])

    def test_sweep_runs_non_executor_scenarios(self, capsys):
        """The registry expansion: sweep reaches sync/tree/cointoss/
        fullinfo subsystems, not only the ring protocols."""
        import json

        for scenario in (
            "sync/broadcast", "tree/xor-coin", "cointoss/fle-coin",
            "fullinfo/baton",
        ):
            rc = main(["sweep", "--scenario", scenario, "--trials", "3"])
            rows = [
                json.loads(line)
                for line in capsys.readouterr().out.splitlines()
                if line.startswith("{")
            ]
            assert rc == 0
            assert rows[0]["scenario"] == scenario
            assert rows[0]["trials"] == 3


class TestSweepResume:
    def _sweep(self, out_file, params, resume=False):
        argv = ["sweep", "--scenario", "attack/basic-cheat", "--trials", "4",
                "--out", str(out_file)]
        for p in params:
            argv += ["--param", p]
        if resume:
            argv.append("--resume")
        return main(argv)

    def test_resume_appends_only_missing_grid_points(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "rows.jsonl"
        assert self._sweep(out_file, ["n=8,12", "target=2"]) == 0
        capsys.readouterr()
        first = [json.loads(l) for l in out_file.read_text().splitlines()]
        assert len(first) == 2

        # Re-run with a larger grid: the two existing points are skipped,
        # their rows preserved verbatim, and only n=16 is appended.
        assert self._sweep(out_file, ["n=8,12,16", "target=2"], resume=True) == 0
        err = capsys.readouterr().err
        assert "ran 1 of 3 grid points" in err
        rows = [json.loads(l) for l in out_file.read_text().splitlines()]
        assert rows[:2] == first
        assert len(rows) == 3
        assert rows[2]["params"]["n"] == 16

    def test_resume_with_complete_file_is_a_no_op(self, tmp_path, capsys):
        out_file = tmp_path / "rows.jsonl"
        assert self._sweep(out_file, ["n=8"]) == 0
        before = out_file.read_text()
        capsys.readouterr()
        assert self._sweep(out_file, ["n=8"], resume=True) == 0
        assert "ran 0 of 1 grid points" in capsys.readouterr().err
        assert out_file.read_text() == before

    def test_resume_without_out_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "attack/basic-cheat",
                  "--trials", "2", "--resume"])

    def test_resume_with_missing_out_file_runs_everything(self, tmp_path, capsys):
        out_file = tmp_path / "fresh.jsonl"
        assert self._sweep(out_file, ["n=8"], resume=True) == 0
        capsys.readouterr()
        assert out_file.exists()

    def test_resume_salvages_rows_from_an_interrupted_run(self, tmp_path, capsys):
        """A hard interrupt leaves finished rows in the .tmp staging file
        (--out is only replaced on full success). --resume must count
        those rows as done and carry them into the final file instead of
        re-running them and truncating the staging file."""
        import json

        out_file = tmp_path / "rows.jsonl"
        # Simulate the interrupt: a full run whose output we move to .tmp.
        assert self._sweep(out_file, ["n=8", "target=2"]) == 0
        capsys.readouterr()
        interrupted = out_file.read_text()
        out_file.rename(tmp_path / "rows.jsonl.tmp")
        # Torn final write from the crash must be ignored, not trusted.
        with open(tmp_path / "rows.jsonl.tmp", "a") as f:
            f.write('{"scenario": "attack/basic-cheat", "par')

        assert self._sweep(out_file, ["n=8,12", "target=2"], resume=True) == 0
        assert "ran 1 of 2 grid points" in capsys.readouterr().err
        rows = [json.loads(l) for l in out_file.read_text().splitlines()]
        assert [r["params"]["n"] for r in rows] == [8, 12]
        assert json.dumps(rows[0], sort_keys=True) + "\n" == interrupted

    def test_resume_repairs_missing_trailing_newline(self, tmp_path, capsys):
        """A previous file whose last line lacks '\\n' (external tools,
        truncating editors) must not get a new row concatenated onto it."""
        import json

        out_file = tmp_path / "rows.jsonl"
        assert self._sweep(out_file, ["n=8"]) == 0
        capsys.readouterr()
        out_file.write_text(out_file.read_text().rstrip("\n"))
        assert self._sweep(out_file, ["n=8,12"], resume=True) == 0
        capsys.readouterr()
        rows = [json.loads(l) for l in out_file.read_text().splitlines()]
        assert [r["params"]["n"] for r in rows] == [8, 12]

    def test_resume_ignores_rows_from_other_scenarios(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "rows.jsonl"
        rc = main(["sweep", "--scenario", "honest/basic-lead", "--trials", "4",
                   "--param", "n=8", "--out", str(out_file)])
        assert rc == 0
        capsys.readouterr()
        assert self._sweep(out_file, ["n=8"], resume=True) == 0
        assert "ran 1 of 1" in capsys.readouterr().err
        rows = [json.loads(l) for l in out_file.read_text().splitlines()]
        assert [r["scenario"] for r in rows] == [
            "honest/basic-lead", "attack/basic-cheat"
        ]


class TestScenariosCommand:
    def test_lists_every_registered_scenario(self, capsys):
        from repro.experiments import scenario_names

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_tag_filter(self, capsys):
        assert main(["scenarios", "--tag", "sync"]) == 0
        out = capsys.readouterr().out
        assert "sync/broadcast" in out
        assert "honest/alead-uni" not in out

    def test_markdown_table(self, capsys):
        assert main(["scenarios", "--markdown"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("| Scenario |")
        assert any(line.startswith("| `sync/ring` |") for line in out)
