"""Tests for the Appendix G/H compositions: indexing and wake-up phases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.distribution import (
    OutcomeDistribution,
    chi_square_uniformity,
)
from repro.attacks.placement import RingPlacement
from repro.protocols.indexing import indexed_phase_async_protocol
from repro.protocols.phase_async import PhaseAsyncParams
from repro.protocols.wakeup import WakeupALeadStrategy, wakeup_alead_protocol
from repro.sim.execution import run_protocol
from repro.sim.topology import Topology, complete_graph, unidirectional_ring
from repro.util.errors import ConfigurationError


def _named_ring(names):
    edges = [(names[i], names[(i + 1) % len(names)]) for i in range(len(names))]
    return Topology(names, edges)


class TestIndexingPhase:
    def test_runs_on_arbitrary_ids(self):
        ring = _named_ring(["a", "b", "c", "d", "e"])
        res = run_protocol(
            ring, indexed_phase_async_protocol(ring, origin="a"), seed=1
        )
        assert not res.failed, res.fail_reason
        assert 1 <= res.outcome <= 5

    def test_matches_plain_protocol_on_integer_ring(self):
        """With ids already 1..n and origin 1, indexing changes nothing
        about the outcome distribution."""
        n = 6
        ring = unidirectional_ring(n)
        for seed in range(5):
            res = run_protocol(
                ring, indexed_phase_async_protocol(ring, origin=1), seed=seed
            )
            assert not res.failed
            assert 1 <= res.outcome <= n

    def test_origin_choice_free(self):
        ring = _named_ring(["w", "x", "y", "z"])
        for origin in ("w", "y"):
            res = run_protocol(
                ring, indexed_phase_async_protocol(ring, origin=origin), seed=3
            )
            assert not res.failed, res.fail_reason

    @given(n=st.integers(2, 12), seed=st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_property_success(self, n, seed):
        ring = unidirectional_ring(n)
        res = run_protocol(
            ring, indexed_phase_async_protocol(ring, origin=1), seed=seed
        )
        assert not res.failed

    def test_rejects_unknown_origin(self):
        ring = unidirectional_ring(4)
        with pytest.raises(ConfigurationError):
            indexed_phase_async_protocol(ring, origin=9)

    def test_rejects_non_ring(self):
        g = complete_graph(4)
        with pytest.raises(ConfigurationError):
            indexed_phase_async_protocol(g, origin=1)

    def test_rejects_mismatched_params(self):
        ring = unidirectional_ring(4)
        with pytest.raises(ConfigurationError):
            indexed_phase_async_protocol(
                ring, origin=1, params=PhaseAsyncParams(n=5)
            )


class TestWakeupPhase:
    def test_runs_on_scrambled_ids(self):
        ring = _named_ring([42, 7, 99, 13, 55])
        res = run_protocol(ring, wakeup_alead_protocol(ring), seed=1)
        assert not res.failed, res.fail_reason
        assert 1 <= res.outcome <= 5

    @given(n=st.integers(2, 12), seed=st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_property_success(self, n, seed):
        ring = unidirectional_ring(n)
        res = run_protocol(ring, wakeup_alead_protocol(ring), seed=seed)
        assert not res.failed

    def test_uniform_outcomes(self):
        from collections import Counter

        n = 5
        ring = unidirectional_ring(n)
        counts = Counter(
            run_protocol(ring, wakeup_alead_protocol(ring), seed=s).outcome
            for s in range(300)
        )
        dist = OutcomeDistribution(n=n, trials=300, counts=counts)
        assert dist.fail_count == 0
        assert chi_square_uniformity(dist) > 1e-4

    def test_rejects_non_ring(self):
        g = complete_graph(4)
        with pytest.raises(ConfigurationError):
            wakeup_alead_protocol(g)

    def test_attack_survives_wakeup(self):
        """Appendix H: adversaries honest during wake-up still break the
        main phase — the rushing attack composed behind wake-up."""
        import math

        n = 25
        k = math.isqrt(n)
        ring = unidirectional_ring(n)
        placement = RingPlacement.equal_spacing(n, k)
        target = 13

        from repro.attacks.equal_spacing import RushingAdversary

        class WakeupRushingAdversary(WakeupALeadStrategy):
            """Honest wake-up, then the Lemma 4.1 deviation."""

            def __init__(self, pid, segment_length):
                super().__init__(pid)
                self.segment_length = segment_length

            def _finish_wakeup(self, ctx):
                self.inner = RushingAdversary(
                    len(self.seen_ids), k, self.segment_length, target
                )
                self.inner.on_wakeup(ctx)

        protocol = {pid: WakeupALeadStrategy(pid) for pid in ring.nodes}
        for j, pid in enumerate(placement.positions):
            protocol[pid] = WakeupRushingAdversary(
                pid, placement.distances()[j]
            )
        res = run_protocol(ring, protocol, seed=4)
        assert res.outcome == target, res.fail_reason
