"""Property tests for grid expansion and the sweep resume machinery."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import (
    WilsonWidthPolicy,
    canonical_params,
    classify_row_line,
    expand_grid,
    load_completed_keys,
    resume_key,
    row_resume_key,
    run_scenario,
    sweep_scenario,
)
from repro.util.errors import ConfigurationError

# Hypothesis building blocks: JSON-ish scalar values and identifier keys.
scalars = st.one_of(
    st.integers(-100, 100),
    st.booleans(),
    st.none(),
    st.text("abcxyz", min_size=0, max_size=4),
)
keys = st.text("abcdefgh", min_size=1, max_size=6)


class TestExpandGrid:
    def test_empty_and_none_yield_the_defaults_point(self):
        assert expand_grid(None) == [{}]
        assert expand_grid({}) == [{}]

    @given(grid=st.dictionaries(keys, st.lists(scalars, min_size=1, max_size=4), max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_point_count_is_product_of_axis_lengths(self, grid):
        expected = 1
        for values in grid.values():
            expected *= len(values)
        points = expand_grid(grid)
        assert len(points) == expected
        assert all(set(p) == set(grid) for p in points)

    @given(
        values=st.lists(st.integers(-50, 50), min_size=1, max_size=5),
        pinned=scalars,
    )
    @settings(max_examples=40, deadline=None)
    def test_scalar_axis_equals_singleton_list_axis(self, values, pinned):
        as_scalar = expand_grid({"a": values, "b": pinned})
        as_list = expand_grid({"a": values, "b": [pinned]})
        assert as_scalar == as_list

    def test_axis_order_controls_row_order(self):
        fast_inner = expand_grid({"a": [1, 2], "b": [10, 20]})
        assert fast_inner == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        ]
        fast_outer = expand_grid({"b": [10, 20], "a": [1, 2]})
        # Same set of points, different enumeration order.
        canonical = lambda points: [json.dumps(p, sort_keys=True) for p in points]
        assert canonical(fast_outer) != canonical(fast_inner)
        assert sorted(canonical(fast_outer)) == sorted(canonical(fast_inner))


class TestResumeKey:
    @given(params=st.dictionaries(keys, scalars, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_param_insertion_order_is_irrelevant(self, params):
        forward = dict(sorted(params.items()))
        backward = dict(sorted(params.items(), reverse=True))
        assert resume_key("s", forward, 10, 0) == resume_key("s", backward, 10, 0)

    @given(params=st.dictionaries(keys, scalars, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_key_is_json_and_roundtrips_the_identity(self, params):
        key = resume_key("attack/x", params, 7, 3)
        identity = json.loads(key)
        assert identity["scenario"] == "attack/x"
        assert identity["trials"] == 7
        assert identity["base_seed"] == 3
        assert identity["params"] == {
            k: params[k] for k in sorted(params)
        }

    def test_any_identity_field_change_changes_the_key(self):
        base = resume_key("a", {"n": 8}, 10, 0)
        assert resume_key("b", {"n": 8}, 10, 0) != base
        assert resume_key("a", {"n": 9}, 10, 0) != base
        assert resume_key("a", {"n": 8}, 11, 0) != base
        assert resume_key("a", {"n": 8}, 10, 1) != base
        # max_steps changes trial outcomes, so it is part of the identity:
        # rows run under a different delivery budget must not be skipped.
        assert resume_key("a", {"n": 8}, 10, 0, max_steps=5) != base

    def test_rows_written_before_max_steps_field_count_as_default_budget(self):
        legacy_row = {
            "scenario": "a", "params": {"n": 8}, "trials": 10, "base_seed": 0,
        }
        assert row_resume_key(legacy_row) == resume_key("a", {"n": 8}, 10, 0)

    def test_row_key_matches_grid_point_key(self):
        """The key of a written row equals the key of its grid point —
        the exact equation --resume relies on."""
        result = run_scenario(
            "attack/basic-cheat", trials=3, base_seed=5, params={"n": 8}
        )
        assert row_resume_key(result.to_row()) == resume_key(
            "attack/basic-cheat", result.params, 3, 5
        )

    def test_fixed_budget_key_format_is_frozen(self):
        """Fixed-budget keys must stay byte-identical to the pre-budget
        format, or every existing --out file stops resuming."""
        assert resume_key("a", {"n": 8}, 10, 0) == json.dumps(
            {
                "scenario": "a",
                "params": {"n": 8},
                "trials": 10,
                "base_seed": 0,
                "max_steps": None,
            },
            sort_keys=True,
        )

    def test_budget_policy_is_part_of_the_identity(self):
        """Fixed and adaptive requests — and different policies — must
        never satisfy each other's resume lookups."""
        from repro.experiments import WilsonWidthPolicy

        fixed = resume_key("a", {"n": 8}, 10, 0)
        loose = WilsonWidthPolicy(ci_width=0.2, min_trials=4, max_trials=10)
        tight = WilsonWidthPolicy(ci_width=0.1, min_trials=4, max_trials=10)
        assert resume_key("a", {"n": 8}, None, 0, budget=loose) != fixed
        assert resume_key("a", {"n": 8}, None, 0, budget=loose) != resume_key(
            "a", {"n": 8}, None, 0, budget=tight
        )

    def test_adaptive_row_keys_back_to_its_policy_not_realized_trials(self):
        """An adaptive row records the realized trial count, but its key
        is the *request* identity: (scenario, params, policy, seed)."""
        from repro.experiments import WilsonWidthPolicy

        policy = WilsonWidthPolicy(ci_width=0.2, min_trials=8, max_trials=64)
        row = run_scenario(
            "attack/basic-cheat",
            base_seed=5,
            params={"n": 8},
            budget=policy,
            keep_outcomes=False,
        ).to_row()
        assert row["trials"] < 64  # converged early: realized != ceiling
        assert row_resume_key(row) == resume_key(
            "attack/basic-cheat", row["params"], None, 5, budget=policy
        )
        # And the policy round-trips through the row's JSON form.
        assert row_resume_key(json.loads(json.dumps(row))) == row_resume_key(row)


class TestBudgetPolicyKeyProperties:
    """Seeded-random property tests over the budget-policy registry:
    policy identity must be collision-free across the whole parameter
    space, not just at hand-picked examples."""

    def _policy_triple(self, rng):
        """Three different policies sharing one random numeric profile —
        the adversarial case for key separation, since the criterion
        value and all bounds coincide."""
        from repro.experiments import (
            FailRateTargetPolicy,
            RelativePrecisionPolicy,
            WilsonWidthPolicy,
        )

        min_trials = rng.randint(1, 64)
        shared = {
            "min_trials": min_trials,
            "max_trials": min_trials + rng.randint(0, 500),
            "z": rng.choice([1.0, 1.645, 1.96, 2.576]),
        }
        x = rng.uniform(0.01, 1.0)
        return [
            WilsonWidthPolicy(ci_width=x, **shared),
            RelativePrecisionPolicy(rel_precision=x, **shared),
            FailRateTargetPolicy(target=x, **shared),
        ]

    def test_random_policy_params_never_collide_across_policies(self):
        import random

        rng = random.Random(20260729)
        for _ in range(200):
            policies = self._policy_triple(rng)
            keys = {
                resume_key("s", {"n": 8}, None, 0, budget=p) for p in policies
            }
            assert len(keys) == len(policies)
            # ...and none of them collides with the fixed-budget key of
            # any trial count, including the policies' own bounds.
            for trials in {policies[0].min_trials, policies[0].max_trials}:
                assert resume_key("s", {"n": 8}, trials, 0) not in keys

    def test_random_policies_roundtrip_their_identity_dicts(self):
        import random

        from repro.experiments import as_policy

        rng = random.Random(95)
        for _ in range(100):
            for policy in self._policy_triple(rng):
                rehydrated = as_policy(json.loads(json.dumps(policy.to_key())))
                assert rehydrated == policy
                assert resume_key(
                    "s", {}, None, 0, budget=rehydrated
                ) == resume_key("s", {}, None, 0, budget=policy)

    def test_wilson_key_format_is_frozen_without_policy_field(self):
        """The pre-registry identity dict must stay byte-identical —
        every adaptive row written before the registry resumes on it."""
        policy = WilsonWidthPolicy(ci_width=0.1, min_trials=4, max_trials=64)
        assert policy.to_key() == {
            "ci_width": 0.1,
            "min_trials": 4,
            "max_trials": 64,
            "z": 1.96,
        }

    def test_policyless_mapping_parses_as_wilson_width(self):
        from repro.experiments import BudgetPolicy

        legacy = {"ci_width": 0.1, "min_trials": 4, "max_trials": 64}
        assert BudgetPolicy.from_mapping(legacy) == WilsonWidthPolicy(
            ci_width=0.1, min_trials=4, max_trials=64
        )

    def test_unknown_policy_name_lists_known_policies(self):
        from repro.experiments import BudgetPolicy, policy_names

        with pytest.raises(ConfigurationError) as excinfo:
            BudgetPolicy.from_mapping(
                {"policy": "no-such", "min_trials": 1, "max_trials": 2}
            )
        message = str(excinfo.value)
        for name in policy_names():
            assert name in message

    def test_base_class_construction_fails_eagerly_with_guidance(self):
        """The pre-registry class took WilsonWidthPolicy's arguments; a
        direct BudgetPolicy(...) — legacy or bare — must point at the
        concrete policies instead of building a hollow instance that
        only crashes deep inside a run."""
        from repro.experiments import BudgetPolicy

        for call in (
            lambda: BudgetPolicy(),
            lambda: BudgetPolicy(ci_width=0.1, min_trials=8, max_trials=100),
        ):
            with pytest.raises(ConfigurationError) as excinfo:
                call()
            assert "WilsonWidthPolicy" in str(excinfo.value)

    def test_non_string_policy_values_fail_eagerly_not_with_typeerror(self):
        """A foreign 'policy' value — even an unhashable one — must raise
        the same eager ConfigurationError as every other malformed
        budget, so resume loaders skip such rows instead of crashing."""
        from repro.experiments import BudgetPolicy
        from repro.experiments.sweep import load_completed_keys

        for bad in (["wilson-width"], {"name": "x"}, 7, None):
            with pytest.raises(ConfigurationError):
                BudgetPolicy.from_mapping(
                    {"policy": bad, "min_trials": 1, "max_trials": 2}
                )
        corrupt_row = json.dumps({
            "scenario": "a", "params": {}, "trials": 4, "base_seed": 0,
            "budget": {"policy": ["wilson-width"], "ci_width": 0.1,
                       "min_trials": 2, "max_trials": 4},
        })
        assert load_completed_keys([corrupt_row]) == set()


class TestNumericAliasing:
    """``n=1`` and ``n=1.0`` are equal values and identical experiments;
    their resume keys must collide (the re-run-done-points regression)."""

    def test_integral_floats_alias_to_ints(self):
        assert resume_key("a", {"n": 1.0}, 10, 0) == resume_key(
            "a", {"n": 1}, 10, 0
        )
        # ...and to the exact pre-fix byte format of the int spelling,
        # so no existing golden key moves.
        assert '"n": 1' in resume_key("a", {"n": 1.0}, 10, 0)

    def test_non_integral_floats_are_untouched(self):
        key = json.loads(resume_key("a", {"p": 0.5}, 10, 0))
        assert key["params"] == {"p": 0.5}
        assert resume_key("a", {"p": 0.5}, 10, 0) != resume_key(
            "a", {"p": 0}, 10, 0
        )

    def test_bools_are_not_folded(self):
        """bool is an int subclass but never a float: flags keep their
        pre-fix identity, distinct from 0/1."""
        assert resume_key("a", {"f": True}, 10, 0) != resume_key(
            "a", {"f": 1}, 10, 0
        )
        key = json.loads(resume_key("a", {"f": True}, 10, 0))
        assert key["params"] == {"f": True}

    def test_nested_containers_canonicalise_recursively(self):
        assert resume_key("a", {"v": [1.0, 2.5]}, 10, 0) == resume_key(
            "a", {"v": [1, 2.5]}, 10, 0
        )
        assert resume_key("a", {"v": {"m": 4.0}}, 10, 0) == resume_key(
            "a", {"v": {"m": 4}}, 10, 0
        )

    def test_row_side_and_request_side_agree(self):
        """A row whose params were written as floats must satisfy the
        int-spelled request — both sides canonicalise through one
        function."""
        row = {
            "scenario": "a", "params": {"n": 16.0}, "trials": 10,
            "base_seed": 0,
        }
        assert row_resume_key(row) == resume_key("a", {"n": 16}, 10, 0)

    def test_canonical_params_is_sorted_and_folded(self):
        assert canonical_params({"b": 2.0, "a": 1}) == {"a": 1, "b": 2}
        assert list(canonical_params({"b": 2.0, "a": 1})) == ["a", "b"]

    def test_budget_identity_floats_are_not_folded(self):
        """Policy identity dicts keep their float spellings (z=1.96,
        ci_width) — folding them would move every frozen adaptive key.
        The wilson frozen-format test pins the exact dict; here we pin
        that an integral float criterion stays a float in the key."""
        policy = WilsonWidthPolicy(ci_width=1.0, min_trials=4, max_trials=8)
        key = json.loads(resume_key("a", {}, None, 0, budget=policy))
        assert key["budget"]["ci_width"] == pytest.approx(1.0)
        assert '"ci_width": 1.0' in resume_key("a", {}, None, 0, budget=policy)


class TestClassifyRowLine:
    """The single-parse classifier behind every tolerant line loader."""

    def _good_row(self):
        return run_scenario(
            "honest/basic-lead", trials=2, params={"n": 6}
        ).to_row()

    def test_reason_labels_are_pinned(self):
        good = self._good_row()
        timed = dict(good, timed_out=True)
        cases = [
            (json.dumps(good, sort_keys=True), None),
            (json.dumps(timed, sort_keys=True), "timed-out"),
            ("not json {", "malformed"),
            (json.dumps({"unrelated": 1}), "malformed"),
            ("[1, 2, 3]", "malformed"),
            # Parsed fine, but identity fields are broken: that is
            # damage, not a deadline — it must label "malformed" even
            # though row_resume_key raised after a successful parse.
            (json.dumps(dict(good, budget=[1])), "malformed"),
            (json.dumps({k: v for k, v in good.items() if k != "trials"}),
             "malformed"),
        ]
        for line, expected in cases:
            row, key, reason = classify_row_line(line)
            assert reason == expected, line
            if expected is None:
                assert key == row_resume_key(good)
                assert row == good
            else:
                assert key is None

    def test_timed_out_false_with_corrupt_budget_is_malformed(self):
        """Only a *truthy* timed_out earns the timed-out label; a row
        that merely failed identity reconstruction is damage."""
        good = self._good_row()
        row = dict(
            good,
            timed_out=False,
            budget={"ci_width": 5, "min_trials": 1, "max_trials": 2},
        )
        assert classify_row_line(json.dumps(row))[2] == "malformed"

    def test_on_skip_reasons_flow_through_load_completed_keys(self):
        good = self._good_row()
        timed = dict(good, timed_out=True)
        lines = [
            json.dumps(good, sort_keys=True),
            "torn {",
            json.dumps(timed, sort_keys=True),
        ]
        observed = []
        keys = load_completed_keys(
            lines, on_skip=lambda number, _line, reason: observed.append(
                (number, reason)
            )
        )
        assert keys == {row_resume_key(good)}
        assert observed == [(2, "malformed"), (3, "timed-out")]

    def test_each_line_is_parsed_exactly_once(self):
        """The old skip path re-ran json.loads on the very line that
        just failed; the classifier must not."""
        from unittest import mock

        import repro.experiments.sweep as sweep_mod

        good = self._good_row()
        lines = [
            json.dumps(good, sort_keys=True),
            "torn {",
            json.dumps(dict(good, timed_out=True), sort_keys=True),
            json.dumps(dict(good, budget=[1])),
        ]
        real = json.loads
        with mock.patch.object(
            sweep_mod.json, "loads", side_effect=real
        ) as spy:
            load_completed_keys(lines, on_skip=lambda *args: None)
        assert spy.call_count == len(lines)


class TestLoadCompletedKeys:
    def test_ignores_foreign_and_malformed_lines(self):
        row = run_scenario("honest/basic-lead", trials=2, params={"n": 6}).to_row()
        lines = [
            "",
            "not json at all {",
            json.dumps({"unrelated": True}),
            json.dumps(row, sort_keys=True),
            "[1, 2, 3]",
        ]
        keys = load_completed_keys(lines)
        assert keys == {row_resume_key(row)}

    def test_empty_input_completes_nothing(self):
        assert load_completed_keys([]) == set()

    def test_malformed_budget_fields_are_ignored_not_fatal(self):
        """A corrupt 'budget' object in a previous --out file must cause
        a re-run of that point, never a crash of the resume itself."""
        good = run_scenario("honest/basic-lead", trials=2, params={"n": 6}).to_row()
        corrupt = dict(good, budget={"ci_width": 5, "min_trials": 1, "max_trials": 2})
        foreign = dict(good, budget=[1, 2, 3])
        keys = load_completed_keys(
            [json.dumps(r, sort_keys=True) for r in (corrupt, foreign, good)]
        )
        assert keys == {row_resume_key(good)}


class TestSweepScenarioValidation:
    def test_unknown_grid_key_raises_eagerly_with_known_params(self):
        """The error must fire at call time (before any trial runs) and
        name the scenario's real parameters."""
        with pytest.raises(ConfigurationError) as excinfo:
            sweep_scenario(
                "attack/cubic", trials=2, grid={"coalition_size": [4, 5]}
            )
        message = str(excinfo.value)
        assert "coalition_size" in message
        assert "k" in message and "n" in message and "target" in message

    def test_unknown_scenario_raises_eagerly(self):
        with pytest.raises(ConfigurationError):
            sweep_scenario("no/such", trials=1)


class TestSweepResume:
    def _rows(self, grid, completed=None):
        return [
            r.to_row()
            for r in sweep_scenario(
                "attack/basic-cheat",
                trials=4,
                grid=grid,
                base_seed=2,
                completed=completed,
            )
        ]

    def test_completed_points_are_skipped(self):
        full = self._rows({"n": [8, 12, 16], "target": [2]})
        done = {row_resume_key(full[0]), row_resume_key(full[2])}
        remaining = self._rows({"n": [8, 12, 16], "target": [2]}, completed=done)
        assert remaining == [full[1]]

    def test_resume_with_everything_done_runs_nothing(self):
        full = self._rows({"n": [8, 12]})
        done = {row_resume_key(r) for r in full}
        assert self._rows({"n": [8, 12]}, completed=done) == []

    def test_resumed_rows_equal_fresh_rows(self):
        """Skipping points never changes the rows that do run."""
        full = self._rows({"n": [8, 12]})
        resumed = self._rows(
            {"n": [8, 12]}, completed={row_resume_key(full[0])}
        )
        assert resumed == full[1:]

    def test_rows_from_a_different_step_budget_are_not_skipped(self):
        """A budget-truncated run must not satisfy a default-budget
        resume (its rows are all-FAIL artifacts of the budget)."""
        truncated = [
            r.to_row()
            for r in sweep_scenario(
                "attack/basic-cheat",
                trials=4,
                grid={"n": [8]},
                base_seed=2,
                max_steps=5,
            )
        ]
        assert truncated[0]["fail_rate"] == 1.0
        done = {row_resume_key(r) for r in truncated}
        fresh = self._rows({"n": [8]}, completed=done)
        assert len(fresh) == 1
        assert fresh[0]["fail_rate"] == 0.0

    def test_different_base_seed_does_not_match_completed(self):
        full = self._rows({"n": [8]})
        done = {row_resume_key(r) for r in full}
        other_seed = [
            r.to_row()
            for r in sweep_scenario(
                "attack/basic-cheat",
                trials=4,
                grid={"n": [8]},
                base_seed=3,
                completed=done,
            )
        ]
        assert len(other_seed) == 1  # not skipped: different identity
