"""Unit + property tests for the Shamir secret-sharing substrate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.secretshare.field import PrimeField, next_prime, _is_prime
from repro.secretshare.shamir import ShamirScheme, Share
from repro.util.errors import ConfigurationError


class TestPrimality:
    def test_small_primes(self):
        assert all(_is_prime(p) for p in (2, 3, 5, 7, 11, 13, 97, 101))

    def test_small_composites(self):
        assert not any(_is_prime(c) for c in (0, 1, 4, 9, 91, 100, 561))

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(8) == 11
        assert next_prime(13) == 17

    @given(st.integers(2, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_next_prime_is_prime(self, n):
        p = next_prime(n)
        assert p > n
        assert _is_prime(p)


class TestPrimeField:
    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(10)

    def test_inverse(self):
        f = PrimeField(13)
        for a in range(1, 13):
            assert f.mul(a, f.inv(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            PrimeField(13).inv(0)

    def test_eval_poly(self):
        f = PrimeField(17)
        # 3 + 2x + x^2 at x=4: 3 + 8 + 16 = 27 = 10 mod 17
        assert f.eval_poly([3, 2, 1], 4) == 10

    def test_lagrange_recovers_constant(self):
        f = PrimeField(31)
        coeffs = [7, 5, 2]  # degree 2
        points = [(x, f.eval_poly(coeffs, x)) for x in (1, 2, 3)]
        assert f.lagrange_at_zero(points) == 7

    def test_lagrange_rejects_duplicate_x(self):
        f = PrimeField(31)
        with pytest.raises(ValueError):
            f.lagrange_at_zero([(1, 2), (1, 3)])


class TestShamir:
    @given(
        n=st.integers(3, 12),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_share_reconstruct_roundtrip(self, n, data):
        threshold = data.draw(st.integers(1, n))
        modulus = data.draw(st.integers(2, 50))
        secret = data.draw(st.integers(0, modulus - 1))
        scheme = ShamirScheme(n, threshold, modulus)
        shares = scheme.share(secret, random.Random(7))
        assert len(shares) == n
        # Any subset of exactly `threshold` shares reconstructs.
        subset = data.draw(
            st.permutations(shares).map(lambda p: p[:threshold])
        )
        assert scheme.reconstruct(subset) == secret

    def test_below_threshold_rejected(self):
        scheme = ShamirScheme(6, 4, 10)
        shares = scheme.share(3, random.Random(1))
        with pytest.raises(ConfigurationError):
            scheme.reconstruct(shares[:3])

    def test_below_threshold_hides_secret(self):
        """t shares are consistent with *every* secret (perfect hiding)."""
        n, threshold, modulus = 5, 3, 11
        scheme = ShamirScheme(n, threshold, modulus)
        # Fix an adversary's view: shares at x = 1, 2 (t - 1 = 2 shares).
        view_counts = {}
        for trial in range(3000):
            rng = random.Random(trial)
            secret = rng.randrange(modulus)
            shares = scheme.share(secret, rng)
            view = (shares[0].y % 7, shares[1].y % 7)  # coarse bucketing
            view_counts.setdefault(view, []).append(secret)
        # For the most common views, observed secrets span the domain.
        big_views = [v for v in view_counts.values() if len(v) > 50]
        assert big_views
        for secrets in big_views[:3]:
            assert len(set(secrets)) >= modulus - 2

    def test_consistency_accepts_honest(self):
        scheme = ShamirScheme(7, 4, 13)
        shares = scheme.share(9, random.Random(2))
        assert scheme.consistent(shares)

    def test_consistency_catches_tampering(self):
        scheme = ShamirScheme(7, 4, 13)
        shares = scheme.share(9, random.Random(2))
        bad = list(shares)
        bad[5] = Share(bad[5].x, (bad[5].y + 1) % scheme.field.p)
        assert not scheme.consistent(bad)

    def test_rejects_secret_out_of_domain(self):
        scheme = ShamirScheme(5, 3, 10)
        with pytest.raises(ConfigurationError):
            scheme.share(10, random.Random(0))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            ShamirScheme(5, 6, 10)
        with pytest.raises(ConfigurationError):
            ShamirScheme(5, 0, 10)

    @given(st.integers(3, 10), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_all_shares_reconstruct(self, n, seed):
        scheme = ShamirScheme(n, (n + 1) // 2, n)
        rng = random.Random(seed)
        secret = rng.randrange(n)
        shares = scheme.share(secret, rng)
        assert scheme.reconstruct(shares) == secret
        assert scheme.consistent(shares)
