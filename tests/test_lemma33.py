"""Tests for the executable Lemma 3.3 verifier, including fuzzed
deviations checked against the lemma's iff characterization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.lemma33 import honest_secret, lemma33_verdict
from repro.attacks.equal_spacing import equal_spacing_attack_protocol
from repro.attacks.placement import RingPlacement
from repro.protocols.alead_uni import ALeadNormalStrategy, ALeadOriginStrategy
from repro.sim.execution import FAIL, run_protocol
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import unidirectional_ring
from repro.util.modmath import canonical_mod


class _SingleFuzzAdversary(Strategy):
    """A lone adversary with tunable compliance to Lemma 3.3.

    With ``k = 1`` the honest segment is the whole rest of the ring
    (``l_1 = n - 1``), so the *only* compliant behaviour is
    buffer-honest forwarding — which is exactly why A-LEADuni is
    1-resilient. The knobs corrupt one forwarded value (condition 3) or
    withhold the final message (condition 1); condition 2 is vacuous for
    a single adversary.
    """

    def __init__(self, n: int, corrupt_replay: bool, truncate: bool):
        self.n = n
        self.corrupt_replay = corrupt_replay
        self.truncate = truncate
        self.buffer = 0  # the free first value (an honest node's "secret")
        self.rounds = 0
        self.total = 0

    def on_wakeup(self, ctx: Context) -> None:
        pass

    def on_receive(self, ctx: Context, value, sender) -> None:
        value = canonical_mod(int(value), self.n)
        self.rounds += 1
        self.total = canonical_mod(self.total + value, self.n)
        outgoing = self.buffer
        if self.corrupt_replay and self.rounds == self.n // 2:
            outgoing = (outgoing + 1) % self.n
        if not (self.truncate and self.rounds == self.n):
            ctx.send_next(outgoing)
        self.buffer = value
        if self.rounds == self.n:
            from repro.protocols.outcome import residue_to_id

            ctx.terminate(residue_to_id(self.total, self.n))


def _run_single_adversary(n, corrupt_replay, truncate, seed):
    ring = unidirectional_ring(n)
    protocol = {}
    for pid in ring.nodes:
        if pid == 1:
            protocol[pid] = ALeadOriginStrategy(n)
        else:
            protocol[pid] = ALeadNormalStrategy(n)
    adversary_pid = 3
    protocol[adversary_pid] = _SingleFuzzAdversary(n, corrupt_replay, truncate)
    placement = RingPlacement(n, (adversary_pid,))
    result = run_protocol(ring, protocol, seed=seed)
    return result, placement


class TestVerdictOnKnownDeviations:
    def test_compliant_single_adversary(self):
        result, placement = _run_single_adversary(
            7, corrupt_replay=False, truncate=False, seed=1
        )
        verdict = lemma33_verdict(result, placement)
        assert verdict.conditions_hold
        assert verdict.outcome_valid
        assert verdict.consistent_with_lemma

    def test_corrupted_replay_detected(self):
        result, placement = _run_single_adversary(
            7, corrupt_replay=True, truncate=False, seed=1
        )
        verdict = lemma33_verdict(result, placement)
        assert not verdict.replays_correct
        assert not verdict.outcome_valid
        assert verdict.consistent_with_lemma

    def test_truncated_sends_detected(self):
        result, placement = _run_single_adversary(
            7, corrupt_replay=False, truncate=True, seed=1
        )
        verdict = lemma33_verdict(result, placement)
        assert not verdict.sends_enough
        assert not verdict.outcome_valid
        assert verdict.consistent_with_lemma

    @given(
        n=st.integers(4, 14),
        corrupt=st.booleans(),
        truncate=st.booleans(),
        seed=st.integers(0, 10**5),
    )
    @settings(max_examples=40, deadline=None)
    def test_fuzz_iff_property(self, n, corrupt, truncate, seed):
        """The lemma's iff holds on every fuzzed single-adversary run."""
        result, placement = _run_single_adversary(n, corrupt, truncate, seed)
        verdict = lemma33_verdict(result, placement)
        assert verdict.consistent_with_lemma, verdict.details


class TestVerdictOnCoalitions:
    def test_equal_spacing_attack_satisfies_conditions(self):
        n, k = 36, 6
        ring = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        result = run_protocol(
            ring, equal_spacing_attack_protocol(ring, pl, 20), seed=2
        )
        verdict = lemma33_verdict(result, pl)
        assert verdict.conditions_hold
        assert verdict.outcome_valid
        assert verdict.consistent_with_lemma

    def test_sum_mismatch_between_adversaries_detected(self):
        """Perturb one adversary's steering message: condition 2 breaks."""
        from repro.attacks.equal_spacing import RushingAdversary

        n, k = 25, 5
        ring = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)

        class OffByOne(RushingAdversary):
            def _burst(self, ctx):
                l = self.segment_length
                total = sum(self.received) % self.n
                replay = self.received[len(self.received) - l:]
                from repro.protocols.outcome import id_to_residue

                m_value = (
                    id_to_residue(self.target, self.n) - total - sum(replay) + 1
                ) % self.n
                ctx.send_next(m_value)
                for _ in range(self.k - l - 1):
                    ctx.send_next(0)
                for v in replay:
                    ctx.send_next(v)
                ctx.terminate(self.target)

        protocol = equal_spacing_attack_protocol(ring, pl, 9)
        first = pl.positions[0]
        protocol[first] = OffByOne(n, k, pl.distances()[0], 9)
        result = run_protocol(ring, protocol, seed=3)
        verdict = lemma33_verdict(result, pl)
        assert not verdict.sums_agree
        assert result.outcome == FAIL
        assert verdict.consistent_with_lemma

    def test_honest_secret_helper(self):
        n = 6
        ring = unidirectional_ring(n)
        protocol = {
            pid: (ALeadOriginStrategy(n) if pid == 1 else ALeadNormalStrategy(n))
            for pid in ring.nodes
        }
        result = run_protocol(ring, protocol, seed=5)
        for pid in ring.nodes:
            secret = honest_secret(result, pid)
            assert secret is not None
            assert 0 <= secret < n
