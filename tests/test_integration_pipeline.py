"""End-to-end pipelines: the toolchain composed the way a user would.

Each test chains several subsystems — protocol, attack, verifier,
renderer, exporter, reductions — asserting the glue holds, not just the
parts.
"""

import json
import math
from collections import Counter

from repro import run_protocol, unidirectional_ring
from repro.analysis import (
    chi_square_uniformity,
    lemma33_verdict,
    max_send_lead,
    render_sync_timeline,
    trace_to_dicts,
)
from repro.analysis.distribution import OutcomeDistribution
from repro.attacks import RingPlacement, equal_spacing_attack_protocol
from repro.cointoss import CoinTossRunner
from repro.protocols import phase_async_protocol
from repro.protocols.indexing import indexed_phase_async_protocol
from repro.sim.scheduler import RandomScheduler
from repro.sim.topology import Topology, complete_graph
from repro.util.rng import RngRegistry


def test_attack_forensics_pipeline():
    """Run an attack, then put its trace through every instrument."""
    n, k = 36, 6
    ring = unidirectional_ring(n)
    pl = RingPlacement.equal_spacing(n, k)
    result = run_protocol(
        ring, equal_spacing_attack_protocol(ring, pl, 20), seed=8
    )
    assert result.outcome == 20

    verdict = lemma33_verdict(result, pl)
    assert verdict.conditions_hold and verdict.consistent_with_lemma

    art = render_sync_timeline(result, pids=list(pl.positions))
    assert "max sync gap" in art

    rows = trace_to_dicts(result)
    json.dumps(rows)  # serializable end to end
    assert any(r["type"] == "terminate" for r in rows)

    leads = [max_send_lead(result, pid) for pid in pl.positions]
    assert max(leads) <= 2 * k  # Lemma D.3 envelope


def test_indexed_phase_async_fairness_on_named_ring():
    """Appendix G composition is not just live but *fair*."""
    names = ["n0", "n1", "n2", "n3", "n4"]
    edges = [(names[i], names[(i + 1) % 5]) for i in range(5)]
    ring = Topology(names, edges)
    counts = Counter()
    trials = 250
    for s in range(trials):
        res = run_protocol(
            ring, indexed_phase_async_protocol(ring, origin="n0"), seed=s
        )
        assert not res.failed
        counts[res.outcome] += 1
    dist = OutcomeDistribution(n=5, trials=trials, counts=counts)
    assert chi_square_uniformity(dist) > 1e-4


def test_coin_toss_on_phase_async():
    """Section 8's reduction works over the paper's own protocol too."""
    ring = unidirectional_ring(8)
    runner = CoinTossRunner(ring, phase_async_protocol)
    tosses = [runner.toss(RngRegistry(s)) for s in range(120)]
    assert all(t in (0, 1) for t in tosses)
    assert 30 <= sum(tosses) <= 90


def test_shamir_under_random_scheduler_many_seeds():
    """Schedule-independence of the complete-network baseline, stressed."""
    from repro.protocols import async_complete_protocol

    g = complete_graph(6)
    for seed in range(6):
        base = run_protocol(g, async_complete_protocol(g), seed=seed)
        shuffled = run_protocol(
            g,
            async_complete_protocol(g),
            scheduler=RandomScheduler(seed=seed + 99),
            seed=seed,
        )
        assert base.outcome == shuffled.outcome


def test_attack_success_invariant_to_scheduler():
    """On the ring, attacks force the target under any oblivious schedule
    (single incoming link ⇒ schedule-equivalence, paper §2)."""
    n, k = 25, 5
    ring = unidirectional_ring(n)
    pl = RingPlacement.equal_spacing(n, k)
    for sched_seed in range(3):
        res = run_protocol(
            ring,
            equal_spacing_attack_protocol(ring, pl, 9),
            scheduler=RandomScheduler(seed=sched_seed),
            seed=4,
        )
        assert res.outcome == 9


def test_full_theorem_tour_smoke():
    """One tiny instance of every headline theorem, in sequence."""
    from repro.attacks import (
        basic_cheat_protocol,
        cubic_attack_protocol,
        partial_sum_attack_protocol,
        phase_rushing_attack_protocol,
        shamir_pooling_attack_protocol,
    )
    from repro.protocols import async_complete_protocol
    from repro.trees import impossibility_certificate

    ring = unidirectional_ring(16)
    assert run_protocol(
        ring, basic_cheat_protocol(ring, 2, 5), seed=1
    ).outcome == 5  # B.1

    pl = RingPlacement.equal_spacing(16, 4)
    assert run_protocol(
        ring, equal_spacing_attack_protocol(ring, pl, 7), seed=1
    ).outcome == 7  # Thm 4.2

    k = 4
    n = k + (k - 1) * k * (k + 1) // 2
    big = unidirectional_ring(n)
    assert run_protocol(
        big, cubic_attack_protocol(big, RingPlacement.cubic(n, k), 3), seed=1
    ).outcome == 3  # Thm 4.3

    r20 = unidirectional_ring(20)
    assert run_protocol(
        r20, partial_sum_attack_protocol(r20, 4, 6), seed=1
    ).outcome == 6  # E.4

    r36 = unidirectional_ring(36)
    assert run_protocol(
        r36, phase_rushing_attack_protocol(r36, 9, 30), seed=1
    ).outcome == 30  # Thm 6.1 tightness

    g8 = complete_graph(8)
    assert run_protocol(
        g8, shamir_pooling_attack_protocol(g8, [2, 3, 4, 5], 2), seed=1
    ).outcome == 2  # complete-network tightness

    cert = impossibility_certificate(
        list(range(1, 9)), [(i, i % 8 + 1) for i in range(1, 9)]
    )
    assert cert["k"] == 4  # Thm 7.2 via F.5
