"""Cross-cutting executor/trace invariants, property-tested.

These pin down the simulator semantics every proof-level argument uses:
message conservation, FIFO per link, per-processor sequence numbering,
and schedule-independence on the unidirectional ring (paper Section 2:
with one incoming link per processor, all oblivious schedules are
equivalent).
"""

from hypothesis import given, settings, strategies as st

from repro.protocols.alead_uni import alead_uni_protocol
from repro.protocols.basic_lead import basic_lead_protocol
from repro.protocols.phase_async import phase_async_protocol
from repro.sim.events import ReceiveEvent, SendEvent
from repro.sim.execution import run_protocol
from repro.sim.scheduler import (
    FifoScheduler,
    LinkPriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.topology import complete_graph, unidirectional_ring

PROTOCOLS = [basic_lead_protocol, alead_uni_protocol, phase_async_protocol]


def _events(result, cls):
    return [e for e in result.trace if isinstance(e, cls)]


class TestConservation:
    @given(
        n=st.integers(2, 16),
        seed=st.integers(0, 10**6),
        maker_idx=st.integers(0, len(PROTOCOLS) - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_sends_equal_receives_plus_undelivered(self, n, seed, maker_idx):
        ring = unidirectional_ring(n)
        maker = PROTOCOLS[maker_idx]
        result = run_protocol(ring, maker(ring), seed=seed)
        sends = _events(result, SendEvent)
        receives = _events(result, ReceiveEvent)
        undelivered = sum(len(v) for v in result.undelivered.values())
        assert len(sends) == len(receives) + undelivered

    @given(n=st.integers(2, 12), seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_seq_numbers_dense(self, n, seed):
        ring = unidirectional_ring(n)
        result = run_protocol(ring, alead_uni_protocol(ring), seed=seed)
        for pid in ring.nodes:
            seqs = [e.seq for e in result.trace.sends_by(pid)]
            assert seqs == list(range(1, len(seqs) + 1))
            rseqs = [e.seq for e in result.trace.receives_by(pid)]
            assert rseqs == list(range(1, len(rseqs) + 1))


class TestFifoPerLink:
    @given(n=st.integers(2, 12), seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_delivery_order_matches_send_order(self, n, seed):
        ring = unidirectional_ring(n)
        result = run_protocol(ring, phase_async_protocol(ring), seed=seed)
        for u, v in ring.edges:
            sent = [
                e.value
                for e in result.trace.events
                if isinstance(e, SendEvent) and e.sender == u and e.receiver == v
            ]
            received = [
                e.value
                for e in result.trace.events
                if isinstance(e, ReceiveEvent)
                and e.sender == u
                and e.receiver == v
            ]
            assert received == sent[: len(received)]


class TestScheduleIndependence:
    """On the unidirectional ring all oblivious schedules agree."""

    @given(seed=st.integers(0, 10**5), maker_idx=st.integers(0, 2))
    @settings(max_examples=20, deadline=None)
    def test_ring_outcome_schedule_invariant(self, seed, maker_idx):
        n = 9
        ring = unidirectional_ring(n)
        maker = PROTOCOLS[maker_idx]
        outcomes = set()
        for scheduler in (
            FifoScheduler(),
            RoundRobinScheduler(),
            RandomScheduler(seed=99),
            LinkPriorityScheduler({(1, 2): 5, (4, 5): -3}),
        ):
            res = run_protocol(
                ring, maker(ring), scheduler=scheduler, seed=seed
            )
            outcomes.add(res.outcome)
        assert len(outcomes) == 1

    @given(seed=st.integers(0, 10**4))
    @settings(max_examples=10, deadline=None)
    def test_complete_graph_shamir_schedule_invariant(self, seed):
        """The Shamir baseline is also schedule-independent: every
        processor waits for full share/reveal sets before acting."""
        from repro.protocols.async_complete import async_complete_protocol

        g = complete_graph(5)
        outcomes = set()
        for scheduler in (
            FifoScheduler(),
            RoundRobinScheduler(),
            RandomScheduler(seed=7),
        ):
            res = run_protocol(
                g, async_complete_protocol(g), scheduler=scheduler, seed=seed
            )
            outcomes.add(res.outcome)
        assert len(outcomes) == 1
