"""Tests for the synchronous substrate and the Abraham et al. baselines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.distribution import chi_square_uniformity
from repro.sim.execution import FAIL
from repro.sim.topology import complete_graph, unidirectional_ring
from repro.sync import (
    SyncContext,
    SyncStrategy,
    run_sync_protocol,
    sync_broadcast_protocol,
    sync_ring_protocol,
    sync_rushing_attempt_protocol,
)
from repro.util.errors import ConfigurationError, ProtocolViolation
from repro.util.rng import RngRegistry


class _Const(SyncStrategy):
    def __init__(self, out):
        self.out = out

    def on_round(self, ctx, round_number, inbox):
        ctx.terminate(self.out)


class _Silent(SyncStrategy):
    def on_round(self, ctx, round_number, inbox):
        pass


class TestSyncEngine:
    def test_unanimous_outcome(self):
        g = complete_graph(3)
        res = run_sync_protocol(g, {pid: _Const(2) for pid in g.nodes})
        assert res.outcome == 2 and res.rounds == 1

    def test_disagreement_fails(self):
        g = complete_graph(2)
        res = run_sync_protocol(g, {1: _Const(1), 2: _Const(2)})
        assert res.failed and "disagree" in res.fail_reason

    def test_quiescence_fails(self):
        g = complete_graph(2)
        res = run_sync_protocol(g, {1: _Const(1), 2: _Silent()})
        assert res.failed and "live" in res.fail_reason

    def test_round_budget(self):
        class Chatter(SyncStrategy):
            def on_round(self, ctx, round_number, inbox):
                ctx.broadcast("x")

        g = complete_graph(2)
        res = run_sync_protocol(
            g, {pid: Chatter() for pid in g.nodes}, max_rounds=5
        )
        assert res.failed and "budget" in res.fail_reason

    def test_send_to_non_neighbour_raises(self):
        class Bad(SyncStrategy):
            def on_round(self, ctx, round_number, inbox):
                ctx.send(99, "x")

        g = complete_graph(2)
        with pytest.raises(ProtocolViolation):
            run_sync_protocol(g, {1: Bad(), 2: _Silent()})

    def test_missing_strategy_rejected(self):
        g = complete_graph(2)
        with pytest.raises(ConfigurationError):
            run_sync_protocol(g, {1: _Const(1)})

    def test_simultaneity(self):
        """Round-r messages are invisible until round r+1."""
        observed = {}

        class Probe(SyncStrategy):
            def __init__(self, pid):
                self.pid = pid

            def on_round(self, ctx, round_number, inbox):
                if round_number == 1:
                    ctx.broadcast(("r1", self.pid))
                    observed.setdefault(self.pid, []).append(len(inbox))
                elif round_number == 2:
                    observed[self.pid].append(len(inbox))
                    ctx.terminate(0)

        g = complete_graph(3)
        run_sync_protocol(g, {pid: Probe(pid) for pid in g.nodes})
        for pid, counts in observed.items():
            assert counts == [0, 2]  # nothing in round 1, all in round 2


class TestSyncBaselines:
    @pytest.mark.parametrize("n", [2, 3, 5, 9])
    def test_broadcast_baseline_succeeds(self, n):
        g = complete_graph(n)
        res = run_sync_protocol(g, sync_broadcast_protocol(g), seed=n)
        assert not res.failed, res.fail_reason
        assert 1 <= res.outcome <= n
        assert res.rounds == 3

    @pytest.mark.parametrize("n", [2, 4, 7, 11])
    def test_ring_baseline_succeeds(self, n):
        ring = unidirectional_ring(n)
        res = run_sync_protocol(ring, sync_ring_protocol(ring), seed=n)
        assert not res.failed, res.fail_reason
        assert 1 <= res.outcome <= n
        assert res.rounds == n + 1

    @given(n=st.integers(2, 10), seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_baselines_agree_property(self, n, seed):
        g = complete_graph(n)
        res = run_sync_protocol(g, sync_broadcast_protocol(g), seed=seed)
        assert not res.failed
        ring = unidirectional_ring(n)
        res = run_sync_protocol(ring, sync_ring_protocol(ring), seed=seed)
        assert not res.failed

    def test_broadcast_uniformity(self):
        from collections import Counter

        n = 6
        g = complete_graph(n)
        counts = Counter(
            run_sync_protocol(g, sync_broadcast_protocol(g), seed=s).outcome
            for s in range(360)
        )
        from repro.analysis.distribution import OutcomeDistribution

        dist = OutcomeDistribution(n=n, trials=360, counts=counts)
        assert chi_square_uniformity(dist) > 1e-4

    def test_broadcast_rejects_ring_topology(self):
        ring = unidirectional_ring(4)
        with pytest.raises(ConfigurationError):
            sync_broadcast_protocol(ring)

    def test_ring_rejects_complete_topology(self):
        g = complete_graph(4)
        with pytest.raises(ConfigurationError):
            sync_ring_protocol(g)


class TestSyncDeniesRushing:
    """The paper's contrast: delay-and-steer dies under synchrony."""

    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_last_round_cheater_punished(self, n):
        g = complete_graph(n)
        res = run_sync_protocol(
            g, sync_rushing_attempt_protocol(g, cheater=2, target=1), seed=n
        )
        assert res.outcome == FAIL
        assert "abort" in res.fail_reason

    def test_cheater_never_forces_target(self):
        g = complete_graph(8)
        for seed in range(10):
            res = run_sync_protocol(
                g, sync_rushing_attempt_protocol(g, 3, 5), seed=seed
            )
            assert res.outcome != 5
