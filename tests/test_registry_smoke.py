"""Smoke sweep: every registered scenario must run end to end.

A 2-trial sweep across the whole registry, marked ``smoke`` so CI runs
it as its own job step: a scenario whose defaults stopped being
feasible, whose builder broke, or whose outcome stopped being hashable/
JSON-serialisable fails the build here — not the user's overnight grid.
"""

import json

import pytest

from repro.experiments import scenario_names, sweep_scenario


@pytest.mark.smoke
@pytest.mark.parametrize("name", scenario_names())
def test_two_trial_sweep_runs_for_every_scenario(name):
    rows = [
        result.to_row()
        for result in sweep_scenario(name, trials=2, base_seed=0)
    ]
    assert len(rows) == 1
    row = rows[0]
    assert row["scenario"] == name
    assert row["trials"] == 2
    assert sum(row["outcomes"].values()) == 2
    # Rows must survive the JSON round trip the CLI streams them through.
    assert json.loads(json.dumps(row, sort_keys=True)) == row


@pytest.mark.smoke
def test_registry_is_nonempty_and_covers_the_paper():
    names = scenario_names()
    assert len(names) >= 25
    for prefix in ("sync/", "tree/", "cointoss/", "fullinfo/"):
        assert any(n.startswith(prefix) for n in names), prefix
