"""Shared fixtures for the test suite."""

import pytest

from repro.sim.topology import unidirectional_ring
from repro.util.rng import RngRegistry


@pytest.fixture
def ring8():
    return unidirectional_ring(8)


@pytest.fixture
def ring16():
    return unidirectional_ring(16)


@pytest.fixture
def rng():
    return RngRegistry(12345)
