"""Integration tests: honest executions of all three protocols.

Covers the FLE definition (Section 2): every honest execution terminates
with a unanimous valid output, and outcomes are uniform over repeated runs
(chi-square at generous thresholds given trial counts).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.distribution import (
    chi_square_uniformity,
    estimate_distribution,
)
from repro.protocols.alead_uni import alead_uni_protocol
from repro.protocols.basic_lead import basic_lead_protocol
from repro.protocols.phase_async import (
    PhaseAsyncParams,
    phase_async_protocol,
)
from repro.sim.execution import run_protocol
from repro.sim.topology import unidirectional_ring

PROTOCOLS = {
    "basic": basic_lead_protocol,
    "alead": alead_uni_protocol,
    "phase": phase_async_protocol,
}


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
@pytest.mark.parametrize("n", [2, 3, 4, 7, 12, 25])
def test_honest_run_succeeds(name, n):
    topo = unidirectional_ring(n)
    res = run_protocol(topo, PROTOCOLS[name](topo), seed=1000 + n)
    assert not res.failed, res.fail_reason
    assert 1 <= res.outcome <= n
    # Unanimity: every processor terminated with the same output.
    assert set(res.outputs.values()) == {res.outcome}
    assert len(res.outputs) == n


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
@given(n=st.integers(2, 20), seed=st.integers(0, 10**6))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_honest_run_succeeds_property(name, n, seed):
    topo = unidirectional_ring(n)
    res = run_protocol(topo, PROTOCOLS[name](topo), seed=seed)
    assert not res.failed, res.fail_reason
    assert 1 <= res.outcome <= n


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_message_counts(name):
    """Each processor sends exactly its prescribed number of messages."""
    n = 9
    topo = unidirectional_ring(n)
    res = run_protocol(topo, PROTOCOLS[name](topo), seed=5)
    expected = 2 * n if name == "phase" else n
    for pid in topo.nodes:
        assert res.trace.sent_count(pid) == expected, pid


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_uniformity(name):
    """Outcome distribution is indistinguishable from uniform."""
    n = 8
    topo = unidirectional_ring(n)
    dist = estimate_distribution(
        topo, PROTOCOLS[name], trials=400, base_seed=42
    )
    assert dist.fail_count == 0
    p = chi_square_uniformity(dist)
    assert p > 1e-4, f"uniformity rejected: p={p}, counts={dist.valid_counts()}"


def test_alead_all_processors_same_sum():
    """Lemma 3.4 in the honest case: all processors compute one sum."""
    n = 11
    topo = unidirectional_ring(n)
    res = run_protocol(topo, alead_uni_protocol(topo), seed=77)
    assert len(set(res.outputs.values())) == 1


def test_phase_async_sum_variant_runs():
    n = 10
    topo = unidirectional_ring(n)
    params = PhaseAsyncParams.sum_variant(n)
    res = run_protocol(topo, phase_async_protocol(topo, params), seed=3)
    assert not res.failed
    assert 1 <= res.outcome <= n


def test_phase_async_key_changes_output():
    """Re-keying f samples a different random function (usually)."""
    n = 12
    topo = unidirectional_ring(n)
    outcomes = set()
    for key in range(6):
        params = PhaseAsyncParams(n=n, key=key)
        res = run_protocol(topo, phase_async_protocol(topo, params), seed=99)
        assert not res.failed
        outcomes.add(res.outcome)
    assert len(outcomes) > 1


def test_phase_async_rejects_mismatched_params():
    from repro.util.errors import ConfigurationError

    topo = unidirectional_ring(6)
    with pytest.raises(ConfigurationError):
        phase_async_protocol(topo, PhaseAsyncParams(n=7))


def test_phase_async_requires_consecutive_ids():
    from repro.sim.topology import Topology
    from repro.util.errors import ConfigurationError

    topo = Topology([5, 6, 7], [(5, 6), (6, 7), (7, 5)])
    with pytest.raises(ConfigurationError):
        phase_async_protocol(topo)
