"""Tests for the persistent worker pool and adaptive trial budgets."""

import pytest

from repro.experiments import (
    BudgetPolicy,
    WilsonWidthPolicy,
    ExperimentRunner,
    WorkerPool,
    resolve_workers,
    run_scenario,
)
from repro.experiments.pool import MAX_AUTO_WORKERS
from repro.util.errors import ConfigurationError


class TestResolveWorkers:
    def test_integers_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7
        assert resolve_workers(64) == 64  # explicit counts are not clamped

    def test_auto_derives_a_clamped_machine_count(self):
        resolved = resolve_workers("auto")
        assert 1 <= resolved <= MAX_AUTO_WORKERS
        assert resolve_workers(None) == resolved

    def test_invalid_counts_rejected(self):
        for bad in (0, -1, 1.5, "four", True):
            with pytest.raises(ConfigurationError):
                resolve_workers(bad)


class TestWorkerPool:
    def test_serial_pool_runs_in_process_and_lazily(self):
        with WorkerPool(1) as pool:
            assert not pool.parallel
            seen = []
            results = pool.imap_unordered(lambda x: seen.append(x) or x * 2, [1, 2, 3])
            assert seen == []  # lazy until consumed
            assert list(results) == [2, 4, 6]
            assert not pool.started  # no processes were ever spawned

    def test_serial_pool_rejects_submit(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ConfigurationError):
                pool.submit(str, 1, callback=print, error_callback=print)

    def test_parallel_pool_spawns_once_and_is_reused(self):
        with WorkerPool(2) as pool:
            assert pool.parallel and not pool.started
            first = run_scenario(
                "honest/alead-uni", trials=8, params={"n": 6}, pool=pool
            )
            assert pool.started
            backing = pool._pool
            second = run_scenario(
                "honest/alead-uni", trials=8, params={"n": 6}, pool=pool
            )
            assert pool._pool is backing  # same worker processes
            assert first.to_row() == second.to_row()

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(2)
        pool.warm_up()
        pool.close()
        with pytest.raises(ConfigurationError):
            list(pool.imap_unordered(str, [(1,)]))

    def test_dispatch_window_is_bounded_by_pool_size(self):
        assert 1 <= WorkerPool(4).dispatch_window <= 4
        assert WorkerPool(1).dispatch_window == 1

    def test_none_payloads_survive_windowed_dispatch(self):
        """None is a legal payload value, not an end-of-queue marker —
        every payload must come back exactly once (the window path is
        exercised whenever the machine has fewer cores than workers;
        the pre-loaded path trivially holds)."""
        with WorkerPool(2) as pool:
            results = list(pool.imap_unordered(str, [1, None, 2, None, 3, 4]))
        assert sorted(results) == ["1", "2", "3", "4", "None", "None"]

    def test_windowed_dispatch_preserves_results(self):
        """Many more chunks than the dispatch window (always true here:
        window <= workers < chunk count) must still yield every chunk's
        result exactly once."""
        serial = run_scenario(
            "honest/alead-uni", trials=24, base_seed=3, params={"n": 8}
        )
        with WorkerPool(3) as pool:
            windowed = run_scenario(
                "honest/alead-uni",
                trials=24,
                base_seed=3,
                params={"n": 8},
                pool=pool,
                chunk_size=2,  # 12 chunks > window
            )
        assert windowed.to_row() == serial.to_row()


class TestRunnerPoolWiring:
    def test_injected_pool_sets_worker_count_and_survives_close(self):
        with WorkerPool(3) as pool:
            runner = ExperimentRunner(pool=pool)
            assert runner.workers == 3
            runner.run("honest/alead-uni", 6, params={"n": 6})
            runner.close()  # injected pools are the caller's to close
            assert pool.started
            assert (
                run_scenario(
                    "honest/alead-uni", trials=6, params={"n": 6}, pool=pool
                ).trials
                == 6
            )

    def test_self_owned_pool_persists_across_runs_then_closes(self):
        runner = ExperimentRunner(workers=2)
        assert runner.pool is None  # lazy until first parallel run
        runner.run("honest/alead-uni", 8, params={"n": 6})
        owned = runner.pool
        assert owned is not None and owned.started
        runner.run("honest/alead-uni", 8, params={"n": 6})
        assert runner.pool is owned
        runner.close()
        with pytest.raises(ConfigurationError):
            owned.warm_up()

    def test_parallel_false_never_touches_a_pool(self):
        runner = ExperimentRunner(workers=4, parallel=False)
        runner.run("honest/alead-uni", 8, params={"n": 6})
        assert runner.pool is None


class TestFoldedAggregates:
    def test_fold_matches_per_trial_rows_and_counters(self):
        kept = run_scenario(
            "attack/basic-cheat", trials=12, params={"n": 16, "target": 5}
        )
        folded = run_scenario(
            "attack/basic-cheat",
            trials=12,
            params={"n": 16, "target": 5},
            keep_outcomes=False,
        )
        assert folded.outcomes == []
        assert len(kept.outcomes) == 12
        assert folded.to_row() == kept.to_row()
        assert folded.steps_total == sum(t.steps for t in kept.outcomes)

    def test_fold_matches_under_parallelism(self):
        with WorkerPool(4) as pool:
            folded = run_scenario(
                "sync/broadcast",
                trials=15,
                base_seed=7,
                params={"n": 6},
                pool=pool,
                keep_outcomes=False,
            )
        serial = run_scenario(
            "sync/broadcast", trials=15, base_seed=7, params={"n": 6}
        )
        assert folded.to_row() == serial.to_row()

    def test_on_outcome_disables_the_fold_but_not_the_row(self):
        seen = []
        result = run_scenario(
            "honest/basic-lead",
            trials=7,
            params={"n": 6},
            keep_outcomes=False,
            on_outcome=seen.append,
        )
        assert sorted(t.index for t in seen) == list(range(7))
        assert result.outcomes == []  # still not retained


class TestBudgetPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WilsonWidthPolicy(ci_width=0.0, min_trials=1, max_trials=10)
        with pytest.raises(ConfigurationError):
            WilsonWidthPolicy(ci_width=0.1, min_trials=0, max_trials=10)
        with pytest.raises(ConfigurationError):
            WilsonWidthPolicy(ci_width=0.1, min_trials=20, max_trials=10)
        with pytest.raises(ConfigurationError):
            WilsonWidthPolicy(ci_width=0.1, min_trials=1, max_trials=10, z=0)

    def test_batch_schedule_doubles_to_the_ceiling(self):
        policy = WilsonWidthPolicy(ci_width=0.01, min_trials=32, max_trials=1000)
        assert list(policy.batch_ends()) == [32, 64, 128, 256, 512, 1000]
        tight = WilsonWidthPolicy(ci_width=0.01, min_trials=10, max_trials=10)
        assert list(tight.batch_ends()) == [10]

    def test_from_mapping_rejects_unknown_and_missing_keys(self):
        with pytest.raises(ConfigurationError):
            BudgetPolicy.from_mapping({"ci_width": 0.1, "min_trials": 1})
        with pytest.raises(ConfigurationError):
            BudgetPolicy.from_mapping(
                {"ci_width": 0.1, "min_trials": 1, "max_trials": 5, "zz": 2}
            )
        policy = BudgetPolicy.from_mapping(
            {"ci_width": 0.1, "min_trials": 1, "max_trials": 5}
        )
        assert policy.z == 1.96

    def test_key_roundtrips_through_json(self):
        import json

        policy = WilsonWidthPolicy(ci_width=0.05, min_trials=16, max_trials=400)
        assert (
            BudgetPolicy.from_mapping(json.loads(json.dumps(policy.to_key())))
            == policy
        )


class TestAdaptiveRuns:
    POLICY = WilsonWidthPolicy(ci_width=0.05, min_trials=32, max_trials=1000)

    def test_converged_point_stops_early(self):
        """A deterministic 100%-success attack converges as soon as the
        Wilson width at p=1 crosses the threshold (here: 128 trials),
        far below the 1000-trial ceiling."""
        result = run_scenario(
            "attack/basic-cheat",
            params={"n": 16, "target": 5},
            budget=self.POLICY,
            keep_outcomes=False,
        )
        assert result.trials == 128
        assert result.success_rate == 1.0
        assert self.POLICY.satisfied(result.trials, result.trials)

    def test_realized_trials_identical_across_worker_counts(self):
        def row(workers):
            return run_scenario(
                "fuzz/random-deviation",
                params={"n": 16, "k": 2},
                budget=WilsonWidthPolicy(ci_width=0.25, min_trials=8, max_trials=256),
                workers=workers,
                keep_outcomes=False,
            ).to_row()

        serial = row(1)
        assert serial == row(4)
        assert 8 <= serial["trials"] <= 256
        assert serial["budget"]["ci_width"] == 0.25

    def test_unconverged_point_runs_to_the_ceiling(self):
        policy = WilsonWidthPolicy(ci_width=0.01, min_trials=4, max_trials=20)
        result = run_scenario(
            "honest/alead-uni", params={"n": 8}, budget=policy
        )
        assert result.trials == 20  # 1% width is unreachable at 20 trials

    def test_trials_and_budget_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            run_scenario(
                "honest/alead-uni", trials=10, params={"n": 8},
                budget=self.POLICY,
            )
        with pytest.raises(ConfigurationError):
            run_scenario("honest/alead-uni", params={"n": 8})  # neither


class TestPolicyRegistry:
    def test_registry_names_cover_the_builtin_policies(self):
        from repro.experiments import policy_names

        assert policy_names() == [
            "fail-rate-target",
            "outcome-rate-target",
            "relative-precision",
            "wilson-width",
        ]

    def test_batch_schedule_is_shared_by_every_policy(self):
        """Same bounds -> same batch boundaries, whatever the stop rule:
        the worker-invariance argument only needs proving once."""
        from repro.experiments import (
            FailRateTargetPolicy,
            RelativePrecisionPolicy,
        )

        bounds = {"min_trials": 8, "max_trials": 100}
        schedules = [
            list(policy.batch_ends())
            for policy in (
                WilsonWidthPolicy(ci_width=0.1, **bounds),
                RelativePrecisionPolicy(rel_precision=0.1, **bounds),
                FailRateTargetPolicy(target=0.1, **bounds),
            )
        ]
        assert schedules[0] == schedules[1] == schedules[2] == [8, 16, 32, 64, 100]

    def test_relative_precision_validation_and_stop_rule(self):
        from repro.analysis.stats import wilson_interval
        from repro.experiments import RelativePrecisionPolicy

        with pytest.raises(ConfigurationError):
            RelativePrecisionPolicy(rel_precision=0.0, min_trials=1, max_trials=10)
        with pytest.raises(ConfigurationError):
            RelativePrecisionPolicy(rel_precision=1.5, min_trials=1, max_trials=10)
        policy = RelativePrecisionPolicy(
            rel_precision=0.25, min_trials=8, max_trials=10000
        )
        assert not policy.satisfied(3, 4)  # below the floor
        assert not policy.satisfied(0, 512)  # zero estimate: undefined
        # High success rate: half-width shrinks below 25% of the estimate
        # quickly; a rare event needs far more trials for the same claim.
        assert policy.satisfied(512, 512)
        low, high = wilson_interval(5, 512, policy.z)
        assert (high - low) / 2 > 0.25 * (5 / 512)
        assert not policy.satisfied(5, 512)

    def test_fail_rate_target_validation_and_stop_rule(self):
        from repro.experiments import FailRateTargetPolicy

        with pytest.raises(ConfigurationError):
            FailRateTargetPolicy(target=-0.1, min_trials=1, max_trials=10)
        with pytest.raises(ConfigurationError):
            FailRateTargetPolicy(target=1.1, min_trials=1, max_trials=10)
        policy = FailRateTargetPolicy(target=0.5, min_trials=8, max_trials=10000)
        assert not policy.satisfied(4, 8)  # interval straddles the target
        assert policy.satisfied(8, 8)  # entirely above
        assert policy.satisfied(0, 8)  # entirely below
        # Boundary targets are legal; a matching true rate never decides.
        zero = FailRateTargetPolicy(target=0.0, min_trials=8, max_trials=100)
        assert not zero.satisfied(0, 100)

    def test_outcome_rate_target_validation_and_stop_rule(self):
        from repro.experiments import OutcomeRateTargetPolicy

        with pytest.raises(ConfigurationError):
            OutcomeRateTargetPolicy(
                outcome="", target=0.5, min_trials=1, max_trials=10
            )
        with pytest.raises(ConfigurationError):
            OutcomeRateTargetPolicy(
                outcome="3", target=1.5, min_trials=1, max_trials=10
            )
        policy = OutcomeRateTargetPolicy(
            outcome="3", target=0.5, min_trials=8, max_trials=10000
        )
        # Histogram keys match by str() form: int 3 counts toward "3".
        assert policy.satisfied(0, 8, counts={3: 8})  # entirely above
        assert policy.satisfied(0, 8, counts={1: 8})  # entirely below (0/8)
        assert not policy.satisfied(0, 8, counts={3: 4, 1: 4})  # straddles
        # No counters reaching the rule means it must never fire blind.
        assert not policy.satisfied(8, 8, counts=None)
        assert not policy.satisfied(8, 8)
        # Below the trial floor nothing fires either.
        assert not policy.satisfied(0, 4, counts={3: 4})

    def test_outcome_rate_target_round_trips_through_manifest_json(self):
        from repro.experiments import BudgetPolicy, OutcomeRateTargetPolicy

        raw = {
            "policy": "outcome-rate-target",
            "outcome": "FAIL",
            "target": 0.25,
            "min_trials": 16,
            "max_trials": 512,
        }
        policy = BudgetPolicy.from_mapping(raw)
        assert isinstance(policy, OutcomeRateTargetPolicy)
        assert policy.to_key() == {**raw, "z": 1.96}

    def test_outcome_rate_target_stops_a_run_on_one_outcome(self):
        """End-to-end: the biased coin lands every trial on parity 0, so
        a budget watching outcome "0" against a 50% bar stops at the
        first batch boundary — distribution-level convergence the
        success-proportion policies cannot express."""
        from repro.experiments import OutcomeRateTargetPolicy

        result = run_scenario(
            "cointoss/biased-coin",
            params={"n": 8, "target": 4},
            budget=OutcomeRateTargetPolicy(
                outcome="0", target=0.5, min_trials=16, max_trials=4096
            ),
        )
        assert result.trials == 16
        assert result.distribution.counts == {0: 16}

    def test_adaptive_runs_converge_per_policy(self):
        """End-to-end: each policy stops a deterministic 100%-success
        attack at its own (deterministic) batch boundary."""
        from repro.experiments import FailRateTargetPolicy, RelativePrecisionPolicy

        args = dict(
            params={"n": 16, "target": 5},
            keep_outcomes=False,
        )
        relative = run_scenario(
            "attack/basic-cheat",
            budget=RelativePrecisionPolicy(
                rel_precision=0.05, min_trials=8, max_trials=1000
            ),
            **args,
        )
        assert relative.trials < 1000 and relative.success_rate == 1.0
        decided = run_scenario(
            "attack/basic-cheat",
            budget=FailRateTargetPolicy(target=0.5, min_trials=8, max_trials=1000),
            **args,
        )
        assert decided.trials == 8  # decided at the first boundary
        assert decided.to_row()["budget"]["policy"] == "fail-rate-target"

    def test_policy_rows_are_worker_invariant(self):
        from repro.experiments import FailRateTargetPolicy

        def row(workers):
            return run_scenario(
                "fuzz/random-deviation",
                params={"n": 16, "k": 2},
                budget=FailRateTargetPolicy(
                    target=0.9, min_trials=8, max_trials=128
                ),
                workers=workers,
                keep_outcomes=False,
            ).to_row()

        assert row(1) == row(4)


class TestStreamedOutcomes:
    def test_stream_cap_bounds_every_payload(self):
        from repro.experiments.pool import STREAM_CHUNK_TRIALS
        from repro.experiments.runner import chunk_payloads
        from repro.experiments.scenario import get_scenario

        spec = get_scenario("sync/broadcast")
        params = spec.resolve_params(None)
        payloads = chunk_payloads(
            spec, params, 0, range(10 * STREAM_CHUNK_TRIALS), False, None,
            workers=2, chunk_size=10 * STREAM_CHUNK_TRIALS,
            max_chunk=STREAM_CHUNK_TRIALS,
        )
        assert len(payloads) == 10
        assert all(
            len(payload[3]) <= STREAM_CHUNK_TRIALS for payload in payloads
        )

    def test_packed_chunk_roundtrips_the_trial_list(self):
        from repro.experiments.runner import (
            _run_chunk,
            _run_chunk_packed,
            _unpack_chunk,
            chunk_payloads,
        )
        from repro.experiments.scenario import get_scenario

        spec = get_scenario("fullinfo/baton")
        params = spec.resolve_params({"n": 8, "k": 2})
        (payload,) = chunk_payloads(
            spec, params, 3, range(12), False, None, chunk_size=12
        )
        assert _unpack_chunk(_run_chunk_packed(payload)) == _run_chunk(payload)

    def test_parallel_on_outcome_sees_every_trial_once(self):
        seen = []
        with WorkerPool(4) as pool:
            streamed = run_scenario(
                "fullinfo/baton",
                trials=300,
                params={"n": 8, "k": 2},
                pool=pool,
                keep_outcomes=True,
                on_outcome=seen.append,
            )
        serial = run_scenario(
            "fullinfo/baton", trials=300, params={"n": 8, "k": 2}
        )
        assert sorted(t.index for t in seen) == list(range(300))
        assert streamed.outcomes == serial.outcomes  # both index-sorted
        assert streamed.to_row() == serial.to_row()


def _double(x):
    return x * 2


def _explode(x):
    raise ValueError(f"boom on {x}")


class TestLifetimeCounters:
    """``pool.counters()``: the observability mirror behind the
    ``repro_pool_chunks_total`` metric. Counters never affect
    scheduling; they just have to be consistent."""

    def test_fresh_pool_reports_zeros(self):
        with WorkerPool(1) as pool:
            assert pool.counters() == {
                "dispatched": 0, "completed": 0, "failed": 0
            }

    def test_serial_path_counts_each_payload(self):
        with WorkerPool(1) as pool:
            assert list(pool.imap_unordered(_double, [1, 2, 3])) == [2, 4, 6]
            assert pool.counters() == {
                "dispatched": 3, "completed": 3, "failed": 0
            }

    def test_serial_failure_is_counted_and_reraised(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError):
                list(pool.imap_unordered(_explode, [1]))
            counters = pool.counters()
            assert counters["failed"] == 1
            assert counters["completed"] == 0

    def test_parallel_path_counts_match_the_work(self):
        with WorkerPool(2) as pool:
            results = sorted(pool.imap_unordered(_double, [1, 2, 3, 4, 5]))
            assert results == [2, 4, 6, 8, 10]
            counters = pool.counters()
        assert counters["dispatched"] == 5
        assert counters["completed"] == 5
        assert counters["failed"] == 0

    def test_counters_accumulate_across_runs(self):
        with WorkerPool(1) as pool:
            list(pool.imap_unordered(_double, [1]))
            list(pool.imap_unordered(_double, [2, 3]))
            assert pool.counters()["completed"] == 3
