"""Integration tests: the three attacks on A-LEADuni.

Each attack must satisfy the success characterization of Lemma 3.3 —
honest processors all terminate with the coalition's target — and the
claimed coalition-size scaling.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.basic_cheat import basic_cheat_protocol
from repro.attacks.cubic import cubic_attack_protocol
from repro.attacks.equal_spacing import (
    equal_spacing_attack_protocol,
    equal_spacing_attack_protocol_unchecked,
)
from repro.attacks.placement import RingPlacement
from repro.attacks.random_location import (
    random_location_attack_protocol,
    recommended_probability,
)
from repro.sim.execution import FAIL, run_protocol
from repro.sim.topology import unidirectional_ring
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry


class TestBasicCheat:
    @pytest.mark.parametrize("n", [3, 5, 8, 16])
    def test_single_cheater_forces_every_target(self, n):
        topo = unidirectional_ring(n)
        for target in range(1, n + 1):
            res = run_protocol(
                topo, basic_cheat_protocol(topo, cheater=2, target=target),
                seed=target,
            )
            assert res.outcome == target, res.fail_reason

    @given(
        n=st.integers(3, 20),
        cheater=st.integers(1, 20),
        target=st.integers(1, 20),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_cheater_anywhere_property(self, n, cheater, target, seed):
        cheater = (cheater - 1) % n + 1
        target = (target - 1) % n + 1
        topo = unidirectional_ring(n)
        res = run_protocol(
            topo, basic_cheat_protocol(topo, cheater, target), seed=seed
        )
        assert res.outcome == target

    def test_honest_validations_pass(self):
        n = 8
        topo = unidirectional_ring(n)
        res = run_protocol(topo, basic_cheat_protocol(topo, 3, 5), seed=1)
        # No aborts: all processors terminated with the target.
        assert all(out == 5 for out in res.outputs.values())

    def test_rejects_bad_target(self):
        topo = unidirectional_ring(4)
        with pytest.raises(ConfigurationError):
            basic_cheat_protocol(topo, 2, 9)

    def test_rejects_unknown_cheater(self):
        topo = unidirectional_ring(4)
        with pytest.raises(ConfigurationError):
            basic_cheat_protocol(topo, 42, 1)


class TestEqualSpacingAttack:
    @pytest.mark.parametrize("n", [16, 25, 49, 81])
    def test_sqrt_coalition_controls_outcome(self, n):
        k = math.isqrt(n)
        topo = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        for target in (1, n // 2, n):
            res = run_protocol(
                topo, equal_spacing_attack_protocol(topo, pl, target),
                seed=target,
            )
            assert res.outcome == target, res.fail_reason

    @given(seed=st.integers(0, 10**6), target=st.integers(1, 36))
    @settings(max_examples=25, deadline=None)
    def test_any_seed_any_target(self, seed, target):
        n, k = 36, 6
        topo = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        res = run_protocol(
            topo, equal_spacing_attack_protocol(topo, pl, target), seed=seed
        )
        assert res.outcome == target

    def test_lemma33_conditions_hold(self):
        """Every adversary sends n messages; outgoing sums agree mod n."""
        n, k = 25, 5
        topo = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        target = 13
        res = run_protocol(
            topo, equal_spacing_attack_protocol(topo, pl, target), seed=2
        )
        sums = set()
        for pid in pl.positions:
            sent = res.trace.sent_values(pid)
            assert len(sent) == n  # condition 1
            sums.add(sum(sent) % n)
        assert len(sums) == 1  # condition 2
        # Condition 3: last l_j messages are the segment secrets in order.
        for j, pid in enumerate(pl.positions):
            l = pl.distances()[j]
            seg = pl.segment(j)
            sent = res.trace.sent_values(pid)
            expected = [
                res.trace.sent_values(h)[0] if h != 1 else None
                for h in reversed(seg)
            ]
            # Honest normal processor's first send is its secret; origin is
            # honest but sends its secret first too.
            actual = sent[-l:]
            for h, got in zip(reversed(seg), actual):
                first_sent = res.trace.sent_values(h)[0]
                assert got == first_sent

    def test_below_threshold_fails(self):
        """With segments longer than k-1 the attack cannot finish."""
        n, k = 36, 3  # segments of length 11 > 2
        topo = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        with pytest.raises(ConfigurationError):
            equal_spacing_attack_protocol(topo, pl, 1)
        res = run_protocol(
            topo,
            equal_spacing_attack_protocol_unchecked(topo, pl, 1),
            seed=0,
        )
        assert res.outcome == FAIL

    def test_rejects_adversarial_origin(self):
        topo = unidirectional_ring(16)
        pl = RingPlacement(16, (1, 5, 9, 13))
        with pytest.raises(ConfigurationError):
            equal_spacing_attack_protocol(topo, pl, 1)


class TestCubicAttack:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_controls_outcome_at_max_n(self, k):
        n = k + (k - 1) * k * (k + 1) // 2
        topo = unidirectional_ring(n)
        pl = RingPlacement.cubic(n, k)
        for target in (1, n):
            res = run_protocol(
                topo, cubic_attack_protocol(topo, pl, target), seed=target
            )
            assert res.outcome == target, res.fail_reason

    def test_coalition_sublinear(self):
        """At the feasibility frontier k ~ (2n)^(1/3) << sqrt(n)."""
        k = 8
        n = k + (k - 1) * k * (k + 1) // 2  # 260
        assert k < math.isqrt(n)  # strictly below the rushing threshold
        topo = unidirectional_ring(n)
        pl = RingPlacement.cubic(n, k)
        res = run_protocol(topo, cubic_attack_protocol(topo, pl, 100), seed=1)
        assert res.outcome == 100

    def test_sync_gap_grows(self):
        """The cubic attack desynchronizes the ring (Section 6 motivation)."""
        k = 6
        n = k + (k - 1) * k * (k + 1) // 2
        topo = unidirectional_ring(n)
        pl = RingPlacement.cubic(n, k)
        res = run_protocol(topo, cubic_attack_protocol(topo, pl, 1), seed=1)
        gap = res.trace.max_sync_gap(list(pl.positions))
        assert gap > k  # far beyond the honest gap of 1

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_success_property(self, seed):
        k = 4
        n = k + (k - 1) * k * (k + 1) // 2
        topo = unidirectional_ring(n)
        pl = RingPlacement.cubic(n, k)
        res = run_protocol(topo, cubic_attack_protocol(topo, pl, 7), seed=seed)
        assert res.outcome == 7

    def test_rejects_bad_profile(self):
        topo = unidirectional_ring(12)
        pl = RingPlacement(12, (2, 4, 11))  # l = [1, 6, 2]: 6 > 2 + 2
        with pytest.raises(ConfigurationError):
            cubic_attack_protocol(topo, pl, 1)


class TestRandomLocationAttack:
    def test_succeeds_in_regime(self):
        """At n=256 and the paper's density the attack wins consistently."""
        n = 256
        p = recommended_probability(n)
        topo = unidirectional_ring(n)
        wins = 0
        trials = 8
        for t in range(trials):
            pl = RingPlacement.random_locations(n, p, random.Random(t))
            if pl is None:
                continue
            res = run_protocol(
                topo,
                random_location_attack_protocol(topo, pl, target=77),
                rng=RngRegistry(t),
            )
            wins += res.outcome == 77
        assert wins >= trials - 1

    def test_fails_gracefully_when_sparse(self):
        """Far below the density the attack fails without crashing."""
        n = 128
        topo = unidirectional_ring(n)
        pl = RingPlacement.random_locations(n, 0.03, random.Random(5))
        if pl is None:
            pytest.skip("sample degenerated")
        res = run_protocol(
            topo, random_location_attack_protocol(topo, pl, 5),
            rng=RngRegistry(1),
        )
        assert res.outcome in (5, FAIL)

    def test_adversaries_estimate_k(self):
        n = 200
        topo = unidirectional_ring(n)
        pl = RingPlacement.random_locations(
            n, recommended_probability(n) / 2, random.Random(3)
        )
        proto = random_location_attack_protocol(topo, pl, 9)
        res = run_protocol(topo, proto, rng=RngRegistry(4))
        if res.outcome == 9:
            for pid in pl.positions:
                assert proto[pid].estimated_k == pl.k

    def test_window_parameter_validated(self):
        from repro.attacks.random_location import RandomLocationAdversary

        with pytest.raises(ConfigurationError):
            RandomLocationAdversary(10, 1, window=0)

    def test_recommended_probability_monotone(self):
        assert recommended_probability(10_000) < recommended_probability(100)
