"""Unit tests for the execution engine: semantics of Section 2's model."""

import pytest

from repro.sim.events import ReceiveEvent
from repro.sim.execution import ABORT, FAIL, Executor, run_protocol
from repro.sim.scheduler import (
    LinkPriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.strategy import Context, SilentStrategy, Strategy
from repro.sim.topology import Topology, complete_graph, unidirectional_ring
from repro.util.errors import ConfigurationError, ProtocolViolation
from repro.util.rng import RngRegistry


class Echo(Strategy):
    """Sends one token on wakeup (node 1 only), forwards once, terminates."""

    def __init__(self, spontaneous: bool, hops: int):
        self.spontaneous = spontaneous
        self.hops = hops

    def on_wakeup(self, ctx: Context) -> None:
        if self.spontaneous:
            ctx.send_next(("token", 0))

    def on_receive(self, ctx: Context, value, sender) -> None:
        label, hop = value
        if hop + 1 < self.hops:
            ctx.send_next((label, hop + 1))
        ctx.terminate("done")


class Oblivious(Strategy):
    def on_wakeup(self, ctx):
        pass

    def on_receive(self, ctx, value, sender):
        pass


class Outputter(Strategy):
    def __init__(self, out):
        self.out = out

    def on_wakeup(self, ctx):
        ctx.terminate(self.out)

    def on_receive(self, ctx, value, sender):
        pass


def two_ring():
    return unidirectional_ring(2)


class TestOutcomeSemantics:
    def test_unanimous_output_is_outcome(self):
        topo = two_ring()
        res = run_protocol(topo, {1: Outputter(5), 2: Outputter(5)})
        assert res.outcome == 5
        assert not res.failed

    def test_disagreement_fails(self):
        topo = two_ring()
        res = run_protocol(topo, {1: Outputter(1), 2: Outputter(2)})
        assert res.outcome == FAIL
        assert "disagree" in res.fail_reason

    def test_abort_fails(self):
        class Aborter(Strategy):
            def on_wakeup(self, ctx):
                ctx.abort("testing")

            def on_receive(self, ctx, value, sender):
                pass

        topo = two_ring()
        res = run_protocol(topo, {1: Aborter(), 2: Outputter(1)})
        assert res.failed
        assert "abort" in res.fail_reason

    def test_nontermination_fails(self):
        topo = two_ring()
        res = run_protocol(topo, {1: SilentStrategy(), 2: SilentStrategy()})
        assert res.failed
        assert "never terminated" in res.fail_reason

    def test_step_budget_fails(self):
        class PingPong(Strategy):
            def on_wakeup(self, ctx):
                ctx.send_next("ping")

            def on_receive(self, ctx, value, sender):
                ctx.send_next(value)

        topo = two_ring()
        res = run_protocol(
            topo, {1: PingPong(), 2: PingPong()}, max_steps=50
        )
        assert res.failed
        assert "budget" in res.fail_reason


class TestModelRules:
    def test_messages_to_terminated_are_dropped(self):
        class SendThenStop(Strategy):
            def on_wakeup(self, ctx):
                ctx.send_next("x")
                ctx.terminate(1)

            def on_receive(self, ctx, value, sender):
                raise AssertionError("should never be called")

        topo = two_ring()
        res = run_protocol(topo, {1: SendThenStop(), 2: SendThenStop()})
        assert res.outcome == 1

    def test_send_to_non_neighbour_raises(self):
        class BadSender(Strategy):
            def on_wakeup(self, ctx):
                ctx.send(99, "x")

            def on_receive(self, ctx, value, sender):
                pass

        topo = two_ring()
        with pytest.raises(ProtocolViolation):
            run_protocol(topo, {1: BadSender(), 2: Oblivious()})

    def test_double_terminate_raises(self):
        class Doubler(Strategy):
            def on_wakeup(self, ctx):
                ctx.terminate(1)
                ctx.terminate(2)

            def on_receive(self, ctx, value, sender):
                pass

        topo = two_ring()
        with pytest.raises(ProtocolViolation):
            run_protocol(topo, {1: Doubler(), 2: Oblivious()})

    def test_send_after_terminate_raises(self):
        class LateSender(Strategy):
            def on_wakeup(self, ctx):
                ctx.terminate(1)
                ctx.send_next("x")

            def on_receive(self, ctx, value, sender):
                pass

        topo = two_ring()
        with pytest.raises(ProtocolViolation):
            run_protocol(topo, {1: LateSender(), 2: Oblivious()})

    def test_fifo_per_link(self):
        received = []

        class Burst(Strategy):
            def on_wakeup(self, ctx):
                for i in range(5):
                    ctx.send_next(i)
                ctx.terminate(0)

            def on_receive(self, ctx, value, sender):
                pass

        class Collect(Strategy):
            def on_wakeup(self, ctx):
                pass

            def on_receive(self, ctx, value, sender):
                received.append(value)
                if len(received) == 5:
                    ctx.terminate(0)

        topo = two_ring()
        res = run_protocol(topo, {1: Burst(), 2: Collect()})
        assert received == [0, 1, 2, 3, 4]
        assert res.outcome == 0


class TestConfiguration:
    def test_missing_strategy_rejected(self):
        topo = two_ring()
        with pytest.raises(ConfigurationError):
            Executor(topo, {1: SilentStrategy()})

    def test_extra_strategy_rejected(self):
        topo = two_ring()
        with pytest.raises(ConfigurationError):
            Executor(
                topo,
                {1: SilentStrategy(), 2: SilentStrategy(), 3: SilentStrategy()},
            )

    def test_shared_strategy_instance_rejected(self):
        topo = two_ring()
        shared = SilentStrategy()
        with pytest.raises(ConfigurationError):
            Executor(topo, {1: shared, 2: shared})

    def test_seed_and_rng_mutually_exclusive(self):
        topo = two_ring()
        with pytest.raises(ConfigurationError):
            run_protocol(
                topo,
                {1: SilentStrategy(), 2: SilentStrategy()},
                rng=RngRegistry(0),
                seed=1,
            )


class TestDeliveryOrderRegression:
    """The O(1) ready-set bookkeeping must not change delivery order.

    Golden sequences below were recorded against the original list-based
    bookkeeping (``self._ready.remove(link)`` / ``link not in
    self._ready``) for every scheduler; the complete graph keeps many
    links concurrently ready, so any reordering in how links enter or
    leave the ready set would show up here.
    """

    GOLDEN = {
        "fifo": [
            (1, 2), (1, 3), (1, 4), (2, 1), (2, 3), (2, 4), (3, 1), (3, 2),
            (3, 4), (4, 1), (4, 1), (4, 2), (4, 2), (4, 3), (4, 3), (1, 2),
            (1, 3), (1, 4), (2, 1), (2, 3), (2, 4), (3, 1), (3, 2), (3, 4),
        ],
        "round-robin": [
            (1, 2), (1, 4), (2, 3), (3, 1), (3, 4), (4, 2), (1, 3), (2, 4),
            (4, 1), (4, 3), (4, 2), (3, 4), (3, 2), (4, 1), (3, 1), (2, 4),
            (3, 2), (2, 3), (4, 3), (2, 1), (1, 2), (1, 4), (1, 3), (2, 1),
        ],
        "random": [
            (2, 4), (1, 4), (3, 4), (1, 2), (2, 1), (4, 3), (4, 1), (1, 3),
            (3, 2), (4, 3), (2, 3), (3, 4), (4, 1), (3, 1), (3, 1), (1, 3),
            (1, 4), (4, 2), (3, 2), (4, 2), (2, 4), (1, 2), (2, 1), (2, 3),
        ],
        "priority": [
            (2, 1), (1, 3), (1, 4), (2, 3), (2, 4), (3, 1), (3, 2), (3, 4),
            (4, 1), (4, 1), (4, 2), (4, 2), (4, 3), (4, 3), (1, 3), (1, 4),
            (3, 1), (3, 2), (3, 4), (1, 2), (2, 1), (2, 3), (2, 4), (1, 2),
        ],
    }

    @staticmethod
    def _delivery_order(scheduler):
        from repro.protocols import async_complete_protocol

        topo = complete_graph(4)
        res = run_protocol(
            topo, async_complete_protocol(topo), scheduler=scheduler, seed=5
        )
        assert res.outcome == 3
        return [
            (e.sender, e.receiver)
            for e in res.trace
            if isinstance(e, ReceiveEvent)
        ]

    def test_fifo_first_ready_order_unchanged(self):
        assert self._delivery_order(None) == self.GOLDEN["fifo"]

    def test_round_robin_order_unchanged(self):
        assert self._delivery_order(RoundRobinScheduler()) == self.GOLDEN[
            "round-robin"
        ]

    def test_random_scheduler_order_unchanged(self):
        assert self._delivery_order(RandomScheduler(seed=7)) == self.GOLDEN[
            "random"
        ]

    def test_priority_scheduler_order_unchanged(self):
        scheduler = LinkPriorityScheduler({(1, 2): 5, (2, 1): -1})
        assert self._delivery_order(scheduler) == self.GOLDEN["priority"]

    def test_bad_scheduler_choice_still_detected(self):
        from repro.sim.scheduler import Scheduler
        from repro.util.errors import SimulationError

        class Liar(Scheduler):
            def choose(self, ready_links):
                return ("nope", "nope")

        class Sender(Strategy):
            def on_wakeup(self, ctx):
                ctx.send_next("x")

            def on_receive(self, ctx, value, sender):
                ctx.terminate(0)

        topo = two_ring()
        with pytest.raises(SimulationError):
            run_protocol(topo, {1: Sender(), 2: Sender()}, scheduler=Liar())


class TestTraceRecordingSwitch:
    def test_trace_off_preserves_outcome_and_steps(self):
        from repro.protocols.alead_uni import alead_uni_protocol

        topo = unidirectional_ring(8)
        traced = run_protocol(topo, alead_uni_protocol(topo), seed=4)
        bare = run_protocol(
            topo, alead_uni_protocol(topo), seed=4, record_trace=False
        )
        assert bare.outcome == traced.outcome
        assert bare.steps == traced.steps
        assert bare.outputs == traced.outputs
        assert len(traced.trace) > 0
        assert len(bare.trace) == 0

    def test_trace_off_keeps_failure_reporting(self):
        topo = two_ring()
        res = run_protocol(
            topo,
            {1: SilentStrategy(), 2: SilentStrategy()},
            record_trace=False,
        )
        assert res.failed
        assert "never terminated" in res.fail_reason


class TestDeterminism:
    def test_same_seed_same_trace(self):
        from repro.protocols.alead_uni import alead_uni_protocol

        topo = unidirectional_ring(6)
        r1 = run_protocol(topo, alead_uni_protocol(topo), seed=9)
        r2 = run_protocol(topo, alead_uni_protocol(topo), seed=9)
        assert r1.outcome == r2.outcome
        assert [e for e in r1.trace] == [e for e in r2.trace]

    def test_different_seed_usually_differs(self):
        from repro.protocols.alead_uni import alead_uni_protocol

        topo = unidirectional_ring(16)
        outcomes = {
            run_protocol(topo, alead_uni_protocol(topo), seed=s).outcome
            for s in range(12)
        }
        assert len(outcomes) > 1

    def test_random_scheduler_reproducible(self):
        from repro.protocols.basic_lead import basic_lead_protocol

        topo = unidirectional_ring(5)
        r1 = run_protocol(
            topo, basic_lead_protocol(topo),
            scheduler=RandomScheduler(seed=3), seed=1,
        )
        r2 = run_protocol(
            topo, basic_lead_protocol(topo),
            scheduler=RandomScheduler(seed=3), seed=1,
        )
        assert r1.outcome == r2.outcome
