"""Tests for the Lemma F.3 tree-collapse machinery."""

import pytest

from repro.trees.dictator import classify_protocol, verify_assurance
from repro.trees.gametree import Action
from repro.trees.treegame import (
    TreeProtocol,
    collapse_to_two_party,
    xor_tree_protocol,
)
from repro.util.errors import ConfigurationError


class TestTreeProtocolBasics:
    def test_rejects_non_tree(self):
        with pytest.raises(ConfigurationError):
            TreeProtocol(
                edges=[(0, 1), (1, 2), (2, 0)],
                inputs={0: [0], 1: [0], 2: [0]},
                actions={i: (lambda b, h: Action("wait")) for i in range(3)},
            )

    def test_rejects_missing_actions(self):
        with pytest.raises(ConfigurationError):
            TreeProtocol(
                edges=[(0, 1)],
                inputs={0: [0], 1: [0]},
                actions={0: lambda b, h: Action("wait")},
            )

    def test_leaves(self):
        tp = xor_tree_protocol(4)
        assert tp.leaves() == [0, 3]

    def test_neighbors(self):
        tp = xor_tree_protocol(3)
        assert tp.neighbors(1) == [0, 2]


class TestCollapse:
    @pytest.mark.parametrize("chain", [2, 3, 4])
    def test_collapse_preserves_xor_semantics(self, chain):
        tp = xor_tree_protocol(chain)
        two = collapse_to_two_party(tp, leaf=0)
        for a in (0, 1):
            for rest in two.inputs_b:
                expected = a
                for _, bit in rest:
                    expected ^= bit
                assert two.honest_outcome(a, rest) == expected

    def test_collapse_from_far_leaf(self):
        tp = xor_tree_protocol(3)
        two = collapse_to_two_party(tp, leaf=2)
        for a in (0, 1):
            for rest in two.inputs_b:
                expected = a
                for _, bit in rest:
                    expected ^= bit
                assert two.honest_outcome(a, rest) == expected

    def test_rejects_internal_node(self):
        tp = xor_tree_protocol(3)
        with pytest.raises(ConfigurationError):
            collapse_to_two_party(tp, leaf=1)


class TestTreeDictator:
    def test_component_holding_last_mover_dictates(self):
        """Lemma F.3 on the 3-chain: the component containing the last
        XOR folder assures both bits; the coalition has size 2 = ⌈n/2⌉."""
        tp = xor_tree_protocol(3)
        two = collapse_to_two_party(tp, leaf=0)
        verdict = classify_protocol(two)
        assert verdict.get("dictator") == "B"
        for w in verdict["witnesses"]:
            assert verify_assurance(two, w)

    def test_collapsing_away_the_dictator_flips_roles(self):
        """Collapse from the far leaf: now the leaf IS the last mover,
        and the leaf (player A) dictates."""
        tp = xor_tree_protocol(3)
        two = collapse_to_two_party(tp, leaf=2)
        verdict = classify_protocol(two)
        assert verdict.get("dictator") == "A"
        for w in verdict["witnesses"]:
            assert verify_assurance(two, w)

    @pytest.mark.parametrize("chain", [2, 4])
    def test_dictatorship_scales_with_chain(self, chain):
        tp = xor_tree_protocol(chain)
        two = collapse_to_two_party(tp, leaf=0)
        verdict = classify_protocol(two)
        # The last XOR node always sits in the component.
        assert verdict.get("dictator") == "B"
