"""Tests for trace export and ASCII rendering."""

import json

from repro.analysis.render import render_sync_timeline, trace_to_dicts
from repro.attacks import RingPlacement, cubic_attack_protocol
from repro.protocols.alead_uni import alead_uni_protocol
from repro.sim.execution import run_protocol
from repro.sim.topology import unidirectional_ring


class TestTraceExport:
    def test_all_events_exported(self):
        ring = unidirectional_ring(4)
        res = run_protocol(ring, alead_uni_protocol(ring), seed=1)
        rows = trace_to_dicts(res)
        assert len(rows) == len(res.trace)
        types = {r["type"] for r in rows}
        assert {"wakeup", "send", "recv", "terminate"} <= types

    def test_json_serializable(self):
        ring = unidirectional_ring(3)
        res = run_protocol(ring, alead_uni_protocol(ring), seed=2)
        payload = json.dumps(trace_to_dicts(res))
        assert isinstance(payload, str) and len(payload) > 10

    def test_abort_events_exported(self):
        from repro.sim.strategy import Strategy

        class Aborter(Strategy):
            def on_wakeup(self, ctx):
                ctx.abort("test reason")

            def on_receive(self, ctx, value, sender):
                pass

        ring = unidirectional_ring(2)
        from repro.protocols.alead_uni import ALeadNormalStrategy

        res = run_protocol(
            ring, {1: Aborter(), 2: ALeadNormalStrategy(2)}, seed=0
        )
        rows = trace_to_dicts(res)
        aborts = [r for r in rows if r["type"] == "abort"]
        assert aborts and aborts[0]["reason"] == "test reason"

    def test_times_monotone(self):
        ring = unidirectional_ring(5)
        res = run_protocol(ring, alead_uni_protocol(ring), seed=3)
        times = [r["t"] for r in trace_to_dicts(res)]
        assert times == sorted(times)


class TestTimeline:
    def test_renders_all_processors(self):
        ring = unidirectional_ring(5)
        res = run_protocol(ring, alead_uni_protocol(ring), seed=1)
        art = render_sync_timeline(res)
        for pid in ring.nodes:
            assert str(pid) in art
        assert "max sync gap: 1" in art

    def test_cubic_attack_gap_visible(self):
        k = 5
        n = k + (k - 1) * k * (k + 1) // 2
        ring = unidirectional_ring(n)
        pl = RingPlacement.cubic(n, k)
        res = run_protocol(ring, cubic_attack_protocol(ring, pl, 3), seed=1)
        art = render_sync_timeline(res, pids=list(pl.positions), columns=8)
        gap_line = art.splitlines()[-1]
        gap = int(gap_line.rsplit(" ", 1)[1])
        assert gap > k

    def test_subset_rendering(self):
        ring = unidirectional_ring(6)
        res = run_protocol(ring, alead_uni_protocol(ring), seed=1)
        art = render_sync_timeline(res, pids=[2, 4])
        lines = [l for l in art.splitlines()[1:-1]]
        assert len(lines) == 2

    def test_empty_trace_safe(self):
        from repro.sim.execution import ExecutionResult
        from repro.sim.trace import Trace

        res = ExecutionResult(
            outcome="FAIL", outputs={}, trace=Trace(), steps=0, quiesced=True
        )
        assert "no sends" in render_sync_timeline(res)
