"""The Afek et al. decomposition claim, tested exactly.

A-LEADuni = knowledge sharing + election rule. The recomposed protocol
must be *message-for-message identical* to the monolithic implementation
on every seed — same sent values per processor, same outcome — because
both draw the same randomness and move it with the same buffering
discipline. This is the strongest executable form of the paper's
"[5] re-organized [4] into building blocks" claim.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sync import max_send_lead
from repro.blocks.election import alead_via_blocks_protocol
from repro.protocols.alead_uni import alead_uni_protocol
from repro.sim.execution import run_protocol
from repro.sim.topology import unidirectional_ring


@pytest.mark.parametrize("n", [2, 3, 5, 9, 16])
def test_recomposition_identical_outcome(n):
    ring = unidirectional_ring(n)
    for seed in range(5):
        mono = run_protocol(ring, alead_uni_protocol(ring), seed=seed)
        comp = run_protocol(ring, alead_via_blocks_protocol(ring), seed=seed)
        assert mono.outcome == comp.outcome
        assert not mono.failed and not comp.failed


@given(n=st.integers(2, 16), seed=st.integers(0, 10**5))
@settings(max_examples=30, deadline=None)
def test_recomposition_identical_messages(n, seed):
    """Message-for-message equality of the two implementations."""
    ring = unidirectional_ring(n)
    mono = run_protocol(ring, alead_uni_protocol(ring), seed=seed)
    comp = run_protocol(ring, alead_via_blocks_protocol(ring), seed=seed)
    for pid in ring.nodes:
        assert mono.trace.sent_values(pid) == comp.trace.sent_values(pid)
    assert mono.outputs == comp.outputs


class TestSendLead:
    """Lemma D.3's Sent-Recv lead measure on known executions."""

    def test_honest_lead_bounded_by_one(self):
        n = 12
        ring = unidirectional_ring(n)
        res = run_protocol(ring, alead_uni_protocol(ring), seed=3)
        for pid in range(2, n + 1):
            # Normal processors send only in response to a receive, so
            # their send counter never leads at all.
            assert max_send_lead(res, pid) == 0
        assert max_send_lead(res, 1) == 1  # origin: spontaneous first send

    def test_cubic_adversaries_lead_by_k(self):
        from repro.attacks import RingPlacement, cubic_attack_protocol

        k = 5
        n = k + (k - 1) * k * (k + 1) // 2
        ring = unidirectional_ring(n)
        pl = RingPlacement.cubic(n, k)
        res = run_protocol(ring, cubic_attack_protocol(ring, pl, 2), seed=1)
        leads = [max_send_lead(res, pid) for pid in pl.positions]
        # The zero-burst puts each adversary k-1 sends ahead, within the
        # 2k envelope Lemma D.3 allows for non-failing deviations.
        assert max(leads) >= k - 1
        assert max(leads) <= 2 * k

    def test_rushing_adversaries_within_2k(self):
        import math

        from repro.attacks import (
            RingPlacement,
            equal_spacing_attack_protocol,
        )

        n = 49
        k = math.isqrt(n)
        ring = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        res = run_protocol(
            ring, equal_spacing_attack_protocol(ring, pl, 5), seed=2
        )
        for pid in pl.positions:
            assert max_send_lead(res, pid) <= 2 * k
