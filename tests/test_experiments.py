"""Tests for the experiment engine: registry, runner, determinism."""

import pytest

from repro.analysis.distribution import estimate_distribution
from repro.experiments import (
    ExperimentRunner,
    ScenarioSpec,
    expand_grid,
    get_scenario,
    register_scenario,
    run_one_trial,
    run_scenario,
    scenario_names,
    sweep_scenario,
    trial_registry,
    unregister_scenario,
)
from repro.protocols import alead_uni_protocol
from repro.sim.execution import run_protocol
from repro.sim.topology import unidirectional_ring
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry

def _build_ring6(params):
    return unidirectional_ring(6)


def _build_alead(topo, params, rng):
    return alead_uni_protocol(topo)


BUILTIN_SCENARIOS = {
    "honest/basic-lead",
    "honest/alead-uni",
    "honest/phase-async",
    "honest/async-complete",
    "honest/wakeup-alead",
    "attack/basic-cheat",
    "attack/equal-spacing",
    "attack/random-location",
    "attack/cubic",
    "attack/partial-sum",
    "attack/phase-rushing",
    "attack/shamir-pool",
    "sync/broadcast",
    "sync/ring",
    "sync/last-round-cheat",
    "tree/xor-coin",
    "tree/xor-chain",
    "tree/clique-caterpillar",
    "cointoss/fle-coin",
    "cointoss/biased-coin",
    "cointoss/coin-fle",
    "fullinfo/baton",
    "fullinfo/sequential-coin",
    "blocks/fair-consensus",
    "blocks/fair-renaming",
    "fuzz/random-deviation",
    "frontier/cubic",
    "frontier/rushing",
    "placement/random-segments",
}


class TestRegistry:
    def test_builtin_catalog_registered(self):
        assert BUILTIN_SCENARIOS <= set(scenario_names())

    def test_every_subsystem_has_scenarios(self):
        """The acceptance bar: the registry reaches the whole paper."""
        prefixes = {name.split("/", 1)[0] for name in scenario_names()}
        assert {
            "honest", "attack", "sync", "tree", "cointoss", "fullinfo",
            "blocks", "fuzz", "frontier", "placement",
        } <= prefixes

    def test_tags_partition_protocols_and_attacks(self):
        honest = set(scenario_names(tag="honest"))
        attacks = set(scenario_names(tag="attack"))
        assert not honest & attacks
        assert {n for n in honest if n.startswith("honest/")} == {
            n for n in BUILTIN_SCENARIOS if n.startswith("honest/")
        }
        assert {n for n in attacks if n.startswith("attack/")} == {
            n for n in BUILTIN_SCENARIOS if n.startswith("attack/")
        }
        # Punishment demos and forcing families count as attacks too.
        assert "sync/last-round-cheat" in attacks
        assert "fuzz/random-deviation" in attacks

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            get_scenario("attack/does-not-exist")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("honest/alead-uni")
        with pytest.raises(ConfigurationError):
            register_scenario(spec)
        register_scenario(spec, replace=True)  # explicit replace is fine

    def test_register_unregister_roundtrip(self):
        spec = ScenarioSpec(
            name="test/tmp",
            description="temporary",
            build_topology=lambda params: unidirectional_ring(params["n"]),
            build_protocol=lambda topo, params, rng: alead_uni_protocol(topo),
            defaults={"n": 6},
        )
        register_scenario(spec)
        try:
            assert get_scenario("test/tmp") is spec
        finally:
            unregister_scenario("test/tmp")
        with pytest.raises(ConfigurationError):
            get_scenario("test/tmp")

    def test_resolve_params_rejects_unknown_keys(self):
        spec = get_scenario("attack/cubic")
        assert spec.resolve_params({"n": 66})["n"] == 66
        with pytest.raises(ConfigurationError):
            spec.resolve_params({"coalition_size": 5})


class TestRunnerDeterminism:
    """Same (scenario, params, trials, base_seed) -> same outcomes, always."""

    @staticmethod
    def _outcomes(**runner_kwargs):
        runner = ExperimentRunner(**runner_kwargs)
        result = runner.run(
            "honest/alead-uni", trials=24, base_seed=11, params={"n": 8}
        )
        return [t.outcome for t in result.outcomes], result.to_row()

    def test_identical_across_worker_counts(self):
        serial, serial_row = self._outcomes(workers=1)
        forced_off, off_row = self._outcomes(workers=4, parallel=False)
        parallel, par_row = self._outcomes(workers=4)
        assert serial == forced_off == parallel
        assert serial_row == off_row == par_row

    def test_chunk_size_never_changes_results(self):
        a, row_a = self._outcomes(workers=2, chunk_size=1)
        b, row_b = self._outcomes(workers=2, chunk_size=7)
        assert a == b and row_a == row_b

    def test_trial_seed_depends_only_on_base_seed_and_index(self):
        spec = get_scenario("honest/alead-uni")
        params = spec.resolve_params()
        first = run_one_trial(spec, params, base_seed=3, index=5)
        again = run_one_trial(spec, params, base_seed=3, index=5)
        other = run_one_trial(spec, params, base_seed=4, index=5)
        assert first == again
        assert other is not None
        # the registry seed itself must differ even when outcomes collide:
        assert trial_registry(3, 5).seed != trial_registry(4, 5).seed
        assert trial_registry(3, 5).seed != trial_registry(3, 6).seed

    def test_matches_legacy_serial_loop_exactly(self):
        """The runner preserves the seed code's per-trial seed derivation."""
        ring = unidirectional_ring(8)
        legacy = [
            run_protocol(
                ring, alead_uni_protocol(ring), rng=RngRegistry(17).spawn(str(t))
            ).outcome
            for t in range(20)
        ]
        result = ExperimentRunner().run(
            "honest/alead-uni", trials=20, base_seed=17, params={"n": 8}
        )
        assert [t.outcome for t in result.outcomes] == legacy

    def test_user_registered_scenario_ships_by_value_in_parallel(self):
        """Non-builtin specs must not be sent to workers by bare name:
        under the spawn start method a worker rebuilds only the builtin
        catalog, so a user registration would not resolve there."""
        from repro.experiments.runner import _is_builtin

        builtin = get_scenario("honest/alead-uni")
        assert _is_builtin(builtin)

        custom = ScenarioSpec(
            name="test/custom-parallel",
            description="user-registered scenario",
            build_topology=_build_ring6,
            build_protocol=_build_alead,
        )
        register_scenario(custom)
        try:
            assert not _is_builtin(custom)
            # And the parallel path still runs it (spec shipped by value).
            result = ExperimentRunner(workers=2).run(custom, trials=6)
            assert result.trials == 6 and result.fail_rate == 0.0
        finally:
            unregister_scenario("test/custom-parallel")

    def test_estimate_distribution_unchanged_and_worker_invariant(self):
        ring = unidirectional_ring(6)
        serial = estimate_distribution(ring, alead_uni_protocol, 30, base_seed=2)
        parallel = estimate_distribution(
            ring, alead_uni_protocol, 30, base_seed=2, workers=2
        )
        assert serial.counts == parallel.counts
        assert serial.trials == parallel.trials == 30


class TestRngStreamIndependence:
    """Processor streams must be private per trial and per processor."""

    @staticmethod
    def _draws(registry, label, k=8):
        stream = registry.stream(label)
        return [stream.randrange(2**30) for _ in range(k)]

    def test_proc_streams_independent_across_trials(self):
        a = self._draws(trial_registry(0, 0), "proc:1")
        b = self._draws(trial_registry(0, 1), "proc:1")
        assert a != b  # same processor, different trial -> fresh randomness

    def test_proc_streams_reproducible_within_a_trial(self):
        assert self._draws(trial_registry(0, 3), "proc:2") == self._draws(
            trial_registry(0, 3), "proc:2"
        )

    def test_proc_streams_independent_across_processors(self):
        registry = trial_registry(0, 0)
        assert self._draws(registry, "proc:1") != self._draws(registry, "proc:2")


class TestRunnerResults:
    def test_success_predicate_forced_target(self):
        result = run_scenario(
            "attack/basic-cheat",
            trials=6,
            base_seed=0,
            params={"n": 16, "target": 5},
        )
        assert result.success_rate == 1.0
        assert result.distribution.counts[5] == 6
        assert result.successes.trials == 6

    def test_honest_scenario_success_is_not_fail(self):
        result = run_scenario("honest/basic-lead", trials=5, params={"n": 6})
        assert result.success_rate == 1.0
        assert result.fail_rate == 0.0

    def test_to_row_is_json_stable(self):
        import json

        result = run_scenario("honest/alead-uni", trials=4, params={"n": 6})
        row = result.to_row()
        assert json.loads(json.dumps(row)) == row
        assert row["trials"] == 4
        assert sum(row["outcomes"].values()) == 4

    def test_max_steps_override_fails_trials(self):
        runner = ExperimentRunner(max_steps=2)
        result = runner.run("honest/alead-uni", trials=3, params={"n": 8})
        assert result.fail_rate == 1.0

    def test_invalid_runner_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(workers=0)
        with pytest.raises(ConfigurationError):
            ExperimentRunner(chunk_size=0)
        with pytest.raises(ConfigurationError):
            ExperimentRunner().run("honest/alead-uni", trials=-1)

    def test_on_outcome_sees_every_trial(self):
        seen = []
        ExperimentRunner().run(
            "honest/alead-uni",
            trials=7,
            params={"n": 6},
            on_outcome=seen.append,
        )
        assert sorted(t.index for t in seen) == list(range(7))


class TestSweep:
    def test_expand_grid_cartesian_product(self):
        points = expand_grid({"n": [8, 16], "target": 1})
        assert points == [{"n": 8, "target": 1}, {"n": 16, "target": 1}]
        assert expand_grid(None) == [{}]
        assert expand_grid({}) == [{}]

    def test_sweep_rows_worker_invariant(self):
        def rows(workers):
            return [
                r.to_row()
                for r in sweep_scenario(
                    "attack/basic-cheat",
                    trials=8,
                    grid={"n": [8, 12], "target": [2]},
                    base_seed=1,
                    workers=workers,
                )
            ]

        assert rows(1) == rows(2)

    def test_sweep_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            list(sweep_scenario("no/such", trials=1))
