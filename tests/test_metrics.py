"""The Prometheus text-format metrics layer (:mod:`repro.metrics`).

The format itself is the contract here: every rendering test round-trips
through :func:`parse_text`, the same validator the CI smoke pipes the
live ``/metrics`` endpoints through.
"""

import threading

import pytest

from repro.metrics import (
    TEXT_CONTENT_TYPE,
    Counter,
    Gauge,
    MetricsRegistry,
    ThroughputMeter,
    parse_text,
)
from repro.util.errors import ConfigurationError


class TestFamilies:
    def test_counter_accumulates_and_renders(self):
        c = Counter("repro_things_total", "Things counted.")
        c.inc()
        c.inc(4)
        assert c.value() == 5
        lines = c.render()
        assert "# HELP repro_things_total Things counted." in lines
        assert "# TYPE repro_things_total counter" in lines
        assert "repro_things_total 5" in lines

    def test_counter_rejects_decrease(self):
        c = Counter("repro_things_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)
        c.set_total(10)
        with pytest.raises(ConfigurationError):
            c.set_total(9)
        c.set_total(10)  # equal is fine (idempotent mirror)
        assert c.value() == 10

    def test_labeled_samples_are_independent(self):
        c = Counter("repro_reports_total")
        c.inc(status="accepted")
        c.inc(2, status="duplicate")
        assert c.value(status="accepted") == 1
        assert c.value(status="duplicate") == 2
        assert c.value(status="unknown") == 0

    def test_gauge_set_inc_dec(self):
        g = Gauge("repro_depth")
        g.set(7)
        g.dec(2)
        g.inc()
        assert g.value() == 6

    def test_untouched_family_renders_zero_line(self):
        # "the counter exists and is zero" must be distinguishable from
        # "the endpoint forgot the counter".
        assert "repro_quiet_total 0" in Counter("repro_quiet_total").render()

    def test_invalid_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("bad name")
        with pytest.raises(ConfigurationError):
            Gauge("repro_ok").set(1, **{"bad-label": "x"})

    def test_clear_drops_one_label_set(self):
        g = Gauge("repro_node_healthy")
        g.set(1, node="a")
        g.set(0, node="b")
        g.clear(node="a")
        assert g.samples() == {(("node", "b"),): 0.0}


class TestRegistry:
    def test_families_are_idempotent_per_name(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_x_total")

    def test_collectors_refresh_gauges_at_render_time(self):
        reg = MetricsRegistry()
        depth = reg.gauge("repro_queue_depth")
        queue = [1, 2, 3]
        reg.collect(lambda: depth.set(len(queue)))
        assert "repro_queue_depth 3" in reg.render()
        queue.append(4)
        assert "repro_queue_depth 4" in reg.render()

    def test_render_round_trips_through_parse_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_trials_total", "Trials folded.").inc(123)
        reg.gauge("repro_node_per_trial_seconds").set(
            0.25, node='weird"name\\with\nstuff'
        )
        reg.counter("repro_untouched_total", "Never incremented.")
        families = parse_text(reg.render())
        assert families["repro_trials_total"] == [({}, 123.0)]
        assert families["repro_untouched_total"] == [({}, 0.0)]
        ((labels, value),) = families["repro_node_per_trial_seconds"]
        assert labels == {"node": 'weird"name\\with\nstuff'}
        assert value == 0.25

    def test_content_type_names_the_text_format(self):
        assert "version=0.0.4" in TEXT_CONTENT_TYPE

    def test_concurrent_increments_do_not_lose_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_hot_total")

        def spin():
            for _ in range(1000):
                c.inc(worker="w")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(worker="w") == 8000


class TestThroughputMeter:
    def test_rate_over_fake_clock(self):
        now = [0.0]
        meter = ThroughputMeter(window=10.0, clock=lambda: now[0])
        meter.observe(50)
        now[0] = 5.0
        meter.observe(50)
        assert meter.rate() == pytest.approx(100 / 5.0)

    def test_old_events_age_out(self):
        now = [0.0]
        meter = ThroughputMeter(window=10.0, clock=lambda: now[0])
        meter.observe(1000)
        now[0] = 11.0
        meter.observe(10)
        # Window span is clamped to the window; only the young event counts.
        assert meter.rate() == pytest.approx(10 / 10.0)

    def test_early_burst_is_not_an_absurd_rate(self):
        now = [0.0]
        meter = ThroughputMeter(window=60.0, clock=lambda: now[0])
        meter.observe(500)
        now[0] = 0.001
        # Span clamps at one second: 500/s, not 500000/s.
        assert meter.rate() == pytest.approx(500.0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ConfigurationError):
            ThroughputMeter(window=0)


class TestParseText:
    def test_rejects_untyped_samples(self):
        with pytest.raises(ConfigurationError):
            parse_text("repro_mystery_total 5\n")

    def test_rejects_malformed_lines(self):
        bad = "# TYPE repro_x counter\nrepro_x{open 5\n"
        with pytest.raises(ConfigurationError):
            parse_text(bad)
        with pytest.raises(ConfigurationError):
            parse_text("# TYPE repro_x counter\nrepro_x not-a-number\n")

    def test_accepts_comments_and_blank_lines(self):
        doc = (
            "# HELP repro_x_total help text\n"
            "# TYPE repro_x_total counter\n"
            "\n"
            'repro_x_total{a="1",b="2"} 3\n'
        )
        assert parse_text(doc)["repro_x_total"] == [({"a": "1", "b": "2"}, 3.0)]


class TestServeMetrics:
    """The standalone /metrics endpoint (httpd.serve_metrics) behind
    ``campaign --metrics-port``."""

    @pytest.fixture()
    def served(self):
        from repro.httpd import serve_metrics

        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "Test counter.")
        counter.inc(3)
        server, thread = serve_metrics(registry, port=0)
        try:
            host, port = server.server_address[:2]
            yield f"{host}:{port}", registry
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_metrics_is_valid_prometheus_text(self, served):
        import urllib.request

        address, _ = served
        with urllib.request.urlopen(f"http://{address}/metrics") as resp:
            assert resp.headers["Content-Type"] == TEXT_CONTENT_TYPE
            families = parse_text(resp.read().decode("utf-8"))
        assert families["repro_test_total"] == [({}, 3.0)]

    def test_scrape_runs_collectors(self, served):
        import urllib.request

        address, registry = served
        gauge = registry.gauge("repro_live", "Scrape-time gauge.")
        registry.collect(lambda: gauge.set(7))
        with urllib.request.urlopen(f"http://{address}/metrics") as resp:
            families = parse_text(resp.read().decode("utf-8"))
        assert families["repro_live"] == [({}, 7.0)]

    def test_healthz_and_unknown_path(self, served):
        import json as json_module
        import urllib.error
        import urllib.request

        address, _ = served
        with urllib.request.urlopen(f"http://{address}/healthz") as resp:
            assert json_module.loads(resp.read()) == {"ok": True}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://{address}/nope")
        assert excinfo.value.code == 404
