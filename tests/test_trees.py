"""Tests for Section 7 / Appendix F: game trees, dictators, simulated trees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees.dictator import (
    classify_protocol,
    find_assurance,
    verify_assurance,
)
from repro.trees.gametree import (
    TwoPartyProtocol,
    first_to_speak_protocol,
    output,
    send,
    wait,
    xor_coin_protocol,
)
from repro.trees.impossibility import (
    biasing_coalition,
    impossibility_certificate,
)
from repro.trees.partition import half_partition, quotient_is_tree
from repro.trees.simulated import check_k_simulated_tree, is_tree
from repro.util.errors import ConfigurationError


class TestGameTree:
    def test_xor_honest_outcomes(self):
        p = xor_coin_protocol()
        for a in (0, 1):
            for b in (0, 1):
                assert p.honest_outcome(a, b) == a ^ b

    def test_constant_protocol(self):
        p = first_to_speak_protocol(1)
        assert p.honest_outcome(0, 0) == 1

    def test_disagreeing_outputs_detected(self):
        p = TwoPartyProtocol(
            [0], [0],
            lambda i, h: output(0),
            lambda i, h: output(1),
        )
        with pytest.raises(ConfigurationError):
            p.honest_outcome(0, 0)

    def test_deadlock_detected(self):
        p = TwoPartyProtocol([0], [0], lambda i, h: wait(), lambda i, h: wait())
        with pytest.raises(ConfigurationError):
            p.honest_outcome(0, 0)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoPartyProtocol([], [0], lambda i, h: wait(), lambda i, h: wait())


class TestDictatorSearch:
    def test_xor_has_dictator_b(self):
        """B moves second, so B dictates — the classic async failure."""
        v = classify_protocol(xor_coin_protocol())
        assert v.get("dictator") == "B"
        for w in v["witnesses"]:
            assert verify_assurance(xor_coin_protocol(), w)

    def test_reversed_xor_has_dictator_a(self):
        """Swap roles: B announces first, A dictates."""

        def act_a(bit, h):
            if len(h) == 1:
                return send(bit)
            if len(h) == 2:
                return output(h[0][1] ^ h[1][1])
            return wait()

        def act_b(bit, h):
            if len(h) == 0:
                return send(bit)
            if len(h) == 2:
                return output(h[0][1] ^ h[1][1])
            return wait()

        p = TwoPartyProtocol([0, 1], [0, 1], act_a, act_b, max_depth=4)
        v = classify_protocol(p)
        assert v.get("dictator") == "A"
        for w in v["witnesses"]:
            assert verify_assurance(p, w)

    def test_constant_protocol_favorable(self):
        p = first_to_speak_protocol(1)
        a = find_assurance(p, bit_for_a=1, bit_for_b=0)
        assert a.player == "A" and a.bit == 1
        assert verify_assurance(p, a)

    def test_constant_zero(self):
        p = first_to_speak_protocol(0)
        a = find_assurance(p, bit_for_a=0, bit_for_b=1)
        assert a.player == "A" and a.bit == 0

    def test_multiround_protocol(self):
        """Two-round XOR: A sends, B sends, A sends again; majority-ish.

        Output = a1 ^ b ^ a2. The last mover (A) dictates.
        """

        def act_a(bits, h):
            if len(h) == 0:
                return send(bits[0])
            if len(h) == 2:
                return send(bits[1])
            if len(h) == 3:
                return output(h[0][1] ^ h[1][1] ^ h[2][1])
            return wait()

        def act_b(bit, h):
            if len(h) == 1:
                return send(bit)
            if len(h) == 3:
                return output(h[0][1] ^ h[1][1] ^ h[2][1])
            return wait()

        inputs_a = [(x, y) for x in (0, 1) for y in (0, 1)]
        p = TwoPartyProtocol(inputs_a, [0, 1], act_a, act_b, max_depth=6)
        v = classify_protocol(p)
        assert v.get("dictator") == "A"
        for w in v["witnesses"]:
            assert verify_assurance(p, w)


class TestSimulatedTrees:
    def test_is_tree_accepts_path(self):
        assert is_tree([1, 2, 3], [(1, 2), (2, 3)])

    def test_is_tree_rejects_cycle(self):
        assert not is_tree([1, 2, 3], [(1, 2), (2, 3), (3, 1)])

    def test_is_tree_rejects_forest(self):
        assert not is_tree([1, 2, 3, 4], [(1, 2), (3, 4)])

    def test_valid_witness_on_cycle(self):
        nodes = [1, 2, 3, 4, 5, 6]
        edges = [(i, i % 6 + 1) for i in nodes]
        mapping = {1: "x", 2: "x", 3: "x", 4: "y", 5: "y", 6: "y"}
        report = check_k_simulated_tree(nodes, edges, mapping, k=3)
        assert report["ok"]
        assert report["max_fiber_size"] == 3

    def test_oversized_fiber_rejected(self):
        nodes = [1, 2, 3, 4]
        edges = [(1, 2), (2, 3), (3, 4), (4, 1)]
        mapping = {1: "x", 2: "x", 3: "x", 4: "y"}
        report = check_k_simulated_tree(nodes, edges, mapping, k=2)
        assert not report["ok"]
        assert report["oversized_fibers"] == {"x": 3}

    def test_disconnected_fiber_rejected(self):
        nodes = [1, 2, 3, 4]
        edges = [(1, 2), (2, 3), (3, 4), (4, 1)]
        mapping = {1: "x", 3: "x", 2: "y", 4: "z"}
        report = check_k_simulated_tree(nodes, edges, mapping, k=2)
        assert "x" in report["disconnected_fibers"]

    def test_non_tree_quotient_rejected(self):
        nodes = [1, 2, 3]
        edges = [(1, 2), (2, 3), (3, 1)]
        mapping = {1: "a", 2: "b", 3: "c"}
        report = check_k_simulated_tree(nodes, edges, mapping, k=1)
        assert not report["quotient_is_tree"]

    def test_tree_is_1_simulated(self):
        nodes = [1, 2, 3, 4]
        edges = [(1, 2), (2, 3), (2, 4)]
        mapping = {v: v for v in nodes}
        assert check_k_simulated_tree(nodes, edges, mapping, k=1)["ok"]

    def test_missing_mapping_raises(self):
        with pytest.raises(ConfigurationError):
            check_k_simulated_tree([1, 2], [(1, 2)], {1: "a"}, 1)


class TestHalfPartition:
    @given(st.integers(2, 24))
    @settings(max_examples=40, deadline=None)
    def test_ring_partition_valid(self, n):
        import math

        nodes = list(range(1, n + 1))
        edges = [(i, i % n + 1) for i in nodes]
        mapping = half_partition(nodes, edges)
        sizes = {}
        for v in nodes:
            sizes[mapping[v]] = sizes.get(mapping[v], 0) + 1
        assert max(sizes.values()) <= math.ceil(n / 2)
        report = check_k_simulated_tree(
            nodes, edges, mapping, max(sizes.values())
        )
        assert report["ok"]

    def test_complete_graph_partition(self):
        n = 7
        nodes = list(range(n))
        edges = [(u, v) for u in nodes for v in nodes if u < v]
        mapping = half_partition(nodes, edges)
        assert quotient_is_tree(nodes, edges, mapping)

    def test_disconnected_rejected(self):
        with pytest.raises(ConfigurationError):
            half_partition([1, 2, 3, 4], [(1, 2), (3, 4)])

    def test_star_partition(self):
        nodes = list(range(9))
        edges = [(0, i) for i in range(1, 9)]
        mapping = half_partition(nodes, edges)
        assert quotient_is_tree(nodes, edges, mapping)


class TestImpossibility:
    def test_certificate_ring(self):
        n = 10
        nodes = list(range(1, n + 1))
        edges = [(i, i % n + 1) for i in nodes]
        cert = impossibility_certificate(nodes, edges)
        assert cert["k"] == 5
        assert cert["epsilon_bound"] == pytest.approx(0.1)

    def test_biasing_coalition_fibers(self):
        nodes = [1, 2, 3, 4, 5, 6]
        edges = [(i, i % 6 + 1) for i in nodes]
        mapping = {1: "x", 2: "x", 3: "x", 4: "y", 5: "y", 6: "y"}
        fibers = biasing_coalition(nodes, edges, mapping, k=3)
        assert sorted(map(tuple, fibers)) == [(1, 2, 3), (4, 5, 6)]

    def test_biasing_coalition_rejects_bad_witness(self):
        nodes = [1, 2, 3]
        edges = [(1, 2), (2, 3), (3, 1)]
        with pytest.raises(ConfigurationError):
            biasing_coalition(nodes, edges, {1: "a", 2: "b", 3: "c"}, 1)

    @given(st.integers(3, 16), st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_certificate_random_connected_graph(self, n, seed):
        import random

        rng = random.Random(seed)
        nodes = list(range(n))
        edges = [(i, i + 1) for i in range(n - 1)]  # spanning path
        for _ in range(n):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((min(u, v), max(u, v)))
        cert = impossibility_certificate(nodes, edges)
        import math

        assert cert["k"] <= math.ceil(n / 2)
