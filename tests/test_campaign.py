"""Tests for the campaign engine: manifests, orchestration, resume."""

import json
import os

import pytest

from repro.cli import main
from repro.experiments import (
    BudgetPolicy,
    CampaignPoint,
    PointScheduler,
    WilsonWidthPolicy,
    expand_manifest,
    known_tags,
    load_manifest,
    row_resume_key,
    run_campaign,
    run_scenario,
    scenario_names,
    scheduled_cost,
)
from repro.util.errors import ConfigurationError

SMOKE_MANIFEST = os.path.join(
    os.path.dirname(__file__), "..", "examples", "campaigns", "smoke.json"
)


def _rows(results):
    return sorted(json.dumps(r.to_row(), sort_keys=True) for r in results)


class TestManifestExpansion:
    def test_defaults_overlay_and_grid_expansion(self):
        points = expand_manifest(
            {
                "trials": 9,
                "base_seed": 5,
                "entries": [
                    {"scenario": "attack/basic-cheat",
                     "grid": {"n": [8, 12], "target": 2}},
                    {"scenario": "sync/broadcast", "trials": 3},
                ],
            }
        )
        assert [(p.scenario, p.trials, p.base_seed) for p in points] == [
            ("attack/basic-cheat", 9, 5),
            ("attack/basic-cheat", 9, 5),
            ("sync/broadcast", 3, 5),
        ]
        # params arrive resolved: defaults overlaid onto the grid point.
        assert points[0].params == {"n": 8, "cheater": 2, "target": 2}

    def test_bare_list_is_accepted_as_entries(self):
        points = expand_manifest(
            [{"scenario": "sync/broadcast", "trials": 2}]
        )
        assert len(points) == 1 and points[0].trials == 2

    def test_tag_entry_expands_to_every_scenario_with_the_tag(self):
        points = expand_manifest(
            {"trials": 2, "entries": [{"tag": "sync", "grid": {"n": 4}}]}
        )
        assert sorted(p.scenario for p in points) == scenario_names(tag="sync")

    def test_duplicate_points_are_deduplicated_by_resume_key(self):
        points = expand_manifest(
            {
                "trials": 2,
                "entries": [
                    {"scenario": "sync/broadcast", "grid": {"n": 4}},
                    {"tag": "sync", "grid": {"n": 4}},
                ],
            }
        )
        assert len(points) == len(scenario_names(tag="sync"))

    def test_budget_entries_and_campaign_budget_default(self):
        budget = {"ci_width": 0.2, "min_trials": 4, "max_trials": 16}
        points = expand_manifest(
            {
                "budget": budget,
                "entries": [
                    {"scenario": "sync/broadcast"},
                    {"scenario": "sync/ring", "trials": 5},
                ],
            }
        )
        assert points[0].trials is None
        assert points[0].budget == BudgetPolicy.from_mapping(budget)
        # an entry-level fixed trials count opts out of the default budget
        assert points[1].trials == 5 and points[1].budget is None

    @pytest.mark.parametrize(
        "manifest",
        [
            "not a manifest",
            {"entries": []},
            {"entries": [{"tag": "sync", "scenario": "sync/ring", "trials": 1}]},
            {"entries": [{"grid": {"n": 4}, "trials": 1}]},
            {"entries": [{"scenario": "no/such", "trials": 1}]},
            {"entries": [{"tag": "no-such-tag", "trials": 1}]},
            {"entries": [{"scenario": "sync/ring"}]},  # no trials anywhere
            {"entries": [{"scenario": "sync/ring", "trials": 2,
                          "budget": {"ci_width": 0.1, "min_trials": 1,
                                     "max_trials": 5}}]},
            {"entries": [{"scenario": "sync/ring", "trials": -3}]},
            {"entries": [{"scenario": "sync/ring", "trials": 1,
                          "grid": {"coalition": [1]}}]},  # unknown param
            {"entries": [{"scenario": "sync/ring", "trials": 1, "extra": 1}]},
            {"typo_entries": [], "entries": [{"scenario": "sync/ring", "trials": 1}]},
        ],
        ids=[
            "not-json-object", "empty", "scenario-and-tag", "neither",
            "unknown-scenario", "unknown-tag", "no-trials-or-budget",
            "trials-and-budget", "negative-trials", "unknown-grid-key",
            "unknown-entry-key", "unknown-top-key",
        ],
    )
    def test_invalid_manifests_fail_eagerly(self, manifest):
        with pytest.raises(ConfigurationError):
            expand_manifest(manifest)

    def test_smoke_manifest_spans_every_subsystem_tag(self):
        """The CI smoke manifest must keep covering one scenario per
        subsystem tag (and stay loadable from disk)."""
        points = load_manifest(SMOKE_MANIFEST)
        prefixes = {p.scenario.split("/", 1)[0] for p in points}
        assert {
            "honest", "attack", "sync", "tree", "cointoss", "fullinfo",
            "blocks", "fuzz", "frontier", "placement",
        } <= prefixes
        assert all(p.trials == 2 for p in points)


class TestRunCampaign:
    GRID = [
        CampaignPoint("attack/basic-cheat", {"n": n, "cheater": 2, "target": 2},
                      4, 2, None, None)
        for n in (8, 12, 16, 20)
    ] + [
        CampaignPoint("sync/broadcast", {"n": 4}, 5, 0, None, None),
        CampaignPoint(
            "fuzz/random-deviation", {"n": 16, "k": 2}, None, 0, None,
            WilsonWidthPolicy(ci_width=0.3, min_trials=8, max_trials=64),
        ),
    ]

    def test_serial_and_interleaved_rows_identical(self):
        serial = _rows(run_campaign(self.GRID, workers=1))
        interleaved = _rows(run_campaign(self.GRID, workers=4))
        assert serial == interleaved
        assert len(serial) == len(self.GRID)

    def test_rows_match_lone_run_scenario(self):
        rows = _rows(run_campaign(self.GRID[:1], workers=2))
        lone = run_scenario(
            "attack/basic-cheat", trials=4, base_seed=2,
            params={"n": 8, "target": 2},
        ).to_row()
        assert rows == [json.dumps(lone, sort_keys=True)]

    def test_completed_keys_skip_points(self):
        done = {p.key() for p in self.GRID[1:4]}
        remaining = list(run_campaign(self.GRID, workers=2, completed=done))
        assert len(remaining) == len(self.GRID) - 3

    def test_row_resume_keys_equal_point_keys(self):
        """The equation --resume relies on: a written campaign row keys
        back to exactly the point that produced it (fixed and adaptive)."""
        for result in run_campaign(self.GRID, workers=1):
            matches = [
                p for p in self.GRID if p.key() == row_resume_key(result.to_row())
            ]
            assert len(matches) == 1

    def test_hand_built_points_with_partial_params_are_resolved(self):
        """run_campaign normalises params like the manifest loader does:
        workers=1 and workers>1 agree, and the emitted row keys back to
        the resolved identity so resume works on re-runs."""
        sparse = CampaignPoint(
            "attack/basic-cheat", {"n": 8}, 4, 0, None, None
        )
        rows1 = _rows(run_campaign([sparse], workers=1))
        rows3 = _rows(run_campaign([sparse], workers=3))
        assert rows1 == rows3
        row = json.loads(rows1[0])
        assert row["params"] == {"cheater": 2, "n": 8, "target": 1}
        done = {row_resume_key(row)}
        assert list(run_campaign([sparse], workers=1, completed=done)) == []

    def test_unknown_params_fail_eagerly_at_any_worker_count(self):
        bad = CampaignPoint("attack/basic-cheat", {"nn": 8}, 2, 0, None, None)
        for workers in (1, 3):
            with pytest.raises(ConfigurationError):
                list(run_campaign([bad], workers=workers))

    def test_zero_trial_points_complete(self):
        point = CampaignPoint("sync/broadcast", {"n": 4}, 0, 0, None, None)
        for workers in (1, 3):
            (result,) = run_campaign([point], workers=workers)
            assert result.trials == 0

    def test_infeasible_point_raises_configuration_error(self):
        # k=7 rushers cannot be equally spaced on a ring of 8.
        bad = CampaignPoint(
            "attack/equal-spacing", {"n": 8, "k": 7, "target": 1}, 2, 0, None, None
        )
        for workers in (1, 3):
            with pytest.raises(ConfigurationError):
                list(run_campaign([bad], workers=workers))


class TestCampaignCli:
    def _write_manifest(self, tmp_path, trials=4):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": trials,
            "entries": [
                {"scenario": "attack/basic-cheat",
                 "grid": {"n": [8, 12], "target": 2}},
                {"scenario": "sync/broadcast", "grid": {"n": 4}},
            ],
        }))
        return manifest

    def test_campaign_writes_rows_and_reports_count(self, tmp_path, capsys):
        manifest = self._write_manifest(tmp_path)
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--workers", "2"]) == 0
        err = capsys.readouterr().err
        assert "ran 3 of 3 points" in err
        rows = [json.loads(l) for l in out.read_text().splitlines()]
        assert {r["scenario"] for r in rows} == {
            "attack/basic-cheat", "sync/broadcast"
        }

    def test_campaign_resume_runs_only_missing_points(self, tmp_path, capsys):
        """Kill-and-rerun: dropping one row from the store and resuming
        re-executes exactly that point, preserving the others verbatim."""
        manifest = self._write_manifest(tmp_path)
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out)]) == 0
        capsys.readouterr()
        lines = out.read_text().splitlines()
        survivor, dropped = lines[:2], lines[2]
        out.write_text("\n".join(survivor) + "\n")

        assert main(["campaign", str(manifest), "--out", str(out),
                     "--resume", "--workers", "auto"]) == 0
        assert "ran 1 of 3 points; 2 already in" in capsys.readouterr().err
        resumed = out.read_text().splitlines()
        assert resumed[:2] == survivor  # untouched rows preserved verbatim
        assert sorted(resumed) == sorted(lines)  # missing row regenerated

    def test_campaign_resume_with_nothing_missing_is_a_no_op(
        self, tmp_path, capsys
    ):
        manifest = self._write_manifest(tmp_path)
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out)]) == 0
        before = out.read_text()
        capsys.readouterr()
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--resume"]) == 0
        assert "ran 0 of 3 points" in capsys.readouterr().err
        assert out.read_text() == before

    def test_campaign_rows_shared_with_sweep_resume(self, tmp_path, capsys):
        """One resume store serves both commands: a sweep resuming over a
        campaign's output skips the points the campaign already ran."""
        manifest = self._write_manifest(tmp_path)
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--scenario", "attack/basic-cheat",
                     "--trials", "4", "--seed", "0",
                     "--param", "n=8,12", "--param", "target=2",
                     "--out", str(out), "--resume"]) == 0
        assert "ran 0 of 2 grid points" in capsys.readouterr().err

    def test_bad_manifest_dies_without_touching_out(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        out.write_text('{"precious": "results"}\n')
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"entries": [{"scenario": "no/such", "trials": 1}]}
        ))
        with pytest.raises(SystemExit):
            main(["campaign", str(bad), "--out", str(out)])
        missing = tmp_path / "missing.json"
        with pytest.raises(SystemExit):
            main(["campaign", str(missing), "--out", str(out)])
        assert out.read_text() == '{"precious": "results"}\n'
        assert not (tmp_path / "rows.jsonl.tmp").exists()

    def test_campaign_resume_requires_out(self, tmp_path):
        manifest = self._write_manifest(tmp_path)
        with pytest.raises(SystemExit):
            main(["campaign", str(manifest), "--resume"])


class TestAdaptiveSweepCli:
    ARGS = ["sweep", "--scenario", "attack/basic-cheat", "--trials", "500",
            "--ci-width", "0.1", "--min-trials", "16",
            "--param", "n=8", "--param", "target=2"]

    def test_adaptive_rows_carry_the_budget_and_stop_early(self, capsys):
        assert main(self.ARGS) == 0
        row = json.loads(capsys.readouterr().out.splitlines()[0])
        assert row["budget"] == {
            "ci_width": 0.1, "min_trials": 16, "max_trials": 500, "z": 1.96
        }
        assert 16 <= row["trials"] < 500  # converged before the ceiling

    def test_adaptive_rows_identical_across_worker_counts(self, capsys):
        def rows(workers):
            assert main(self.ARGS + ["--workers", str(workers)]) == 0
            return [
                json.loads(line)
                for line in capsys.readouterr().out.splitlines()
                if line.startswith("{")
            ]

        assert rows(1) == rows(4)

    def test_adaptive_resume_skips_converged_points(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        argv = self.ARGS + ["--out", str(out)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        assert "ran 0 of 1 grid points" in capsys.readouterr().err

    def test_fixed_rows_do_not_satisfy_adaptive_resume(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        fixed = ["sweep", "--scenario", "attack/basic-cheat", "--trials", "64",
                 "--param", "n=8", "--param", "target=2", "--out", str(out)]
        assert main(fixed) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--out", str(out), "--resume"]) == 0
        assert "ran 1 of 1 grid points" in capsys.readouterr().err

    def test_max_trials_without_ci_width_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "attack/basic-cheat",
                  "--max-trials", "100"])
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "attack/basic-cheat",
                  "--min-trials", "8"])

    def test_explicit_min_trials_above_ceiling_rejected_like_manifests(self):
        """The CLI and the manifest loader validate the same policy the
        same way: an explicit floor above the ceiling is an error, never
        a silent clamp (which would also change the resume identity)."""
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "attack/basic-cheat",
                  "--trials", "20", "--ci-width", "0.1",
                  "--min-trials", "100"])

    def test_implicit_min_trials_is_capped_at_the_ceiling(self, capsys):
        assert main(["sweep", "--scenario", "attack/basic-cheat",
                     "--trials", "20", "--ci-width", "0.5",
                     "--param", "n=8", "--param", "target=2"]) == 0
        row = json.loads(capsys.readouterr().out.splitlines()[0])
        assert row["budget"]["min_trials"] == 20  # default 32, capped


class TestUnknownTagError:
    def test_unknown_tag_error_lists_known_tags(self):
        """Regression: a tag matching zero scenarios used to fail with a
        bare 'no registered scenario has tag' — the fix names the tags
        that do exist, so a typo is a one-glance diagnosis."""
        with pytest.raises(ConfigurationError) as excinfo:
            expand_manifest({"entries": [{"tag": "synk", "trials": 1}]})
        message = str(excinfo.value)
        assert "synk" in message
        assert "known tags:" in message
        for tag in ("sync", "cointoss", "attack", "honest"):
            assert tag in known_tags() and tag in message


class TestPointScheduler:
    def _points(self):
        return [
            CampaignPoint("sync/broadcast", {"n": 4}, 5, 0, None, None),
            CampaignPoint(
                "attack/basic-cheat",
                {"n": 16, "cheater": 2, "target": 2},
                50, 0, None, None,
            ),
            CampaignPoint("sync/broadcast", {"n": 8}, 5, 0, None, None),
            CampaignPoint(
                "fuzz/random-deviation", {"n": 16, "k": 2}, None, 0, None,
                WilsonWidthPolicy(ci_width=0.3, min_trials=8, max_trials=4000),
            ),
            CampaignPoint("sync/broadcast", {"n": 4}, 0, 0, None, None),
        ]

    def test_manifest_order_is_the_identity(self):
        points = self._points()
        assert PointScheduler("manifest-order").order(points) == points

    def test_longest_first_is_a_deterministic_cost_sort(self):
        points = self._points()
        ordered = PointScheduler("longest-first").order(points)
        assert ordered == PointScheduler("longest-first").order(points)
        assert sorted(map(id, ordered)) == sorted(map(id, points))  # permutation
        costs = [scheduled_cost(p) for p in ordered]
        assert costs == sorted(costs, reverse=True)
        # Adaptive points are costed at their ceiling: the fuzz point's
        # 4000-trial budget outranks the 50-trial fixed point.
        assert ordered[0].scenario == "fuzz/random-deviation"
        # Zero-trial points cost nothing and sink to the tail.
        assert ordered[-1].trials == 0

    def test_equal_cost_points_keep_manifest_order(self):
        a = CampaignPoint("sync/broadcast", {"n": 4}, 10, 0, None, None)
        b = CampaignPoint("sync/broadcast", {"n": 4}, 10, 1, None, None)
        assert PointScheduler("longest-first").order([a, b]) == [a, b]
        assert PointScheduler("longest-first").order([b, a]) == [b, a]

    def test_unknown_schedule_rejected_with_known_names(self):
        with pytest.raises(ConfigurationError) as excinfo:
            PointScheduler("shortest-first")
        message = str(excinfo.value)
        assert "manifest-order" in message and "longest-first" in message

    def test_schedules_emit_identical_row_sets_on_the_smoke_manifest(self):
        """The acceptance contract: longest-first produces byte-identical
        sorted rows to manifest-order, serial and parallel."""
        points = load_manifest(SMOKE_MANIFEST)
        reference = _rows(run_campaign(points, workers=1))
        for workers in (1, 2):
            assert _rows(
                run_campaign(points, workers=workers, schedule="longest-first")
            ) == reference

    def test_schedules_emit_identical_row_sets_on_random_manifests(self):
        """Property-style: over seeded-random manifests, every schedule
        emits the same row set at every worker count."""
        import random

        rng = random.Random(0xC0FFEE)
        cheap = [
            ("sync/broadcast", {"n": [3, 4]}),
            ("sync/ring", {"n": [3, 4]}),
            ("attack/basic-cheat", {"n": [8, 12], "target": [2, 3]}),
            ("fullinfo/baton", {"n": [8, 10], "k": [2]}),
        ]
        for _ in range(4):
            entries = []
            for _ in range(rng.randint(1, 3)):
                scenario, full_grid = rng.choice(cheap)
                grid = {
                    key: rng.sample(values, rng.randint(1, len(values)))
                    for key, values in full_grid.items()
                    if rng.random() < 0.8
                }
                entry = {"scenario": scenario, "grid": grid}
                if rng.random() < 0.25:
                    entry["budget"] = {
                        "ci_width": 0.5,
                        "min_trials": rng.randint(1, 3),
                        "max_trials": 8,
                    }
                else:
                    entry["trials"] = rng.randint(1, 4)
                if rng.random() < 0.5:
                    entry["base_seed"] = rng.randint(0, 3)
                entries.append(entry)
            points = expand_manifest(entries)
            reference = _rows(run_campaign(points, workers=1))
            for schedule in ("manifest-order", "longest-first"):
                for workers in (1, 2):
                    rows = _rows(
                        run_campaign(points, workers=workers, schedule=schedule)
                    )
                    assert rows == reference, (schedule, workers, entries)

    def test_resume_keys_survive_a_schedule_change(self):
        """--schedule can change between a run and its --resume: the keys
        are schedule-independent, so everything already done stays done."""
        points = self._points()[:3]
        done = {p.key() for p in points}
        remaining = list(
            run_campaign(points, workers=1, completed=done,
                         schedule="longest-first")
        )
        assert remaining == []


class TestCampaignDryRun:
    def _manifest(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 3,
            "entries": [
                {"scenario": "attack/basic-cheat",
                 "grid": {"n": [8, 12], "target": 2}},
                {"scenario": "sync/broadcast", "grid": {"n": 4},
                 "budget": {"ci_width": 0.5, "min_trials": 2,
                            "max_trials": 16}},
            ],
        }))
        return manifest

    def test_dry_run_lists_every_point_with_cost_and_status(
        self, tmp_path, capsys
    ):
        manifest = self._manifest(tmp_path)
        assert main(["campaign", str(manifest), "--dry-run"]) == 0
        out, err = capsys.readouterr()
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(line.startswith("pending") for line in lines)
        assert all("cost=" in line for line in lines)
        assert "trials=3" in lines[0]
        assert "budget=wilson-width[max_trials=16]" in lines[2]
        assert "3 points" in err and "3 to run" in err

    def test_dry_run_reports_satisfied_resume_keys(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path)
        out_file = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out_file)]) == 0
        capsys.readouterr()
        # Drop one row: exactly one point must come back as pending.
        lines = out_file.read_text().splitlines()
        out_file.write_text("\n".join(lines[1:]) + "\n")
        assert main(["campaign", str(manifest), "--dry-run",
                     "--out", str(out_file)]) == 0
        out, err = capsys.readouterr()
        statuses = [line.split()[0] for line in out.splitlines()]
        assert sorted(statuses) == ["done", "done", "pending"]
        assert "2 already in" in err and "1 to run" in err
        # Without --resume the real run would recompute the 'done'
        # points — the summary must say how to make the plan real.
        assert "add --resume to skip them" in err
        assert main(["campaign", str(manifest), "--dry-run",
                     "--out", str(out_file), "--resume"]) == 0
        _, err = capsys.readouterr()
        assert "add --resume" not in err

    def test_dry_run_respects_the_schedule(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path)
        assert main(["campaign", str(manifest), "--dry-run",
                     "--schedule", "longest-first"]) == 0
        out, err = capsys.readouterr()
        costs = [
            int(line.split("cost=")[1].split()[0])
            for line in out.splitlines()
        ]
        assert costs == sorted(costs, reverse=True)
        assert "schedule=longest-first" in err

    def test_dry_run_runs_nothing_and_never_touches_out(
        self, tmp_path, capsys
    ):
        manifest = self._manifest(tmp_path)
        out_file = tmp_path / "rows.jsonl"
        out_file.write_text('{"precious": "results"}\n')
        assert main(["campaign", str(manifest), "--dry-run",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert out_file.read_text() == '{"precious": "results"}\n'
        assert not (tmp_path / "rows.jsonl.tmp").exists()

    def test_dry_run_still_validates_the_manifest_eagerly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            {"entries": [{"scenario": "no/such", "trials": 1}]}
        ))
        with pytest.raises(SystemExit):
            main(["campaign", str(bad), "--dry-run"])


class TestManifestBudgetPolicies:
    def test_named_policies_run_from_manifests_and_key_separately(self):
        """All three registered policies are reachable from manifest JSON
        and their rows resume only against their own policy."""
        entries = [
            {"scenario": "attack/basic-cheat", "grid": {"n": 8, "target": 2},
             "budget": {"policy": "wilson-width", "ci_width": 0.4,
                        "min_trials": 4, "max_trials": 32}},
            {"scenario": "attack/basic-cheat", "grid": {"n": 8, "target": 2},
             "budget": {"policy": "relative-precision", "rel_precision": 0.4,
                        "min_trials": 4, "max_trials": 32}},
            {"scenario": "attack/basic-cheat", "grid": {"n": 8, "target": 2},
             "budget": {"policy": "fail-rate-target", "target": 0.5,
                        "min_trials": 4, "max_trials": 32}},
        ]
        points = expand_manifest(entries)
        assert len(points) == 3  # same numerics, three distinct keys
        results = list(run_campaign(points, workers=2))
        assert len(results) == 3
        for result, point in zip(
            sorted(results, key=lambda r: r.budget.policy),
            sorted(points, key=lambda p: p.budget.policy),
        ):
            assert row_resume_key(result.to_row()) == point.key()

    def test_unknown_policy_in_manifest_fails_eagerly(self):
        with pytest.raises(ConfigurationError):
            expand_manifest([{
                "scenario": "sync/broadcast",
                "budget": {"policy": "no-such", "min_trials": 1,
                           "max_trials": 2},
            }])


class TestCampaignMetricsPort:
    """``campaign --metrics-port``: the single-host /metrics surface."""

    def _manifest(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 4,
            "entries": [
                {"scenario": "attack/basic-cheat",
                 "grid": {"n": [8, 12], "target": 2}},
            ],
        }))
        return manifest

    def test_rows_are_identical_with_and_without_the_endpoint(
        self, tmp_path, capsys
    ):
        manifest = self._manifest(tmp_path)
        plain, metered = tmp_path / "plain.jsonl", tmp_path / "metered.jsonl"
        assert main(["campaign", str(manifest), "--out", str(plain)]) == 0
        assert main(["campaign", str(manifest), "--out", str(metered),
                     "--metrics-port", "0"]) == 0
        err = capsys.readouterr().err
        assert "/metrics" in err
        assert sorted(plain.read_text().splitlines()) == sorted(
            metered.read_text().splitlines()
        )

    def test_registry_observes_the_result_stream(self, tmp_path):
        from repro.cli import _campaign_metrics
        from repro.experiments import WorkerPool
        from repro.metrics import parse_text

        points = load_manifest(str(self._manifest(tmp_path)))
        with WorkerPool(1) as pool:
            registry, observe = _campaign_metrics(pool, None, len(points))
            results = list(observe(run_campaign(points, pool=pool)))
        assert len(results) == 2
        families = parse_text(registry.render())
        assert families["repro_points_total"] == [({}, 2.0)]
        assert families["repro_points_completed"] == [({}, 2.0)]
        assert families["repro_trials_total"] == [({}, 8.0)]
        assert families["repro_pool_workers"] == [({}, 1.0)]

    def test_rejected_alongside_coordinate(self, tmp_path):
        manifest = self._manifest(tmp_path)
        with pytest.raises(SystemExit, match="redundant with --coordinate"):
            main(["campaign", str(manifest), "--coordinate",
                  "--listen", "127.0.0.1:0", "--metrics-port", "0",
                  "--out", str(tmp_path / "rows.jsonl")])
