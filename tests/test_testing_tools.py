"""Tests for the scripted/fuzz adversary scaffolding."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.placement import RingPlacement
from repro.sim.execution import ABORT, FAIL, run_protocol
from repro.sim.topology import unidirectional_ring
from repro.testing import (
    FuzzBehavior,
    RandomDeviationStrategy,
    ScriptedStrategy,
    Step,
    deviation_search,
    random_deviation_protocol,
)
from repro.util.errors import ConfigurationError


class TestScripted:
    def test_wakeup_step_sends(self):
        ring = unidirectional_ring(2)
        proto = {
            1: ScriptedStrategy([Step(sends=(7,), terminate="done")]),
            2: ScriptedStrategy([Step(terminate="done")]),
        }
        res = run_protocol(ring, proto)
        assert res.outcome == "done"
        assert res.trace.sent_values(1) == [7]

    def test_receive_steps_in_order(self):
        ring = unidirectional_ring(2)
        proto = {
            1: ScriptedStrategy(
                [Step(sends=(1, 2, 3), terminate=0)]
            ),
            2: ScriptedStrategy(
                [Step(), Step(), Step(), Step(terminate=0)]
            ),
        }
        res = run_protocol(ring, proto)
        strat2 = proto[2]
        assert [v for v, _ in strat2.history] == [1, 2, 3]

    def test_abort_step(self):
        ring = unidirectional_ring(2)
        proto = {
            1: ScriptedStrategy([Step(abort=True)]),
            2: ScriptedStrategy([Step(terminate=1)]),
        }
        res = run_protocol(ring, proto)
        assert res.failed
        assert res.outputs[1] == ABORT

    def test_exhausted_script_is_silent(self):
        ring = unidirectional_ring(2)
        proto = {
            1: ScriptedStrategy([Step(sends=(1, 2))]),  # never terminates
            2: ScriptedStrategy([Step(terminate=0), Step()]),
        }
        res = run_protocol(ring, proto)
        assert res.failed  # processor 1 never terminated
        assert "never terminated" in res.fail_reason


class TestFuzzBehavior:
    def test_sample_fields_in_range(self):
        rng = random.Random(3)
        for _ in range(50):
            b = FuzzBehavior.sample(12, rng)
            assert len(b.weights) == 5
            assert all(w > 0 for w in b.weights)
            assert 1 <= b.burst_at <= 12
            assert 0 <= b.burst_len < 4
            assert b.lifetime == 12

    def test_strategy_deterministic_given_behavior(self):
        n = 9
        ring = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, 2)
        rng = random.Random(5)
        behaviors = [FuzzBehavior.sample(n, rng) for _ in range(2)]
        r1 = run_protocol(
            ring, random_deviation_protocol(ring, pl, behaviors), seed=4
        )
        r2 = run_protocol(
            ring, random_deviation_protocol(ring, pl, behaviors), seed=4
        )
        assert r1.outcome == r2.outcome
        assert [e for e in r1.trace] == [e for e in r2.trace]

    def test_protocol_requires_matching_behaviors(self):
        ring = unidirectional_ring(8)
        pl = RingPlacement.equal_spacing(8, 2)
        with pytest.raises(ConfigurationError):
            random_deviation_protocol(ring, pl, [])


class TestDeviationSearch:
    def test_report_accounting(self):
        rep = deviation_search(12, 2, samples=30, master_seed=7)
        assert rep.samples == 30
        assert rep.punished + sum(rep.valid_outcomes.values()) == 30
        assert 0 <= rep.punishment_rate <= 1

    def test_random_deviations_never_bias(self):
        """The Theorem 5.1 fuzz property: sampled deviations either get
        punished or leave no outcome with concentrated mass."""
        rep = deviation_search(16, 2, samples=80, master_seed=11)
        assert rep.max_outcome_rate <= 0.15  # << forcing (would be ~1.0)

    @given(seed=st.integers(0, 10**4))
    @settings(max_examples=5, deadline=None)
    def test_punishment_dominates_property(self, seed):
        rep = deviation_search(12, 2, samples=25, master_seed=seed)
        assert rep.punishment_rate > 0.8
