"""util/mtcompat: the CPython↔numpy MT19937 bridge, fallbacks included.

The vectorized batch kernels stand on :func:`mt_random_state` returning
either a *bit-identical* stream or ``None`` (never "close enough"), so
the fallback branches — a seed that fits one 32-bit word, and an
interpreter without numpy — get exercised here explicitly: in the
numpy-equipped CI image they otherwise only run by accident.
"""

import random

import pytest

from repro.util import mtcompat
from repro.util.mtcompat import HAVE_NUMPY, mt_key_words, mt_random_state

BIG_SEED = (123 << 64) | (456 << 32) | 789  # three 32-bit words


class TestKeyWords:
    def test_zero_is_the_single_zero_word(self):
        assert mt_key_words(0) == [0]

    def test_words_are_little_endian_32_bit(self):
        assert mt_key_words(BIG_SEED) == [789, 456, 123]
        assert mt_key_words(2**32) == [0, 1]
        assert mt_key_words(2**32 - 1) == [0xFFFFFFFF]

    @pytest.mark.parametrize("seed", [1, 2**31, 2**32 + 7, BIG_SEED])
    def test_round_trips_back_to_the_seed(self, seed):
        words = mt_key_words(seed)
        assert sum(w << (32 * i) for i, w in enumerate(words)) == seed


class TestOneWordSeedFallback:
    """Seeds below 2**32: numpy's scalar-seed path (init_genrand)
    diverges from CPython's init_by_array, so no state is offered —
    with or without numpy present."""

    @pytest.mark.parametrize("seed", [0, 1, 12345, 2**32 - 1])
    def test_returns_none(self, seed):
        assert mt_random_state(seed) is None

    def test_into_is_untouched_on_the_fallback(self):
        if not HAVE_NUMPY:
            pytest.skip("needs numpy to build the reusable state")
        import numpy as np

        state = np.random.RandomState(0)
        before = state.get_state()[1].tolist()
        assert mt_random_state(7, into=state) is None
        assert state.get_state()[1].tolist() == before

    def test_boundary_seed_gets_a_state(self):
        if not HAVE_NUMPY:
            pytest.skip("needs numpy")
        assert mt_random_state(2**32) is not None


class TestNoNumpyFallback:
    """The no-numpy branch: every call answers None and the callers'
    scalar path carries the whole load."""

    def test_returns_none_for_every_seed(self, monkeypatch):
        monkeypatch.setattr(mtcompat, "_np", None)
        assert mt_random_state(BIG_SEED) is None
        assert mt_random_state(2**32) is None
        assert mt_random_state(1) is None

    def test_into_is_untouched_without_numpy(self, monkeypatch):
        if not HAVE_NUMPY:
            pytest.skip("needs numpy to build the reusable state")
        import numpy as np

        state = np.random.RandomState(3)
        before = state.get_state()[1].tolist()
        monkeypatch.setattr(mtcompat, "_np", None)
        assert mt_random_state(BIG_SEED, into=state) is None
        assert state.get_state()[1].tolist() == before

    def test_key_words_need_no_numpy(self, monkeypatch):
        monkeypatch.setattr(mtcompat, "_np", None)
        assert mt_key_words(BIG_SEED) == [789, 456, 123]


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy")
class TestBitIdentity:
    def test_stream_matches_cpython_random(self):
        rng = random.Random(BIG_SEED)
        state = mt_random_state(BIG_SEED)
        assert state.random_sample(64).tolist() == [
            rng.random() for _ in range(64)
        ]

    def test_into_reseeds_in_place_identically(self):
        fresh = mt_random_state(BIG_SEED)
        reused = mt_random_state(2**32)  # arbitrary pre-used state
        reused.random_sample(8)  # advance it so the reseed must matter
        assert mt_random_state(BIG_SEED, into=reused) is reused
        assert reused.random_sample(16).tolist() == (
            fresh.random_sample(16).tolist()
        )
