"""Unit tests for the analysis toolkit."""

import pytest

from repro.analysis.bias import BiasReport, attack_success_rate, empirical_bias
from repro.analysis.distribution import (
    OutcomeDistribution,
    chi_square_uniformity,
    estimate_distribution,
)
from repro.analysis.sync import honest_sync_profile, sync_gap_for
from repro.attacks.basic_cheat import basic_cheat_protocol
from repro.protocols.alead_uni import alead_uni_protocol
from repro.sim.execution import FAIL, run_protocol
from repro.sim.topology import unidirectional_ring


class TestDistribution:
    def test_histogram_counts(self):
        topo = unidirectional_ring(4)
        dist = estimate_distribution(topo, alead_uni_protocol, trials=50)
        assert dist.trials == 50
        assert sum(dist.counts.values()) == 50
        assert dist.fail_count == 0

    def test_probability(self):
        dist = OutcomeDistribution(n=4, trials=10)
        dist.counts[2] = 5
        dist.counts[FAIL] = 5
        assert dist.probability(2) == 0.5
        assert dist.fail_rate == 0.5
        assert dist.max_probability() == 0.5

    def test_zero_trials_safe(self):
        dist = OutcomeDistribution(n=4, trials=0)
        assert dist.fail_rate == 0.0
        assert dist.max_probability() == 0.0

    def test_chi_square_uniform_accepts(self):
        dist = OutcomeDistribution(n=4, trials=400)
        for j in range(1, 5):
            dist.counts[j] = 100
        assert chi_square_uniformity(dist) > 0.9

    def test_chi_square_skew_rejects(self):
        dist = OutcomeDistribution(n=4, trials=400)
        dist.counts[1] = 400
        assert chi_square_uniformity(dist) < 1e-6

    def test_chi_square_empty(self):
        assert chi_square_uniformity(OutcomeDistribution(n=4, trials=0)) == 1.0

    def test_fallback_matches_scipy(self):
        from repro.analysis.distribution import _chi2_sf
        from scipy.stats import chi2

        for stat, dof in [(3.0, 3), (10.0, 7), (25.0, 15)]:
            assert _chi2_sf(stat, dof) == pytest.approx(
                float(chi2.sf(stat, dof)), abs=0.01
            )


class TestBias:
    def test_honest_bias_near_zero(self):
        topo = unidirectional_ring(4)
        report = empirical_bias(topo, alead_uni_protocol, trials=200)
        assert report.fail_rate == 0.0
        assert report.epsilon < 0.15  # sampling noise at 200 trials

    def test_attack_bias_near_one(self):
        topo = unidirectional_ring(6)
        report = empirical_bias(
            topo, lambda t: basic_cheat_protocol(t, 2, 3), trials=40
        )
        assert report.max_probability == 1.0
        assert report.epsilon == pytest.approx(1 - 1 / 6)

    def test_attack_success_rate(self):
        topo = unidirectional_ring(6)
        rate = attack_success_rate(
            topo,
            lambda t, w: basic_cheat_protocol(t, 2, w),
            target=5,
            trials=20,
        )
        assert rate == 1.0

    def test_report_epsilon_clamped(self):
        report = BiasReport(n=10, trials=5, max_probability=0.05, fail_rate=0)
        assert report.epsilon == 0.0


class TestSync:
    def test_gap_helpers(self):
        topo = unidirectional_ring(8)
        res = run_protocol(topo, alead_uni_protocol(topo), seed=4)
        assert sync_gap_for(res) <= 1
        profile = honest_sync_profile(res, coalition=[2, 6])
        assert set(profile) == {"overall", "coalition", "honest"}
        assert profile["coalition"] <= profile["overall"] + 1
