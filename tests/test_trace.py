"""Unit tests for Trace analytics (sent counters, sync gaps)."""

from repro.sim.events import ReceiveEvent, SendEvent, TerminateEvent
from repro.sim.execution import run_protocol
from repro.sim.topology import unidirectional_ring
from repro.sim.trace import Trace


def _send(t, s, r, v, seq):
    return SendEvent(t, s, r, v, seq)


class TestTraceViews:
    def test_sends_by_and_values(self):
        tr = Trace()
        tr.append(_send(1, "a", "b", 10, 1))
        tr.append(_send(2, "b", "a", 20, 1))
        tr.append(_send(3, "a", "b", 30, 2))
        assert tr.sent_values("a") == [10, 30]
        assert tr.sent_count("a") == 2
        assert tr.sent_count("b") == 1

    def test_receives_by(self):
        tr = Trace()
        tr.append(ReceiveEvent(1, "a", "b", 5, 1))
        assert tr.received_values("b") == [5]
        assert tr.received_values("a") == []

    def test_termination_outputs(self):
        tr = Trace()
        tr.append(TerminateEvent(1, "a", 42))
        assert tr.termination_outputs() == {"a": 42}

    def test_empty_trace_gap(self):
        assert Trace().max_sync_gap() == 0

    def test_gap_simple(self):
        tr = Trace()
        tr.append(_send(1, "a", "b", 0, 1))
        tr.append(_send(2, "a", "b", 0, 2))
        tr.append(_send(3, "b", "a", 0, 1))
        # After event 2: a sent 2, b sent 0 -> gap 2.
        assert tr.max_sync_gap(["a", "b"]) == 2

    def test_gap_subset(self):
        tr = Trace()
        tr.append(_send(1, "a", "b", 0, 1))
        tr.append(_send(2, "c", "d", 0, 1))
        assert tr.max_sync_gap(["a", "c"]) == 1

    def test_counter_series_shape(self):
        tr = Trace()
        tr.append(_send(1, "a", "b", 0, 1))
        tr.append(ReceiveEvent(2, "a", "b", 0, 1))
        series = tr.sent_counter_series(["a"])
        assert series["a"] == [1, 1]


class TestHonestSyncInvariants:
    """Honest A-LEADuni is 1-synchronized (Section 6 discussion)."""

    def test_alead_gap_is_one(self):
        from repro.protocols.alead_uni import alead_uni_protocol

        for n in (4, 9, 17):
            topo = unidirectional_ring(n)
            res = run_protocol(topo, alead_uni_protocol(topo), seed=n)
            assert res.trace.max_sync_gap() <= 1

    def test_phase_async_gap_small(self):
        from repro.protocols.phase_async import phase_async_protocol

        for n in (4, 9, 17):
            topo = unidirectional_ring(n)
            res = run_protocol(topo, phase_async_protocol(topo), seed=n)
            # One data + one validation in flight per round: gap <= 2.
            assert res.trace.max_sync_gap() <= 2
