"""Tests for the Afek et al. building blocks (knowledge/consensus/renaming)."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.distribution import (
    OutcomeDistribution,
    chi_square_uniformity,
)
from repro.blocks import (
    fair_consensus_protocol,
    fair_renaming_protocol,
    knowledge_sharing_protocol,
)
from repro.blocks.renaming import my_name
from repro.sim.execution import FAIL, run_protocol
from repro.sim.topology import Topology, unidirectional_ring
from repro.util.errors import ConfigurationError


class TestKnowledgeSharing:
    @pytest.mark.parametrize("n", [2, 3, 5, 9, 16])
    def test_everyone_learns_everything(self, n):
        ring = unidirectional_ring(n)
        proto = knowledge_sharing_protocol(
            ring, payload_fn=lambda ctx: ctx.rng.randrange(1000)
        )
        res = run_protocol(ring, proto, seed=n)
        assert not res.failed, res.fail_reason
        # Unanimous vector: everyone holds the same attribution.
        assert len(set(res.outputs.values())) == 1
        vector = res.outcome
        assert len(vector) == n
        # Attribution correct: entry i-1 is processor i's payload.
        for pid in ring.nodes:
            assert vector[pid - 1] == proto[pid].payload

    @given(n=st.integers(2, 14), seed=st.integers(0, 10**5))
    @settings(max_examples=25, deadline=None)
    def test_property_attribution(self, n, seed):
        ring = unidirectional_ring(n)
        proto = knowledge_sharing_protocol(
            ring, payload_fn=lambda ctx: ctx.rng.randrange(10**6)
        )
        res = run_protocol(ring, proto, seed=seed)
        assert not res.failed
        for pid in ring.nodes:
            assert res.outcome[pid - 1] == proto[pid].payload

    def test_arbitrary_payloads(self):
        ring = unidirectional_ring(4)
        proto = knowledge_sharing_protocol(
            ring, payload_fn=lambda ctx: ("blob", ctx.rng.random())
        )
        res = run_protocol(ring, proto, seed=1)
        assert not res.failed
        assert all(v[0] == "blob" for v in res.outcome)

    def test_requires_canonical_ids(self):
        topo = Topology(["a", "b"], [("a", "b"), ("b", "a")])
        with pytest.raises(ConfigurationError):
            knowledge_sharing_protocol(topo, payload_fn=lambda ctx: 0)

    def test_message_counts_match_alead(self):
        """The block inherits A-LEADuni's n-messages-per-processor shape."""
        n = 8
        ring = unidirectional_ring(n)
        proto = knowledge_sharing_protocol(ring, payload_fn=lambda ctx: 1)
        res = run_protocol(ring, proto, seed=0)
        for pid in ring.nodes:
            assert res.trace.sent_count(pid) == n


class TestFairConsensus:
    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_decides_some_input(self, n):
        ring = unidirectional_ring(n)
        inputs = {pid: f"input-{pid}" for pid in ring.nodes}
        res = run_protocol(
            ring, fair_consensus_protocol(ring, lambda p: inputs[p]), seed=n
        )
        assert not res.failed, res.fail_reason
        assert res.outcome in inputs.values()

    def test_decision_uniform_over_inputs(self):
        n = 5
        ring = unidirectional_ring(n)
        counts = Counter()
        for s in range(300):
            res = run_protocol(
                ring, fair_consensus_protocol(ring, lambda p: p), seed=s
            )
            assert not res.failed
            counts[res.outcome] += 1
        dist = OutcomeDistribution(n=n, trials=300, counts=counts)
        assert chi_square_uniformity(dist) > 1e-4

    def test_agreement(self):
        """All processors decide the same value (consensus validity)."""
        ring = unidirectional_ring(6)
        res = run_protocol(
            ring, fair_consensus_protocol(ring, lambda p: p * 11), seed=2
        )
        assert len(set(res.outputs.values())) == 1

    @given(seed=st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_property_validity(self, seed):
        n = 7
        ring = unidirectional_ring(n)
        res = run_protocol(
            ring, fair_consensus_protocol(ring, lambda p: ("v", p)), seed=seed
        )
        assert not res.failed
        assert res.outcome in {("v", p) for p in range(1, n + 1)}


class TestFairRenaming:
    @pytest.mark.parametrize("n", [2, 4, 7, 12])
    def test_names_are_a_rotation(self, n):
        ring = unidirectional_ring(n)
        res = run_protocol(ring, fair_renaming_protocol(ring), seed=n)
        assert not res.failed, res.fail_reason
        names = [my_name(res.outcome, pid) for pid in ring.nodes]
        assert sorted(names) == list(range(1, n + 1))
        # Order preserved: successor's name is mine + 1 (mod n).
        for pid in ring.nodes:
            succ = pid % n + 1
            assert my_name(res.outcome, succ) == names[pid - 1] % n + 1

    def test_each_name_uniform(self):
        n = 5
        ring = unidirectional_ring(n)
        counts = Counter()
        for s in range(300):
            res = run_protocol(ring, fair_renaming_protocol(ring), seed=s)
            counts[my_name(res.outcome, 1)] += 1
        dist = OutcomeDistribution(n=n, trials=300, counts=counts)
        assert chi_square_uniformity(dist) > 1e-4

    def test_my_name_rejects_unknown(self):
        ring = unidirectional_ring(3)
        res = run_protocol(ring, fair_renaming_protocol(ring), seed=1)
        with pytest.raises(ConfigurationError):
            my_name(res.outcome, 9)


class TestBlocksUnderAttack:
    def test_rushing_coalition_steers_position_but_is_punished(self):
        """The blocks inherit the ring's attack surface *and* punishment.

        A rushing coalition can steer every segment's residue sum to a
        target position (the A-LEADuni attack applied to the residue
        component of the payload). But rushing scrambles the *payload
        attribution* — different segments reconstruct different values at
        the elected position — so consensus outputs disagree and the
        outcome is FAIL: the deviation steers the election yet cannot
        silently hijack the decided value.
        """
        from repro.attacks.equal_spacing import RushingAdversary
        from repro.attacks.placement import RingPlacement
        from repro.protocols.outcome import id_to_residue, residue_to_id
        from repro.util.modmath import canonical_mod

        n, k = 25, 5
        ring = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        target = 13

        class ConsensusRusher(RushingAdversary):
            """Rushes (input, residue) payloads, steering residue sums."""

            def on_receive(self, ctx, value, sender):
                self.received.append(value)
                count = len(self.received)
                if count < self.n - self.k:
                    ctx.send_next(value)
                    return
                if count > self.n - self.k:
                    return
                ctx.send_next(value)
                residues = sum(v[1] for v in self.received) % self.n
                replay = self.received[-self.segment_length:]
                m_res = canonical_mod(
                    id_to_residue(target, self.n)
                    - residues
                    - sum(v[1] for v in replay),
                    self.n,
                )
                ctx.send_next(("fake", m_res))
                for _ in range(self.k - self.segment_length - 1):
                    ctx.send_next(("fake", 0))
                for v in replay:
                    ctx.send_next(v)
                ctx.terminate(None)

        inputs = {pid: f"input-{pid}" for pid in ring.nodes}
        protocol = fair_consensus_protocol(ring, lambda p: inputs[p])
        for j, pid in enumerate(pl.positions):
            protocol[pid] = ConsensusRusher(n, k, pl.distances()[j], target)
        res = run_protocol(ring, protocol, seed=3)

        # The steering itself worked: every adversary's outgoing residue
        # sum names the target position.
        for pid in pl.positions:
            sent = res.trace.sent_values(pid)[:n]
            total = sum(v[1] for v in sent) % n
            assert residue_to_id(total, n) == target

        # ...but attribution scrambling makes honest outputs disagree, so
        # the run is punished rather than silently hijacked.
        honest_outputs = {
            out for pid, out in res.outputs.items()
            if pid not in set(pl.positions)
        }
        assert len(honest_outputs) > 1
        assert res.outcome == FAIL

    def test_rushing_coalition_fully_hijacks_renaming(self):
        """Contrast: renaming's output is a function of the residue sum
        *alone* (a rotation), so steering the sum hijacks the whole name
        assignment undetectably — no attribution scrambling can save it.

        The paper's lesson in miniature: an output rule that depends
        only on a steerable statistic is controlled outright; one that
        depends on the full attributed transcript (consensus) at least
        converts the attack into a punished failure; PhaseAsyncLead's
        random f makes even steering infeasible below √n.
        """
        from repro.attacks.equal_spacing import RushingAdversary
        from repro.attacks.placement import RingPlacement
        from repro.protocols.outcome import id_to_residue
        from repro.util.modmath import canonical_mod

        n, k = 25, 5
        ring = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        target_leader = 7  # the position that will receive name 1

        class RenamingRusher(RushingAdversary):
            def _burst(self, ctx):
                l = self.segment_length
                total = sum(self.received) % self.n
                replay = self.received[len(self.received) - l:]
                m_value = canonical_mod(
                    id_to_residue(target_leader, self.n)
                    - total
                    - sum(replay),
                    self.n,
                )
                ctx.send_next(m_value)
                for _ in range(self.k - l - 1):
                    ctx.send_next(0)
                for v in replay:
                    ctx.send_next(v)
                expected = tuple(
                    (pos, (pos - target_leader) % self.n + 1)
                    for pos in range(1, self.n + 1)
                )
                ctx.terminate(expected)

        protocol = fair_renaming_protocol(ring)
        for j, pid in enumerate(pl.positions):
            protocol[pid] = RenamingRusher(n, k, pl.distances()[j], 0)
        res = run_protocol(ring, protocol, seed=6)
        assert not res.failed, res.fail_reason
        assert my_name(res.outcome, target_leader) == 1  # coalition's pick
