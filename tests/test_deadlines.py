"""Campaign robustness: deadlines, observed-cost scheduling, crash-safe
resume. The unattended-overnight contract, end to end:

- a pathological grid point is abandoned under ``--point-timeout`` while
  every other point's row stays byte-identical to an unguarded run;
- the global ``--max-wall-clock`` deadline checkpoints and exits with a
  distinct code;
- timed-out rows, torn trailing lines, and blank lines can only cause a
  re-run, never a skip or a crash;
- the ``CostModel`` feeds ``longest-first`` observed per-trial seconds
  deterministically at any worker count;
- ``KeyboardInterrupt`` tears worker processes down and leaves a
  resumable ``--out`` file (exercised with a real subprocess kill).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import EXIT_DEADLINE, main
from repro.experiments import (
    CampaignDeadline,
    CampaignPoint,
    CostModel,
    PointScheduler,
    RowWriter,
    ScenarioSpec,
    WorkerPool,
    load_completed_keys,
    load_cost_model,
    register_scenario,
    row_resume_key,
    run_campaign,
    run_scenario,
    scheduled_cost,
    timing_record,
    timings_path,
    unregister_scenario,
)
from repro.util.errors import ConfigurationError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SLEEPY = "test/sleepy"


def _sleepy_trial(params, registry, max_steps):
    """One deterministic-outcome trial that burns ``delay`` wall-clock
    seconds — module-level so the spec pickles to forked workers."""
    time.sleep(params["delay"])
    return registry.stream("trial").randrange(params["n"]) + 1, 1


@pytest.fixture
def sleepy_scenario():
    spec = ScenarioSpec(
        name=SLEEPY,
        description="deterministic outcomes, configurable per-trial seconds",
        run_trial=_sleepy_trial,
        defaults={"n": 4, "delay": 0.005},
        tags=("test",),
    )
    register_scenario(spec, replace=True)
    yield spec
    unregister_scenario(SLEEPY)


def _point(scenario, params, trials, base_seed=0):
    return CampaignPoint(scenario, params, trials, base_seed, None, None)


def _row_set(results):
    return sorted(json.dumps(r.to_row(), sort_keys=True) for r in results)


class TestPointTimeout:
    def _manifest_points(self):
        # One pathological point (0.25s of sleeping) among fast ones.
        return [
            _point("attack/basic-cheat", {"n": 8, "cheater": 2, "target": 2}, 4),
            _point(SLEEPY, {"n": 4, "delay": 0.005}, 50),
            _point("sync/broadcast", {"n": 4}, 5),
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_slow_point_times_out_and_others_are_byte_identical(
        self, sleepy_scenario, workers
    ):
        """The acceptance contract: under --point-timeout the campaign
        completes, the slow point comes back timed_out, and every other
        point's row is byte-identical to an unguarded run."""
        points = self._manifest_points()
        unguarded = {
            r.scenario: json.dumps(r.to_row(), sort_keys=True)
            for r in run_campaign(points, workers=workers, chunk_size=1)
        }
        guarded = list(
            run_campaign(
                points, workers=workers, chunk_size=1, point_timeout=0.05
            )
        )
        assert len(guarded) == len(points)
        by_scenario = {r.scenario: r for r in guarded}
        slow = by_scenario[SLEEPY]
        assert slow.timed_out
        assert 0 < slow.trials < 50  # partial fold of what actually ran
        assert slow.to_row()["timed_out"] is True
        for result in guarded:
            if result.scenario == SLEEPY:
                continue
            assert not result.timed_out
            assert (
                json.dumps(result.to_row(), sort_keys=True)
                == unguarded[result.scenario]
            )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_timed_out_row_is_retried_on_rerun(self, sleepy_scenario, workers):
        points = self._manifest_points()
        rows = [
            r.to_row()
            for r in run_campaign(
                points, workers=workers, chunk_size=1, point_timeout=0.05
            )
        ]
        completed = load_completed_keys(
            json.dumps(row, sort_keys=True) for row in rows
        )
        retried = [
            p for p in points if p.key() not in completed
        ]
        assert [p.scenario for p in retried] == [SLEEPY]

    def test_timeout_clock_starts_at_first_result_not_admission(
        self, sleepy_scenario
    ):
        """A fast point queued behind a slow one must not burn its
        timeout budget while starved (or while the pool spawns): with a
        timeout generous for each point but smaller than the first
        point's total runtime, the *second* point still completes."""
        points = [
            _point(SLEEPY, {"n": 4, "delay": 0.02}, 10),  # 0.2s total
            _point(SLEEPY, {"n": 8, "delay": 0.001}, 5),  # trivial
        ]
        results = {
            r.params["n"]: r
            for r in run_campaign(
                points, workers=2, chunk_size=1, point_timeout=0.1
            )
        }
        assert results[4].timed_out
        assert not results[8].timed_out and results[8].trials == 5

    @pytest.mark.parametrize("workers", [1, 2])
    def test_run_completed_at_the_deadline_is_not_timed_out(
        self, sleepy_scenario, workers
    ):
        """A point whose final chunk folds after the deadline lapsed is
        complete — nothing was abandoned — and must NOT be stamped
        timed_out, or a point that deterministically overruns its budget
        would complete, be discarded, and retry forever on --resume."""
        points = [_point(SLEEPY, {"n": 4, "delay": 0.03}, 4)]  # 0.12s total
        (result,) = run_campaign(
            points, workers=workers, chunk_size=4, point_timeout=0.05
        )
        assert result.trials == 4
        assert not result.timed_out
        assert "timed_out" not in result.to_row()

    def test_timed_out_implies_strictly_partial(self, sleepy_scenario):
        """The invariant behind the resume contract: a timed_out row
        always records strictly fewer trials than requested, and a row
        with every requested trial is never timed_out — whatever the
        worker count or chunking (which decide *whether* the guard has
        anything left to cut)."""
        for workers in (1, 2):
            for chunk_size in (1, 4):
                (result,) = run_campaign(
                    [_point(SLEEPY, {"n": 4, "delay": 0.03}, 4)],
                    workers=workers,
                    chunk_size=chunk_size,
                    point_timeout=0.05,
                )
                assert result.timed_out == (result.trials < 4), (
                    workers, chunk_size, result.trials, result.timed_out
                )

    def test_adaptive_run_satisfied_at_the_deadline_is_not_timed_out(
        self, sleepy_scenario
    ):
        from repro.experiments import FailRateTargetPolicy

        point = CampaignPoint(
            SLEEPY, {"n": 4, "delay": 0.03}, None, 0, None,
            FailRateTargetPolicy(target=0.5, min_trials=4, max_trials=4),
        )
        (result,) = run_campaign(
            [point], workers=1, chunk_size=4, point_timeout=0.05
        )
        assert result.trials == 4
        assert not result.timed_out

    def test_nonpositive_timeouts_rejected(self):
        for kwargs in (
            {"point_timeout": 0},
            {"point_timeout": -1.5},
            {"point_timeout": float("nan")},  # would never fire: reject
            {"max_wall_clock": 0},
            {"max_wall_clock": float("nan")},
            {"max_wall_clock": True},
        ):
            with pytest.raises(ConfigurationError):
                run_campaign(
                    [_point("sync/broadcast", {"n": 4}, 2)], **kwargs
                )


class TestGlobalDeadline:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_deadline_checkpoints_and_raises(self, sleepy_scenario, workers):
        points = [
            _point(SLEEPY, {"n": 4, "delay": 0.01}, 30, base_seed=seed)
            for seed in range(6)  # ~1.8s of sleeping altogether
        ]
        results = []
        started = time.monotonic()
        with pytest.raises(CampaignDeadline) as excinfo:
            for result in run_campaign(
                points, workers=workers, chunk_size=1, max_wall_clock=0.15
            ):
                results.append(result)
        assert time.monotonic() - started < 1.5  # stopped early, not at the end
        # Every yielded row is either complete or explicitly timed out,
        # and what was never started is accounted for.
        finished = [r for r in results if not r.timed_out]
        assert excinfo.value.pending + len(results) <= len(points)
        for result in finished:
            assert result.trials == 30

    def test_deadline_checkpoint_never_clobbers_an_unseeded_out(
        self, sleepy_scenario, tmp_path, capsys
    ):
        """Without --resume, a pre-existing --out was never seeded into
        the staging file — a partial run's checkpoint must land in the
        staging file and leave yesterday's store untouched."""
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 40,
            "entries": [
                {"scenario": SLEEPY, "grid": {"delay": 0.01, "n": [4, 5]}},
            ],
        }))
        out = tmp_path / "rows.jsonl"
        out.write_text('{"precious": "yesterday"}\n')
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--max-wall-clock", "0.1"]) == EXIT_DEADLINE
        err = capsys.readouterr().err
        assert out.read_text() == '{"precious": "yesterday"}\n'
        tmp_file = tmp_path / "rows.jsonl.tmp"
        assert tmp_file.exists()
        assert str(tmp_file) in err  # the message points at the real checkpoint
        # A --resume run salvages the staging rows and finishes.
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--resume"]) == 0
        capsys.readouterr()
        lines = out.read_text().splitlines()
        assert '{"precious": "yesterday"}' in lines
        assert len(load_completed_keys(lines)) == 2

    def test_cli_deadline_exit_code_and_resume(self, sleepy_scenario, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 40,
            "entries": [
                {"scenario": SLEEPY,
                 "grid": {"delay": 0.01, "n": [4, 5, 6, 7]}},
            ],
        }))
        out = tmp_path / "rows.jsonl"
        code = main(["campaign", str(manifest), "--out", str(out),
                     "--max-wall-clock", "0.2"])
        assert code == EXIT_DEADLINE
        err = capsys.readouterr().err
        assert "wall-clock deadline reached" in err
        assert "--resume" in err
        # The checkpoint landed in --out itself (not a stranded .tmp)...
        assert out.exists() and not (tmp_path / "rows.jsonl.tmp").exists()
        completed = load_completed_keys(out.read_text().splitlines())
        assert len(completed) < 4
        # ...and an unguarded --resume finishes exactly the remainder.
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--resume"]) == 0
        err = capsys.readouterr().err
        assert f"{4 - len(completed)} timed out" not in err  # all completed now
        final = load_completed_keys(out.read_text().splitlines())
        assert len(final) == 4


class TestTimedOutRowContract:
    def test_row_resume_key_refuses_timed_out_rows(self):
        row = run_scenario(
            "sync/broadcast", trials=3, params={"n": 4}
        ).to_row()
        assert row_resume_key(row)  # completed rows key fine
        with pytest.raises(ConfigurationError):
            row_resume_key(dict(row, timed_out=True))

    def test_loader_skips_timed_out_rows_and_reports_them(self):
        good = run_scenario("sync/broadcast", trials=3, params={"n": 4}).to_row()
        timed = dict(good, trials=1, timed_out=True)
        skips = []
        keys = load_completed_keys(
            [json.dumps(r, sort_keys=True) for r in (timed, good)],
            on_skip=lambda number, line, reason: skips.append((number, reason)),
        )
        assert keys == {row_resume_key(good)}
        assert skips == [(1, "timed-out")]


class TestTornTrailingLines:
    def test_truncated_and_blank_trailing_lines_skip_and_report(self):
        rows = [
            run_scenario(
                "sync/broadcast", trials=3, base_seed=seed, params={"n": 4}
            ).to_row()
            for seed in (0, 1)
        ]
        whole = json.dumps(rows[0], sort_keys=True)
        torn = json.dumps(rows[1], sort_keys=True)[:25]  # kill mid-append
        skips = []
        keys = load_completed_keys(
            [whole, torn, "   ", ""],
            on_skip=lambda number, line, reason: skips.append((number, reason)),
        )
        assert keys == {row_resume_key(rows[0])}
        assert skips == [(2, "malformed")]  # blanks skip silently

    def test_cli_resume_warns_about_torn_line_and_reruns_the_point(
        self, tmp_path, capsys
    ):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 4,
            "entries": [
                {"scenario": "attack/basic-cheat",
                 "grid": {"n": [8, 12], "target": 2}},
                {"scenario": "sync/broadcast", "grid": {"n": 4}},
            ],
        }))
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out)]) == 0
        capsys.readouterr()
        original = out.read_text().splitlines()
        # Simulate a kill mid-append of the final row.
        out.write_text("\n".join(original[:2]) + "\n" + original[2][:19])
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--resume"]) == 0
        err = capsys.readouterr().err
        assert "skipped 1 malformed line(s)" in err
        assert "ran 1 of 3 points" in err
        resumed = out.read_text().splitlines()
        # The torn fragment is preserved verbatim (foreign content is
        # never deleted from --out) but the damaged point's row was
        # regenerated, so the complete row set is whole again.
        assert original[2][:19] in resumed
        assert sorted(r for r in resumed if r != original[2][:19]) == sorted(
            original
        )


class TestRowWriter:
    def test_append_and_bulk_write_round_trip(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        with RowWriter(str(path)) as writer:
            writer.write_lines(["a\n", "b\n"])
            writer.append("c")
        assert path.read_text() == "a\nb\nc\n"
        with RowWriter(str(path), append=True) as writer:
            writer.append("d")
        assert path.read_text() == "a\nb\nc\nd\n"

    def test_directory_fsynced_exactly_when_file_is_created(
        self, tmp_path, monkeypatch
    ):
        """Creating the store file adds a directory entry; that entry
        must be fsynced or a crash can orphan every row fsynced into the
        file. Reopening an existing file adds no entry — no dir fsync."""
        import repro.experiments.sweep as sweep_mod

        synced = []
        monkeypatch.setattr(
            sweep_mod, "fsync_directory", lambda p: synced.append(p)
        )
        fresh = tmp_path / "fresh.jsonl"
        with RowWriter(str(fresh)):
            pass
        assert synced == [str(tmp_path)]

        synced.clear()
        with RowWriter(str(fresh), append=True):
            pass
        assert synced == []

        appended = tmp_path / "appended.jsonl"
        with RowWriter(str(appended), append=True):
            pass
        assert synced == [str(tmp_path)]


class TestCostModel:
    def test_ewma_per_trial_seconds(self):
        model = CostModel(alpha=0.5)
        assert not model.observed
        assert model.observe("a", 100, 1.0)  # 10ms/trial
        assert model.per_trial_seconds("a") == pytest.approx(0.01)
        assert model.observe("a", 100, 3.0)  # 30ms/trial -> EWMA 20ms
        assert model.per_trial_seconds("a") == pytest.approx(0.02)
        assert model.scenarios() == ["a"]

    def test_foreign_observations_rejected_not_raised(self):
        model = CostModel()
        for bad in (
            (None, 10, 1.0),
            ("a", 0, 1.0),
            ("a", True, 1.0),
            ("a", 10, 0),
            ("a", 10, "fast"),
            ("a", -5, 1.0),
            ("a", 10, float("nan")),  # json.loads accepts NaN/Infinity
            ("a", 10, float("inf")),
        ):
            assert not model.observe(*bad)
        assert not model.observed
        # Non-finite cost_units must not poison the per-unit tier either.
        assert model.observe("a", 10, 1.0, cost_units=float("nan"))
        assert model.per_trial_seconds("a") == pytest.approx(0.1)
        assert model.estimate_seconds(
            _point("sync/broadcast", {"n": 4}, 10)
        ) is None  # no per-unit calibration was absorbed

    def test_estimation_tiers(self, sleepy_scenario):
        seen = _point(SLEEPY, {"n": 4, "delay": 0.005}, 100)
        unseen = _point("sync/broadcast", {"n": 4}, 100)
        model = CostModel()
        assert model.estimate_seconds(seen) is None  # empty model
        model.observe(SLEEPY, 50, 1.0, cost_units=200)  # 20ms/trial, 5ms/unit
        assert model.estimate_seconds(seen) == pytest.approx(100 * 0.02)
        # Unseen scenario: proxy units x calibrated seconds-per-unit.
        units = scheduled_cost(unseen)
        assert model.estimate_seconds(unseen) == pytest.approx(units * 0.005)

    def test_timing_record_shape_and_exclusions(self):
        result = run_scenario("sync/broadcast", trials=5, params={"n": 4})
        record = timing_record(result)
        assert record["scenario"] == "sync/broadcast"
        assert record["trials"] == 5
        assert record["elapsed"] > 0
        assert record["cost"] == 5 * 4
        result.timed_out = True
        assert timing_record(result) is None  # guard artifacts never teach

    def test_load_cost_model_tolerates_missing_and_torn_files(self, tmp_path):
        assert not load_cost_model(str(tmp_path / "absent")).observed
        sidecar = tmp_path / "rows.jsonl.timings"
        record = {"scenario": "a", "trials": 10, "elapsed": 0.5, "cost": 40}
        sidecar.write_text(
            json.dumps(record) + "\n"
            + "[1, 2]\n"
            + "not json {\n"
            + json.dumps(record)[:11]  # torn tail
        )
        model = load_cost_model(str(sidecar))
        assert model.per_trial_seconds("a") == pytest.approx(0.05)

    def test_timings_path_is_a_sidecar(self):
        assert timings_path("rows.jsonl") == "rows.jsonl.timings"


class TestObservedCostScheduling:
    def _points(self):
        # Proxy cost says broadcast (5 trials x n=16) < cheat (50 x 8)...
        return [
            _point("sync/broadcast", {"n": 16}, 5),
            _point("attack/basic-cheat", {"n": 8, "cheater": 2, "target": 2}, 50),
        ]

    def _observed_model(self):
        # ...but observation says a broadcast trial is 1000x slower.
        model = CostModel()
        model.observe("sync/broadcast", 10, 10.0, cost_units=160)
        model.observe("attack/basic-cheat", 1000, 1.0, cost_units=8000)
        return model

    def test_observed_costs_override_the_proxy_ranking(self):
        points = self._points()
        proxy = PointScheduler("longest-first").order(points)
        assert [p.scenario for p in proxy] == [
            "attack/basic-cheat", "sync/broadcast"
        ]
        observed = PointScheduler(
            "longest-first", cost_model=self._observed_model()
        ).order(points)
        assert [p.scenario for p in observed] == [
            "sync/broadcast", "attack/basic-cheat"
        ]

    def test_plan_is_deterministic_and_worker_invariant(self):
        points = self._points()
        scheduler = lambda: PointScheduler(  # noqa: E731
            "longest-first", cost_model=self._observed_model()
        )
        assert scheduler().order(points) == scheduler().order(points)
        reference = _row_set(run_campaign(points, workers=1))
        for workers in (1, 4):
            rows = _row_set(
                run_campaign(points, workers=workers, schedule=scheduler())
            )
            assert rows == reference

    def test_manifest_order_ignores_the_model(self):
        points = self._points()
        scheduler = PointScheduler(
            "manifest-order", cost_model=self._observed_model()
        )
        assert scheduler.order(points) == points

    def test_partially_calibrated_model_falls_back_to_proxy_for_all(self):
        """A model with per-trial observations but no per-unit
        calibration (a sidecar of cost-less records) cannot price unseen
        scenarios in seconds — the plan must fall back to the proxy for
        every point instead of crashing or mixing scales."""
        points = self._points()
        model = CostModel()
        model.observe("sync/broadcast", 10, 10.0)  # no cost_units
        assert model.observed
        assert model.estimate_seconds(points[1]) is None  # unseen, no per-unit
        ordered = PointScheduler("longest-first", cost_model=model).order(points)
        assert ordered == PointScheduler("longest-first").order(points)

    def test_unknown_schedule_lists_known_names_even_with_a_model(self):
        with pytest.raises(ConfigurationError) as excinfo:
            PointScheduler("fastest-first", cost_model=CostModel())
        message = str(excinfo.value)
        assert "manifest-order" in message and "longest-first" in message


class TestCliTimingSidecarAndDryRun:
    def _manifest(self, tmp_path):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 4,
            "entries": [
                {"scenario": "attack/basic-cheat",
                 "grid": {"n": [8, 12], "target": 2}},
                {"scenario": "sync/broadcast", "grid": {"n": 4}},
            ],
        }))
        return manifest

    def test_campaign_writes_the_timing_sidecar(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path)
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out)]) == 0
        records = [
            json.loads(line)
            for line in (tmp_path / "rows.jsonl.timings").read_text().splitlines()
        ]
        assert len(records) == 3
        assert {r["scenario"] for r in records} == {
            "attack/basic-cheat", "sync/broadcast"
        }
        assert all(r["elapsed"] > 0 and r["cost"] > 0 for r in records)

    def test_dry_run_shows_estimates_and_makespan_after_a_real_run(
        self, tmp_path, capsys
    ):
        manifest = self._manifest(tmp_path)
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["campaign", str(manifest), "--dry-run",
                     "--out", str(out), "--schedule", "longest-first"]) == 0
        plan, err = capsys.readouterr()
        assert all("est=" in line for line in plan.splitlines())
        assert "observed-cost estimate" in err and "makespan" in err

    def test_dry_run_without_sidecar_prints_no_estimates(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path)
        assert main(["campaign", str(manifest), "--dry-run"]) == 0
        plan, err = capsys.readouterr()
        assert "est=" not in plan
        assert "observed-cost estimate" not in err

    def test_dry_run_with_missing_out_reports_all_pending(self, tmp_path, capsys):
        manifest = self._manifest(tmp_path)
        assert main(["campaign", str(manifest), "--dry-run",
                     "--out", str(tmp_path / "never_written.jsonl")]) == 0
        plan, err = capsys.readouterr()
        assert all(line.startswith("pending") for line in plan.splitlines())
        assert "3 to run" in err

    def test_dry_run_with_unreadable_out_reports_all_pending(
        self, tmp_path, capsys
    ):
        manifest = self._manifest(tmp_path)
        unreadable = tmp_path / "rows.jsonl"
        unreadable.mkdir()  # opening a directory raises OSError
        assert main(["campaign", str(manifest), "--dry-run",
                     "--out", str(unreadable)]) == 0
        plan, err = capsys.readouterr()
        assert all(line.startswith("pending") for line in plan.splitlines())
        assert "warning: cannot read" in err

    def test_real_run_with_unreadable_out_still_dies(self, tmp_path):
        manifest = self._manifest(tmp_path)
        unreadable = tmp_path / "rows.jsonl"
        unreadable.mkdir()
        with pytest.raises(SystemExit):
            main(["campaign", str(manifest), "--out", str(unreadable),
                  "--resume"])

    def test_cli_point_timeout_validation(self, tmp_path):
        manifest = self._manifest(tmp_path)
        with pytest.raises(SystemExit):
            main(["campaign", str(manifest), "--point-timeout", "0"])
        with pytest.raises(SystemExit):
            main(["campaign", str(manifest), "--max-wall-clock", "-2"])
        with pytest.raises(SystemExit):
            main(["campaign", str(manifest), "--point-timeout", "nan"])

    def test_sweep_records_timing_sidecar(self, tmp_path, capsys):
        # Sweeps feed the same cost model campaigns do: the sidecar
        # seeds longest-first scheduling and adaptive chunk sizing for
        # every later run against the same --out.
        out = tmp_path / "rows.jsonl"
        assert main(["sweep", "--scenario", "sync/broadcast", "--trials", "3",
                     "--param", "n=4", "--out", str(out)]) == 0
        assert out.exists()
        sidecar = tmp_path / "rows.jsonl.timings"
        assert sidecar.exists()
        records = [json.loads(line)
                   for line in sidecar.read_text().splitlines() if line]
        assert any(rec.get("scenario") == "sync/broadcast" for rec in records)


class TestCliPointTimeoutResume:
    def test_timed_out_point_is_retried_by_resume(
        self, sleepy_scenario, tmp_path, capsys
    ):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "entries": [
                {"scenario": "sync/broadcast", "grid": {"n": 4}, "trials": 5},
                {"scenario": SLEEPY, "trials": 64,
                 "grid": {"n": 4, "delay": 0.01}},
                {"scenario": "attack/basic-cheat", "trials": 4,
                 "grid": {"n": 8, "target": 2}},
            ],
        }))
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--point-timeout", "0.05"]) == 0
        err = capsys.readouterr().err
        assert "1 timed out" in err
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert sum(bool(r.get("timed_out")) for r in rows) == 1
        # The second (guarded) run retries exactly the timed-out point.
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--resume", "--point-timeout", "0.05"]) == 0
        err = capsys.readouterr().err
        assert "timed-out row(s)" in err and "will be retried" in err
        assert "ran 1 of 3 points" in err
        # The stale timed-out row was replaced, not accumulated: one
        # fresh marker, never two.
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert sum(bool(r.get("timed_out")) for r in rows) == 1
        # An unguarded resume completes the point; no marker survives.
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--resume"]) == 0
        capsys.readouterr()
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert sum(bool(r.get("timed_out")) for r in rows) == 0
        assert len(rows) == 3
        completed = load_completed_keys(out.read_text().splitlines())
        assert len(completed) == 3

    def test_marker_superseded_by_a_completed_row_is_dropped(
        self, tmp_path, capsys
    ):
        """Shared-store healing: if some other run already completed the
        point without pruning (e.g. a sweep over the same file), the
        stale marker next to the completed row is dropped on the next
        campaign resume instead of double-counting the point forever."""
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 4,
            "entries": [
                {"scenario": "attack/basic-cheat",
                 "grid": {"n": [8, 12], "target": 2}},
                {"scenario": "sync/broadcast", "grid": {"n": 4}},
            ],
        }))
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out)]) == 0
        capsys.readouterr()
        original = out.read_text().splitlines()
        stale = dict(json.loads(original[0]), trials=1, timed_out=True)
        out.write_text(
            json.dumps(stale, sort_keys=True) + "\n"
            + "\n".join(original) + "\n"
        )
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--resume"]) == 0
        err = capsys.readouterr().err
        assert "ran 0 of 3 points" in err
        assert sorted(out.read_text().splitlines()) == sorted(original)

    def test_timed_out_marker_survives_a_resume_that_never_retries_it(
        self, sleepy_scenario, tmp_path, capsys
    ):
        """A held-back marker is written back when its retry never runs:
        a resume cut short by the global deadline before reaching the
        timed-out point must not silently erase the record that the
        point is still owed."""
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "entries": [
                {"scenario": SLEEPY, "trials": 200, "base_seed": 1,
                 "grid": {"n": 4, "delay": 0.01}},
                {"scenario": SLEEPY, "trials": 64, "base_seed": 2,
                 "grid": {"n": 4, "delay": 0.01}},
            ],
        }))
        out = tmp_path / "rows.jsonl"
        # First run: both points time out.
        assert main(["campaign", str(manifest), "--out", str(out),
                     "--point-timeout", "0.05"]) == 0
        capsys.readouterr()
        markers = out.read_text().splitlines()
        assert len(markers) == 2
        # Resume under a wall clock so tight the second point (and
        # possibly even the first) never produces a fresh row.
        code = main(["campaign", str(manifest), "--out", str(out),
                     "--resume", "--max-wall-clock", "0.08"])
        assert code == EXIT_DEADLINE
        capsys.readouterr()
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        # Every point still has exactly one timed_out marker: fresh
        # where the retry ran, written back where it did not.
        identities = sorted(
            (r["base_seed"], bool(r.get("timed_out"))) for r in rows
        )
        assert identities == [(1, True), (2, True)]


class TestWorkerTeardown:
    def test_exception_in_context_terminates_workers(self):
        pool = WorkerPool(2)
        with pytest.raises(RuntimeError):
            with pool:
                pool.warm_up()
                workers = list(pool._pool._pool)
                raise RuntimeError("boom")
        for process in workers:
            process.join(10)
            assert not process.is_alive()
        assert pool._pool is None
        with pytest.raises(ConfigurationError):
            pool.warm_up()  # stays closed, like close()

    def test_terminate_is_idempotent_and_clean_exit_still_closes(self):
        pool = WorkerPool(2)
        pool.warm_up()
        pool.terminate()
        pool.terminate()
        with WorkerPool(2) as clean:
            clean.warm_up()
            workers = list(clean._pool._pool)
        for process in workers:
            process.join(10)
            assert not process.is_alive()

    def test_mid_campaign_sigint_leaves_a_resumable_out_file(self, tmp_path):
        """Kill a real campaign subprocess mid-run: the Ctrl-C handler
        must checkpoint finished rows into --out, the worker tree must
        die promptly, and --resume must pick up where it stopped."""
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 30000,  # ~1.2s per point on the reference machine
            "entries": [
                {"scenario": "fullinfo/baton", "base_seed": seed,
                 "grid": {"n": 16, "k": 3}}
                for seed in range(5)
            ],
        }))
        out = tmp_path / "rows.jsonl"
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", str(manifest),
             "--out", str(out), "--workers", "2"],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            # Wait for at least one fsync'd row in the staging file.
            while time.monotonic() < deadline:
                tmp_file = tmp_path / "rows.jsonl.tmp"
                if tmp_file.exists() and tmp_file.read_text().count("\n") >= 1:
                    break
                if proc.poll() is not None:
                    pytest.fail("campaign finished before it could be killed")
                time.sleep(0.02)
            else:
                pytest.fail("no rows appeared before the deadline")
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=30)  # leaked workers would hang this join
            assert proc.returncode != 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # The interrupt checkpointed finished rows into --out itself.
        assert out.exists()
        completed = load_completed_keys(out.read_text().splitlines())
        assert 1 <= len(completed) < 5
        # And a --resume run executes only the remainder.
        result = subprocess.run(
            [sys.executable, "-m", "repro", "campaign", str(manifest),
             "--out", str(out), "--workers", "2", "--resume"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert f"ran {5 - len(completed)} of 5 points" in result.stderr
        assert len(load_completed_keys(out.read_text().splitlines())) == 5
