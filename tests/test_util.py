"""Unit tests for repro.util: modmath, rng, errors."""

import pytest
from hypothesis import given, strategies as st

from repro.util.errors import ConfigurationError, ProtocolViolation, ReproError
from repro.util.modmath import canonical_mod, mod_sub, mod_sum
from repro.util.rng import RngRegistry, derive_seed


class TestModMath:
    def test_canonical_mod_positive(self):
        assert canonical_mod(7, 5) == 2

    def test_canonical_mod_negative(self):
        assert canonical_mod(-3, 5) == 2

    def test_canonical_mod_zero_value(self):
        assert canonical_mod(0, 5) == 0

    def test_canonical_mod_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            canonical_mod(1, 0)
        with pytest.raises(ValueError):
            canonical_mod(1, -5)

    def test_mod_sum(self):
        assert mod_sum([1, 2, 3], 5) == 1

    def test_mod_sum_empty(self):
        assert mod_sum([], 7) == 0

    def test_mod_sub(self):
        assert mod_sub(2, 4, 5) == 3

    @given(
        st.lists(st.integers(-1000, 1000)),
        st.integers(1, 97),
    )
    def test_mod_sum_matches_builtin(self, values, modulus):
        assert mod_sum(values, modulus) == sum(values) % modulus

    @given(st.integers(-10**9, 10**9), st.integers(1, 10**6))
    def test_canonical_mod_in_range(self, value, modulus):
        r = canonical_mod(value, modulus)
        assert 0 <= r < modulus
        assert (r - value) % modulus == 0


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_derive_seed_label_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_derive_seed_seed_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_stream_identity(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_stream_reproducible_across_registries(self):
        a = RngRegistry(7).stream("p").random()
        b = RngRegistry(7).stream("p").random()
        assert a == b

    def test_streams_independent(self):
        reg = RngRegistry(7)
        seq_x = [reg.stream("x").randrange(100) for _ in range(5)]
        reg2 = RngRegistry(7)
        _ = [reg2.stream("y").randrange(100) for _ in range(50)]
        seq_x2 = [reg2.stream("x").randrange(100) for _ in range(5)]
        assert seq_x == seq_x2

    def test_spawn_differs_from_parent(self):
        reg = RngRegistry(7)
        child = reg.spawn("c")
        assert child.seed != reg.seed

    def test_spawn_deterministic(self):
        assert RngRegistry(7).spawn("c").seed == RngRegistry(7).spawn("c").seed

    def test_none_seed_draws_fresh(self):
        reg = RngRegistry()
        assert isinstance(reg.seed, int)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(ProtocolViolation, ReproError)
