"""Unit tests for the RandomFunction substrate (PhaseAsyncLead's f)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.random_function import RandomFunction, default_ell


class TestDefaultEll:
    def test_formula(self):
        assert default_ell(100) == 100  # 10*sqrt(100) = 100, capped at n

    def test_cap(self):
        assert default_ell(4) == 4

    def test_large_n_uncapped(self):
        n = 10_000
        assert default_ell(n) == math.ceil(10 * math.sqrt(n))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_ell(0)


class TestRandomFunction:
    def test_output_in_range(self):
        f = RandomFunction(7, ell=3)
        out = f([0] * 7, [0] * 4)
        assert 1 <= out <= 7

    def test_deterministic(self):
        f = RandomFunction(5, ell=2, key=9)
        g = RandomFunction(5, ell=2, key=9)
        args = ([1, 2, 3, 4, 0], [10, 20, 30])
        assert f(*args) == g(*args)

    def test_key_sensitivity(self):
        args = ([1, 2, 3, 4, 0], [10, 20, 30])
        outs = {RandomFunction(5, ell=2, key=k)(*args) for k in range(30)}
        assert len(outs) > 1

    def test_input_sensitivity(self):
        f = RandomFunction(50, ell=10)
        base = [0] * 50
        v = [0] * 40
        out0 = f(base, v)
        flipped = list(base)
        flipped[17] = 1
        outs = {f(flipped, v), out0}
        # Not guaranteed different for one flip, so flip several and expect
        # at least one change.
        changed = False
        for i in range(10):
            mod = list(base)
            mod[i] = 1
            if f(mod, v) != out0:
                changed = True
                break
        assert changed

    def test_ignores_validation_suffix(self):
        """Only v_1..v_{n-l} may influence the output (protocol invariant)."""
        f = RandomFunction(6, ell=4)  # reads 2 validation values
        d = [1, 2, 3, 4, 5, 0]
        assert f(d, [7, 8, 100, 200]) == f(d, [7, 8, 999, 111])

    def test_rejects_wrong_data_length(self):
        f = RandomFunction(4, ell=2)
        with pytest.raises(ValueError):
            f([1, 2, 3], [0, 0])

    def test_rejects_short_validations(self):
        f = RandomFunction(4, ell=1)
        with pytest.raises(ValueError):
            f([0, 0, 0, 0], [1, 2])

    def test_rejects_bad_ell(self):
        with pytest.raises(ValueError):
            RandomFunction(4, ell=5)

    @given(
        n=st.integers(2, 20),
        key=st.integers(0, 5),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_valid_id(self, n, key, data):
        ell = data.draw(st.integers(0, n))
        f = RandomFunction(n, ell=ell, key=key)
        d = data.draw(
            st.lists(st.integers(0, n - 1), min_size=n, max_size=n)
        )
        v = data.draw(
            st.lists(
                st.integers(0, 2 * n * n - 1),
                min_size=n - ell,
                max_size=n - ell,
            )
        )
        assert 1 <= f(d, v) <= n

    def test_roughly_uniform_over_inputs(self):
        """Hash-based f should spread outputs like a random function."""
        n = 8
        f = RandomFunction(n, ell=n)  # data-only
        from collections import Counter

        counts = Counter()
        for x in range(2000):
            d = [(x >> (3 * i)) % n for i in range(n)]
            d[0] = x % n
            d[1] = (x * 7) % n
            counts[f(d, [])] += 1
        # Every id hit, none wildly dominant.
        assert set(counts) == set(range(1, n + 1))
        assert max(counts.values()) < 3 * 2000 / n
