"""Integration tests: attacks on the PhaseAsync protocols (E.4, Thm 6.1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.partial_sum import partial_sum_attack_protocol
from repro.attacks.phase_rushing import phase_rushing_attack_protocol
from repro.protocols.phase_async import PhaseAsyncParams
from repro.sim.execution import FAIL, run_protocol
from repro.sim.topology import unidirectional_ring
from repro.util.errors import ConfigurationError


class TestPartialSumAttack:
    @pytest.mark.parametrize("L", [4, 6, 10])
    def test_k4_controls_sum_variant(self, L):
        n = 4 * L + 4
        topo = unidirectional_ring(n)
        for target in (1, n // 2, n):
            res = run_protocol(
                topo, partial_sum_attack_protocol(topo, 4, target),
                seed=target,
            )
            assert res.outcome == target, res.fail_reason

    @given(seed=st.integers(0, 10**6), target=st.integers(1, 28))
    @settings(max_examples=20, deadline=None)
    def test_success_independent_of_secrets(self, seed, target):
        n = 28  # L = 6
        topo = unidirectional_ring(n)
        res = run_protocol(
            topo, partial_sum_attack_protocol(topo, 4, target), seed=seed
        )
        assert res.outcome == target

    def test_k5_also_works(self):
        """The covert chain generalizes beyond the paper's k=4."""
        k, L = 5, 5
        n = k * (L + 1)  # 30
        topo = unidirectional_ring(n)
        res = run_protocol(
            topo, partial_sum_attack_protocol(topo, k, 11), seed=8
        )
        assert res.outcome == 11

    def test_fails_against_random_f(self):
        """The same deviation cannot steer the real PhaseAsyncLead."""
        n = 44
        topo = unidirectional_ring(n)
        params = PhaseAsyncParams(n=n)
        res = run_protocol(
            topo,
            partial_sum_attack_protocol(topo, 4, 7, params=params),
            seed=11,
        )
        assert res.outcome != 7
        assert res.outcome == FAIL  # segments reconstruct different inputs

    def test_rejects_small_k(self):
        topo = unidirectional_ring(20)
        with pytest.raises(ConfigurationError):
            partial_sum_attack_protocol(topo, 3, 1)

    def test_rejects_uneven_segments(self):
        topo = unidirectional_ring(21)
        with pytest.raises(ConfigurationError):
            partial_sum_attack_protocol(topo, 4, 1)

    def test_rejects_short_segments(self):
        topo = unidirectional_ring(12)  # L = 2 < 4
        with pytest.raises(ConfigurationError):
            partial_sum_attack_protocol(topo, 4, 1)


class TestPhaseRushingAttack:
    @pytest.mark.parametrize("n", [36, 64, 100])
    def test_sqrt_plus_three_controls_outcome(self, n):
        k = math.isqrt(n) + 3
        topo = unidirectional_ring(n)
        params = PhaseAsyncParams(n=n)
        for target in (1, n // 2):
            res = run_protocol(
                topo,
                phase_rushing_attack_protocol(topo, k, target, params=params),
                seed=target,
            )
            assert res.outcome == target, res.fail_reason

    def test_works_across_keys(self):
        """Theorem 6.1's tightness holds 'w.h.p. over f': try many keys."""
        n, k = 49, 10
        topo = unidirectional_ring(n)
        wins = 0
        for key in range(5):
            params = PhaseAsyncParams(n=n, key=key)
            res = run_protocol(
                topo,
                phase_rushing_attack_protocol(topo, k, 30, params=params),
                seed=key,
            )
            wins += res.outcome == 30
        assert wins == 5

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_success_property(self, seed):
        n, k = 36, 9
        topo = unidirectional_ring(n)
        res = run_protocol(
            topo, phase_rushing_attack_protocol(topo, k, 18), seed=seed
        )
        assert res.outcome == 18

    def test_rejects_segments_too_long(self):
        """k below √n leaves segments > k-3: precondition fails."""
        n = 100
        topo = unidirectional_ring(n)
        with pytest.raises(ConfigurationError):
            phase_rushing_attack_protocol(topo, 6, 1)

    def test_rejects_small_ell(self):
        n, k = 36, 9
        topo = unidirectional_ring(n)
        params = PhaseAsyncParams(n=n, ell=4)  # ell < k
        with pytest.raises(ConfigurationError):
            phase_rushing_attack_protocol(topo, k, 1, params=params)

    def test_adversaries_solve_for_different_segments(self):
        """Each adversary's reconstruction differs, yet all force w."""
        n, k = 36, 9
        topo = unidirectional_ring(n)
        proto = phase_rushing_attack_protocol(topo, k, 5)
        res = run_protocol(topo, proto, seed=77)
        assert res.outcome == 5
        from repro.attacks.phase_rushing import PhaseRushingAdversary

        advs = [s for s in proto.values() if isinstance(s, PhaseRushingAdversary)]
        assert all(a.solved for a in advs)
        choices = {tuple(a.choices) for a in advs}
        assert len(choices) > 1  # independent per-segment brute forces
