"""Property tests: batch kernels are bit-identical to the scalar loop.

``ScenarioSpec.run_batch`` is purely an acceleration — the contract
(:data:`repro.experiments.scenario.BatchRunner`) says a kernel must
reproduce the per-trial fold bit for bit, so no row can depend on
whether a chunk ran vectorized. The equivalence scripts that shaped each
kernel don't survive their session; this layer pins the contract in the
suite, for *every* batch-capable scenario the catalog registers:

- random parameter points and base seeds (drawn from a fixed, per-
  scenario RNG, so failures replay exactly) run once through
  ``use_batch=True`` and once through ``use_batch=False``, at one worker
  and at four, and the folded rows — outcome histogram, success
  proportion, ``steps_total`` — must match key for key;
- the folded batch row is also checked against the *unfolded* scalar
  run (``keep_outcomes=True``), tying the kernel all the way back to the
  per-trial ``TrialOutcome`` stream, not merely to the scalar fold;
- kernels that decline a parameter point (return ``None``) must leave
  the scalar fallback's results untouched, and a kernel that miscounts
  its chunk must be rejected loudly rather than folded.

The catalog of batch-capable names is pinned too: a scenario silently
dropping out of batch coverage would otherwise shrink this suite to
vacuity without a single failure.
"""

import random
from dataclasses import replace

import pytest

from repro.experiments import ExperimentRunner, WorkerPool, all_scenarios, get_scenario
from repro.util.errors import ConfigurationError

#: Every batch-capable scenario in the registered catalog.
BATCH_NAMES = sorted(
    spec.name for spec in all_scenarios() if spec.run_batch is not None
)

#: The names expected to carry kernels — update alongside the catalog.
EXPECTED_BATCH_NAMES = [
    "blocks/fair-consensus",
    "blocks/fair-renaming",
    "cointoss/biased-coin",
    "cointoss/coin-fle",
    "cointoss/fle-coin",
    "fullinfo/baton",
    "fullinfo/sequential-coin",
    "placement/random-segments",
]


def _sample_biased_coin(rng):
    n = rng.randrange(2, 17)
    return {"n": n, "cheater": rng.randrange(1, n + 1), "target": rng.randrange(1, n + 1)}


def _sample_baton(rng):
    n = rng.randrange(1, 41)
    return {"n": n, "k": rng.randrange(0, n + 1)}


def _sample_sequential(rng):
    game = rng.choice(["parity", "majority"])
    n = rng.randrange(2, 9)
    if game == "majority":
        n |= 1  # the majority game is defined on odd player counts
    return {
        "game": game,
        "n": n,
        "k": rng.randrange(0, n + 1),
        "target": rng.randrange(0, 2),
    }


#: Per-scenario random parameter points. Ranges stay inside each
#: scenario's valid domain (the decline paths get their own test) but
#: deliberately stress the edges the kernels special-case: coalition of
#: everybody, cheater at either end of the ring, single-player batons.
PARAM_SAMPLERS = {
    "cointoss/fle-coin": lambda rng: {"n": rng.randrange(2, 33)},
    "cointoss/biased-coin": _sample_biased_coin,
    "cointoss/coin-fle": lambda rng: {"n": 2 ** rng.randrange(1, 6)},
    "fullinfo/baton": _sample_baton,
    "fullinfo/sequential-coin": _sample_sequential,
    "blocks/fair-consensus": lambda rng: {"n": rng.randrange(2, 17)},
    "blocks/fair-renaming": lambda rng: {"n": rng.randrange(2, 17)},
    "placement/random-segments": lambda rng: {
        "n": rng.randrange(2, 257),
        "p": round(rng.uniform(0.01, 0.99), 3),
    },
}


def _scenario_rng(name: str) -> random.Random:
    """A fixed per-scenario RNG, so every sampled point replays exactly."""
    return random.Random(f"batch-kernels:{name}")


def _run(scenario, trials, base_seed, params, *, use_batch, pool=None, **kwargs):
    runner = ExperimentRunner(
        workers=pool.workers if pool is not None else 1,
        pool=pool,
        use_batch=use_batch,
    )
    try:
        return runner.run(
            scenario,
            trials,
            base_seed=base_seed,
            params=params,
            keep_outcomes=kwargs.pop("keep_outcomes", False),
            **kwargs,
        )
    finally:
        runner.close()


def _comparable(result):
    """Everything a row publishes, plus the step counter the row keeps."""
    return (result.to_row(), result.steps_total, dict(result.distribution.counts))


def _assert_modes_agree(scenario, trials, base_seed, params, pool=None):
    batch = _run(scenario, trials, base_seed, params, use_batch=True, pool=pool)
    scalar = _run(scenario, trials, base_seed, params, use_batch=False, pool=pool)
    assert _comparable(batch) == _comparable(scalar), (
        f"{scenario} {params} diverged between batch and scalar folds "
        f"(trials={trials}, base_seed={base_seed})"
    )
    return batch


@pytest.fixture(scope="module")
def shared_pool():
    """One 4-worker pool for every parallel case in the module."""
    with WorkerPool(4) as pool:
        yield pool


def test_batch_capable_catalog_is_pinned():
    assert BATCH_NAMES == EXPECTED_BATCH_NAMES


@pytest.mark.parametrize("name", BATCH_NAMES)
def test_batch_fold_matches_scalar_fold_serial(name):
    """Three random points per scenario, batch vs scalar, one worker."""
    rng = _scenario_rng(name)
    sampler = PARAM_SAMPLERS[name]
    for _ in range(3):
        params = sampler(rng)
        trials = rng.randrange(16, 65)
        base_seed = rng.randrange(2**31)
        _assert_modes_agree(name, trials, base_seed, params)


@pytest.mark.parametrize("name", BATCH_NAMES)
def test_batch_fold_matches_unfolded_per_trial_run(name):
    """The kernel ties back to the per-trial outcome stream itself, not
    just to the scalar fold: a ``keep_outcomes=True`` run (which can
    never take the batch path) must publish the same row."""
    rng = _scenario_rng(name)
    params = PARAM_SAMPLERS[name](rng)
    trials, base_seed = 32, rng.randrange(2**31)
    batch = _run(name, trials, base_seed, params, use_batch=True)
    unfolded = _run(
        name, trials, base_seed, params, use_batch=True, keep_outcomes=True
    )
    assert len(unfolded.outcomes) == trials
    assert _comparable(batch) == _comparable(unfolded)


@pytest.mark.parametrize("name", BATCH_NAMES)
def test_batch_fold_matches_scalar_fold_4_workers(name, shared_pool):
    """One random point per scenario through the real 4-worker pool —
    and the parallel batch row must equal the serial batch row, so the
    kernel is chunking-invariant as well as mode-invariant."""
    rng = random.Random(f"batch-kernels:parallel:{name}")
    params = PARAM_SAMPLERS[name](rng)
    trials = rng.randrange(48, 97)
    base_seed = rng.randrange(2**31)
    parallel = _assert_modes_agree(name, trials, base_seed, params, pool=shared_pool)
    serial = _run(name, trials, base_seed, params, use_batch=True)
    assert _comparable(parallel) == _comparable(serial)


def test_biased_coin_edge_cheaters_match_scalar():
    """The biased-coin kernel's O(1) closed form covers the parameter
    edges explicitly: the cheater in the origin slot and the cheater
    forcing itself from the far end of the ring."""
    for params in (
        {"n": 8, "cheater": 1, "target": 5},
        {"n": 8, "cheater": 8, "target": 8},
        {"n": 2, "cheater": 2, "target": 1},
    ):
        _assert_modes_agree("cointoss/biased-coin", 24, 7, params)


def test_declined_points_defer_to_scalar_validation():
    """Kernels decline (return ``None`` on) points outside their domain
    rather than guessing an answer, so the scalar path's own validation
    error surfaces identically in both modes — the kernel never masks
    it. coin-fle only vectorizes power-of-two rings; n=6 is declined,
    and the scalar reduction rejects it."""
    for use_batch in (True, False):
        with pytest.raises(ConfigurationError):
            _run("cointoss/coin-fle", 8, 3, {"n": 6}, use_batch=use_batch)


def test_kernel_decline_is_per_spec_not_per_runner():
    """An always-declining kernel grafted onto a live spec must be
    consulted and then fully bypassed: results identical to the
    kernel-free spec, with the decline actually exercised."""
    base = get_scenario("cointoss/fle-coin")
    calls = []

    def declining_kernel(seeds, params):
        calls.append(len(seeds))
        return None

    # Same name on both variants: rows embed the scenario name, and the
    # comparison below is about results, not labels. Neither spec is
    # registered, so the live catalog entry is untouched.
    declined = replace(base, run_batch=declining_kernel)
    bare = replace(base, run_batch=None)
    got = _run(declined, 24, 11, {"n": 8}, use_batch=True)
    want = _run(bare, 24, 11, {"n": 8}, use_batch=True)
    assert calls and sum(calls) == 24
    assert _comparable(got) == _comparable(want)


def test_miscounting_kernel_is_rejected():
    """A kernel whose counts don't cover its chunk is a contract breach
    the runner must refuse to fold."""
    base = get_scenario("cointoss/fle-coin")

    def lossy_kernel(seeds, params):
        return {0: len(seeds) - 1}, 0

    lossy = replace(base, name="test/fle-coin-lossy", run_batch=lossy_kernel)
    with pytest.raises(ConfigurationError):
        _run(lossy, 16, 0, {"n": 8}, use_batch=True)
