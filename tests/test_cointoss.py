"""Tests for the Section 8 reductions (Theorem 8.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cointoss.protocols import (
    CoinTossRunner,
    independent_coin_fle,
)
from repro.cointoss.reductions import (
    coin_bias_bound_from_fle,
    coin_toss_from_leader_election,
    fle_bias_bound_from_coin,
    leader_election_from_coin_toss,
)
from repro.protocols.alead_uni import alead_uni_protocol
from repro.sim.execution import FAIL
from repro.sim.topology import unidirectional_ring
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry


class TestOutcomeMaps:
    def test_fle_to_coin(self):
        assert coin_toss_from_leader_election(4, 8) == 0
        assert coin_toss_from_leader_election(5, 8) == 1
        assert coin_toss_from_leader_election(FAIL, 8) == FAIL

    def test_fle_to_coin_rejects_bad(self):
        with pytest.raises(ConfigurationError):
            coin_toss_from_leader_election(9, 8)

    def test_coin_to_fle_encoding(self):
        assert leader_election_from_coin_toss([0, 0, 0], 8) == 1
        assert leader_election_from_coin_toss([1, 1, 1], 8) == 8
        assert leader_election_from_coin_toss([0, 1, 0], 8) == 3

    def test_coin_to_fle_fail_propagates(self):
        assert leader_election_from_coin_toss([0, FAIL, 1], 8) == FAIL

    def test_coin_to_fle_needs_power_of_two(self):
        with pytest.raises(ConfigurationError):
            leader_election_from_coin_toss([0, 1], 6)

    def test_coin_to_fle_needs_right_count(self):
        with pytest.raises(ConfigurationError):
            leader_election_from_coin_toss([0, 1], 8)

    @given(st.integers(1, 6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_encoding_bijective(self, rounds, data):
        n = 2**rounds
        bits = data.draw(
            st.lists(st.integers(0, 1), min_size=rounds, max_size=rounds)
        )
        leader = leader_election_from_coin_toss(bits, n)
        assert 1 <= leader <= n
        # invert
        back = [(leader - 1 >> (rounds - 1 - i)) & 1 for i in range(rounds)]
        assert back == bits


class TestBiasBounds:
    def test_coin_bound(self):
        assert coin_bias_bound_from_fle(8, 0.01) == pytest.approx(0.04)

    def test_fle_bound_zero_eps(self):
        # Perfect coins give a perfect FLE: bound collapses to 0.
        assert fle_bias_bound_from_coin(8, 0.0) == pytest.approx(0.0)

    def test_fle_bound_monotone(self):
        assert fle_bias_bound_from_coin(8, 0.1) > fle_bias_bound_from_coin(
            8, 0.01
        )


class TestRunners:
    def test_coin_runner_balanced(self):
        topo = unidirectional_ring(8)
        runner = CoinTossRunner(topo, alead_uni_protocol)
        results = [runner.toss(RngRegistry(s)) for s in range(120)]
        assert FAIL not in results
        ones = sum(results)
        assert 30 <= ones <= 90  # crude balance check

    def test_independent_coin_fle_uniform(self):
        topo = unidirectional_ring(8)  # ring size just hosts the coin
        from collections import Counter

        counts = Counter()
        for s in range(80):
            leader = independent_coin_fle(
                topo, alead_uni_protocol, n_leader=4, rng=RngRegistry(s)
            )
            counts[leader] += 1
        assert set(counts) <= {1, 2, 3, 4}
        assert len(counts) == 4

    def test_biased_fle_propagates_to_coin(self):
        """An FLE forced to an even id makes the coin constant 0."""
        from repro.attacks.basic_cheat import basic_cheat_protocol

        topo = unidirectional_ring(8)
        runner = CoinTossRunner(
            topo, lambda t: basic_cheat_protocol(t, 2, target=4)
        )
        results = {runner.toss(RngRegistry(s)) for s in range(10)}
        assert results == {0}
