"""The SQLite results store: the resume contract as a database.

The store's one promise is *equivalence with the JSONL loaders* —
importing an ``--out`` file and asking the database "what's done?" must
give byte-for-byte the key set ``load_completed_keys`` computes from
the file, with the same tolerance for torn lines, foreign content, and
timed-out markers. On top of that: lossless round-trips, duplicate
suppression on the unique resume-key index, the transactional marker
lifecycle, canonical-params lookups, read-only refusal, the
``StoreRowWriter`` adapter, concurrent writer/reader WAL behaviour, and
the ``db import``/``db stats``/``campaign --out results.db`` CLI paths.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.experiments import (
    ResultStore,
    StoreRowWriter,
    is_store_path,
    load_completed_keys,
    resume_key,
    retry_identity,
    row_resume_key,
    run_scenario,
)
from repro.util.errors import ConfigurationError


def synthetic_row(i, timed_out=False, successes=1):
    """A minimal row carrying full resume identity — fast to make in
    bulk, unlike real ``run_scenario`` rows."""
    row = {
        "scenario": "synthetic/point",
        "params": {"n": i},
        "trials": None if timed_out else 2,
        "base_seed": 0,
        "successes": successes,
    }
    if timed_out:
        row["timed_out"] = True
    return row


class TestIsStorePath:
    def test_store_suffixes_route_to_sqlite(self):
        assert is_store_path("results.db")
        assert is_store_path("results.sqlite")
        assert is_store_path("results.sqlite3")
        assert is_store_path("RESULTS.DB")  # case-insensitive

    def test_everything_else_stays_jsonl(self):
        assert not is_store_path("rows.jsonl")
        assert not is_store_path("rows.db.jsonl")
        assert not is_store_path("")
        assert not is_store_path(None)


class TestImportEquivalence:
    def test_imported_key_set_is_identical_to_load_completed_keys(
        self, tmp_path
    ):
        """The acceptance criterion: JSONL -> SQLite import -> resume
        lookup returns the identical key set, torn/foreign/timed-out
        lines and all."""
        rows = [
            run_scenario(
                "attack/basic-cheat", trials=2, base_seed=seed,
                params={"n": 8, "target": 2},
            ).to_row()
            for seed in (0, 1, 2)
        ]
        timed = dict(rows[0], trials=1, timed_out=True, base_seed=99)
        lines = [
            json.dumps(rows[0], sort_keys=True),
            "",
            json.dumps(timed, sort_keys=True),
            json.dumps(rows[1], sort_keys=True),
            "{\"foreign\": true}",
            json.dumps(rows[2], sort_keys=True)[:23],  # torn tail
        ]
        file_keys = load_completed_keys(lines)
        skips = []
        with ResultStore(str(tmp_path / "r.db")) as store:
            report = store.import_lines(
                lines,
                on_skip=lambda number, _l, reason: skips.append(
                    (number, reason)
                ),
            )
            assert store.completed_keys() == file_keys
            assert store.pending_retries() == {
                retry_identity(
                    timed["scenario"], timed["params"], timed["base_seed"],
                    timed.get("max_steps"), timed.get("budget"),
                )
            }
        assert report == {
            "stored": 2, "duplicate": 0, "marker": 1, "superseded": 0,
            "skipped": 2,
        }
        assert skips == [(5, "malformed"), (6, "malformed")]

    def test_round_trip_is_lossless(self, tmp_path):
        row = run_scenario(
            "honest/basic-lead", trials=3, params={"n": 6}
        ).to_row()
        with ResultStore(str(tmp_path / "r.db")) as store:
            assert store.append_row(row) == "stored"
            assert store.get(row_resume_key(row)) == row
            assert store.lookup("honest/basic-lead", {"n": 6}) == [row]

    def test_export_import_round_trip_keeps_the_key_set(self, tmp_path):
        """``db import -> db export`` (and an import of the export into
        a fresh store) preserve the key set exactly: completed rows keep
        their resume keys, timed-out markers keep their retry
        identities, and the exported file is resume-loader-compatible."""
        rows = [
            run_scenario(
                "attack/basic-cheat", trials=2, base_seed=seed,
                params={"n": 8, "target": 2},
            ).to_row()
            for seed in (0, 1)
        ]
        timed = dict(rows[0], trials=1, timed_out=True, base_seed=99)
        lines = [json.dumps(r, sort_keys=True) for r in rows + [timed]]
        with ResultStore(str(tmp_path / "a.db")) as store:
            store.import_lines(lines)
            exported = list(store.export_lines())
            file_keys = store.completed_keys()
            retries = store.pending_retries()
        # The exported file is what load_completed_keys expects: the
        # marker's line is skipped, completed rows keep their keys.
        assert load_completed_keys(exported) == file_keys
        with ResultStore(str(tmp_path / "b.db")) as merged:
            report = merged.import_lines(exported)
            assert report["stored"] == 2 and report["marker"] == 1
            assert merged.completed_keys() == file_keys
            assert merged.pending_retries() == retries
            # and the rows themselves survived byte-for-byte
            for row in rows:
                assert merged.get(row_resume_key(row)) == row

    def test_cli_db_export_default_path(self, tmp_path, capsys):
        rows_file = tmp_path / "rows.jsonl"
        row = synthetic_row(1)
        rows_file.write_text(json.dumps(row, sort_keys=True) + "\n")
        assert main(["db", "import", str(rows_file),
                     "--db", str(tmp_path / "r.db")]) == 0
        assert main(["db", "export", str(tmp_path / "r.db")]) == 0
        out = capsys.readouterr().out
        assert "1 line(s)" in out
        exported = (tmp_path / "r.jsonl").read_text().splitlines()
        assert [json.loads(line) for line in exported] == [row]

    def test_cli_db_export_missing_store_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["db", "export", str(tmp_path / "nope.db")])

    def test_duplicate_resume_keys_keep_the_first_copy(self, tmp_path):
        row = synthetic_row(1)
        with ResultStore(str(tmp_path / "r.db")) as store:
            assert store.append_row(row) == "stored"
            assert store.append_row(dict(row)) == "duplicate"
            assert store.stats()["completed"] == 1

    def test_lookup_aliases_numeric_param_spellings(self, tmp_path):
        """A query spelled ``n=8.0`` finds rows stored under ``n=8`` —
        the same canonicalisation resume keys apply."""
        row = synthetic_row(8)
        with ResultStore(str(tmp_path / "r.db")) as store:
            store.append_row(row)
            assert store.lookup("synthetic/point", {"n": 8.0}) == [row]
            store.append_row(synthetic_row(9.0))
            assert store.lookup("synthetic/point", {"n": 9})


class TestMarkerLifecycle:
    def test_completed_row_deletes_its_stale_marker(self, tmp_path):
        with ResultStore(str(tmp_path / "r.db")) as store:
            assert store.append_row(synthetic_row(1, timed_out=True)) == (
                "marker"
            )
            assert store.pending_retries()
            assert store.append_row(synthetic_row(1)) == "stored"
            assert store.pending_retries() == set()
            assert store.stats() == {
                "completed": 1, "timed_out": 0, "scenarios": 1,
            }

    def test_marker_after_completion_is_superseded(self, tmp_path):
        with ResultStore(str(tmp_path / "r.db")) as store:
            store.append_row(synthetic_row(1))
            assert store.append_row(synthetic_row(1, timed_out=True)) == (
                "superseded"
            )
            assert store.pending_retries() == set()

    def test_newer_marker_replaces_older_marker(self, tmp_path):
        with ResultStore(str(tmp_path / "r.db")) as store:
            store.append_row(synthetic_row(1, timed_out=True, successes=0))
            store.append_row(synthetic_row(1, timed_out=True, successes=5))
            assert store.stats()["timed_out"] == 1
            (marker,) = [
                json.loads(blob)
                for (blob,) in store._query(
                    "SELECT row FROM results WHERE timed_out = 1"
                )
            ]
            assert marker["successes"] == 5  # newest partial count wins

    def test_markers_never_satisfy_resume(self, tmp_path):
        with ResultStore(str(tmp_path / "r.db")) as store:
            store.append_row(synthetic_row(1, timed_out=True))
            assert store.completed_keys() == set()
            assert store.lookup("synthetic/point", {"n": 1}) == []


class TestOpenAndRefuse:
    def test_read_only_requires_an_existing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            ResultStore(str(tmp_path / "missing.db"), read_only=True)

    def test_read_only_refuses_writes_but_serves_reads(self, tmp_path):
        path = str(tmp_path / "r.db")
        with ResultStore(path) as store:
            store.append_row(synthetic_row(1))
        with ResultStore(path, read_only=True) as store:
            assert len(store.completed_keys()) == 1
            with pytest.raises(ConfigurationError, match="read-only"):
                store.append_row(synthetic_row(2))

    def test_foreign_file_is_a_configuration_error(self, tmp_path):
        path = tmp_path / "not_a.db"
        path.write_text("this is a JSONL file, not SQLite\n" * 20)
        with pytest.raises(ConfigurationError, match="not a usable"):
            ResultStore(str(path))
        with ResultStore(str(path), read_only=True) as store:
            # Read-only opens skip the DDL, so the damage surfaces at
            # the first query — as the same error, not sqlite3's.
            with pytest.raises(ConfigurationError, match="not a usable"):
                store.completed_keys()

    def test_malformed_rows_raise_what_the_loaders_catch(self, tmp_path):
        with ResultStore(str(tmp_path / "r.db")) as store:
            with pytest.raises((ConfigurationError, KeyError, TypeError)):
                store.append_row({"unrelated": 1})


class TestStoreRowWriter:
    def test_adapter_speaks_the_rowwriter_interface(self, tmp_path):
        path = str(tmp_path / "r.db")
        lines = [
            json.dumps(synthetic_row(i), sort_keys=True) for i in range(3)
        ]
        with StoreRowWriter(path) as writer:
            assert writer.path == path
            writer.write_lines([lines[0] + "\n", "   ", lines[1]])
            writer.append(lines[2])
        with ResultStore(path, read_only=True) as store:
            assert store.completed_keys() == {
                row_resume_key(synthetic_row(i)) for i in range(3)
            }


class TestConcurrentWriterAndReader:
    def test_reader_polls_while_writer_appends(self, tmp_path):
        """WAL's whole point: a second connection reads a consistent,
        monotonically growing key set while the writer streams rows —
        neither blocks, nothing errors, nothing is lost."""
        path = str(tmp_path / "r.db")
        total = 50
        writer = ResultStore(path)
        reader = ResultStore(path, read_only=True)
        errors = []

        def write_all():
            try:
                for i in range(total):
                    writer.append_row(synthetic_row(i))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        thread = threading.Thread(target=write_all)
        thread.start()
        seen = 0
        try:
            while thread.is_alive():
                count = len(reader.completed_keys())
                assert count >= seen  # never goes backwards
                seen = count
        finally:
            thread.join()
        assert not errors
        assert len(reader.completed_keys()) == total
        writer.close()
        reader.close()


class TestCli:
    def _rows_file(self, tmp_path):
        rows = [synthetic_row(i) for i in range(4)]
        timed = synthetic_row(99, timed_out=True)
        path = tmp_path / "rows.jsonl"
        path.write_text(
            "\n".join(
                json.dumps(r, sort_keys=True) for r in rows + [timed]
            ) + "\ntorn {"
        )
        return path, rows

    def test_db_import_and_stats(self, tmp_path, capsys):
        rows_path, rows = self._rows_file(tmp_path)
        assert main(["db", "import", str(rows_path)]) == 0
        out = capsys.readouterr().out
        assert "4 stored" in out
        assert "1 timed-out marker(s)" in out
        assert "1 skipped" in out
        db_path = tmp_path / "rows.db"  # default: next to the JSONL
        assert db_path.exists()
        with ResultStore(str(db_path), read_only=True) as store:
            assert store.completed_keys() == {
                row_resume_key(r) for r in rows
            }
        assert main(["db", "stats", str(db_path)]) == 0
        out = capsys.readouterr().out
        assert "4 completed row(s)" in out
        assert "1 timed-out marker(s)" in out

    def test_db_import_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["db", "import", str(tmp_path / "absent.jsonl")])

    def test_campaign_out_db_resumes_without_rerunning(
        self, tmp_path, capsys
    ):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "trials": 2,
            "entries": [
                {"scenario": "attack/basic-cheat",
                 "grid": {"n": [8, 12], "target": 2}},
            ],
        }))
        db = tmp_path / "rows.db"
        assert main(["campaign", str(manifest), "--out", str(db)]) == 0
        err = capsys.readouterr().err
        assert "ran 2 of 2 points" in err
        with ResultStore(str(db), read_only=True) as store:
            assert store.stats()["completed"] == 2
        assert main(
            ["campaign", str(manifest), "--out", str(db), "--resume"]
        ) == 0
        err = capsys.readouterr().err
        assert "ran 0 of 2 points" in err
        # A database target also matches the equivalent JSONL run
        # row-for-row, not just key-for-key.
        out = tmp_path / "rows.jsonl"
        assert main(["campaign", str(manifest), "--out", str(out)]) == 0
        capsys.readouterr()
        jsonl_keys = load_completed_keys(out.read_text().splitlines())
        with ResultStore(str(db), read_only=True) as store:
            assert store.completed_keys() == jsonl_keys
            for key in jsonl_keys:
                assert row_resume_key(store.get(key)) == key

    def test_sweep_out_db(self, tmp_path, capsys):
        db = tmp_path / "sweep.sqlite"
        assert main([
            "sweep", "--scenario", "attack/basic-cheat",
            "--param", "n=8,12", "--param", "target=2",
            "--trials", "2", "--out", str(db), "--resume",
        ]) == 0
        capsys.readouterr()
        with ResultStore(str(db), read_only=True) as store:
            # sweep writes fully resolved params (defaults included)
            assert store.completed_keys() == {
                resume_key(
                    "attack/basic-cheat",
                    {"cheater": 2, "n": n, "target": 2}, 2, 0,
                )
                for n in (8, 12)
            }


class TestObserver:
    def test_observer_sees_every_append_outcome(self, tmp_path):
        """The ``store.observer`` hook feeds the
        ``repro_store_appends_total{outcome=}`` metric: one call per
        append, with the same disposition string ``append_row``
        returns."""
        seen = []
        with ResultStore(str(tmp_path / "r.db")) as store:
            store.observer = lambda outcome: seen.append(outcome)
            assert store.append_row(synthetic_row(1)) == "stored"
            assert store.append_row(synthetic_row(1)) == "duplicate"
            assert store.append_row(synthetic_row(2, timed_out=True)) == (
                "marker"
            )
            assert store.append_row(synthetic_row(1, timed_out=True)) == (
                "superseded"
            )
        assert seen == ["stored", "duplicate", "marker", "superseded"]

    def test_observer_errors_do_not_corrupt_the_store(self, tmp_path):
        """The hook is observability only: it runs outside the store
        lock and after the transaction committed, so a broken observer
        loses telemetry, not rows."""
        with ResultStore(str(tmp_path / "r.db")) as store:
            def explode(outcome):
                raise RuntimeError("metrics backend fell over")

            store.observer = explode
            with pytest.raises(RuntimeError):
                store.append_row(synthetic_row(1))
            store.observer = None
            # The row committed before the observer ran.
            assert store.append_row(synthetic_row(1)) == "duplicate"
            assert store.stats()["completed"] == 1
