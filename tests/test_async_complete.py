"""Tests for the Shamir-based asynchronous complete-network baseline."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.shamir_pool import shamir_pooling_attack_protocol
from repro.protocols.async_complete import (
    async_complete_protocol,
    default_threshold,
)
from repro.sim.execution import FAIL, run_protocol
from repro.sim.topology import complete_graph, unidirectional_ring
from repro.util.errors import ConfigurationError


class TestHonestBaseline:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 12])
    def test_honest_run_succeeds(self, n):
        g = complete_graph(n)
        res = run_protocol(g, async_complete_protocol(g), seed=n)
        assert not res.failed, res.fail_reason
        assert 1 <= res.outcome <= n
        assert set(res.outputs.values()) == {res.outcome}

    @given(n=st.integers(2, 9), seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_honest_property(self, n, seed):
        g = complete_graph(n)
        res = run_protocol(g, async_complete_protocol(g), seed=seed)
        assert not res.failed

    def test_rejects_ring(self):
        ring = unidirectional_ring(5)
        with pytest.raises(ConfigurationError):
            async_complete_protocol(ring)

    def test_default_threshold(self):
        assert default_threshold(8) == 4
        assert default_threshold(9) == 5

    def test_outcomes_vary_over_seeds(self):
        g = complete_graph(6)
        outcomes = {
            run_protocol(g, async_complete_protocol(g), seed=s).outcome
            for s in range(15)
        }
        assert len(outcomes) > 1


class TestPoolingAttack:
    @pytest.mark.parametrize("n", [6, 8, 11])
    def test_threshold_coalition_controls(self, n):
        g = complete_graph(n)
        k = default_threshold(n)
        coalition = list(range(2, 2 + k))
        for target in (1, n):
            res = run_protocol(
                g,
                shamir_pooling_attack_protocol(g, coalition, target),
                seed=target,
            )
            assert res.outcome == target, res.fail_reason

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_pooling_success_property(self, seed):
        n = 8
        g = complete_graph(n)
        coalition = [2, 4, 6, 8]
        res = run_protocol(
            g, shamir_pooling_attack_protocol(g, coalition, 3), seed=seed
        )
        assert res.outcome == 3

    def test_undetectable(self):
        """Every honest processor terminates with the target: no aborts."""
        n = 9
        g = complete_graph(n)
        coalition = [1, 3, 5, 7, 9]
        res = run_protocol(
            g, shamir_pooling_attack_protocol(g, coalition, 4), seed=2
        )
        assert all(out == 4 for out in res.outputs.values())

    def test_below_threshold_rejected(self):
        """k < ceil(n/2) cannot reconstruct: the resilience boundary."""
        g = complete_graph(10)
        with pytest.raises(ConfigurationError):
            shamir_pooling_attack_protocol(g, [2, 3, 4, 5], 1)

    def test_rejects_bad_target(self):
        g = complete_graph(6)
        with pytest.raises(ConfigurationError):
            shamir_pooling_attack_protocol(g, [1, 2, 3], 7)


class TestTamperDetection:
    def test_reveal_tampering_caught(self):
        """An adversary lying in the reveal phase is punished with FAIL."""
        from repro.protocols.async_complete import (
            REVEAL,
            AsyncCompleteLeadStrategy,
        )
        from repro.secretshare.shamir import Share, ShamirScheme

        n = 6
        g = complete_graph(n)

        class RevealLiar(AsyncCompleteLeadStrategy):
            """Honest except it corrupts one share in its reveal vector."""

            def _on_share(self, ctx, value, sender):
                # Reuse honest logic but intercept the reveal broadcast by
                # corrupting our stored share of processor 3's secret just
                # before the reveal fires.
                _, owner, share = value
                self.my_shares[owner] = share
                if len(self.my_shares) == self.n and not self.revealed:
                    self.revealed = True
                    corrupted = dict(self.my_shares)
                    s3 = corrupted[3]
                    corrupted[3] = Share(s3.x, (s3.y + 1) % self.scheme.field.p)
                    vector = tuple(sorted(corrupted.items()))
                    for j in range(1, self.n + 1):
                        if j != self.pid:
                            ctx.send(j, (REVEAL, vector))
                    self._absorb_vector(tuple(sorted(self.my_shares.items())))
                    self._maybe_finish(ctx)

        scheme = ShamirScheme(n, default_threshold(n), modulus=n)
        protocol = {
            pid: AsyncCompleteLeadStrategy(pid, n, scheme) for pid in g.nodes
        }
        protocol[5] = RevealLiar(5, n, scheme)
        res = run_protocol(g, protocol, seed=3)
        assert res.outcome == FAIL
        assert "abort" in res.fail_reason or "tampering" in str(res.fail_reason)
