"""Unit + property tests for RingPlacement geometry."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.placement import RingPlacement
from repro.util.errors import ConfigurationError


class TestBasics:
    def test_distances_sum(self):
        pl = RingPlacement(10, (2, 5, 9))
        assert sum(pl.distances()) == 10 - 3

    def test_distances_values(self):
        pl = RingPlacement(10, (2, 5, 9))
        # gaps: 2->5: 2 honest (3,4); 5->9: 3 honest; 9->2 wrap: 2 honest (10,1)
        assert pl.distances() == [2, 3, 2]

    def test_segment_members(self):
        pl = RingPlacement(10, (2, 5, 9))
        assert pl.segment(0) == [3, 4]
        assert pl.segment(2) == [10, 1]

    def test_honest_list(self):
        pl = RingPlacement(6, (2, 4))
        assert pl.honest() == [1, 3, 5, 6]

    def test_origin_honest_flag(self):
        assert RingPlacement(6, (2, 4)).origin_honest
        assert not RingPlacement(6, (1, 4)).origin_honest

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            RingPlacement(6, (4, 2))

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            RingPlacement(6, (0, 2))
        with pytest.raises(ConfigurationError):
            RingPlacement(6, (2, 7))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            RingPlacement(6, ())


class TestFromDistances:
    def test_roundtrip(self):
        pl = RingPlacement.from_distances(12, [3, 2, 4])
        assert pl.distances() == [3, 2, 4]

    def test_rejects_wrong_sum(self):
        with pytest.raises(ConfigurationError):
            RingPlacement.from_distances(12, [3, 3, 4])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            RingPlacement.from_distances(12, [-1, 5, 5])

    @given(
        st.lists(st.integers(0, 8), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, distances):
        n = sum(distances) + len(distances) + 1  # +1 leaves room after 'first'
        try:
            pl = RingPlacement.from_distances(
                n, distances + [n - sum(distances) - len(distances) - 1]
                if False
                else distances
            )
        except ConfigurationError:
            return
        assert pl.distances() == distances


class TestEqualSpacing:
    @given(st.integers(2, 14), st.data())
    @settings(max_examples=60, deadline=None)
    def test_gaps_even(self, k, data):
        n = data.draw(st.integers(2 * k, 8 * k))
        pl = RingPlacement.equal_spacing(n, k)
        ds = pl.distances()
        assert sum(ds) == n - k
        assert max(ds) - min(ds) <= 1
        assert min(ds) >= 1
        assert pl.origin_honest

    def test_rejects_too_dense(self):
        with pytest.raises(ConfigurationError):
            RingPlacement.equal_spacing(7, 4)


class TestCubic:
    @given(st.integers(3, 10), st.data())
    @settings(max_examples=60, deadline=None)
    def test_profile_constraints(self, k, data):
        n_max = k + (k - 1) * k * (k + 1) // 2
        n = data.draw(st.integers(2 * k + 2, n_max))
        pl = RingPlacement.cubic(n, k)
        ds = pl.distances()
        assert sum(ds) == n - k
        assert ds[-1] <= k - 1
        assert min(ds) >= 1
        for i in range(k - 1):
            assert ds[i] <= ds[i + 1] + (k - 1)
        assert pl.origin_honest

    def test_rejects_k_too_small(self):
        with pytest.raises(ConfigurationError):
            RingPlacement.cubic(1000, 3)


class TestRandomLocations:
    def test_deterministic_with_seed(self):
        a = RingPlacement.random_locations(50, 0.3, random.Random(1))
        b = RingPlacement.random_locations(50, 0.3, random.Random(1))
        assert a.positions == b.positions

    def test_origin_excluded(self):
        for seed in range(10):
            pl = RingPlacement.random_locations(30, 0.5, random.Random(seed))
            if pl is not None:
                assert pl.origin_honest

    def test_degenerate_returns_none(self):
        assert RingPlacement.random_locations(30, 0.0, random.Random(0)) is None

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            RingPlacement.random_locations(30, 1.5, random.Random(0))


class TestSegmentStats:
    def test_stats_fields(self):
        from repro.analysis.segments import segment_statistics

        pl = RingPlacement.equal_spacing(16, 4)
        stats = segment_statistics(pl)
        assert stats.n == 16 and stats.k == 4
        assert stats.max_length <= stats.k - 1
        assert stats.rushing_feasible
        assert stats.exposed_adversaries == 4
        assert stats.mean_length == pytest.approx(3.0)

    def test_cubic_feasibility_flag(self):
        from repro.analysis.segments import segment_statistics

        pl = RingPlacement.cubic(34, 4)
        assert segment_statistics(pl).cubic_feasible
