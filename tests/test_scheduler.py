"""Unit tests for oblivious schedulers."""

import random

import pytest

from repro.sim.scheduler import (
    FifoScheduler,
    LinkPriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)

LINKS = [("a", "b"), ("b", "c"), ("c", "a")]


class TestSchedulers:
    def test_fifo_picks_head(self):
        assert FifoScheduler().choose(LINKS) == ("a", "b")

    def test_round_robin_cycles(self):
        s = RoundRobinScheduler()
        picks = [s.choose(LINKS) for _ in range(6)]
        assert picks[:3] == LINKS
        assert picks[3:] == LINKS

    def test_round_robin_single_link(self):
        s = RoundRobinScheduler()
        assert s.choose([("x", "y")]) == ("x", "y")

    def test_random_scheduler_in_set(self):
        s = RandomScheduler(seed=1)
        for _ in range(20):
            assert s.choose(LINKS) in LINKS

    def test_random_scheduler_reproducible(self):
        a = [RandomScheduler(seed=5).choose(LINKS) for _ in range(1)]
        b = [RandomScheduler(seed=5).choose(LINKS) for _ in range(1)]
        assert a == b

    def test_random_scheduler_accepts_rng(self):
        s = RandomScheduler(rng=random.Random(9))
        assert s.choose(LINKS) in LINKS

    def test_priority_prefers_lowest(self):
        s = LinkPriorityScheduler({("b", "c"): -1})
        assert s.choose(LINKS) == ("b", "c")

    def test_priority_ties_broken_by_order(self):
        s = LinkPriorityScheduler({})
        assert s.choose(LINKS) == ("a", "b")

    def test_priority_starves_high(self):
        s = LinkPriorityScheduler({("a", "b"): 10})
        assert s.choose(LINKS) == ("b", "c")
