"""E12 (Afek et al. [5] applications): fair consensus and renaming.

The building blocks the paper credits to Afek et al. — knowledge sharing
plus the election rule — yield Fair Consensus (everyone outputs a
uniformly chosen processor's input) and Fair Renaming (a uniform
rotation of names). Both must be exactly fair under honest execution and
inherit the ring's punishment mechanism under deviation (covered in the
test suite); here we regenerate the fairness series through the
``blocks/*`` scenarios on the experiment runner.
"""

from repro import run_protocol, unidirectional_ring
from repro.analysis.distribution import chi_square_uniformity
from repro.blocks import fair_renaming_protocol, knowledge_sharing_protocol
from repro.blocks.renaming import my_name
from repro.experiments import ExperimentRunner


def test_e12_blocks_fairness(benchmark, experiment_report):
    rows = []

    # Knowledge sharing: attribution correctness at several sizes.
    for n in (5, 9, 16):
        ring = unidirectional_ring(n)
        proto = knowledge_sharing_protocol(
            ring, payload_fn=lambda ctx: ctx.rng.randrange(10**6)
        )
        res = run_protocol(ring, proto, seed=n)
        ok = not res.failed and all(
            res.outcome[pid - 1] == proto[pid].payload for pid in ring.nodes
        )
        rows.append(f"knowledge n={n:<3} attribution correct: {ok}")
        assert ok
    experiment_report("E12a knowledge-sharing block", rows)

    runner = ExperimentRunner()
    n = 6
    trials = 360

    # Fair consensus: decided input uniform over processors.
    rows = []
    result = runner.run("blocks/fair-consensus", trials=trials, params={"n": n})
    assert result.fail_rate == 0.0
    p = chi_square_uniformity(result.distribution)
    rows.append(f"consensus n={n}: decided-input chi2 p={p:.3f}")
    assert p > 1e-4
    experiment_report("E12b fair consensus uniformity", rows)

    # Fair renaming: processor 1's new name uniform over 1..n.
    rows = []
    result = runner.run("blocks/fair-renaming", trials=trials, params={"n": n})
    assert result.fail_rate == 0.0
    p = chi_square_uniformity(result.distribution)
    rows.append(f"renaming n={n}: name-of-processor-1 chi2 p={p:.3f}")
    assert p > 1e-4

    # Order preservation is per-assignment, which the scenario's outcome
    # map collapses away — spot-check it on direct executions.
    ring = unidirectional_ring(n)
    for s in range(20):
        res = run_protocol(ring, fair_renaming_protocol(ring), seed=s)
        assert not res.failed
        names = [my_name(res.outcome, pid) for pid in ring.nodes]
        assert sorted(names) == list(range(1, n + 1))
    rows.append(f"renaming n={n}: order preserved on 20 spot checks")
    experiment_report("E12c fair renaming uniformity", rows)

    ring = unidirectional_ring(16)
    benchmark(
        lambda: run_protocol(
            ring, fair_renaming_protocol(ring), seed=1
        ).outcome
    )
