"""E12 (Afek et al. [5] applications): fair consensus and renaming.

The building blocks the paper credits to Afek et al. — knowledge sharing
plus the election rule — yield Fair Consensus (everyone outputs a
uniformly chosen processor's input) and Fair Renaming (a uniform
rotation of names). Both must be exactly fair under honest execution and
inherit the ring's punishment mechanism under deviation (covered in the
test suite); here we regenerate the fairness series.
"""

from collections import Counter

from repro import run_protocol, unidirectional_ring
from repro.analysis.distribution import (
    OutcomeDistribution,
    chi_square_uniformity,
)
from repro.blocks import (
    fair_consensus_protocol,
    fair_renaming_protocol,
    knowledge_sharing_protocol,
)
from repro.blocks.renaming import my_name


def test_e12_blocks_fairness(benchmark, experiment_report):
    rows = []

    # Knowledge sharing: attribution correctness at several sizes.
    for n in (5, 9, 16):
        ring = unidirectional_ring(n)
        proto = knowledge_sharing_protocol(
            ring, payload_fn=lambda ctx: ctx.rng.randrange(10**6)
        )
        res = run_protocol(ring, proto, seed=n)
        ok = not res.failed and all(
            res.outcome[pid - 1] == proto[pid].payload for pid in ring.nodes
        )
        rows.append(f"knowledge n={n:<3} attribution correct: {ok}")
        assert ok
    experiment_report("E12a knowledge-sharing block", rows)

    # Fair consensus: decided input uniform over processors.
    rows = []
    n = 6
    ring = unidirectional_ring(n)
    counts = Counter()
    trials = 360
    for s in range(trials):
        res = run_protocol(
            ring, fair_consensus_protocol(ring, lambda p: p), seed=s
        )
        assert not res.failed
        counts[res.outcome] += 1
    dist = OutcomeDistribution(n=n, trials=trials, counts=counts)
    p = chi_square_uniformity(dist)
    rows.append(f"consensus n={n}: decided-input chi2 p={p:.3f}")
    assert p > 1e-4
    experiment_report("E12b fair consensus uniformity", rows)

    # Fair renaming: each processor's new name uniform; order preserved.
    rows = []
    counts = Counter()
    for s in range(trials):
        res = run_protocol(ring, fair_renaming_protocol(ring), seed=s)
        assert not res.failed
        counts[my_name(res.outcome, 1)] += 1
        names = [my_name(res.outcome, pid) for pid in ring.nodes]
        assert sorted(names) == list(range(1, n + 1))
    dist = OutcomeDistribution(n=n, trials=trials, counts=counts)
    p = chi_square_uniformity(dist)
    rows.append(f"renaming n={n}: name-of-processor-1 chi2 p={p:.3f}")
    assert p > 1e-4
    experiment_report("E12c fair renaming uniformity", rows)

    ring = unidirectional_ring(16)
    benchmark(
        lambda: run_protocol(
            ring, fair_renaming_protocol(ring), seed=1
        ).outcome
    )
