"""Campaign-engine bench: pool reuse, folded IPC, grid-level parallelism.

Not a paper claim — the systems regression gate for this repo's PR-3
refactor of the experiment stack. Two workloads, each measured before
and after:

- **E1 loop** (1000 basic-cheat trials, n=64): PR 2 created a
  ``multiprocessing.Pool`` inside every ``run()`` call and shipped every
  trial outcome over IPC, which made 4 workers *lose* to serial
  (``BENCH_experiment_engine.json``: 12.4s vs 11.4s). The fix —
  a persistent warm :class:`~repro.experiments.pool.WorkerPool` plus
  worker-side folded aggregates — must bring 4 workers back to at least
  serial speed.
- **Shallow grid** (12 grid points × 120 trials): PR 2's sweep ran grid
  points sequentially, each paying its own pool spawn. The campaign
  orchestrator interleaves chunks from many points into one shared pool
  and must beat the sequential/cold-pool shape.
- **Streamed per-trial outcomes** (8000 cheap baton trials with an
  ``on_outcome`` consumer): PR 3 shipped one pickled ``TrialOutcome``
  list per dispatch whenever per-trial outcomes were requested. The
  streamed path caps dispatches at ``STREAM_CHUNK_TRIALS`` and returns
  columnar packed tuples; at 4 workers it must be no slower than the
  pickled-list shape while bounding every IPC message.
- **Deadline guard overhead** (the same 12-point shallow grid): the
  campaign's cooperative-cancellation machinery (per-point clocks, the
  per-arrival deadline sweep) runs on every chunk boundary even when no
  deadline ever fires. Armed with far-away ``point_timeout`` /
  ``max_wall_clock`` values, the guarded campaign must cost < 5% over
  the unguarded one — "safe to leave running unattended" may not tax
  the attended case.

Both comparisons assert bit-identical outcomes across every mode — the
engine's core contract — and ``measure()`` (run as a script) records the
wall-clock table in ``BENCH_campaign.json``::

    PYTHONPATH=src python benchmarks/bench_campaign_pool.py

The pytest entries below keep the *identity* half of the gate in the
regular benchmark suite at smoke-test sizes; wall-clock claims live only
in the JSON, regenerated on a quiet machine.
"""

import json
import os
import platform
import time
from collections import Counter

import pytest

from repro.experiments import (
    CampaignPoint,
    ExperimentRunner,
    WorkerPool,
    get_scenario,
    run_campaign,
    run_scenario,
)
from repro.experiments.runner import _run_chunk, chunk_payloads

SCENARIO = "attack/basic-cheat"
E1_PARAMS = {"n": 64, "target": 40}
E1_TRIALS = 1000
GRID_N = 32
GRID_TARGETS = list(range(1, 13))  # 12 shallow points
GRID_TRIALS = 120
BASE_SEED = 0
REPS = 6  # min-of-REPS per timed mode (alternated to spread machine noise)

# The streamed-outcome workload is deliberately IPC-heavy: baton trials
# are microseconds of work each, so the cost of shipping their outcomes
# back dominates and the encoding difference is what gets measured.
STREAM_SCENARIO = "fullinfo/baton"
STREAM_PARAMS = {"n": 16, "k": 3}
STREAM_TRIALS = 8000


def _grid_points():
    return [
        CampaignPoint(
            scenario=SCENARIO,
            params={"n": GRID_N, "cheater": 2, "target": target},
            trials=GRID_TRIALS,
            base_seed=BASE_SEED,
            max_steps=None,
            budget=None,
        )
        for target in GRID_TARGETS
    ]


# -- the timed modes ---------------------------------------------------


def e1_before_cold_pool():
    """PR-2 cost model: pool spawned for this experiment, per-trial IPC."""
    with ExperimentRunner(workers=4) as runner:
        return runner.run(
            SCENARIO, E1_TRIALS, base_seed=BASE_SEED, params=E1_PARAMS
        ).distribution.counts


def e1_serial(runner):
    return runner.run(
        SCENARIO, E1_TRIALS, base_seed=BASE_SEED, params=E1_PARAMS,
        keep_outcomes=False,
    ).distribution.counts


def e1_parallel_shared(runner):
    return runner.run(
        SCENARIO, E1_TRIALS, base_seed=BASE_SEED, params=E1_PARAMS,
        keep_outcomes=False,
    ).distribution.counts


def grid_before_sequential_cold_pools():
    """PR-2 sweep cost model: points in sequence, a fresh 4-worker pool
    and per-trial result lists for every point."""
    rows = []
    for point in _grid_points():
        with ExperimentRunner(workers=4) as runner:
            rows.append(
                runner.run(
                    SCENARIO,
                    point.trials,
                    base_seed=point.base_seed,
                    params=point.params,
                ).to_row()
            )
    return rows


def grid_campaign_shared_pool(pool):
    return [r.to_row() for r in run_campaign(_grid_points(), pool=pool)]


# Far-away deadlines: the guard machinery runs on every chunk arrival,
# but nothing ever times out — what's measured is pure bookkeeping.
GUARD_POINT_TIMEOUT = 3600.0
GUARD_WALL_CLOCK = 86400.0


def grid_campaign_guarded(pool):
    return [
        r.to_row()
        for r in run_campaign(
            _grid_points(),
            pool=pool,
            point_timeout=GUARD_POINT_TIMEOUT,
            max_wall_clock=GUARD_WALL_CLOCK,
        )
    ]


def _stream_payloads(pool, max_chunk=None):
    spec = get_scenario(STREAM_SCENARIO)
    params = spec.resolve_params(STREAM_PARAMS)
    return chunk_payloads(
        spec, params, BASE_SEED, range(STREAM_TRIALS), False, None,
        workers=pool.workers, max_chunk=max_chunk,
    )


def _consume_trials(trials):
    """The shared consumer loop — identical in both transport modes, so
    the timed difference is the transport encoding, not the consumer."""
    counts = Counter()
    for trial in trials:
        counts[trial.outcome] += 1
    return counts


def outcomes_pickled_lists(pool):
    """PR-3 transport for ``on_outcome`` consumers: every dispatch
    returns its whole chunk as one pickled ``TrialOutcome`` list
    (default chunking: trials / (workers x 4) per dispatch)."""
    return _consume_trials(
        trial
        for chunk in pool.imap_unordered(_run_chunk, _stream_payloads(pool))
        for trial in chunk
    )


def outcomes_streamed(pool):
    """The streamed transport: dispatches capped at
    ``STREAM_CHUNK_TRIALS``, columnar packed tuples over IPC, trial
    objects rebuilt master-side — exactly what the runner's outcome
    path ships since PR 4."""
    from repro.experiments.pool import STREAM_CHUNK_TRIALS
    from repro.experiments.runner import _run_chunk_packed, _unpack_chunk

    return _consume_trials(
        trial
        for packed in pool.imap_unordered(
            _run_chunk_packed,
            _stream_payloads(pool, max_chunk=STREAM_CHUNK_TRIALS),
        )
        for trial in _unpack_chunk(packed)
    )


# -- measurement harness ----------------------------------------------


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def measure() -> dict:
    # One warm shared pool for every "after" mode — spawn cost is paid
    # once per campaign in production, so it stays out of the timed
    # regions that model steady-state throughput.
    pool = WorkerPool(4).warm_up()
    serial_runner = ExperimentRunner(workers=1)
    # Two large chunks: the bench trials are homogeneous, so coarse
    # chunks mean fewer dispatch round-trips through the pool's
    # oversubscription window with no load-balance downside.
    shared_runner = ExperimentRunner(pool=pool, chunk_size=E1_TRIALS // 2)

    # Warm both code paths (imports, allocator, branch caches).
    e1_serial(ExperimentRunner(workers=1))
    shared_runner.run(SCENARIO, 40, params=E1_PARAMS, keep_outcomes=False)

    # The serial-vs-shared-pool comparison runs first as REPS
    # back-to-back *pairs* (order alternating within the pair), scored
    # by the median of per-pair time ratios: host-load drift that is
    # slow relative to one pair cancels out of the ratio, where a
    # min-across-the-run would just crown whichever mode hit the
    # quietest moment. The one-shot "before" reference (cold pool,
    # per-trial IPC) follows.
    serial_s = parallel_s = float("inf")
    serial_counts = parallel_counts = None
    pair_ratios = []
    for pair in range(REPS):
        if pair % 2 == 0:
            serial_counts, s = _timed(lambda: e1_serial(serial_runner))
            parallel_counts, p = _timed(lambda: e1_parallel_shared(shared_runner))
        else:
            parallel_counts, p = _timed(lambda: e1_parallel_shared(shared_runner))
            serial_counts, s = _timed(lambda: e1_serial(serial_runner))
        serial_s = min(serial_s, s)
        parallel_s = min(parallel_s, p)
        pair_ratios.append(p / s)
    pair_ratios.sort()
    median_ratio = pair_ratios[len(pair_ratios) // 2]  # upper median
    before_counts, before_s = _timed(e1_before_cold_pool)
    assert dict(before_counts) == dict(serial_counts) == dict(parallel_counts)

    grid_before_rows, grid_before_s = _timed(grid_before_sequential_cold_pools)
    grid_after_rows = None
    grid_after_s = float("inf")
    for _ in range(REPS):
        grid_after_rows, s = _timed(lambda: grid_campaign_shared_pool(pool))
        grid_after_s = min(grid_after_s, s)
    canonical = lambda rows: sorted(json.dumps(r, sort_keys=True) for r in rows)
    assert canonical(grid_before_rows) == canonical(grid_after_rows)

    # Deadline-guard overhead on the same grid: alternated pairs scored
    # by the median of per-pair ratios, like the E1 comparison above.
    unguarded_s = guarded_s = float("inf")
    guarded_rows = None
    guard_ratios = []
    for pair in range(REPS):
        if pair % 2 == 0:
            _, u = _timed(lambda: grid_campaign_shared_pool(pool))
            guarded_rows, g = _timed(lambda: grid_campaign_guarded(pool))
        else:
            guarded_rows, g = _timed(lambda: grid_campaign_guarded(pool))
            _, u = _timed(lambda: grid_campaign_shared_pool(pool))
        unguarded_s = min(unguarded_s, u)
        guarded_s = min(guarded_s, g)
        guard_ratios.append(g / u)
    guard_ratios.sort()
    guard_median = guard_ratios[len(guard_ratios) // 2]
    assert canonical(guarded_rows) == canonical(grid_after_rows)

    # Streamed per-trial outcomes vs the pickled-list shape, alternated
    # pairs and median-of-ratios like the E1 comparison above.
    ground_truth = dict(
        run_scenario(
            STREAM_SCENARIO,
            STREAM_TRIALS,
            base_seed=BASE_SEED,
            params=STREAM_PARAMS,
            keep_outcomes=False,
        ).distribution.counts
    )
    pickled_s = streamed_s = float("inf")
    pickled_counts = streamed_counts = None
    stream_ratios = []
    for pair in range(REPS):
        if pair % 2 == 0:
            pickled_counts, b = _timed(lambda: outcomes_pickled_lists(pool))
            streamed_counts, a = _timed(lambda: outcomes_streamed(pool))
        else:
            streamed_counts, a = _timed(lambda: outcomes_streamed(pool))
            pickled_counts, b = _timed(lambda: outcomes_pickled_lists(pool))
        pickled_s = min(pickled_s, b)
        streamed_s = min(streamed_s, a)
        stream_ratios.append(a / b)
    stream_ratios.sort()
    stream_median = stream_ratios[len(stream_ratios) // 2]
    assert dict(pickled_counts) == dict(streamed_counts) == ground_truth
    pool.close()

    return {
        "benchmark": (
            "campaign engine: persistent pool + folded IPC (E1 loop) and "
            "grid-level parallelism (12-point shallow grid)"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "e1_loop": {
            "scenario": SCENARIO,
            "trials": E1_TRIALS,
            "outcome_counts": {
                str(k): v
                for k, v in sorted(
                    serial_counts.items(), key=lambda kv: str(kv[0])
                )
            },
            "seconds": {
                "before_parallel_4_cold_pool_per_experiment": round(before_s, 3),
                "runner_serial_fold": round(serial_s, 3),
                "runner_parallel_4_shared_pool": round(parallel_s, 3),
            },
            "parallel_over_serial_pair_ratios": [
                round(r, 4) for r in pair_ratios
            ],
            "parallel_4_at_least_serial": median_ratio <= 1.0,
            "speedup_parallel_vs_before": round(before_s / parallel_s, 2),
        },
        "shallow_grid": {
            "scenario": SCENARIO,
            "points": len(GRID_TARGETS),
            "trials_per_point": GRID_TRIALS,
            "seconds": {
                "before_sequential_cold_pools": round(grid_before_s, 3),
                "campaign_shared_pool": round(grid_after_s, 3),
            },
            "campaign_faster_than_sequential": grid_after_s < grid_before_s,
            "speedup_vs_sequential": round(grid_before_s / grid_after_s, 2),
        },
        "deadline_overhead": {
            "scenario": SCENARIO,
            "points": len(GRID_TARGETS),
            "trials_per_point": GRID_TRIALS,
            "point_timeout_s": GUARD_POINT_TIMEOUT,
            "max_wall_clock_s": GUARD_WALL_CLOCK,
            "seconds": {
                "unguarded": round(unguarded_s, 3),
                "guarded": round(guarded_s, 3),
            },
            "guarded_over_unguarded_pair_ratios": [
                round(r, 4) for r in guard_ratios
            ],
            "overhead_pct_median": round((guard_median - 1.0) * 100, 2),
            "guard_overhead_below_5pct": guard_median <= 1.05,
            "rows_identical_to_unguarded": True,
        },
        "streamed_outcomes": {
            "scenario": STREAM_SCENARIO,
            "params": STREAM_PARAMS,
            "trials": STREAM_TRIALS,
            "workers": 4,
            "seconds": {
                "pickled_trialoutcome_lists": round(pickled_s, 3),
                "streamed_packed_chunks": round(streamed_s, 3),
            },
            "streamed_over_pickled_pair_ratios": [
                round(r, 4) for r in stream_ratios
            ],
            "streamed_no_slower_than_pickled": stream_median <= 1.0,
            "speedup_streamed_vs_pickled": round(pickled_s / streamed_s, 2),
        },
        "outcomes_identical_across_modes": True,
    }


def main() -> None:
    payload = measure()
    out = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_campaign.json"
    )
    with open(os.path.normpath(out), "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(json.dumps(payload, indent=2))


# -- pytest identity gate (smoke sizes, no wall-clock claims) ----------

SMOKE_TRIALS = 40


@pytest.mark.smoke
def test_pool_reuse_preserves_outcomes(benchmark, experiment_report):
    """Two experiments through one shared pool == two cold serial runs."""
    serial = [
        run_scenario(
            SCENARIO, SMOKE_TRIALS, base_seed=seed, params={"n": 16, "target": 5}
        ).to_row()
        for seed in (0, 1)
    ]

    def shared():
        with WorkerPool(2) as pool:
            return [
                run_scenario(
                    SCENARIO,
                    SMOKE_TRIALS,
                    base_seed=seed,
                    params={"n": 16, "target": 5},
                    pool=pool,
                    keep_outcomes=False,
                ).to_row()
                for seed in (0, 1)
            ]

    assert benchmark(shared) == serial
    experiment_report(
        "campaign pool: reuse identity",
        [f"2 experiments x {SMOKE_TRIALS} trials: shared-pool rows == serial rows"],
    )


@pytest.mark.smoke
def test_campaign_interleaving_preserves_rows(benchmark, experiment_report):
    """Grid-level parallel campaign rows == sequential per-point rows."""
    points = [
        CampaignPoint(
            scenario=SCENARIO,
            params={"n": 16, "cheater": 2, "target": target},
            trials=SMOKE_TRIALS,
            base_seed=BASE_SEED,
            max_steps=None,
            budget=None,
        )
        for target in (1, 2, 3, 4)
    ]
    sequential = sorted(
        json.dumps(
            run_scenario(
                SCENARIO,
                SMOKE_TRIALS,
                base_seed=BASE_SEED,
                params=p.params,
            ).to_row(),
            sort_keys=True,
        )
        for p in points
    )

    def campaign():
        return sorted(
            json.dumps(r.to_row(), sort_keys=True)
            for r in run_campaign(points, workers=2)
        )

    assert benchmark(campaign) == sequential
    experiment_report(
        "campaign interleaving: row identity",
        [f"{len(points)} points x {SMOKE_TRIALS} trials: campaign rows == "
         "sequential rows"],
    )


@pytest.mark.smoke
def test_deadline_guard_preserves_rows(benchmark, experiment_report):
    """Armed-but-never-firing deadlines must not change a single byte:
    the guard is bookkeeping, never part of any trial's identity."""
    points = [
        CampaignPoint(
            scenario=SCENARIO,
            params={"n": 16, "cheater": 2, "target": target},
            trials=SMOKE_TRIALS,
            base_seed=BASE_SEED,
            max_steps=None,
            budget=None,
        )
        for target in (1, 2, 3, 4)
    ]
    unguarded = sorted(
        json.dumps(r.to_row(), sort_keys=True)
        for r in run_campaign(points, workers=2)
    )

    def guarded():
        return sorted(
            json.dumps(r.to_row(), sort_keys=True)
            for r in run_campaign(
                points,
                workers=2,
                point_timeout=GUARD_POINT_TIMEOUT,
                max_wall_clock=GUARD_WALL_CLOCK,
            )
        )

    assert benchmark(guarded) == unguarded
    experiment_report(
        "deadline guard: row identity",
        [f"{len(points)} points x {SMOKE_TRIALS} trials: guarded campaign "
         "rows == unguarded rows"],
    )


@pytest.mark.smoke
def test_packed_chunks_pickle_smaller_than_trialoutcome_lists(
    benchmark, experiment_report
):
    """The streamed transport's byte claim, pinned: a packed chunk must
    pickle to well under half the bytes of the same chunk as a
    ``TrialOutcome`` list (observed ~3.4x smaller on the reference
    chunk), and stay that way if the packing format changes."""
    import pickle

    from repro.experiments.runner import _run_chunk, _run_chunk_packed

    spec = get_scenario(STREAM_SCENARIO)
    params = spec.resolve_params(STREAM_PARAMS)
    (payload,) = chunk_payloads(
        spec, params, BASE_SEED, range(500), False, None, chunk_size=500
    )

    def sizes():
        return (
            len(pickle.dumps(_run_chunk(payload))),
            len(pickle.dumps(_run_chunk_packed(payload))),
        )

    list_bytes, packed_bytes = benchmark(sizes)
    assert packed_bytes * 2 < list_bytes
    experiment_report(
        "streamed outcomes: IPC bytes",
        [
            f"500-trial chunk: {list_bytes} B as TrialOutcome list, "
            f"{packed_bytes} B packed "
            f"({list_bytes / packed_bytes:.1f}x smaller)"
        ],
    )


@pytest.mark.smoke
def test_streamed_outcomes_identity(benchmark, experiment_report):
    """Streamed bounded-chunk outcomes == serial per-trial outcomes."""
    serial = run_scenario(
        STREAM_SCENARIO, SMOKE_TRIALS * 5, params=STREAM_PARAMS
    ).to_row()

    def streamed():
        seen = Counter()
        with WorkerPool(2) as pool:
            row = ExperimentRunner(pool=pool).run(
                STREAM_SCENARIO,
                SMOKE_TRIALS * 5,
                params=STREAM_PARAMS,
                keep_outcomes=False,
                on_outcome=lambda trial: seen.update((trial.outcome,)),
            ).to_row()
        assert {str(k): v for k, v in seen.items()} == row["outcomes"]
        return row

    assert benchmark(streamed) == serial
    experiment_report(
        "streamed outcomes: identity",
        [f"{SMOKE_TRIALS * 5} trials: streamed on_outcome row == serial row"],
    )


if __name__ == "__main__":
    main()
