"""A5 (ablation): message complexity of every protocol in the repo.

The classical ring-election literature the paper cites (Chang-Roberts,
Dolev/Peterson) is organized around message complexity; this table
records what the rational-agent protocols cost on top:

- Basic-LEAD / A-LEADuni: n messages per processor → n² total;
- PhaseAsyncLead: 2n per processor (data + validation) → 2n²;
- wake-up + A-LEADuni: one extra n² id-circulation phase;
- Shamir complete-network: Θ(n) per processor but Θ(n)-sized reveal
  payloads (n² messages, n³ field elements).

The asserted shapes are exact counts, not estimates.
"""

from repro import run_protocol, unidirectional_ring
from repro.protocols import (
    alead_uni_protocol,
    async_complete_protocol,
    basic_lead_protocol,
    phase_async_protocol,
    wakeup_alead_protocol,
)
from repro.sim.events import SendEvent
from repro.sim.topology import complete_graph


def _total_sends(result) -> int:
    return sum(1 for e in result.trace if isinstance(e, SendEvent))


def test_a5_message_complexity(benchmark, experiment_report):
    rows = []
    for n in (8, 16, 32):
        ring = unidirectional_ring(n)
        basic = _total_sends(run_protocol(ring, basic_lead_protocol(ring), seed=1))
        alead = _total_sends(run_protocol(ring, alead_uni_protocol(ring), seed=1))
        phase = _total_sends(run_protocol(ring, phase_async_protocol(ring), seed=1))
        wake = _total_sends(run_protocol(ring, wakeup_alead_protocol(ring), seed=1))
        g = complete_graph(n)
        shamir = _total_sends(run_protocol(g, async_complete_protocol(g), seed=1))
        rows.append(
            f"n={n:<3} basic={basic:<5} alead={alead:<5} phase={phase:<6} "
            f"wakeup+alead={wake:<6} shamir={shamir}"
        )
        assert basic == n * n
        assert alead == n * n
        assert phase == 2 * n * n
        assert wake == 2 * n * n  # n² wake-up + n² election
        # Shamir: n(n-1) shares + n(n-1) reveals = 2n(n-1).
        assert shamir == 2 * n * (n - 1)
    experiment_report("A5 message complexity (exact counts)", rows)

    ring = unidirectional_ring(32)
    benchmark(
        lambda: _total_sends(
            run_protocol(ring, alead_uni_protocol(ring), seed=2)
        )
    )
