"""A5 (ablation): message complexity of every protocol in the repo.

The classical ring-election literature the paper cites (Chang-Roberts,
Dolev/Peterson) is organized around message complexity; this table
records what the rational-agent protocols cost on top:

- Basic-LEAD / A-LEADuni: n messages per processor → n² total;
- PhaseAsyncLead: 2n per processor (data + validation) → 2n²;
- wake-up + A-LEADuni: one extra n² id-circulation phase;
- Shamir complete-network: Θ(n) per processor but Θ(n)-sized reveal
  payloads (n² messages, n³ field elements).

The asserted shapes are exact counts, not estimates. Every protocol is
instantiated through its registered scenario (including
``honest/wakeup-alead``), so the counted executions share the sweep
engine's wiring.
"""

from repro.experiments import run_traced_trial
from repro.sim.events import SendEvent


def _total_sends(result) -> int:
    return sum(1 for e in result.trace if isinstance(e, SendEvent))


def _sends(scenario: str, n: int) -> int:
    return _total_sends(
        run_traced_trial(scenario, params={"n": n}, base_seed=1)
    )


def test_a5_message_complexity(benchmark, experiment_report):
    rows = []
    for n in (8, 16, 32):
        basic = _sends("honest/basic-lead", n)
        alead = _sends("honest/alead-uni", n)
        phase = _sends("honest/phase-async", n)
        wake = _sends("honest/wakeup-alead", n)
        shamir = _sends("honest/async-complete", n)
        rows.append(
            f"n={n:<3} basic={basic:<5} alead={alead:<5} phase={phase:<6} "
            f"wakeup+alead={wake:<6} shamir={shamir}"
        )
        assert basic == n * n
        assert alead == n * n
        assert phase == 2 * n * n
        assert wake == 2 * n * n  # n² wake-up + n² election
        # Shamir: n(n-1) shares + n(n-1) reveals = 2n(n-1).
        assert shamir == 2 * n * (n - 1)
    experiment_report("A5 message complexity (exact counts)", rows)

    benchmark(lambda: _sends("honest/alead-uni", 32))
