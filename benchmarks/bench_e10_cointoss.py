"""E10 (Theorem 8.1): FLE ⇔ fair coin toss, with bias propagation.

Paper claims:
- an ε-unbiased FLE gives a (n/2)ε-unbiased coin (take the low bit);
- log2(n) independent ε-unbiased coins give a ((1/2+ε)^log2(n))-bounded
  FLE.

We measure: honest reductions stay balanced/uniform; a *biased* FLE
(single-cheater Basic-LEAD forcing an even id) propagates to a constant
coin, saturating the paper's bound.
"""

from collections import Counter

from repro import unidirectional_ring
from repro.attacks import basic_cheat_protocol
from repro.cointoss import (
    CoinTossRunner,
    coin_bias_bound_from_fle,
    fle_bias_bound_from_coin,
    independent_coin_fle,
)
from repro.protocols import alead_uni_protocol
from repro.util.rng import RngRegistry


def test_e10_reductions(benchmark, experiment_report):
    rows = []
    ring = unidirectional_ring(8)

    # Honest FLE -> coin: balanced.
    runner = CoinTossRunner(ring, alead_uni_protocol)
    tosses = [runner.toss(RngRegistry(s)) for s in range(200)]
    ones = sum(tosses)
    rows.append(f"honest FLE->coin: Pr[1]={ones/200:.2f} (target 0.5)")
    assert 0.35 <= ones / 200 <= 0.65

    # Honest coins -> FLE over n=8: uniform-ish.
    counts = Counter(
        independent_coin_fle(ring, alead_uni_protocol, 8, RngRegistry(s))
        for s in range(200)
    )
    top = max(counts.values()) / 200
    rows.append(f"honest coin->FLE(8): max Pr={top:.2f} (target 0.125)")
    assert set(counts) <= set(range(1, 9))
    assert top < 0.30

    # Fully biased FLE -> constant coin (saturates (n/2)eps).
    biased = CoinTossRunner(ring, lambda t: basic_cheat_protocol(t, 2, 4))
    outs = {biased.toss(RngRegistry(s)) for s in range(20)}
    rows.append(f"biased FLE (forces id 4) -> coin outcomes {sorted(outs)}")
    assert outs == {0}

    # The analytic bounds themselves.
    rows.append(
        f"bounds: coin eps from (n=8, eps=0.01) FLE <= "
        f"{coin_bias_bound_from_fle(8, 0.01):.3f}; "
        f"FLE eps from (eps=0.05) coins <= "
        f"{fle_bias_bound_from_coin(8, 0.05):.3f}"
    )
    assert coin_bias_bound_from_fle(8, 0.01) == 0.04
    experiment_report("E10 FLE <-> coin toss (Thm 8.1)", rows)

    benchmark(
        lambda: independent_coin_fle(
            ring, alead_uni_protocol, 8, RngRegistry(1)
        )
    )
