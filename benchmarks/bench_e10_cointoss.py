"""E10 (Theorem 8.1): FLE ⇔ fair coin toss, with bias propagation.

Paper claims:
- an ε-unbiased FLE gives a (n/2)ε-unbiased coin (take the low bit);
- log2(n) independent ε-unbiased coins give a ((1/2+ε)^log2(n))-bounded
  FLE.

We measure: honest reductions stay balanced/uniform; a *biased* FLE
(single-cheater Basic-LEAD forcing an even id) propagates to a constant
coin, saturating the paper's bound. All three estimation loops run
through the registered ``cointoss/*`` scenarios on the experiment
runner, so they inherit deterministic seeding and worker fan-out.
"""

import pytest

from repro.cointoss import (
    coin_bias_bound_from_fle,
    fle_bias_bound_from_coin,
)
from repro.experiments import ExperimentRunner


@pytest.mark.smoke
def test_e10_reductions(benchmark, experiment_report):
    rows = []
    runner = ExperimentRunner()

    # Honest FLE -> coin: balanced.
    result = runner.run("cointoss/fle-coin", trials=200, params={"n": 8})
    ones = result.distribution.counts[1]
    rows.append(f"honest FLE->coin: Pr[1]={ones/200:.2f} (target 0.5)")
    assert result.fail_rate == 0.0
    assert 0.35 <= ones / 200 <= 0.65

    # Honest coins -> FLE over n=8: uniform-ish.
    result = runner.run("cointoss/coin-fle", trials=200, params={"n": 8})
    counts = result.distribution.counts
    top = max(counts.values()) / 200
    rows.append(f"honest coin->FLE(8): max Pr={top:.2f} (target 0.125)")
    assert set(counts) <= set(range(1, 9))
    assert top < 0.30

    # Fully biased FLE -> constant coin (saturates (n/2)eps).
    result = runner.run(
        "cointoss/biased-coin",
        trials=20,
        params={"n": 8, "cheater": 2, "target": 4},
    )
    outs = set(result.distribution.counts)
    rows.append(f"biased FLE (forces id 4) -> coin outcomes {sorted(outs)}")
    assert outs == {0}
    assert result.success_rate == 1.0  # every toss landed on target parity

    # The analytic bounds themselves.
    rows.append(
        f"bounds: coin eps from (n=8, eps=0.01) FLE <= "
        f"{coin_bias_bound_from_fle(8, 0.01):.3f}; "
        f"FLE eps from (eps=0.05) coins <= "
        f"{fle_bias_bound_from_coin(8, 0.05):.3f}"
    )
    assert coin_bias_bound_from_fle(8, 0.01) == 0.04
    experiment_report("E10 FLE <-> coin toss (Thm 8.1)", rows)

    benchmark(
        lambda: ExperimentRunner()
        .run("cointoss/coin-fle", trials=1, base_seed=1, params={"n": 8})
        .outcomes[0]
        .outcome
    )
