"""E9 (Theorem 7.2 / Appendix F): impossibility on k-simulated trees.

Paper claims reproduced here:
- Lemma F.2: for every finite two-party coin-toss protocol, either both
  players assure a favorable bit or one player is a dictator — the search
  finds and *verifies* the forcing strategy on a family of game trees;
- Claim F.5: every connected graph is a ⌈n/2⌉-simulated tree — checked
  on random connected graphs;
- Theorem 7.2: graphs with finer tree simulations get strictly smaller
  coalition bounds than the generic n/2 (the paper's improvement).
"""

import random

from repro.trees import (
    TwoPartyProtocol,
    check_k_simulated_tree,
    classify_protocol,
    half_partition,
    impossibility_certificate,
    output,
    send,
    verify_assurance,
    wait,
)


def _random_connected_graph(n: int, seed: int):
    rng = random.Random(seed)
    nodes = list(range(n))
    edges = [(i, i + 1) for i in range(n - 1)]
    for _ in range(n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((min(u, v), max(u, v)))
    return nodes, edges


def _last_mover_protocol(rounds: int) -> TwoPartyProtocol:
    """Alternating XOR announcements over ``rounds`` messages (A starts)."""

    def make(player_parity):
        def act(bits, h):
            t = len(h)
            if t < rounds and t % 2 == player_parity:
                return send(bits[t // 2])
            if t == rounds:
                acc = 0
                for _, m in h:
                    acc ^= m
                return output(acc)
            return wait()

        return act

    per_a = (rounds + 1) // 2
    per_b = rounds // 2
    inputs_a = [tuple((x >> i) & 1 for i in range(per_a)) for x in range(2**per_a)]
    inputs_b = [tuple((x >> i) & 1 for i in range(max(per_b, 1))) for x in range(2 ** max(per_b, 1))]
    return TwoPartyProtocol(inputs_a, inputs_b, make(0), make(1), max_depth=rounds + 2)


def test_e9_dictator_search(benchmark, experiment_report):
    rows = []
    # The canonical XOR protocol: B dictates. The registered scenario
    # runs the search *and* replays both witnesses (success means the
    # expected dictator was extracted and every witness verified).
    from repro.experiments import run_scenario

    result = run_scenario("tree/xor-coin", trials=1)
    rows.append(f"xor(2 msgs): dictator={result.outcomes[0].outcome}")
    assert result.success_rate == 1.0
    assert result.outcomes[0].outcome == "B"

    # Longer alternating protocols: the last mover always dictates.
    for rounds in (2, 3, 4):
        p = _last_mover_protocol(rounds)
        v = classify_protocol(p)
        expected = "A" if rounds % 2 == 1 else "B"
        rows.append(
            f"alternating xor({rounds} msgs): dictator={v.get('dictator')} "
            f"(last mover={expected})"
        )
        assert v.get("dictator") == expected
        for w in v["witnesses"]:
            assert verify_assurance(p, w)
    experiment_report("E9a Lemma F.2 dictator extraction", rows)

    benchmark(lambda: classify_protocol(_last_mover_protocol(4)))


def test_e9_half_partition_random_graphs(benchmark, experiment_report):
    import math

    rows = []
    for n in (6, 9, 12, 16):
        for seed in range(3):
            nodes, edges = _random_connected_graph(n, seed)
            mapping = half_partition(nodes, edges)
            k = max(
                sum(1 for v in nodes if mapping[v] == part)
                for part in set(mapping.values())
            )
            report = check_k_simulated_tree(nodes, edges, mapping, k)
            assert report["ok"]
            assert k <= math.ceil(n / 2)
        rows.append(f"n={n:<3} all seeds: valid ceil(n/2)-simulated tree witness")
    experiment_report("E9b Claim F.5 on random connected graphs", rows)

    nodes, edges = _random_connected_graph(16, 0)
    benchmark(lambda: half_partition(nodes, edges))


def test_e9_certificates_beat_generic_bound(benchmark, experiment_report):
    rows = []
    # Barbell: two triangles + bridge = 3-simulated tree (n/2 = 3 too,
    # but a path of cliques scales better):
    # chain of c triangles -> 3-simulated tree while n/2 = 3c/2.
    for c in (2, 3, 4):
        nodes = list(range(3 * c))
        edges = []
        for t in range(c):
            a, b, d = 3 * t, 3 * t + 1, 3 * t + 2
            edges += [(a, b), (b, d), (a, d)]
            if t:
                edges.append((3 * t - 1, a))
        mapping = {v: v // 3 for v in nodes}
        report = check_k_simulated_tree(nodes, edges, mapping, k=3)
        assert report["ok"]
        cert = impossibility_certificate(nodes, edges)
        rows.append(
            f"triangle-chain n={3*c:<3} fine witness k=3 "
            f"vs generic ceil(n/2)={cert['k']}"
        )
        if c > 2:
            assert 3 < cert["k"]
    experiment_report(
        "E9c finer tree simulations beat the n/2 bound (Thm 7.2)", rows
    )

    nodes = list(range(12))
    edges = []
    for t in range(4):
        a, b, d = 3 * t, 3 * t + 1, 3 * t + 2
        edges += [(a, b), (b, d), (a, d)]
        if t:
            edges.append((3 * t - 1, a))
    benchmark(lambda: impossibility_certificate(nodes, edges)["k"])


def test_e9_tree_collapse_lemma_f3(benchmark, experiment_report):
    """Lemma F.3 executable: collapse a tree protocol to two parties and
    extract the dictator — the coalition Corollary F.4 promises. Runs as
    a chain-length sweep of the ``tree/xor-chain`` scenario (the spec
    collapses, classifies, and replays both witnesses per trial)."""
    from repro.experiments import sweep_scenario

    rows = []
    for result in sweep_scenario(
        "tree/xor-chain", trials=1, grid={"chain": [2, 3, 4]}
    ):
        chain = result.params["chain"]
        # The component (containing the last XOR folder) dictates.
        assert result.success_rate == 1.0
        assert result.outcomes[0].outcome == "B"
        rows.append(
            f"xor-chain({chain}): component of {chain - 1} nodes dictates; "
            f"witnesses verified for both bits"
        )
    experiment_report("E9d Lemma F.3 tree collapse", rows)

    from repro.trees import collapse_to_two_party, xor_tree_protocol

    tp = xor_tree_protocol(3)
    benchmark(
        lambda: classify_protocol(collapse_to_two_party(tp, leaf=0)).get(
            "dictator"
        )
    )
