"""E3 (Lemma 4.1 / Theorem 4.2): √n equally spaced adversaries control
A-LEADuni.

Paper claim: with every honest segment of length ≤ k-1 (true for
equally spaced k ≥ √n), the coalition forces any outcome with
probability 1. We sweep n, measure the forcing rate at k = ⌈√n⌉, and show
the attack collapsing once k drops below the segment-length requirement.
"""

import math

from repro import FAIL, run_protocol, unidirectional_ring
from repro.analysis.bias import attack_success_rate
from repro.attacks import (
    RingPlacement,
    equal_spacing_attack_protocol,
    equal_spacing_attack_protocol_unchecked,
)


def test_e3_sqrt_coalition_controls(benchmark, experiment_report):
    rows = []
    for n in (16, 36, 64, 144, 256):
        k = math.isqrt(n)
        ring = unidirectional_ring(n)
        pl = RingPlacement.equal_spacing(n, k)
        rate = attack_success_rate(
            ring,
            lambda topo, w: equal_spacing_attack_protocol(topo, pl, w),
            target=n // 2,
            trials=6,
            base_seed=n,
        )
        rows.append(
            f"n={n:<4} k=sqrt(n)={k:<3} segments max={max(pl.distances())} "
            f"forcing rate={rate:.2f}"
        )
        assert rate == 1.0
    experiment_report("E3 rushing attack at k=sqrt(n) (Thm 4.2)", rows)

    # Below the threshold: segments exceed k-1 and the deviation stalls.
    n = 64
    ring = unidirectional_ring(n)
    small = RingPlacement.equal_spacing(n, 4)  # segments of 15 > 3
    res = run_protocol(
        ring, equal_spacing_attack_protocol_unchecked(ring, small, 5), seed=1
    )
    assert res.outcome == FAIL
    experiment_report(
        "E3 below threshold",
        [f"n={n} k=4: outcome={res.outcome} ({res.fail_reason})"],
    )

    pl = RingPlacement.equal_spacing(256, 16)
    ring = unidirectional_ring(256)
    benchmark(
        lambda: run_protocol(
            ring, equal_spacing_attack_protocol(ring, pl, 9), seed=0
        ).outcome
    )
