"""Shared helpers for the benchmark/experiment harness.

Every bench file reproduces one row of DESIGN.md's experiment index. The
pattern: a pytest-benchmark measurement of the representative workload,
plus printed series mirroring the quantity the paper's theorem states
(success probabilities, bias, thresholds). Shape assertions are included
so `pytest benchmarks/ --benchmark-only` doubles as a regression gate on
the scientific claims, not just on speed.
"""

import pytest


def report(title: str, rows) -> None:
    """Uniform experiment output: one table per experiment."""
    print(f"\n[{title}]")
    for row in rows:
        print("   ", row)


@pytest.fixture
def experiment_report(capsys):
    """Print experiment tables past pytest's capture, so the regenerated
    paper-shaped series appear in ``pytest benchmarks/`` output (and in
    bench_output.txt) even on passing runs."""

    def _report(title: str, rows) -> None:
        with capsys.disabled():
            report(title, rows)

    return _report
