"""A6 (ablation): random-deviation search supports Theorem 5.1.

The structured-attack benches show where A-LEADuni *breaks*; this one
shows that breaking it requires that structure. We sample hundreds of
unstructured coalition deviations (per-receive behaviour from
{forward, buffer, drop, inject, replay} plus random bursts) and score
them: Theorem 5.1 predicts every one is either punished (FAIL) or
non-biasing. A broken punishment mechanism — e.g. a validation check
accidentally removed — would light this bench up immediately.
"""

from repro.testing.fuzz import deviation_search


def test_a6_fuzz_deviation_search(benchmark, experiment_report):
    rows = []
    for n, k in ((16, 2), (25, 3), (36, 4), (49, 4)):
        rep = deviation_search(n, k, samples=150, master_seed=n)
        rows.append(
            f"n={n:<3} k={k}: punished {rep.punished}/{rep.samples} "
            f"({rep.punishment_rate:.2f}); max single-outcome rate "
            f"{rep.max_outcome_rate:.3f} (forcing would be ~1.0)"
        )
        # No sampled deviation biases the election: surviving runs are
        # rare and spread out; nothing approaches attack-level forcing.
        assert rep.max_outcome_rate < 0.2
        assert rep.punishment_rate > 0.8
    experiment_report(
        "A6 unstructured-deviation search (Thm 5.1 support)", rows
    )

    benchmark(lambda: deviation_search(16, 2, samples=25, master_seed=0))
