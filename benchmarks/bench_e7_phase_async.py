"""E7 (Theorem 6.1 + tightness): PhaseAsyncLead's √n threshold.

Paper claims:
- PhaseAsyncLead is ε-k-unbiased for k ≤ √n/10 (w.h.p. over f);
- the bound is tight: k = √n + 3 adversaries control the outcome.

We measure both sides:
- **above**: the rushing+brute-force attack forces any target at
  k = √n + 3, across several independent keys of f (sampling the
  "probability over f");
- **below**: the same deviation's preconditions are unsatisfiable for
  k ≤ √n (segments exceed k-3), the E.4 covert channel fails against
  random f, and honest executions stay uniform.
"""

import math

from repro import FAIL, run_protocol, unidirectional_ring
from repro.analysis.distribution import (
    chi_square_uniformity,
    estimate_distribution,
)
from repro.attacks import (
    partial_sum_attack_protocol,
    phase_rushing_attack_protocol,
)
from repro.protocols import PhaseAsyncParams, phase_async_protocol
from repro.util.errors import ConfigurationError


def test_e7_threshold_above(benchmark, experiment_report):
    rows = []
    for n in (36, 64, 100, 144):
        k = math.isqrt(n) + 3
        ring = unidirectional_ring(n)
        wins = 0
        keys = 3
        for key in range(keys):
            params = PhaseAsyncParams(n=n, key=key)
            res = run_protocol(
                ring,
                phase_rushing_attack_protocol(ring, k, n // 2, params=params),
                seed=key,
            )
            wins += res.outcome == n // 2
        rows.append(f"n={n:<4} k=sqrt(n)+3={k:<3} forced {wins}/{keys} keys")
        assert wins == keys
    experiment_report("E7a attack at k=sqrt(n)+3 (tightness)", rows)

    ring = unidirectional_ring(64)
    benchmark(
        lambda: run_protocol(
            ring, phase_rushing_attack_protocol(ring, 11, 5), seed=0
        ).outcome
    )


def test_e7_threshold_below(benchmark, experiment_report):
    rows = []
    for n in (64, 100, 144):
        k_below = math.isqrt(n)  # below the +3 slack the attack needs
        ring = unidirectional_ring(n)
        try:
            phase_rushing_attack_protocol(ring, max(2, k_below - 2), 5)
            feasible = True
        except ConfigurationError:
            feasible = False
        rows.append(f"n={n:<4} k={max(2, k_below - 2):<3} rushing feasible={feasible}")
        assert not feasible
    experiment_report("E7b rushing infeasible below sqrt(n)", rows)

    # The E.4 deviation (beats the sum variant with k=4) fails vs random f.
    n = 44
    ring = unidirectional_ring(n)
    res = run_protocol(
        ring,
        partial_sum_attack_protocol(
            ring, 4, 7, params=PhaseAsyncParams(n=n)
        ),
        seed=11,
    )
    assert res.outcome == FAIL
    experiment_report(
        "E7c partial-sum channel vs random f",
        [f"n={n} k=4: outcome={res.outcome} (punished)"],
    )

    # Honest uniformity baseline.
    ring = unidirectional_ring(8)
    dist = estimate_distribution(
        ring, phase_async_protocol, trials=400, base_seed=3
    )
    assert dist.fail_count == 0
    p = chi_square_uniformity(dist)
    assert p > 1e-4
    experiment_report(
        "E7d honest PhaseAsyncLead uniformity",
        [f"n=8 trials=400 chi2 p={p:.3f}"],
    )

    ring = unidirectional_ring(32)
    benchmark(
        lambda: run_protocol(ring, phase_async_protocol(ring), seed=1).outcome
    )
