#!/usr/bin/env python
"""Regenerate BENCH_chunking.json.

What cost-adaptive chunk sizing buys, measured on three workload
shapes plus the concurrent estimate service:

- **Budgeted 1M-trial point (headline).** A Wilson-budgeted point of a
  microsecond-cheap batched scenario runs its doubling batches to the
  2^20-trial ceiling. The static heuristic cuts every batch into
  ~4 chunks per worker (16 batches x 16 chunks at 4 workers); a warmed
  :class:`AdaptiveChunker` sends each small batch as one fold and only
  splits the big tail batches at its wall-seconds floor. Same rows,
  same trial counts, an integer multiple fewer dispatches.
- **Fixed 1M-trial biased-coin point.** The calibration-probe path: an
  unseen scenario spends one small probe chunk, then ships the
  remainder in evidence-sized folds instead of ``workers * 4`` static
  slices.
- **Executor grid.** ``attack/basic-cheat`` at ~ms/trial: adaptive
  sizing must not slow the already-coarse executor path down.
- **Concurrent estimate service.** Two cold estimates for *distinct*
  points issued together; per-point locks let their compute sections
  overlap in wall time (a global lock would serialize them).

Every timed comparison first asserts the result rows are
byte-identical across chunking modes — chunking is scheduling
metadata, never physics.

The cheap scenario is registered by this benchmark (``bench/fair-coin``
— one BLAKE2b-derived fair coin flip per trial, ~0.5 us) because the
shipped batched scenarios are either >10 us/trial or have degenerate
success rates; the chunking machinery under test is scenario-agnostic.

``--smoke`` runs the identity + dispatch-drop assertions on small
counts — no timing, no JSON — and exits nonzero on any divergence.

Usage::

    PYTHONPATH=src python benchmarks/bench_chunking.py [--smoke]
"""

import argparse
import json
import os
import platform
import threading
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.experiments import (
    AdaptiveChunker,
    ExperimentRunner,
    ResultStore,
    WilsonWidthPolicy,
)
from repro.experiments.scenario import (
    ScenarioSpec,
    no_valid_ids,
    register_scenario,
)
from repro.serve import EstimateService
from repro.util.rng import derive_seed

BASE_SEED = 7

#: Wilson ceiling of the budgeted headline point: 2^20 trials in
#: doubling batches from ``min_trials=32`` (16 batches). ``ci_width``
#: is set below what 2^20 fair-coin trials can resolve, so the point
#: deterministically runs to the ceiling in every mode.
BUDGET_TRIALS = 1 << 20
BUDGET = dict(ci_width=0.001, min_trials=32, max_trials=BUDGET_TRIALS)

FIXED_SCENARIO = "cointoss/biased-coin"
FIXED_PARAMS = {"n": 8, "cheater": 2, "target": 4}
FIXED_TRIALS = 1_000_000

EXECUTOR_SCENARIO = "attack/basic-cheat"
EXECUTOR_GRID = [{"n": 8, "target": 3}, {"n": 12, "target": 5}]
EXECUTOR_TRIALS = 200

SERVE_SCENARIO = "attack/basic-cheat"
SERVE_TRIALS = 256


# ----------------------------------------------------------------------
# bench/fair-coin: the cheapest honest batched workload
# ----------------------------------------------------------------------


def fair_coin_trial(params, registry, max_steps):
    """One fair coin bit derived from the trial's master seed."""
    return derive_seed(registry.seed, "coin") & 1, 0


def fair_coin_batch(seeds, params):
    """Fold a chunk of fair-coin trials (bit-identical to the scalar
    path: same ``derive_seed`` call on the same master seeds)."""
    ones = sum(derive_seed(seed, "coin") & 1 for seed in seeds)
    return {1: ones, 0: len(seeds) - ones}, 0


def coin_success(outcome, params):
    return outcome == 1


COIN = register_scenario(
    ScenarioSpec(
        name="bench/fair-coin",
        description="benchmark-local fair coin (~0.5 us/trial)",
        run_trial=fair_coin_trial,
        run_batch=fair_coin_batch,
        outcome_size=no_valid_ids,
        success=coin_success,
        tags=("bench",),
    ),
    replace=True,
)


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def run_point(
    scenario,
    trials,
    params=None,
    budget=None,
    workers=4,
    parallel=False,
    chunker=None,
):
    runner = ExperimentRunner(
        workers=workers, parallel=parallel, chunker=chunker
    )
    try:
        return runner.run(
            scenario,
            trials,
            base_seed=BASE_SEED,
            params=params,
            keep_outcomes=False,
            budget=WilsonWidthPolicy(**budget) if budget else None,
        )
    finally:
        runner.close()


def warmed_chunker(scenario, params=None, trials=4096):
    """A chunker that has already seen ``scenario`` — the steady state
    of a sweep, campaign, or long-lived estimate service."""
    chunker = AdaptiveChunker()
    run_point(scenario, trials, params=params, workers=1, chunker=chunker)
    assert chunker.per_trial_seconds(scenario) is not None
    return chunker


def comparable(result):
    return json.dumps(result.to_row(), sort_keys=True)


def check_identical(results, label):
    rows = {name: comparable(result) for name, result in results.items()}
    baseline = next(iter(rows.values()))
    if any(row != baseline for row in rows.values()):
        raise SystemExit(f"FAIL: {label}: rows differ across chunking modes")
    trials = {result.trials for result in results.values()}
    if len(trials) != 1:
        raise SystemExit(f"FAIL: {label}: trial counts differ: {trials}")


def timed(fn, repeats=3):
    """Best-of-``repeats`` wall time (the workload is deterministic;
    anything above the minimum is scheduler interference)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def serve_overlap(trials=SERVE_TRIALS):
    """Issue two cold estimates for distinct points concurrently and
    measure how long their compute sections overlap. Positive overlap
    is impossible under a global compute lock."""
    intervals = {}
    with TemporaryDirectory() as tmp:
        with ResultStore(os.path.join(tmp, "bench.db")) as store:
            service = EstimateService(
                store, min_trials=trials, max_trials=trials
            )
            inner = service._compute

            def recording_compute(scenario, resolved, ci_width):
                start = time.perf_counter()
                try:
                    return inner(scenario, resolved, ci_width)
                finally:
                    intervals[resolved["n"]] = (start, time.perf_counter())

            service._compute = recording_compute
            errors = []
            start_line = threading.Barrier(2, timeout=30)

            def ask(n):
                try:
                    start_line.wait()  # issue both requests together
                    service.estimate(
                        SERVE_SCENARIO, {"n": n, "target": 3}, 0.9
                    )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=ask, args=(n,)) for n in (8, 12)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            service.close()
    if errors:
        raise SystemExit(f"FAIL: concurrent estimates errored: {errors}")
    if len(intervals) != 2:
        raise SystemExit("FAIL: expected two recorded compute intervals")
    (s1, e1), (s2, e2) = intervals.values()
    overlap = min(e1, e2) - max(s1, s2)
    busy = {n: e - s for n, (s, e) in intervals.items()}
    return overlap, busy


def budgeted_case(parallel):
    static, static_s = timed(
        lambda: run_point(COIN.name, None, budget=BUDGET, parallel=parallel)
    )
    warm = warmed_chunker(COIN.name)
    adaptive, adaptive_s = timed(
        lambda: run_point(
            COIN.name, None, budget=BUDGET, parallel=parallel,
            chunker=warm,
        )
    )
    cold = run_point(
        COIN.name, None, budget=BUDGET, parallel=parallel,
        chunker=AdaptiveChunker(),
    )
    check_identical(
        {"static": static, "adaptive": adaptive, "cold": cold},
        "budgeted 1M point",
    )
    if adaptive.dispatches * 5 > static.dispatches:
        raise SystemExit(
            "FAIL: budgeted point dispatch reduction below 5x: "
            f"{static.dispatches} static vs {adaptive.dispatches} adaptive"
        )
    return {
        "trials": static.trials,
        "dispatches": {
            "static": static.dispatches,
            "adaptive_warm": adaptive.dispatches,
            "adaptive_cold": cold.dispatches,
        },
        "dispatch_reduction": round(
            static.dispatches / adaptive.dispatches, 1
        ),
        "seconds": {
            "static": round(static_s, 3),
            "adaptive_warm": round(adaptive_s, 3),
        },
        "speedup": round(static_s / adaptive_s, 2),
    }


def fixed_case():
    static, static_s = timed(
        lambda: run_point(FIXED_SCENARIO, FIXED_TRIALS, params=FIXED_PARAMS)
    )
    adaptive, adaptive_s = timed(
        lambda: run_point(
            FIXED_SCENARIO, FIXED_TRIALS, params=FIXED_PARAMS,
            chunker=AdaptiveChunker(),
        )
    )
    check_identical(
        {"static": static, "adaptive": adaptive}, "fixed 1M biased-coin"
    )
    if adaptive.dispatches >= static.dispatches:
        raise SystemExit(
            "FAIL: fixed 1M point did not reduce dispatches: "
            f"{static.dispatches} static vs {adaptive.dispatches} adaptive"
        )
    return {
        "trials": FIXED_TRIALS,
        "dispatches": {
            "static": static.dispatches,
            "adaptive_cold_probe": adaptive.dispatches,
        },
        "seconds": {
            "static": round(static_s, 3),
            "adaptive": round(adaptive_s, 3),
        },
    }


def executor_case():
    def grid(chunker_factory):
        return [
            run_point(
                EXECUTOR_SCENARIO, EXECUTOR_TRIALS, params=params,
                chunker=chunker_factory(params),
            )
            for params in EXECUTOR_GRID
        ]

    static_grid, static_s = timed(lambda: grid(lambda params: None))
    warm = {
        tuple(sorted(params.items())): warmed_chunker(
            EXECUTOR_SCENARIO, params=params, trials=8
        )
        for params in EXECUTOR_GRID
    }
    adaptive_grid, adaptive_s = timed(
        lambda: grid(lambda params: warm[tuple(sorted(params.items()))])
    )
    for static, adaptive, params in zip(
        static_grid, adaptive_grid, EXECUTOR_GRID
    ):
        check_identical(
            {"static": static, "adaptive": adaptive},
            f"executor grid {params}",
        )
    return {
        "grid": EXECUTOR_GRID,
        "trials_per_point": EXECUTOR_TRIALS,
        "dispatches": {
            "static": sum(r.dispatches for r in static_grid),
            "adaptive_warm": sum(r.dispatches for r in adaptive_grid),
        },
        "seconds": {
            "static": round(static_s, 3),
            "adaptive_warm": round(adaptive_s, 3),
        },
        "adaptive_vs_static": round(adaptive_s / static_s, 2),
    }


def smoke() -> None:
    budget = dict(ci_width=0.02, min_trials=32, max_trials=16384)
    static = run_point(COIN.name, None, budget=budget)
    warm = warmed_chunker(COIN.name, trials=2048)
    adaptive = run_point(COIN.name, None, budget=budget, chunker=warm)
    check_identical(
        {"static": static, "adaptive": adaptive}, "smoke budgeted point"
    )
    if adaptive.dispatches * 2 > static.dispatches:
        raise SystemExit(
            "FAIL: smoke budgeted point dispatches did not drop: "
            f"{static.dispatches} static vs {adaptive.dispatches} adaptive"
        )
    fixed_static = run_point(FIXED_SCENARIO, 2048, params=FIXED_PARAMS)
    fixed_adaptive = run_point(
        FIXED_SCENARIO, 2048, params=FIXED_PARAMS, chunker=AdaptiveChunker()
    )
    check_identical(
        {"static": fixed_static, "adaptive": fixed_adaptive},
        "smoke fixed probe point",
    )
    if fixed_adaptive.dispatches >= fixed_static.dispatches:
        raise SystemExit(
            "FAIL: smoke probe path did not reduce dispatches: "
            f"{fixed_static.dispatches} vs {fixed_adaptive.dispatches}"
        )
    overlap, _ = serve_overlap(trials=96)
    if overlap <= 0:
        raise SystemExit(
            f"FAIL: distinct cold estimates did not overlap ({overlap:.3f}s)"
        )
    print(
        "smoke OK: rows chunking-invariant, dispatches drop "
        f"({static.dispatches}->{adaptive.dispatches} budgeted, "
        f"{fixed_static.dispatches}->{fixed_adaptive.dispatches} fixed), "
        f"distinct estimates overlap {overlap:.3f}s"
    )


def main() -> None:
    budgeted = budgeted_case(parallel=True)
    fixed = fixed_case()
    executor = executor_case()
    overlap, busy = serve_overlap()
    if overlap <= 0:
        raise SystemExit(
            f"FAIL: distinct cold estimates did not overlap ({overlap:.3f}s)"
        )

    payload = {
        "benchmark": (
            "cost-adaptive chunk sizing vs static count heuristic "
            "(4 workers) + concurrent estimate-service compute"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "budgeted_1M_point": budgeted,
        "fixed_1M_biased_coin": fixed,
        "executor_grid": executor,
        "estimate_service": {
            "distinct_points": 2,
            "trials_per_point": SERVE_TRIALS,
            "compute_seconds": {
                str(n): round(s, 3) for n, s in sorted(busy.items())
            },
            "overlap_seconds": round(overlap, 3),
        },
        "rows_identical_across_modes": True,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_chunking.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    print(
        f"  budgeted 1M point: {budgeted['dispatches']['static']} -> "
        f"{budgeted['dispatches']['adaptive_warm']} dispatches "
        f"({budgeted['dispatch_reduction']}x), "
        f"{budgeted['speedup']}x wall"
    )
    print(
        f"  fixed 1M biased-coin: {fixed['dispatches']['static']} -> "
        f"{fixed['dispatches']['adaptive_cold_probe']} dispatches"
    )
    print(
        f"  executor grid: {executor['adaptive_vs_static']}x wall "
        "(adaptive vs static)"
    )
    print(f"  estimate service overlap: {overlap:.3f}s")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="identity + dispatch-drop checks only (no timing, no JSON)",
    )
    if parser.parse_args().smoke:
        smoke()
    else:
        main()
