"""F1 (Figure 1): honest-segment geometry across placements.

Figure 1 of the paper illustrates the adversary locations a_1..a_k and
the honest segments I_j between them — the geometry every attack's
feasibility condition is stated in. This bench tabulates the segment
profiles of the three placement families and checks each family meets
its attack's precondition:

- equal spacing: max l_j ≤ k-1 once k ≥ √n (Lemma 4.1's condition);
- cubic staircase: l_i ≤ l_{i+1} + (k-1), l_k ≤ k-1 (Thm 4.3);
- random: max l_j concentrates near its logarithmic envelope (Thm C.1)
  — estimated as the ``placement/random-segments`` scenario on the
  experiment runner (one i.i.d. placement per trial).
"""

import math

from repro.analysis.segments import segment_statistics
from repro.attacks import RingPlacement
from repro.analysis.scenarios import segment_probability
from repro.experiments import ExperimentRunner


def test_f1_segment_geometry(benchmark, experiment_report):
    rows = []
    for n in (64, 144, 256):
        k = math.isqrt(n)
        stats = segment_statistics(RingPlacement.equal_spacing(n, k))
        rows.append(
            f"equal  n={n:<4} k={k:<3} l in [{stats.min_length},"
            f"{stats.max_length}] rushing_feasible={stats.rushing_feasible}"
        )
        assert stats.rushing_feasible
    experiment_report("F1a equal-spacing profiles", rows)

    rows = []
    for k in (5, 7, 9):
        n = k + (k - 1) * k * (k + 1) // 2
        stats = segment_statistics(RingPlacement.cubic(n, k))
        rows.append(
            f"cubic  n={n:<4} k={k:<3} staircase={list(stats.lengths)} "
            f"cubic_feasible={stats.cubic_feasible}"
        )
        assert stats.cubic_feasible
    experiment_report("F1b cubic staircase profiles", rows)

    rows = []
    runner = ExperimentRunner()
    for n in (256, 400):
        params = {"n": n, "p": None}
        result = runner.run(
            "placement/random-segments", trials=12, params=params
        )
        maxima = [t.outcome for t in result.outcomes if t.outcome > 0]
        mean_max = sum(maxima) / len(maxima)
        # Extreme-value envelope: the max of ~np geometric(p) gaps
        # concentrates below ~ln(n)/p (the log factor in Thm C.1).
        p = segment_probability(result.params)
        envelope = math.log(n) / p
        rows.append(
            f"random n={n:<4} p={p:.3f} mean max l_j={mean_max:.1f} "
            f"ln(n)/p≈{envelope:.1f} under-envelope "
            f"rate={result.success_rate:.2f}"
        )
        assert mean_max <= envelope
    experiment_report("F1c random-placement segment maxima", rows)

    benchmark(
        lambda: segment_statistics(RingPlacement.equal_spacing(400, 20))
    )
