"""F2 (Figure 2): the paper's 4-simulated tree example.

Figure 2 depicts a graph partitioned into connected blocks of at most 4
vertices whose quotient is a tree. We rebuild that construction through
the ``tree/clique-caterpillar`` scenario: each grid point verifies the
Definition 7.1 witness (success = the witness checks) and reports the
generic Claim F.5 bound it beats as the trial outcome — so the figure's
series is one registry sweep.
"""

from repro.experiments import sweep_scenario


def test_f2_four_simulated_tree(benchmark, experiment_report):
    rows = []
    for result in sweep_scenario(
        "tree/clique-caterpillar", trials=1, grid={"blocks": [2, 3, 5, 8]}
    ):
        blocks = result.params["blocks"]
        assert result.success_rate == 1.0  # witness verified (no FAIL)
        generic_k = result.outcomes[0].outcome
        rows.append(
            f"{blocks} cliques (n={4 * blocks:<3}): 4-simulated tree OK; "
            f"impossibility at k=4 vs generic ceil(n/2)={generic_k}"
        )
        if blocks >= 3:
            # The fine witness beats the generic bound strictly.
            assert 4 < generic_k
    experiment_report("F2 Figure-2 style 4-simulated trees", rows)

    from repro.experiments import run_scenario

    benchmark(
        lambda: run_scenario(
            "tree/clique-caterpillar", trials=1, params={"blocks": 8}
        ).outcomes[0].outcome
    )
