"""F2 (Figure 2): the paper's 4-simulated tree example.

Figure 2 depicts a graph partitioned into connected blocks of at most 4
vertices whose quotient is a tree. We rebuild that construction: a
caterpillar of 4-cliques (each clique one tree node), verify the witness
via Definition 7.1, and compare against the generic Claim F.5 bound.
"""

from repro.trees import check_k_simulated_tree, impossibility_certificate


def _clique_caterpillar(blocks: int):
    """``blocks`` 4-cliques strung along a path (a 4-simulated tree)."""
    nodes = list(range(4 * blocks))
    edges = []
    for b in range(blocks):
        ids = nodes[4 * b : 4 * b + 4]
        edges += [(u, v) for u in ids for v in ids if u < v]
        if b:
            edges.append((4 * b - 1, 4 * b))  # bridge to previous clique
    mapping = {v: v // 4 for v in nodes}
    return nodes, edges, mapping


def test_f2_four_simulated_tree(benchmark, experiment_report):
    rows = []
    for blocks in (2, 3, 5, 8):
        nodes, edges, mapping = _clique_caterpillar(blocks)
        report = check_k_simulated_tree(nodes, edges, mapping, k=4)
        assert report["ok"], report
        cert = impossibility_certificate(nodes, edges)
        rows.append(
            f"{blocks} cliques (n={len(nodes):<3}): 4-simulated tree OK; "
            f"impossibility at k=4 vs generic ceil(n/2)={cert['k']}"
        )
        if blocks >= 3:
            # The fine witness beats the generic bound strictly.
            assert 4 < cert["k"]
    experiment_report("F2 Figure-2 style 4-simulated trees", rows)

    nodes, edges, mapping = _clique_caterpillar(8)
    benchmark(lambda: check_k_simulated_tree(nodes, edges, mapping, 4)["ok"])
