"""E8 (Appendix E.4): k=4 breaks phase validation with a sum output.

Paper claim: adding the phase-validation mechanism to A-LEADuni while
keeping the linear ``sum`` output is not resilient to k = 4 — the
adversaries share partial sums over validation rounds whose validator is
adversarial, then steer the sum. Forcing rate should be 1.0 across ring
sizes and targets; the identical deviation must fail against the
random-function output (that contrast is E7c).
"""

from repro import run_protocol, unidirectional_ring
from repro.analysis.bias import attack_success_rate
from repro.attacks import partial_sum_attack_protocol


def test_e8_sum_phase_broken_by_4(benchmark, experiment_report):
    rows = []
    for L in (4, 8, 16, 24):
        n = 4 * L + 4
        ring = unidirectional_ring(n)
        rate = attack_success_rate(
            ring,
            lambda topo, w: partial_sum_attack_protocol(topo, 4, w),
            target=n // 3,
            trials=6,
            base_seed=L,
        )
        rows.append(f"n={n:<4} (L={L:<3}) k=4 forcing rate={rate:.2f}")
        assert rate == 1.0
    experiment_report("E8 partial-sum attack on sum-phase variant (E.4)", rows)

    ring = unidirectional_ring(68)
    benchmark(
        lambda: run_protocol(
            ring, partial_sum_attack_protocol(ring, 4, 5), seed=2
        ).outcome
    )
