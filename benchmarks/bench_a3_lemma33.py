"""A3 (ablation): Lemma 3.3's iff characterization, checked on traces.

Lemma 3.3 reduces the global ``outcome ≠ FAIL`` predicate to three local
conditions on the adversaries' outgoing traffic. This bench evaluates the
executable verifier on a matrix of deviations — compliant, replay-
corrupting, truncating, and sum-splitting — and asserts the iff holds on
every run (the property the resilience proofs lean on throughout
Sections 4-6).
"""

from repro import run_protocol, unidirectional_ring
from repro.analysis.lemma33 import lemma33_verdict
from repro.attacks import (
    RingPlacement,
    cubic_attack_protocol,
    equal_spacing_attack_protocol,
)
from repro.protocols.alead_uni import ALeadNormalStrategy, ALeadOriginStrategy
from repro.protocols.outcome import residue_to_id
from repro.sim.strategy import Strategy
from repro.util.modmath import canonical_mod


class _BufferHonestAdversary(Strategy):
    """Buffer-honest lone adversary with corruption knobs (cf. tests)."""

    def __init__(self, n, corrupt_replay, truncate):
        self.n = n
        self.corrupt_replay = corrupt_replay
        self.truncate = truncate
        self.buffer = 0
        self.rounds = 0
        self.total = 0

    def on_wakeup(self, ctx):
        pass

    def on_receive(self, ctx, value, sender):
        value = canonical_mod(int(value), self.n)
        self.rounds += 1
        self.total = canonical_mod(self.total + value, self.n)
        outgoing = self.buffer
        if self.corrupt_replay and self.rounds == self.n // 2:
            outgoing = (outgoing + 1) % self.n
        if not (self.truncate and self.rounds == self.n):
            ctx.send_next(outgoing)
        self.buffer = value
        if self.rounds == self.n:
            ctx.terminate(residue_to_id(self.total, self.n))


def _run_single_adversary(n, corrupt_replay, truncate, seed):
    ring = unidirectional_ring(n)
    protocol = {
        pid: (ALeadOriginStrategy(n) if pid == 1 else ALeadNormalStrategy(n))
        for pid in ring.nodes
    }
    protocol[3] = _BufferHonestAdversary(n, corrupt_replay, truncate)
    placement = RingPlacement(n, (3,))
    return run_protocol(ring, protocol, seed=seed), placement


def test_a3_lemma33_characterization(benchmark, experiment_report):
    rows = []

    # Compliant coalitions: both attack families satisfy the conditions.
    n, k = 49, 7
    ring = unidirectional_ring(n)
    pl = RingPlacement.equal_spacing(n, k)
    res = run_protocol(ring, equal_spacing_attack_protocol(ring, pl, 10), seed=1)
    v = lemma33_verdict(res, pl)
    rows.append(
        f"rushing  n={n} k={k}: conditions={v.conditions_hold} "
        f"outcome_valid={v.outcome_valid} iff={v.consistent_with_lemma}"
    )
    assert v.conditions_hold and v.outcome_valid and v.consistent_with_lemma

    k = 6
    n = k + (k - 1) * k * (k + 1) // 2
    ring = unidirectional_ring(n)
    pl = RingPlacement.cubic(n, k)
    res = run_protocol(ring, cubic_attack_protocol(ring, pl, 10), seed=1)
    v = lemma33_verdict(res, pl)
    rows.append(
        f"cubic    n={n} k={k}: conditions={v.conditions_hold} "
        f"outcome_valid={v.outcome_valid} iff={v.consistent_with_lemma}"
    )
    assert v.conditions_hold and v.outcome_valid and v.consistent_with_lemma

    # Single buffer-honest adversary with corruption knobs (the unit
    # tests fuzz the full matrix; here one representative of each side).
    for corrupt, truncate, label in (
        (False, False, "compliant"),
        (True, False, "corrupted-replay"),
        (False, True, "truncated"),
    ):
        result, placement = _run_single_adversary(9, corrupt, truncate, 4)
        v = lemma33_verdict(result, placement)
        rows.append(
            f"single {label:<17}: conditions={v.conditions_hold} "
            f"outcome_valid={v.outcome_valid} iff={v.consistent_with_lemma}"
        )
        assert v.consistent_with_lemma
    experiment_report("A3 Lemma 3.3 iff characterization", rows)

    ring = unidirectional_ring(49)
    pl = RingPlacement.equal_spacing(49, 7)

    def verify_once():
        res = run_protocol(
            ring, equal_spacing_attack_protocol(ring, pl, 3), seed=0
        )
        return lemma33_verdict(res, pl).consistent_with_lemma

    assert benchmark(verify_once)
