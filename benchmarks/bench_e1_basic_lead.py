"""E1 (Claim B.1): one cheater fully controls Basic-LEAD.

Paper claim: Basic-LEAD is not ε-1-unbiased for any ε < 1 - 1/n — a
single adversary forces any target with probability 1. We measure the
empirical forcing rate across ring sizes and targets (expected: 1.0
everywhere) and benchmark one representative attack execution.

Runs through the scenario registry: the ``attack/basic-cheat`` spec is
the same wiring the CLI's ``attack --name basic-cheat`` and the sweep
command use.
"""

import pytest

from repro import run_protocol, unidirectional_ring
from repro.attacks import basic_cheat_protocol
from repro.experiments import ExperimentRunner


@pytest.mark.smoke
def test_e1_forcing_rate(benchmark, experiment_report):
    runner = ExperimentRunner()  # in-process, trace-off trials
    rows = []
    for n in (8, 16, 32, 64):
        for target in (1, n // 2, n):
            result = runner.run(
                "attack/basic-cheat",
                trials=10,
                base_seed=n,
                params={"n": n, "target": target},
            )
            rate = result.success_rate
            rows.append(f"n={n:<3} target={target:<3} forcing rate={rate:.2f}")
            assert rate == 1.0
    experiment_report("E1 Basic-LEAD single-cheater control (Claim B.1)", rows)

    ring = unidirectional_ring(64)

    def attack_once():
        return run_protocol(
            ring, basic_cheat_protocol(ring, 2, 40), seed=0
        ).outcome

    assert benchmark(attack_once) == 40
