"""A4 (ablation): the one-round buffer is the load-bearing defence.

Basic-LEAD and A-LEADuni differ in exactly one mechanism — the normal
processors' one-message buffer that forces commitment before learning.
This ablation runs the strongest single-adversary deviation against both
(and against PhaseAsyncLead): the wait-and-cancel cheat controls
Basic-LEAD outright, while against the buffered protocols a lone
deviator is reduced to either behaving honestly or getting punished —
Claim D.1's ``k=1`` case in numbers.
"""

import pytest

from repro import run_protocol, unidirectional_ring
from repro.attacks import basic_cheat_protocol
from repro.experiments import ExperimentRunner, get_scenario
from repro.protocols.alead_uni import (
    ALeadNormalStrategy,
    ALeadOriginStrategy,
)
from repro.sim.execution import FAIL
from repro.sim.strategy import Context, Strategy
from repro.util.modmath import canonical_mod


class WaitAndCancelVsALead(Strategy):
    """The Basic-LEAD cheat replayed against A-LEADuni.

    Waits to collect values before sending anything — which stalls the
    buffered ring: honest processors send only in response to incoming
    messages, so the information the cheater waits for never arrives.
    """

    def __init__(self, n: int, target: int):
        self.n = n
        self.target = target
        self.received = []

    def on_wakeup(self, ctx: Context) -> None:
        pass

    def on_receive(self, ctx: Context, value, sender) -> None:
        if isinstance(value, int):
            value = canonical_mod(value, self.n)
        self.received.append(value)  # payload-agnostic: works vs both rings
        if len(self.received) >= self.n - 1:
            # Never reached on the buffered ring; included for parity with
            # the Basic-LEAD cheat.
            ctx.send_next(0)
            ctx.terminate(self.target)


@pytest.mark.smoke
def test_a4_buffer_ablation(benchmark, experiment_report):
    rows = []
    n, target = 16, 11
    ring = unidirectional_ring(n)

    # Against Basic-LEAD: total control — measured over registry trials
    # (the ``attack/basic-cheat`` spec, cheater moved to node 4).
    spec = get_scenario("attack/basic-cheat")
    result = ExperimentRunner().run(
        spec,
        trials=8,
        base_seed=1,
        params={"n": n, "cheater": 4, "target": target},
    )
    rows.append(
        f"Basic-LEAD  + wait-and-cancel: forcing rate="
        f"{result.success_rate:.2f} (forced)"
    )
    assert result.success_rate == 1.0

    # The same idea against A-LEADuni: the buffer starves the cheater.
    protocol = {
        pid: (ALeadOriginStrategy(n) if pid == 1 else ALeadNormalStrategy(n))
        for pid in ring.nodes
    }
    protocol[4] = WaitAndCancelVsALead(n, target)
    res = run_protocol(ring, protocol, seed=1)
    cheater_received = len(res.trace.receives_by(4))
    rows.append(
        f"A-LEADuni   + wait-and-cancel: outcome={res.outcome} "
        f"(cheater saw only {cheater_received} values before the ring "
        f"stalled)"
    )
    assert res.outcome == FAIL
    assert cheater_received < n - 1

    # PhaseAsyncLead: same starvation, plus phase validation on top.
    from repro.protocols.phase_async import (
        PhaseNormalStrategy,
        PhaseOriginStrategy,
        PhaseAsyncParams,
    )

    params = PhaseAsyncParams(n=n)
    protocol = {
        pid: (
            PhaseOriginStrategy(pid, params)
            if pid == 1
            else PhaseNormalStrategy(pid, params)
        )
        for pid in ring.nodes
    }
    protocol[4] = WaitAndCancelVsALead(n, target)
    res = run_protocol(ring, protocol, seed=1)
    rows.append(f"PhaseAsync  + wait-and-cancel: outcome={res.outcome}")
    assert res.outcome == FAIL

    experiment_report("A4 buffering ablation (Claim D.1, k=1)", rows)

    benchmark(
        lambda: run_protocol(
            ring, basic_cheat_protocol(ring, 4, target), seed=0
        ).outcome
    )
