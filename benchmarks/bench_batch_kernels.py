#!/usr/bin/env python
"""Regenerate BENCH_batch_kernels.json.

Two claims, one file:

- **Batch kernels.** For each batch-capable scenario, the same trial set
  runs once through the scalar per-trial fold (``use_batch=False``) and
  once through the scenario's vectorized ``run_batch`` kernel
  (``use_batch=True``), both serial and in-process — so the speedup is
  per-core algorithmic gain, not worker fan-out. The folded rows must
  match key for key before any timing is recorded.
- **Executor fast path.** The honest A-LEADuni election on a ring of 64
  runs the same seeds through the classic untraced delivery loop
  (``fast=False``) and through the allocation-free fast loop
  (``fast=True``); outcomes and step counts must agree pairwise.

``--smoke`` runs the identity checks only — small trial counts, no
timing, no JSON — and exits nonzero on any divergence; CI runs it on
every push so a kernel drifting off the scalar path is caught before a
benchmark is ever regenerated.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch_kernels.py [--smoke]
"""

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro import run_protocol, unidirectional_ring
from repro.experiments import ExperimentRunner
from repro.protocols import alead_uni_protocol
from repro.util.rng import RngRegistry

#: (scenario, params, timed trials). Trial counts are sized so each
#: scalar leg takes on the order of a second; the kernels' speedups are
#: insensitive to the exact count. Grid points are the sizes the
#: kernels' asymptotics pay off at: the baton kernel's incremental
#: pools beat the scalar O(n) rebuild-per-pass by ~n/log n, so it is
#: measured on a big ring, and coin-fle amortizes one election per
#: round against the scalar reduction machinery.
KERNEL_CASES = [
    ("cointoss/fle-coin", {"n": 8}, 3000),
    ("cointoss/biased-coin", {"n": 8, "cheater": 2, "target": 4}, 3000),
    ("cointoss/coin-fle", {"n": 16}, 300),
    ("fullinfo/baton", {"n": 256, "k": 16}, 400),
    ("fullinfo/sequential-coin", {"game": "majority", "n": 7, "k": 2, "target": 1}, 3000),
    ("blocks/fair-consensus", {"n": 6}, 3000),
    ("blocks/fair-renaming", {"n": 6}, 3000),
    ("placement/random-segments", {"n": 256}, 3000),
]

EXECUTOR_N = 64
EXECUTOR_TRIALS = 300
BASE_SEED = 0


def folded_run(scenario, params, trials, use_batch):
    runner = ExperimentRunner(workers=1, use_batch=use_batch)
    try:
        return runner.run(
            scenario,
            trials,
            base_seed=BASE_SEED,
            params=params,
            keep_outcomes=False,
        )
    finally:
        runner.close()


def comparable(result):
    return (result.to_row(), result.steps_total)


def timed(fn, repeats=3):
    """Best-of-``repeats`` wall time — the standard noise-resistant
    estimate for a deterministic workload (anything above the minimum
    is scheduler interference, not the code under test)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return value, best


def executor_outcomes(trials, n, fast):
    ring = unidirectional_ring(n)
    rows = []
    for t in range(trials):
        result = run_protocol(
            ring,
            alead_uni_protocol(ring),
            rng=RngRegistry(BASE_SEED).spawn(str(t)),
            record_trace=False,
            fast=fast,
        )
        rows.append((result.outcome, result.steps))
    return rows


def check_kernel_identity(trials_override=None):
    """Run every kernel case in both modes; die on the first divergence."""
    counts = {}
    for scenario, params, trials in KERNEL_CASES:
        trials = trials_override or trials
        batch = folded_run(scenario, params, trials, use_batch=True)
        scalar = folded_run(scenario, params, trials, use_batch=False)
        if comparable(batch) != comparable(scalar):
            raise SystemExit(
                f"FAIL: {scenario} {params} diverged between batch and "
                f"scalar folds at {trials} trials"
            )
        counts[scenario] = {
            str(k): v
            for k, v in sorted(
                batch.distribution.counts.items(), key=lambda kv: str(kv[0])
            )
        }
    return counts


def check_executor_identity(trials):
    fast_rows = executor_outcomes(trials, EXECUTOR_N, fast=True)
    classic_rows = executor_outcomes(trials, EXECUTOR_N, fast=False)
    if fast_rows != classic_rows:
        raise SystemExit(
            "FAIL: executor fast path diverged from the classic loop "
            f"on honest alead-uni n={EXECUTOR_N}"
        )


def smoke() -> None:
    check_kernel_identity(trials_override=64)
    check_executor_identity(trials=20)
    print("smoke OK: batch kernels and executor fast path match scalar")


def main() -> None:
    outcome_counts = check_kernel_identity()
    check_executor_identity(EXECUTOR_TRIALS)

    seconds = {}
    speedups = {}
    for scenario, params, trials in KERNEL_CASES:
        _, scalar_s = timed(lambda: folded_run(scenario, params, trials, False))
        _, batch_s = timed(lambda: folded_run(scenario, params, trials, True))
        seconds[scenario] = {
            "scalar_fold": round(scalar_s, 3),
            "batch_kernel": round(batch_s, 3),
        }
        speedups[scenario] = round(scalar_s / batch_s, 2)

    _, classic_s = timed(
        lambda: executor_outcomes(EXECUTOR_TRIALS, EXECUTOR_N, fast=False)
    )
    _, fast_s = timed(
        lambda: executor_outcomes(EXECUTOR_TRIALS, EXECUTOR_N, fast=True)
    )
    seconds["executor/alead-uni-n64"] = {
        "classic_untraced": round(classic_s, 3),
        "fast_loop": round(fast_s, 3),
    }

    payload = {
        "benchmark": (
            "batch-kernel fold vs scalar per-trial fold (serial, per-core) "
            "+ executor fast loop vs classic untraced loop"
        ),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "trials": {scenario: trials for scenario, _, trials in KERNEL_CASES},
        "outcome_counts": outcome_counts,
        "seconds": seconds,
        "speedup_batch_vs_scalar": speedups,
        "speedup_executor_fast_vs_classic": round(classic_s / fast_s, 2),
        "outcomes_identical_across_modes": True,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_batch_kernels.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    for scenario, speedup in speedups.items():
        print(f"  {scenario}: {speedup}x")
    print(
        f"  executor fast loop: {payload['speedup_executor_fast_vs_classic']}x"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="identity checks only: no timing, no JSON, nonzero exit on divergence",
    )
    args = parser.parse_args()
    if args.smoke:
        smoke()
    else:
        main()
    sys.exit(0)
