"""Distributed-campaign bench: sharding overhead and the identity gate.

Not a paper claim — the systems gate for the PR-9 coordinator/node
split. A campaign sharded into ``(point, trial-range)`` leases across
worker nodes must (a) emit byte-identical rows to the single-host
orchestrator — the determinism contract extended over the wire — and
(b) keep the lease protocol's overhead bounded: with in-process nodes
(no HTTP, no process spawn), coordination must cost < 25% wall-clock
over ``run_campaign`` on the same workload, so the protocol itself is
cheap and real deployments pay only for their actual network.

``measure()`` (run as a script) times single-host vs coordinator+nodes
at several lease sizes and node counts and records the table in
``BENCH_distributed.json``::

    PYTHONPATH=src python benchmarks/bench_distributed.py

The pytest entries keep the identity half of the gate in the regular
benchmark suite at smoke sizes (``pytest benchmarks/ -m smoke``);
wall-clock claims live only in the JSON, regenerated on a quiet
machine.
"""

import json
import os
import platform
import threading
import time

import pytest

from repro.experiments import (
    CampaignCoordinator,
    WorkerPool,
    expand_manifest,
    lease_fold,
    run_campaign,
)

BASE_SEED = 0
MANIFEST = {
    "trials": 2000,
    "base_seed": BASE_SEED,
    "entries": [
        {"scenario": "attack/basic-cheat",
         "grid": {"n": [24, 32], "target": 5}},
        {"scenario": "cointoss/biased-coin", "grid": {"n": [8, 12]}},
        {"scenario": "fullinfo/baton", "grid": {"n": 16, "k": 3}},
        {"scenario": "attack/basic-cheat",
         "grid": {"n": 28, "target": 5},
         "budget": {"ci_width": 0.08, "min_trials": 64,
                    "max_trials": 4096}},
    ],
}
REPS = 3  # min-of-REPS per timed mode


def _rows(results):
    return sorted(
        json.dumps(r.to_row(), sort_keys=True) for r in results
    )


def _drive(coordinator, nodes):
    """Drain a coordinator with ``nodes`` in-process lease loops, each
    over its own serial pool — the protocol with the network and
    process-spawn costs subtracted out."""

    def loop(name):
        pool = WorkerPool(1)
        node = coordinator.register(name=name)["node"]
        try:
            while True:
                answer = coordinator.lease(node)
                if answer["done"]:
                    return
                if not answer["leases"]:
                    time.sleep(0.001)
                    continue
                for lease in answer["leases"]:
                    report = lease_fold(lease, pool)
                    report["node"] = node
                    coordinator.report(report)
        finally:
            pool.close()

    threads = [
        threading.Thread(target=loop, args=(f"n{i}",)) for i in range(nodes)
    ]
    for t in threads:
        t.start()
    rows = _rows(coordinator.results())
    for t in threads:
        t.join()
    return rows


def _timed(fn):
    best, rows = None, None
    for _ in range(REPS):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best, rows = elapsed, result
    return best, rows


def measure() -> dict:
    points = expand_manifest(MANIFEST)
    single_seconds, expected = _timed(
        lambda: _rows(run_campaign(points, workers=1))
    )
    modes = {}
    for lease_trials, nodes in [(256, 1), (256, 2), (64, 4)]:
        label = f"lease{lease_trials}_nodes{nodes}"

        def sharded(lease_trials=lease_trials, nodes=nodes):
            coordinator = CampaignCoordinator(
                points, lease_trials=lease_trials
            )
            return _drive(coordinator, nodes)

        seconds, rows = _timed(sharded)
        assert rows == expected, f"{label}: rows diverged from single-host"
        modes[label] = {
            "seconds": round(seconds, 4),
            "overhead_vs_single": round(seconds / single_seconds - 1, 4),
        }
    return {
        "host": platform.node(),
        "python": platform.python_version(),
        "workload": {
            "points": len(points),
            "fixed_trials": MANIFEST["trials"],
        },
        "single_host_seconds": round(single_seconds, 4),
        "sharded": modes,
        "rows_identical_across_modes": True,
    }


def main() -> None:
    payload = measure()
    out = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "..",
        "BENCH_distributed.json",
    )
    with open(os.path.normpath(out), "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(json.dumps(payload, indent=2))


# -- pytest identity gate (smoke sizes, no wall-clock claims) ----------

SMOKE_MANIFEST = {
    "trials": 60,
    "base_seed": BASE_SEED,
    "entries": [
        {"scenario": "attack/basic-cheat",
         "grid": {"n": [16, 24], "target": 5}},
        {"scenario": "attack/basic-cheat",
         "grid": {"n": 20, "target": 5},
         "budget": {"ci_width": 0.2, "min_trials": 8, "max_trials": 64}},
    ],
}


@pytest.mark.smoke
def test_sharded_campaign_preserves_rows(benchmark, experiment_report):
    """Coordinator + 2 in-process nodes == single-host rows, including
    an adaptive-budget point (the batch-barrier contract)."""
    points = expand_manifest(SMOKE_MANIFEST)
    expected = _rows(run_campaign(points, workers=1))

    def sharded():
        coordinator = CampaignCoordinator(points, lease_trials=16)
        return _drive(coordinator, nodes=2)

    assert benchmark(sharded) == expected
    experiment_report(
        "distributed campaign: identity",
        [
            f"{len(points)} points across 2 nodes at lease_trials=16: "
            "rows == single-host",
        ],
    )


@pytest.mark.smoke
def test_lease_expiry_recovers_rows(experiment_report):
    """A node that dies holding a lease costs wall-clock, not rows."""
    points = expand_manifest(SMOKE_MANIFEST)
    expected = _rows(run_campaign(points, workers=1))
    coordinator = CampaignCoordinator(
        points, lease_trials=16, lease_ttl=0.05
    )
    victim = coordinator.register(name="victim")["node"]
    stolen = coordinator.lease(victim)["leases"]
    assert stolen  # the victim takes work and never reports
    assert _drive(coordinator, nodes=1) == expected
    experiment_report(
        "distributed campaign: lease expiry",
        ["1 lease abandoned, TTL 0.05s: survivor re-folds identical rows"],
    )


if __name__ == "__main__":
    main()
