"""E6 (Theorem 5.1 shape): A-LEADuni resists small coalitions.

Paper claim: A-LEADuni is ε-k-resilient for k = O(n^(1/4)) with
negligible ε. We probe the defensive side empirically:

1. every known attack below its feasibility threshold either refuses to
   run (placement constraints unsatisfiable) or is punished (FAIL);
2. honest-uniformity is untouched by *passive* adversaries (coalitions
   that follow the protocol), establishing the ε≈0 baseline the theorem
   protects;
3. the crossover: the smallest forcing coalition observed per n sits
   between n^(1/4) and 2·n^(1/3), exactly the paper's open gap
   (Conjecture 4.7).
"""

import math

from repro import FAIL, run_protocol, unidirectional_ring
from repro.analysis.distribution import chi_square_uniformity
from repro.attacks import (
    RingPlacement,
    cubic_attack_protocol,
    equal_spacing_attack_protocol_unchecked,
)
from repro.experiments import run_scenario
from repro.util.errors import ConfigurationError


def smallest_forcing_k(n: int) -> int:
    """Smallest k at which any implemented attack forces the outcome."""
    ring = unidirectional_ring(n)
    for k in range(2, math.isqrt(n) + 2):
        for builder in (_try_cubic, _try_rushing):
            proto = builder(ring, n, k)
            if proto is None:
                continue
            res = run_protocol(ring, proto, seed=k)
            if res.outcome == 7:
                return k
    return math.isqrt(n) + 2


def _try_cubic(ring, n, k):
    try:
        return cubic_attack_protocol(ring, RingPlacement.cubic(n, k), 7)
    except ConfigurationError:
        return None


def _try_rushing(ring, n, k):
    try:
        pl = RingPlacement.equal_spacing(n, k)
        return equal_spacing_attack_protocol_unchecked(ring, pl, 7)
    except ConfigurationError:
        return None


def test_e6_resilience_below_threshold(benchmark, experiment_report):
    rows = []
    for n in (64, 144, 256):
        k_safe = max(2, math.isqrt(math.isqrt(n)) // 4)  # O(n^(1/4)) regime
        ring = unidirectional_ring(n)
        # Attacks below the cubic feasibility bound cannot even be placed.
        try:
            RingPlacement.cubic(n, k_safe)
            placeable = True
        except ConfigurationError:
            placeable = False
        # Rushing at k_safe leaves segments >> k-1: punished.
        pl = RingPlacement.equal_spacing(n, max(2, k_safe))
        res = run_protocol(
            ring,
            equal_spacing_attack_protocol_unchecked(ring, pl, 7),
            seed=n,
        )
        rows.append(
            f"n={n:<4} k={k_safe} (~n^0.25/4): cubic placeable={placeable}, "
            f"rushing outcome={res.outcome}"
        )
        assert not placeable
        assert res.outcome == FAIL
    experiment_report("E6a attacks below threshold are punished", rows)

    rows = []
    for n in (64, 144, 256):
        k_min = smallest_forcing_k(n)
        lo, hi = n ** 0.25, 2 * n ** (1 / 3)
        rows.append(
            f"n={n:<4} smallest forcing k={k_min:<3} "
            f"n^(1/4)={lo:.1f} 2n^(1/3)={hi:.1f} in gap="
            f"{lo <= k_min <= hi + 1}"
        )
        assert lo <= k_min <= hi + 1
    experiment_report("E6b crossover sits in the paper's gap", rows)

    # Honest uniformity baseline at moderate n (the ε≈0 the theorem keeps),
    # via the registry: same spec the CLI's bias/sweep commands run.
    result = run_scenario(
        "honest/alead-uni", trials=320, base_seed=1, params={"n": 16}
    )
    dist = result.distribution
    assert dist.fail_count == 0
    assert chi_square_uniformity(dist) > 1e-4
    experiment_report(
        "E6c honest baseline",
        [f"n=16 trials=320 chi2 p={chi_square_uniformity(dist):.3f}"],
    )

    benchmark(lambda: smallest_forcing_k(64))
