"""E11 (Section 1.1 lineage): full-information coin-flipping comparators.

The paper's random-function construction descends from the Ben-Or–Linial
full-information line. This bench regenerates that line's headline
shapes:

- parity: one player has influence 1 (the Basic-LEAD analogue);
- majority: single-player influence ~Θ(1/√n), coalition influence grows
  with k (Θ(k/√n) regime);
- tribes: a log-sized tribe keeps constant influence — the n/log n
  ceiling for one-round games;
- sequential games: the last mover dictates parity; late movers gain on
  majority (regenerated through the ``fullinfo/sequential-coin``
  scenario);
- Saks' pass-the-baton: coalition bias negligible at small k, total at
  k = n/2 — the survival series is the ``fullinfo/baton`` scenario's
  success rate on the experiment runner.
"""

import math

from repro.experiments import ExperimentRunner
from repro.fullinfo import (
    coalition_influence,
    majority_function,
    parity_function,
    tribes_function,
)


def test_e11_one_round_influence(benchmark, experiment_report):
    rows = []
    par = parity_function(9)
    rows.append(f"parity(9): single-player influence = "
                f"{coalition_influence(par, [0]):.3f} (expect 1.0)")
    assert coalition_influence(par, [0]) == 1.0

    for n in (9, 13):
        maj = majority_function(n)
        series = []
        for k in (1, 2, 3):
            inf = coalition_influence(maj, list(range(k)))
            series.append(inf)
        rows.append(
            f"majority({n}): influence k=1..3 = "
            + ", ".join(f"{v:.3f}" for v in series)
            + f" (1/sqrt(n)={1/math.sqrt(n):.3f})"
        )
        assert series == sorted(series)
        assert series[0] < 0.5

    tri = tribes_function(2, 4)
    own_tribe = coalition_influence(tri, [0, 1])
    split = coalition_influence(tri, [0, 2])
    rows.append(
        f"tribes(2x4): own-tribe influence={own_tribe:.3f} vs "
        f"split pair={split:.3f}"
    )
    assert own_tribe > 0.3
    experiment_report("E11a one-round boolean influence", rows)

    benchmark(lambda: coalition_influence(majority_function(13), [0, 1, 2]))


def test_e11_sequential_and_baton(benchmark, experiment_report):
    runner = ExperimentRunner()

    def forced(game, n, k, target=1):
        """Exact forced probability via the sequential-coin scenario."""
        result = runner.run(
            "fullinfo/sequential-coin",
            trials=1,
            params={"game": game, "n": n, "k": k, "target": target},
        )
        return result.outcomes[0].outcome

    rows = []
    last = forced("parity", 6, 1)
    # The scenario expresses latest-k coalitions; the first-mover case
    # needs the game API directly (a nontrivial check: an early mover
    # cannot bias parity, only the final one can).
    from repro.fullinfo import SequentialCoinGame

    first = SequentialCoinGame(parity_function(6), [0]).forced_probability(1)
    rows.append(
        f"sequential parity(6): last mover forces Pr=1 ({last:.2f}); "
        f"first mover gains nothing ({first:.2f})"
    )
    assert last == 1.0 and abs(first - 0.5) < 1e-9

    late = forced("majority", 7, 2)
    rows.append(f"sequential majority(7): two late movers Pr[1] = {late:.3f}")
    assert 0.5 < late < 1.0
    experiment_report("E11b sequential (rushing-analogue) games", rows)

    rows = []
    n = 64

    def survival(k, trials, base_seed=0):
        """Pr[leader in coalition] = the baton scenario's success rate."""
        return runner.run(
            "fullinfo/baton",
            trials=trials,
            base_seed=base_seed,
            params={"n": n, "k": k},
        ).success_rate

    for k in (2, 8, 16, 32):
        p = survival(k, trials=300)
        rows.append(
            f"baton n={n} k={k:<3} Pr[leader in C]={p:.3f} "
            f"(honest {k/n:.3f}, n/log2(n)={n/math.log2(n):.0f})"
        )
    experiment_report("E11c pass-the-baton coalition bias", rows)
    assert survival(32, trials=120) == 1.0
    assert survival(2, trials=400) < 0.12

    benchmark(lambda: survival(8, trials=50, base_seed=1))
