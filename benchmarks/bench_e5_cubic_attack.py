"""E5 (Theorem 4.3): the cubic attack controls A-LEADuni with
k = O(n^(1/3)) adversaries.

Paper claim: adversaries placed on the arithmetic staircase
(l_i ≈ (k+1-i)(k-1)) control the outcome whenever k ≥ 2·n^(1/3). We run
the attack at the feasibility frontier for increasing k — where k/n^(1/3)
approaches ~1.26 — far below the √n requirement of the rushing attack,
and benchmark the largest configuration.
"""

import math

from repro import run_protocol, unidirectional_ring
from repro.attacks import RingPlacement, cubic_attack_protocol


def test_e5_cubic_attack(benchmark, experiment_report):
    rows = []
    for k in (4, 5, 6, 8, 10):
        n = k + (k - 1) * k * (k + 1) // 2  # the attack's max coverage
        ring = unidirectional_ring(n)
        pl = RingPlacement.cubic(n, k)
        target = n // 2
        res = run_protocol(ring, cubic_attack_protocol(ring, pl, target), seed=k)
        forced = res.outcome == target
        rows.append(
            f"k={k:<3} n={n:<4} k/n^(1/3)={k / n ** (1/3):.2f} "
            f"sqrt(n)={math.isqrt(n):<3} forced={forced}"
        )
        assert forced, res.fail_reason
        assert k < math.isqrt(n) or n < 16  # strictly below rushing regime
    experiment_report(
        "E5 cubic attack at the k=O(n^(1/3)) frontier (Thm 4.3)", rows
    )

    k = 10
    n = k + (k - 1) * k * (k + 1) // 2
    ring = unidirectional_ring(n)
    pl = RingPlacement.cubic(n, k)
    benchmark(
        lambda: run_protocol(
            ring, cubic_attack_protocol(ring, pl, 7), seed=1
        ).outcome
    )
