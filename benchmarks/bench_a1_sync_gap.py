"""A1 (ablation): message-count synchronization across protocols/attacks.

The design story of Section 6 in numbers: A-LEADuni's buffering keeps
honest executions 1-synchronized; the cubic attack exploits asynchrony to
open a Θ(k²) gap without detection; PhaseAsyncLead's phase validation
forces any (honest-looking) execution back to O(1)-per-round
synchronization. This ablation traces ``max_t (max_i Sent_i^t - min_j
Sent_j^t)`` for each scenario.

Every execution is built through the scenario registry
(:func:`~repro.experiments.runner.run_traced_trial`), so the traced runs
here are wired identically to the Monte-Carlo trials the sweep command
runs — just with the event trace switched on.
"""

import math

from repro.experiments import run_traced_trial


def test_a1_sync_gaps(benchmark, experiment_report):
    rows = []

    # Honest A-LEADuni: gap 1.
    n = 111
    res = run_traced_trial("honest/alead-uni", params={"n": n}, base_seed=1)
    gap_honest = res.trace.max_sync_gap()
    rows.append(f"A-LEADuni honest        n={n:<4} gap={gap_honest}")
    assert gap_honest <= 1

    # Cubic attack on A-LEADuni: gap Θ(k²) among all processors.
    k = 6
    n = k + (k - 1) * k * (k + 1) // 2
    res = run_traced_trial(
        "attack/cubic", params={"n": n, "k": k, "target": 1}, base_seed=1
    )
    gap_cubic = res.trace.max_sync_gap()
    rows.append(
        f"A-LEADuni cubic attack  n={n:<4} k={k} gap={gap_cubic} "
        f"(k²={k*k}, honest=1)"
    )
    assert gap_cubic > k  # far beyond honest
    assert gap_cubic <= 2 * k * k  # within Lemma D.5's 2k² envelope

    # Honest PhaseAsyncLead: gap ≤ 2 (one data + one validation per round).
    n = 100
    res = run_traced_trial("honest/phase-async", params={"n": n}, base_seed=1)
    gap_phase = res.trace.max_sync_gap()
    rows.append(f"PhaseAsyncLead honest   n={n:<4} gap={gap_phase}")
    assert gap_phase <= 2

    # Even a *successful* attack on PhaseAsyncLead stays O(k)-synchronized:
    # the phase mechanism caps desynchronization (the protocol's design goal).
    k = math.isqrt(n) + 3
    res = run_traced_trial(
        "attack/phase-rushing",
        params={"n": n, "k": k, "target": 5},
        base_seed=2,
    )
    gap_phase_attack = res.trace.max_sync_gap()
    rows.append(
        f"PhaseAsyncLead attacked n={n:<4} k={k} gap={gap_phase_attack} "
        f"(O(k) by phase validation; cubic-style k² impossible)"
    )
    assert gap_phase_attack <= 4 * k

    experiment_report("A1 synchronization-gap ablation", rows)

    benchmark(
        lambda: run_traced_trial(
            "honest/phase-async", params={"n": 64}, base_seed=3
        ).trace.max_sync_gap()
    )
