#!/usr/bin/env python
"""Regenerate BENCH_experiment_engine.json.

Times 1000 E1 trials (Basic-LEAD single-cheater attack on a ring of 64)
three ways and records the speedups:

- ``seed_traced_serial``  — the pre-engine idiom: serial loop, full
  event trace recorded per trial and then thrown away;
- ``runner_serial``       — ExperimentRunner in-process with
  ``record_trace=False`` (the zero-trace executor fast path);
- ``runner_parallel_4``   — the same trial set fanned out over 4
  worker processes.

All three run the identical per-trial seed derivation, so the outcome
histograms must match exactly — the JSON records that check too.

Usage::

    PYTHONPATH=src python benchmarks/measure_experiment_engine.py
"""

import json
import os
import platform
import time
from collections import Counter
from pathlib import Path

from repro import run_protocol, unidirectional_ring
from repro.attacks import basic_cheat_protocol
from repro.experiments import ExperimentRunner
from repro.util.rng import RngRegistry

N = 64
TRIALS = 1000
TARGET = 40
BASE_SEED = 0


def seed_traced_serial():
    ring = unidirectional_ring(N)
    counts = Counter()
    for t in range(TRIALS):
        result = run_protocol(
            ring,
            basic_cheat_protocol(ring, 2, TARGET),
            rng=RngRegistry(BASE_SEED).spawn(str(t)),
        )
        counts[result.outcome] += 1
    return counts


def runner_counts(workers: int):
    runner = ExperimentRunner(workers=workers)
    result = runner.run(
        "attack/basic-cheat",
        trials=TRIALS,
        base_seed=BASE_SEED,
        params={"n": N, "target": TARGET},
    )
    return result.distribution.counts


def timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def main() -> None:
    baseline_counts, baseline_s = timed(seed_traced_serial)
    serial_counts, serial_s = timed(lambda: runner_counts(1))
    parallel_counts, parallel_s = timed(lambda: runner_counts(4))

    assert dict(baseline_counts) == dict(serial_counts) == dict(parallel_counts)

    payload = {
        "benchmark": "E1-style Monte-Carlo loop: 1000 basic-cheat trials, n=64",
        "python": platform.python_version(),
        "machine": platform.machine(),
        # Worker fan-out only buys wall-clock on multi-core hosts; on a
        # single-core box the parallel row degenerates to the serial one.
        "cpus": os.cpu_count(),
        "trials": TRIALS,
        "outcome_counts": {
            str(k): v for k, v in sorted(baseline_counts.items(), key=lambda kv: str(kv[0]))
        },
        "seconds": {
            "seed_traced_serial": round(baseline_s, 3),
            "runner_serial_trace_off": round(serial_s, 3),
            "runner_parallel_4_trace_off": round(parallel_s, 3),
        },
        "speedup_vs_seed": {
            "runner_serial_trace_off": round(baseline_s / serial_s, 2),
            "runner_parallel_4_trace_off": round(baseline_s / parallel_s, 2),
        },
        "outcomes_identical_across_modes": True,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_experiment_engine.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
