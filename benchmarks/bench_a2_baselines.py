"""A2 (Section 1.1 baselines): the Abraham et al. scenario map.

The paper positions its asynchronous-ring results against the other
scenarios of Abraham et al. [4]:

- synchronous fully connected / ring — (n-1)-resilient (simultaneity
  forbids rushing; echo rounds catch equivocation);
- asynchronous fully connected — (⌈n/2⌉-1)-resilient via Shamir sharing,
  and exactly ⌈n/2⌉ breaks it (share pooling);
- asynchronous ring — the paper's hard case, thresholds per E3-E7.

This bench regenerates that map: honest success + uniformity for each
baseline, punished rushing under synchrony, and the sharp Shamir
threshold.
"""

import math

from repro import run_protocol
from repro.attacks import shamir_pooling_attack_protocol
from repro.protocols import async_complete_protocol, default_threshold
from repro.sim.execution import FAIL
from repro.sim.topology import complete_graph, unidirectional_ring
from repro.sync import (
    run_sync_protocol,
    sync_broadcast_protocol,
    sync_ring_protocol,
    sync_rushing_attempt_protocol,
)
from repro.util.errors import ConfigurationError


def test_a2_scenario_map(benchmark, experiment_report):
    rows = []

    # Synchronous baselines: honest success, cheater punished.
    for n in (6, 10, 16):
        g = complete_graph(n)
        honest = run_sync_protocol(g, sync_broadcast_protocol(g), seed=n)
        cheat = run_sync_protocol(
            g, sync_rushing_attempt_protocol(g, 2, 5), seed=n
        )
        ring = unidirectional_ring(n)
        ring_res = run_sync_protocol(ring, sync_ring_protocol(ring), seed=n)
        rows.append(
            f"sync n={n:<3} broadcast={honest.outcome} ring={ring_res.outcome} "
            f"delayed-cheater={cheat.outcome}"
        )
        assert not honest.failed and not ring_res.failed
        assert cheat.outcome == FAIL
    experiment_report("A2a synchronous scenarios (rushing impossible)", rows)

    # Shamir async complete network: sharp threshold at ceil(n/2).
    rows = []
    for n in (8, 11, 14):
        g = complete_graph(n)
        t = default_threshold(n)
        honest = run_protocol(g, async_complete_protocol(g), seed=n)
        pooled = run_protocol(
            g,
            shamir_pooling_attack_protocol(g, list(range(2, 2 + t)), 5),
            seed=n,
        )
        try:
            shamir_pooling_attack_protocol(g, list(range(2, 1 + t)), 5)
            below_feasible = True
        except ConfigurationError:
            below_feasible = False
        rows.append(
            f"shamir n={n:<3} honest={honest.outcome} "
            f"pool(k={t})={pooled.outcome} pool(k={t-1}) feasible="
            f"{below_feasible}"
        )
        assert not honest.failed
        assert pooled.outcome == 5
        assert not below_feasible
    experiment_report(
        "A2b async complete network: Shamir threshold at ceil(n/2)", rows
    )

    g = complete_graph(10)
    benchmark(
        lambda: run_protocol(g, async_complete_protocol(g), seed=1).outcome
    )
