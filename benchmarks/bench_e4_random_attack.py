"""E4 (Theorem C.1): randomly located adversaries succeed w.h.p.

Paper claim: with each processor adversarial w.p. p = √(8 log n / n)
(k ≈ √(8 n log n) in expectation), the symmetric attack controls the
outcome with probability → 1. The success probability is over *both* the
placement and the honest secrets. We sweep n and density multipliers;
the paper's shape: success rises toward 1 as n grows at the recommended
density, and the attack degrades gracefully when too sparse (long
segments break the replay) — at small n the recommended density
overshoots n/2 and the attack degenerates, which the series shows.
"""

import random

from repro import run_protocol, unidirectional_ring
from repro.attacks import (
    RingPlacement,
    random_location_attack_protocol,
    recommended_probability,
)
from repro.util.rng import RngRegistry


def _success_rate(n: int, p: float, trials: int, target: int = 9) -> float:
    ring = unidirectional_ring(n)
    wins = 0
    for t in range(trials):
        pl = RingPlacement.random_locations(n, p, random.Random(7000 + t))
        if pl is None:
            continue
        res = run_protocol(
            ring,
            random_location_attack_protocol(ring, pl, target),
            rng=RngRegistry(t),
        )
        wins += res.outcome == target
    return wins / trials


def test_e4_random_coalition_whp(benchmark, experiment_report):
    rows = []
    series = {}
    for n in (128, 256, 400):
        p = recommended_probability(n)
        for scale, label in ((0.25, "p/4"), (0.5, "p/2"), (1.0, "p")):
            rate = _success_rate(n, min(1.0, scale * p), trials=8)
            series[(n, label)] = rate
            rows.append(
                f"n={n:<4} density={label:<4} "
                f"(={min(1.0, scale * p):.3f}) success={rate:.2f}"
            )
    experiment_report("E4 randomly-located attack success (Thm C.1)", rows)

    # Shape assertions: in-regime densities win consistently at larger n.
    assert series[(256, "p/2")] >= 0.75
    assert series[(400, "p/2")] >= 0.75
    assert series[(400, "p")] >= 0.75
    # Too sparse -> long segments -> attack cannot finish reliably.
    assert series[(400, "p/4")] <= series[(400, "p/2")] + 0.15

    def one_run():
        pl = RingPlacement.random_locations(256, 0.2, random.Random(1))
        ring = unidirectional_ring(256)
        return run_protocol(
            ring, random_location_attack_protocol(ring, pl, 3),
            rng=RngRegistry(5),
        ).outcome

    benchmark(one_run)
