"""E2 (FLE definition, Section 2): honest executions elect uniformly.

All three protocols must elect every id with probability 1/n. We run
Monte-Carlo histograms per protocol, check zero failures and chi-square
uniformity, and benchmark one honest execution of each protocol.
"""

import pytest

from repro import run_protocol, unidirectional_ring
from repro.analysis.distribution import (
    chi_square_uniformity,
    estimate_distribution,
)
from repro.protocols import (
    alead_uni_protocol,
    basic_lead_protocol,
    phase_async_protocol,
)

PROTOCOLS = {
    "basic-lead": basic_lead_protocol,
    "alead-uni": alead_uni_protocol,
    "phase-async": phase_async_protocol,
}


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_e2_uniform_election(name, benchmark, experiment_report):
    maker = PROTOCOLS[name]
    rows = []
    for n in (4, 8, 16):
        ring = unidirectional_ring(n)
        trials = 600 if n <= 8 else 320
        dist = estimate_distribution(ring, maker, trials=trials, base_seed=7)
        p = chi_square_uniformity(dist)
        rows.append(
            f"n={n:<3} trials={trials:<4} fails={dist.fail_count} "
            f"max Pr={dist.max_probability():.3f} (1/n={1/n:.3f}) "
            f"chi2 p={p:.3f}"
        )
        assert dist.fail_count == 0
        assert p > 1e-4
    experiment_report(f"E2 honest fairness: {name}", rows)

    ring = unidirectional_ring(32)
    benchmark(lambda: run_protocol(ring, maker(ring), seed=3).outcome)
