#!/usr/bin/env python
"""Section 7 walkthrough: impossibility on k-simulated trees.

1. Lemma F.2, constructively: classify toy two-party coin-toss protocols
   and exhibit the dictator's forcing strategy.
2. Claim F.5: partition arbitrary connected graphs into a ⌈n/2⌉-simulated
   tree and verify the witness.
3. Theorem 7.2: print the impossibility certificate for several
   topologies, including a graph that is a 2-simulated tree (so a mere
   2-coalition suffices — far below n/2).
"""

from repro.trees import (
    check_k_simulated_tree,
    classify_protocol,
    first_to_speak_protocol,
    impossibility_certificate,
    verify_assurance,
    xor_coin_protocol,
)


def main() -> None:
    print("=== Lemma F.2: someone always assures an outcome ===\n")
    p = xor_coin_protocol()
    verdict = classify_protocol(p)
    print("XOR coin protocol (A announces, then B announces, output XOR):")
    print(f"  dictator: player {verdict['dictator']}")
    for witness in verdict["witnesses"]:
        ok = verify_assurance(p, witness)
        print(
            f"  player {witness.player} forces outcome {witness.bit}: "
            f"verified against every honest input = {ok}"
        )

    q = first_to_speak_protocol(1)
    print("\nConstant-1 protocol: favorable value, both players assure 1.")

    print("\n=== Claim F.5 + Theorem 7.2 certificates ===\n")
    cases = {}
    n = 12
    cases["ring(12)"] = (
        list(range(1, n + 1)),
        [(i, i % n + 1) for i in range(1, n + 1)],
    )
    cases["complete(8)"] = (
        list(range(8)),
        [(u, v) for u in range(8) for v in range(8) if u < v],
    )
    # Two triangles joined by a bridge: a 3-simulated tree.
    cases["barbell(6)"] = (
        list(range(6)),
        [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
    )
    for name, (nodes, edges) in cases.items():
        cert = impossibility_certificate(nodes, edges)
        print(
            f"{name:<13} n={cert['n']:<3} -> no eps-{cert['k']}-resilient "
            f"FLE for eps <= 1/{cert['n']}"
        )

    print("\nTighter witnesses beat the generic n/2 bound (the paper's")
    print("generalization): the barbell graph is a 3-simulated tree:")
    nodes, edges = cases["barbell(6)"]
    mapping = {0: "L", 1: "L", 2: "L", 3: "R", 4: "R", 5: "R"}
    report = check_k_simulated_tree(nodes, edges, mapping, k=3)
    print(f"  witness valid: {report['ok']}, quotient edges: "
          f"{report['quotient_edges']}")
    print("  => no eps-3-resilient FLE protocol exists on it (Thm 7.2),")
    print("     improving on the generic k = n/2 = 3 bound when graphs")
    print("     admit finer tree simulations (e.g. trees are 1-simulated).")


if __name__ == "__main__":
    main()
