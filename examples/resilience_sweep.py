#!/usr/bin/env python
"""Resilience sweep: where each protocol's defenses actually break.

Sweeps coalition size ``k`` for a fixed ring and reports, per protocol,
whether the strongest known attack at that size succeeds — tracing the
thresholds the paper proves:

- A-LEADuni:      safe for k = O(n^(1/4)) (Thm 5.1), broken from
                  ~2·n^(1/3) placed (Thm 4.3) and √n spaced (Thm 4.2);
- PhaseAsyncLead: safe for k ≤ √n/10 (Thm 6.1), broken at √n+3.

"Broken" means the attack drives Pr[outcome = w] to 1 for a chosen w;
"holds" means the deviation either aborts (honest punishment) or cannot
satisfy its own preconditions.
"""

import math

from repro import FAIL, run_protocol, unidirectional_ring
from repro.attacks import (
    RingPlacement,
    cubic_attack_protocol,
    equal_spacing_attack_protocol_unchecked,
)
from repro.util.errors import ConfigurationError


def try_attack(build, ring, target, seed=0):
    """Run an attack factory; classify as forced / failed / infeasible."""
    try:
        protocol = build()
    except ConfigurationError as exc:
        return f"infeasible ({exc})"
    result = run_protocol(ring, protocol, seed=seed)
    if result.outcome == target:
        return "FORCED"
    if result.outcome == FAIL:
        return "holds (deviation punished/stalled)"
    return f"holds (outcome {result.outcome})"


def main() -> None:
    n = 100
    ring = unidirectional_ring(n)
    target = 42
    print(f"=== Resilience sweep on a ring of n={n} (target w={target}) ===")
    print(f"n^(1/4)={n ** 0.25:.1f}  n^(1/3)={n ** (1/3):.1f}  "
          f"sqrt(n)={math.sqrt(n):.1f}\n")

    print("-- A-LEADuni vs rushing attack (needs every segment <= k-1) --")
    for k in (2, 4, 6, 8, 10, 12):
        pl = RingPlacement.equal_spacing(n, k)
        verdict = try_attack(
            lambda: equal_spacing_attack_protocol_unchecked(ring, pl, target),
            ring, target,
        )
        print(f"  k={k:<3} {verdict}")

    print("\n-- A-LEADuni vs cubic attack (needs the staircase placement) --")
    for k in (4, 6, 8, 10):
        def build(k=k):
            placement = RingPlacement.cubic(n, k)
            return cubic_attack_protocol(ring, placement, target)

        print(f"  k={k:<3} {try_attack(build, ring, target)}")

    print("\n-- PhaseAsyncLead vs rushing+brute-force attack --")
    # Through the scenario registry this time: forcing *rates* over a few
    # trials per k, instead of a single execution.
    from repro.experiments import run_scenario

    for k in (7, 10, 13, 16):
        try:
            result = run_scenario(
                "attack/phase-rushing",
                trials=5,
                params={"n": n, "k": k, "target": target},
            )
        except ConfigurationError as exc:
            print(f"  k={k:<3} infeasible ({exc})")
            continue
        verdict = (
            "FORCED" if result.success_rate == 1.0
            else "holds (deviation punished/stalled)"
            if result.fail_rate == 1.0
            else f"forcing rate {result.success_rate:.2f}"
        )
        print(f"  k={k:<3} {verdict}")

    print("\nReading: A-LEADuni's frontier sits between n^(1/4) and "
          "2·n^(1/3);")
    print("PhaseAsyncLead moves it up to Θ(√n) — the paper's main result.")


if __name__ == "__main__":
    main()
