#!/usr/bin/env python
"""Baseline scenarios: why the asynchronous ring is the hard case.

The paper (Section 1.1) contrasts its ring results with the other
Abraham et al. scenarios. This example runs all of them side by side:

- synchronous fully connected / ring: rushing impossible, a withholding
  cheater is punished — (n-1)-resilient territory;
- asynchronous fully connected: Shamir sharing gives (⌈n/2⌉-1)
  resilience, sharp — a ⌈n/2⌉ pool reconstructs early and steers;
- asynchronous ring: the thresholds collapse to polynomial-in-n
  fractions (n^(1/3)..√n), the gap the paper's contributions live in.
"""

import math

from repro import run_protocol, unidirectional_ring
from repro.attacks import (
    RingPlacement,
    cubic_attack_protocol,
    shamir_pooling_attack_protocol,
)
from repro.protocols import async_complete_protocol, default_threshold
from repro.sim.topology import complete_graph
from repro.sync import (
    run_sync_protocol,
    sync_broadcast_protocol,
    sync_ring_protocol,
    sync_rushing_attempt_protocol,
)


def main() -> None:
    n = 12
    print(f"=== Baseline scenario map (n={n}) ===\n")

    print("-- synchronous, fully connected --")
    g = complete_graph(n)
    res = run_sync_protocol(g, sync_broadcast_protocol(g), seed=1)
    print(f"honest: elected {res.outcome} in {res.rounds} rounds")
    res = run_sync_protocol(g, sync_rushing_attempt_protocol(g, 2, 7), seed=1)
    print(f"withholding cheater targeting 7: outcome {res.outcome} "
          f"(punished — simultaneity forbids rushing)")

    print("\n-- synchronous ring --")
    ring = unidirectional_ring(n)
    res = run_sync_protocol(ring, sync_ring_protocol(ring), seed=2)
    print(f"honest: elected {res.outcome} in {res.rounds} rounds")

    print("\n-- asynchronous, fully connected (Shamir sharing) --")
    t = default_threshold(n)
    res = run_protocol(g, async_complete_protocol(g), seed=3)
    print(f"honest: elected {res.outcome}; threshold T = ceil(n/2) = {t}")
    coalition = list(range(2, 2 + t))
    res = run_protocol(
        g, shamir_pooling_attack_protocol(g, coalition, 7), seed=3
    )
    print(f"pooling coalition of {t}: outcome {res.outcome} "
          f"(T shares reconstruct early -> resilience is exactly T-1)")

    print("\n-- asynchronous ring (the paper's territory) --")
    k = 6
    n_ring = k + (k - 1) * k * (k + 1) // 2
    ring = unidirectional_ring(n_ring)
    pl = RingPlacement.cubic(n_ring, k)
    res = run_protocol(ring, cubic_attack_protocol(ring, pl, 7), seed=4)
    print(
        f"A-LEADuni on n={n_ring}: {k} adversaries "
        f"(~{k / n_ring ** (1/3):.2f}·n^(1/3)) force outcome {res.outcome}"
    )
    print("\nSynchrony buys n-1; a complete asynchronous graph buys "
          "ceil(n/2)-1;")
    print("the asynchronous ring drops to polynomial thresholds — which is")
    print("why the paper's PhaseAsyncLead pushing it to Θ(√n) matters.")


if __name__ == "__main__":
    main()
