#!/usr/bin/env python
"""Observability tour: traces, timelines, verifiers, and the fuzzer.

Shows the instruments a user debugging a protocol or deviation gets:

1. ASCII synchronization timelines — honest A-LEADuni's lockstep vs the
   cubic attack's staircase desynchronization, visually;
2. the executable Lemma 3.3 verdict on an attack trace;
3. a random-deviation fuzz campaign: every unstructured deviation is
   punished, which is the resilience theorem in action;
4. JSON trace export for external tooling.
"""

import json

from repro import run_protocol, unidirectional_ring
from repro.analysis import lemma33_verdict, render_sync_timeline, trace_to_dicts
from repro.attacks import RingPlacement, cubic_attack_protocol
from repro.protocols import alead_uni_protocol
from repro.testing import deviation_search


def main() -> None:
    print("=== 1. synchronization timelines ===\n")
    n = 38
    ring = unidirectional_ring(n)
    honest = run_protocol(ring, alead_uni_protocol(ring), seed=1)
    print("honest A-LEADuni (every processor in lockstep):")
    print(render_sync_timeline(honest, pids=[1, 10, 20, 30], columns=10))

    k = 4
    n_atk = k + (k - 1) * k * (k + 1) // 2  # 34
    ring_atk = unidirectional_ring(n_atk)
    pl = RingPlacement.cubic(n_atk, k)
    attacked = run_protocol(
        ring_atk, cubic_attack_protocol(ring_atk, pl, 17), seed=1
    )
    print("\ncubic attack (the adversaries' zero-bursts race ahead):")
    print(
        render_sync_timeline(attacked, pids=list(pl.positions), columns=10)
    )

    print("\n=== 2. Lemma 3.3 verdict on the attack trace ===\n")
    verdict = lemma33_verdict(attacked, pl)
    print(f"conditions hold: {verdict.conditions_hold}; outcome valid: "
          f"{verdict.outcome_valid}; iff consistent: "
          f"{verdict.consistent_with_lemma}")

    print("\n=== 3. unstructured-deviation fuzz campaign ===\n")
    report = deviation_search(25, 3, samples=100, master_seed=9)
    print(f"sampled {report.samples} random 3-coalition deviations on n=25:")
    print(f"  punished (FAIL): {report.punished} "
          f"({report.punishment_rate:.0%})")
    print(f"  max single-outcome rate: {report.max_outcome_rate:.3f} "
          f"(an attack would show ~1.0)")

    print("\n=== 4. JSON trace export ===\n")
    rows = trace_to_dicts(honest)
    print(f"{len(rows)} events; first three:")
    for row in rows[:3]:
        print("  " + json.dumps(row))


if __name__ == "__main__":
    main()
