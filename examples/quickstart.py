#!/usr/bin/env python
"""Quickstart: run each leader-election protocol honestly, then break one.

Demonstrates the core public API:

- build a unidirectional ring topology;
- run Basic-LEAD, A-LEADuni, and PhaseAsyncLead honestly;
- show that a single cheater controls Basic-LEAD while the same power
  does not exist against A-LEADuni.
"""

from repro import run_protocol, unidirectional_ring
from repro.experiments import run_scenario
from repro.protocols import (
    alead_uni_protocol,
    basic_lead_protocol,
    phase_async_protocol,
)


def main() -> None:
    n = 16
    ring = unidirectional_ring(n)
    print(f"=== Ring of {n} processors ===\n")

    print("-- honest executions --")
    for name, maker in [
        ("Basic-LEAD     ", basic_lead_protocol),
        ("A-LEADuni      ", alead_uni_protocol),
        ("PhaseAsyncLead ", phase_async_protocol),
    ]:
        result = run_protocol(ring, maker(ring), seed=2024)
        print(
            f"{name} elected leader {result.outcome:>2} "
            f"({result.steps} message deliveries, "
            f"sync gap {result.trace.max_sync_gap()})"
        )

    print("\n-- a single cheater vs Basic-LEAD (Claim B.1) --")
    # Monte-Carlo over the registered scenario: same wiring as
    # `python -m repro sweep --scenario attack/basic-cheat`.
    for target in (3, 9, 16):
        result = run_scenario(
            "attack/basic-cheat",
            trials=20,
            base_seed=7,
            params={"n": n, "cheater": 5, "target": target},
        )
        print(
            f"cheater at node 5 demanded {target:>2} -> "
            f"forcing rate {result.successes}"
        )

    print("\nBasic-LEAD is fully controlled by one rational agent;")
    print("A-LEADuni tolerates it (see examples/attack_gallery.py for its")
    print("actual breaking points) and PhaseAsyncLead pushes the threshold")
    print("to Θ(√n).")


if __name__ == "__main__":
    main()
