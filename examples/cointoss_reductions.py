#!/usr/bin/env python
"""Section 8 walkthrough: fair coin toss ⇔ fair leader election.

Runs both reductions live and shows bias propagating through them:

1. FLE → coin: elect on a ring, output the leader's parity; honest runs
   are balanced, a hijacked FLE yields a constant coin.
2. coin → FLE: log2(n) independent tosses pick a leader; honest runs
   uniform, and the analytic bias bounds of Theorem 8.1 are printed for
   context.
"""

from collections import Counter

from repro import unidirectional_ring
from repro.attacks import basic_cheat_protocol
from repro.cointoss import (
    CoinTossRunner,
    coin_bias_bound_from_fle,
    fle_bias_bound_from_coin,
    independent_coin_fle,
)
from repro.protocols import alead_uni_protocol
from repro.util.rng import RngRegistry


def main() -> None:
    n = 8
    ring = unidirectional_ring(n)
    trials = 200

    print("=== FLE -> coin toss (leader id mod 2) ===\n")
    runner = CoinTossRunner(ring, alead_uni_protocol)
    tosses = [runner.toss(RngRegistry(s)) for s in range(trials)]
    print(f"honest A-LEADuni coin: Pr[1] = {sum(tosses) / trials:.3f} "
          f"over {trials} tosses")

    biased = CoinTossRunner(ring, lambda t: basic_cheat_protocol(t, 2, 4))
    biased_tosses = [biased.toss(RngRegistry(s)) for s in range(20)]
    print(f"hijacked Basic-LEAD (forces id 4): coin always "
          f"{set(biased_tosses)} — a fully biased FLE gives a constant "
          f"coin, saturating the (n/2)·eps bound")

    print("\n=== coin toss -> FLE (log2(n) independent tosses) ===\n")
    counts = Counter(
        independent_coin_fle(ring, alead_uni_protocol, n, RngRegistry(s))
        for s in range(trials)
    )
    print(f"elected-leader histogram over {trials} runs "
          f"(target 1/{n} = {1/n:.3f} each):")
    for leader in sorted(counts):
        print(f"  leader {leader}: {counts[leader] / trials:.3f}")

    print("\n=== Theorem 8.1 bias bounds ===\n")
    for eps in (0.01, 0.05):
        print(f"eps={eps}: FLE->coin bias <= {coin_bias_bound_from_fle(n, eps):.3f}; "
              f"coin->FLE bias <= {fle_bias_bound_from_coin(n, eps):.4f}")


if __name__ == "__main__":
    main()
