#!/usr/bin/env python
"""Attack gallery: every adversarial deviation from the paper, live.

Runs each attack at a representative scale and prints what the coalition
achieved, annotated with the paper reference. A compact tour of the
paper's offensive results:

- Claim B.1    — 1 cheater controls Basic-LEAD;
- Lemma 4.1    — √n equally spaced adversaries control A-LEADuni;
- Theorem C.1  — Θ(√(n log n)) random adversaries control A-LEADuni w.h.p.;
- Theorem 4.3  — 2·n^(1/3) placed adversaries control A-LEADuni;
- Appendix E.4 — 4 adversaries control the sum-output phase protocol;
- Theorem 6.1 (tightness) — √n+3 adversaries control PhaseAsyncLead.
"""

import math
import random

from repro import run_protocol, unidirectional_ring
from repro.attacks import (
    RingPlacement,
    basic_cheat_protocol,
    cubic_attack_protocol,
    equal_spacing_attack_protocol,
    partial_sum_attack_protocol,
    phase_rushing_attack_protocol,
    random_location_attack_protocol,
    recommended_probability,
)
from repro.util.rng import RngRegistry


def show(label: str, n: int, k: int, target: int, outcome) -> None:
    hit = "forced" if outcome == target else f"got {outcome}"
    print(f"{label:<46} n={n:<4} k={k:<3} target={target:<3} -> {hit}")


def main() -> None:
    print("=== Attack gallery ===\n")

    n = 32
    ring = unidirectional_ring(n)
    res = run_protocol(ring, basic_cheat_protocol(ring, 4, 17), seed=1)
    show("Claim B.1: single cheater vs Basic-LEAD", n, 1, 17, res.outcome)

    n = 64
    k = math.isqrt(n)
    ring = unidirectional_ring(n)
    pl = RingPlacement.equal_spacing(n, k)
    res = run_protocol(ring, equal_spacing_attack_protocol(ring, pl, 40), seed=2)
    show("Lemma 4.1: sqrt(n) rushing vs A-LEADuni", n, k, 40, res.outcome)

    n = 256
    p = recommended_probability(n)
    pl = RingPlacement.random_locations(n, p, random.Random(12))
    ring = unidirectional_ring(n)
    res = run_protocol(
        ring, random_location_attack_protocol(ring, pl, 99), rng=RngRegistry(3)
    )
    show(
        f"Thm C.1: random coalition (p={p:.2f}) vs A-LEADuni",
        n, pl.k, 99, res.outcome,
    )

    k = 6
    n = k + (k - 1) * k * (k + 1) // 2  # 111
    ring = unidirectional_ring(n)
    pl = RingPlacement.cubic(n, k)
    res = run_protocol(ring, cubic_attack_protocol(ring, pl, 70), seed=4)
    show("Thm 4.3: cubic attack vs A-LEADuni", n, k, 70, res.outcome)
    print(f"   (k = {k} = {k / n ** (1/3):.2f}·n^(1/3); segment staircase "
          f"{pl.distances()})")

    n = 44
    ring = unidirectional_ring(n)
    res = run_protocol(ring, partial_sum_attack_protocol(ring, 4, 30), seed=5)
    show("E.4: partial-sum channel vs sum-phase variant", n, 4, 30, res.outcome)

    n = 64
    k = math.isqrt(n) + 3
    ring = unidirectional_ring(n)
    res = run_protocol(
        ring, phase_rushing_attack_protocol(ring, k, 50), seed=6
    )
    show("Thm 6.1 tightness: rushing vs PhaseAsyncLead", n, k, 50, res.outcome)

    print("\nEvery coalition above steered the election to its target while")
    print("all honest validations passed — the deviations are undetectable.")


if __name__ == "__main__":
    main()
