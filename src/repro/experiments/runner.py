"""The Monte-Carlo trial runner: deterministic fan-out over workers.

One *experiment* is a set of independent executions of a scenario, each
with its own derived seed. The runner owns the loop every caller used to
hand-roll:

- **Determinism by construction.** Trial ``i`` of an experiment with
  ``base_seed`` always runs from the registry seed
  ``derive_seed(base_seed, f"spawn:{i}")`` — a pure function of
  ``(base_seed, i)``. How trials are sliced into worker chunks, and how
  many workers there are, cannot change any trial's randomness; the same
  ``(scenario, params, trials, base_seed)`` produces the same outcomes
  with ``parallel=False``, one worker, or sixteen. (This derivation is
  exactly the one :func:`repro.analysis.distribution.estimate_distribution`
  has always used, so historical results are preserved bit-for-bit.)
- **Lean hot path.** Trials run with ``record_trace=False`` by default:
  Monte-Carlo estimation reads only outcomes, so the executor skips all
  event-object allocation.
- **Pool reuse.** The runner dispatches through a persistent
  :class:`~repro.experiments.pool.WorkerPool` — injected by the caller
  (sweeps, campaigns, frontier/fuzz loops share one pool across every
  experiment), or created lazily on first parallel use and kept for the
  runner's lifetime. Worker processes are never re-spawned between
  experiments.
- **Folded aggregates.** When the caller doesn't ask for per-trial
  outcomes (``keep_outcomes=False`` and no ``on_outcome``), worker
  chunks come back as outcome-count dicts plus success/step counters
  instead of pickled per-trial lists — counter addition is commutative,
  so the fold order never shows in the result and IPC volume stops
  scaling with the trial count.
- **Streamed per-trial outcomes.** When a consumer *does* ask for every
  trial (``on_outcome`` or ``keep_outcomes=True``) under a parallel
  pool, dispatches are capped at
  :data:`~repro.experiments.pool.STREAM_CHUNK_TRIALS` trials and come
  back as columnar packed tuples, so consumers receive outcomes in
  bounded, cheap IPC messages instead of one arbitrarily large pickled
  object list per dispatch.
- **Adaptive budgets.** ``run(budget=...)`` replaces the fixed trial
  count with a registered stop rule (Wilson width, relative precision,
  fail-rate target — see :mod:`~repro.experiments.budget`), evaluated
  on a deterministic batch schedule so the realized trial count is
  identical at any worker count.

The in-process mode (``parallel=False`` or one worker) runs the same
per-trial function with no multiprocessing at all — the mode tests use,
and the fallback for ad-hoc scenario specs built from closures that
cannot cross process boundaries.
"""

import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.distribution import OutcomeDistribution
from repro.analysis.stats import Proportion, proportion
from repro.experiments.budget import BudgetPolicy, BudgetRef, as_policy
from repro.experiments.chunking import AdaptiveChunker
from repro.experiments.pool import (
    STREAM_CHUNK_TRIALS,
    WorkerCount,
    WorkerPool,
    resolve_workers,
)
from repro.experiments.scenario import Params, ScenarioSpec, get_scenario
from repro.sim.execution import run_protocol
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry, derive_seed

#: A scenario argument: registered name or an (ad-hoc) spec object.
ScenarioRef = Union[str, ScenarioSpec]


def trial_registry(base_seed: int, index: int) -> RngRegistry:
    """The :class:`RngRegistry` trial ``index`` runs from — pure in
    ``(base_seed, index)``, independent of worker layout. Delegates to
    :meth:`RngRegistry.spawn` so the derivation stays structurally
    identical to the legacy serial loops' ``spawn(str(t))``."""
    return RngRegistry(base_seed).spawn(str(index))


@dataclass(frozen=True)
class TrialOutcome:
    """One finished trial, reduced to what experiments aggregate."""

    index: int
    outcome: Any
    steps: int
    success: bool


@dataclass
class ExperimentResult:
    """Aggregated result of one experiment (one scenario, one grid point)."""

    scenario: str
    params: Params
    trials: int
    base_seed: int
    outcomes: List[TrialOutcome]
    distribution: OutcomeDistribution
    successes: Proportion
    max_steps: Optional[int] = None  # per-trial budget the rows ran under
    elapsed: float = 0.0  # wall-clock; excluded from to_row() determinism
    steps_total: int = 0  # summed delivery steps across all trials
    #: Worker chunks this experiment dispatched — scheduling metadata
    #: (like ``elapsed``), excluded from ``to_row()``; what the chunking
    #: benchmark and the cost-adaptive tests measure.
    dispatches: int = 0
    budget: Optional[BudgetPolicy] = None  # adaptive policy, if one ran
    #: The experiment was abandoned at a chunk boundary by a deadline
    #: (campaign --point-timeout / --max-wall-clock): ``trials`` is then
    #: a scheduling-dependent partial count, so the row is marked and
    #: excluded from resume identities — a rerun retries the point.
    timed_out: bool = False

    @property
    def success_rate(self) -> float:
        return self.successes.estimate

    @property
    def fail_rate(self) -> float:
        return self.distribution.fail_rate

    def to_row(self) -> Dict[str, Any]:
        """A JSON-stable summary row (identical across worker counts).

        Fixed-budget rows keep the exact PR-2 schema; adaptive rows add
        one ``"budget"`` object (the policy identity) on top — their
        ``"trials"`` field records the *realized* count the stop rule
        settled on, which is itself deterministic.
        """
        row = {
            "scenario": self.scenario,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "trials": self.trials,
            "base_seed": self.base_seed,
            "max_steps": self.max_steps,
            "successes": self.successes.successes,
            "success_rate": round(self.success_rate, 6),
            "success_low": round(self.successes.low, 6),
            "success_high": round(self.successes.high, 6),
            "fail_rate": round(self.fail_rate, 6),
            "outcomes": {
                str(outcome): count
                for outcome, count in sorted(
                    self.distribution.counts.items(), key=lambda kv: str(kv[0])
                )
            },
        }
        if self.budget is not None:
            row["budget"] = self.budget.to_key()
        if self.timed_out:
            # Only present on abandoned experiments, so every completed
            # row stays byte-identical to the pre-deadline format.
            row["timed_out"] = True
        return row


def run_one_trial(
    spec: ScenarioSpec,
    params: Params,
    base_seed: int,
    index: int,
    record_trace: bool = False,
    max_steps: Optional[int] = None,
) -> TrialOutcome:
    """Run trial ``index`` of an experiment and score it.

    This is *the* definition of a trial — the parallel and in-process
    paths both funnel through it, which is what makes them agree.
    Scenarios with a custom ``run_trial`` (sync engine, tree games,
    coin-toss reductions, full-information games) bypass the executor but
    keep the same registry derivation, so the determinism contract is
    identical for every registered scenario.
    """
    registry = trial_registry(base_seed, index)
    if spec.run_trial is not None:
        outcome, steps = spec.run_trial(params, registry, max_steps)
    else:
        result = _execute_trial(spec, params, registry, record_trace, max_steps)
        outcome, steps = result.outcome, result.steps
    if spec.map_outcome is not None:
        outcome = spec.map_outcome(outcome, params)
    return TrialOutcome(
        index=index,
        outcome=outcome,
        steps=steps,
        success=spec.success(outcome, params),
    )


def _execute_trial(
    spec: ScenarioSpec,
    params: Params,
    registry: RngRegistry,
    record_trace: bool,
    max_steps: Optional[int],
):
    """The executor wiring of one trial — the single definition both the
    Monte-Carlo path and :func:`run_traced_trial` share, so a traced run
    is byte-for-byte the execution the untraced trial would have been."""
    topology = spec.build_topology(params)
    protocol = spec.build_protocol(topology, params, registry.stream("scenario"))
    scheduler = spec.build_scheduler(params) if spec.build_scheduler else None
    return run_protocol(
        topology,
        protocol,
        scheduler=scheduler,
        rng=registry,
        max_steps=max_steps,
        record_trace=record_trace,
    )


def run_traced_trial(
    scenario: ScenarioRef,
    params: Optional[Mapping[str, Any]] = None,
    base_seed: int = 0,
    index: int = 0,
    max_steps: Optional[int] = None,
):
    """Run one executor trial of a scenario with the event trace ON.

    Same wiring and registry derivation as :func:`run_one_trial`, but
    returns the full :class:`~repro.sim.execution.ExecutionResult` so
    observability tooling (sync-gap ablations, message-complexity
    counts) can read the trace of exactly the execution the Monte-Carlo
    path would have run. Only available for executor-backed scenarios —
    ``run_trial`` scenarios have no event trace to record.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if spec.run_trial is not None:
        raise ConfigurationError(
            f"scenario {spec.name!r} runs outside the executor; "
            "it has no event trace"
        )
    resolved = spec.resolve_params(params)
    return _execute_trial(
        spec, resolved, trial_registry(base_seed, index), True, max_steps
    )


#: One chunk's work order, shipped to a worker. ``scenario`` is a builtin
#: name (resolved from the worker's own catalog) or a full spec by value.
#: The trailing ``use_batch`` flag opts the folded path in or out of a
#: scenario's vectorized kernel; it is optional (older 6-tuples still
#: parse, defaulting to batch-on) so pickled payloads stay compatible.
ChunkPayload = Tuple[ScenarioRef, Params, int, Tuple[int, ...], bool, Optional[int], bool]

#: A worker-side folded chunk: (outcome -> count, successes, steps total,
#: trial count, worker-measured elapsed seconds). Plain tuples pickle
#: small and fold commutatively. The trailing ``elapsed`` is scheduling
#: metadata — the cost-adaptive chunker's in-run feedback signal — and
#: never reaches a row: the first four elements alone decide results.
ChunkFold = Tuple[Dict[Any, int], int, int, int, float]


def _resolve_chunk_spec(scenario: ScenarioRef) -> ScenarioSpec:
    if isinstance(scenario, str):
        import repro.experiments  # noqa: F401 - registers the builtin catalog

        return get_scenario(scenario)
    return scenario


def _run_chunk(payload: ChunkPayload) -> List[TrialOutcome]:
    """Worker entry point: run a chunk, returning per-trial outcomes."""
    scenario, params, base_seed, indices, record_trace, max_steps = payload[:6]
    spec = _resolve_chunk_spec(scenario)
    return [
        run_one_trial(spec, params, base_seed, i, record_trace, max_steps)
        for i in indices
    ]


#: A worker-side *packed* chunk for the streamed outcome path: columnar
#: ``(indices, outcomes, steps, successes, elapsed)`` tuples. Per-trial
#: :class:`TrialOutcome` objects pickle as one class reference plus four
#: boxed fields *each*; four flat tuples carry the same data in a
#: fraction of the bytes, and the master rebuilds the objects locally.
#: The trailing worker-measured ``elapsed`` seconds feed the
#: cost-adaptive chunker and never reach a trial outcome.
PackedChunk = Tuple[
    Tuple[int, ...], Tuple[Any, ...], Tuple[int, ...], Tuple[bool, ...], float
]


def _run_chunk_packed(payload: ChunkPayload) -> PackedChunk:
    """Worker entry point for the streamed outcome path: run a chunk and
    return its trials as columnar tuples (see :data:`PackedChunk`).

    Paired with the :data:`~repro.experiments.pool.STREAM_CHUNK_TRIALS`
    chunk cap, this is what lets ``on_outcome`` consumers receive every
    trial in bounded, cheap IPC messages instead of one arbitrarily
    large pickled object list per dispatch.
    """
    scenario, params, base_seed, indices, record_trace, max_steps = payload[:6]
    spec = _resolve_chunk_spec(scenario)
    started = time.perf_counter()
    outcomes = []
    steps = []
    successes = []
    for i in indices:
        trial = run_one_trial(spec, params, base_seed, i, record_trace, max_steps)
        outcomes.append(trial.outcome)
        steps.append(trial.steps)
        successes.append(trial.success)
    return (
        tuple(indices),
        tuple(outcomes),
        tuple(steps),
        tuple(successes),
        time.perf_counter() - started,
    )


def _unpack_chunk(packed: PackedChunk) -> List[TrialOutcome]:
    """Rebuild a packed chunk's :class:`TrialOutcome` objects master-side
    (the trailing elapsed element, when present, is timing metadata the
    dispatcher consumes — trials never see it)."""
    indices, outcomes, steps, successes = packed[:4]
    return [
        TrialOutcome(index=i, outcome=o, steps=s, success=w)
        for i, o, s, w in zip(indices, outcomes, steps, successes)
    ]


def trial_seeds(base_seed: int, indices: Sequence[int]) -> List[int]:
    """The registry master seeds trials ``indices`` run from — what a
    :attr:`~repro.experiments.scenario.ScenarioSpec.run_batch` kernel
    receives. Seed ``i`` is exactly ``trial_registry(base_seed, i).seed``,
    computed without building the registry objects."""
    return [derive_seed(base_seed, f"spawn:{i}") for i in indices]


def _fold_batch(
    spec: ScenarioSpec, params: Params, base_seed: int, indices: Sequence[int]
) -> Optional[Tuple[Dict[Any, int], int, int, int]]:
    """Fold one chunk through the scenario's vectorized kernel.

    The kernel histograms final (post-``map_outcome``) outcomes, so the
    success counter is recovered here by scoring each distinct outcome
    once — the scenario's own ``success`` predicate stays the single
    definition of success on both paths. ``None`` (kernel declined, or
    trial-count mismatch) sends the chunk to the scalar loop.
    """
    result = spec.run_batch(trial_seeds(base_seed, indices), params)
    if result is None:
        return None
    counts, steps_total = result
    if sum(counts.values()) != len(indices):
        raise ConfigurationError(
            f"scenario {spec.name!r}: run_batch returned "
            f"{sum(counts.values())} outcomes for {len(indices)} seeds"
        )
    successes = sum(
        count for outcome, count in counts.items() if spec.success(outcome, params)
    )
    return (dict(counts), successes, steps_total, len(indices))


def _run_chunk_folded(payload: ChunkPayload) -> ChunkFold:
    """Worker entry point: run a chunk, returning only folded aggregates.

    The worker folds its own trials into an outcome histogram and
    success/step counters, so what crosses the process boundary is a
    handful of counts however many trials the chunk held. Addition is
    commutative, so the master can fold chunk results in arrival order.

    When the scenario carries a vectorized ``run_batch`` kernel, the
    fold is computed by the kernel instead of the per-trial loop —
    same counts bit for bit, fraction of the interpreter time. The
    kernel only applies where its contract does: the folded path with
    no trace and the default step budget (a custom ``max_steps`` can
    change executor outcomes, which closed-form kernels cannot see).
    """
    scenario, params, base_seed, indices, record_trace, max_steps = payload[:6]
    use_batch = payload[6] if len(payload) > 6 else True
    spec = _resolve_chunk_spec(scenario)
    started = time.perf_counter()
    if (
        use_batch
        and spec.run_batch is not None
        and not record_trace
        and max_steps is None
    ):
        batched = _fold_batch(spec, params, base_seed, indices)
        if batched is not None:
            return batched + (time.perf_counter() - started,)
    counts: Dict[Any, int] = {}
    successes = 0
    steps_total = 0
    for i in indices:
        trial = run_one_trial(spec, params, base_seed, i, record_trace, max_steps)
        counts[trial.outcome] = counts.get(trial.outcome, 0) + 1
        successes += int(trial.success)
        steps_total += trial.steps
    return (counts, successes, steps_total, len(indices), time.perf_counter() - started)


def chunk_payloads(
    spec: ScenarioSpec,
    params: Params,
    base_seed: int,
    indices: Sequence[int],
    record_trace: bool = False,
    max_steps: Optional[int] = None,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    max_chunk: Optional[int] = None,
    use_batch: bool = True,
    chunker: Optional[AdaptiveChunker] = None,
) -> List[ChunkPayload]:
    """Slice a trial-index range into worker chunk payloads.

    Shared by the runner and the campaign orchestrator so both ship the
    exact same work orders. Builtin scenarios go by *name* (workers
    resolve them from their own catalog import instead of unpickling
    arbitrary callables); user-registered and ad-hoc specs go by value —
    a worker under the spawn/forkserver start methods rebuilds only the
    builtin catalog, so a bare name would not resolve there.

    Sizing precedence: an explicit ``chunk_size`` always wins; otherwise
    a ``chunker`` with observed per-trial seconds for the scenario sizes
    chunks toward its wall-seconds target (see
    :class:`~repro.experiments.chunking.AdaptiveChunker`); otherwise the
    static count heuristic (~4 chunks per worker). ``max_chunk`` caps
    the result whatever chose it — the streamed outcome path uses it to
    bound per-dispatch IPC message size. Chunking never affects results,
    only scheduling.
    """
    count = len(indices)
    size = None
    if chunk_size is not None:
        size = chunk_size
    elif chunker is not None:
        size = chunker.chunk_size(spec.name, count, workers)
    if size is None:
        size = max(1, count // (workers * 4) or 1)
    if max_chunk is not None:
        size = min(size, max_chunk)
    ship = spec.name if _is_builtin(spec) else spec
    return [
        (
            ship,
            params,
            base_seed,
            tuple(indices[start : start + size]),
            record_trace,
            max_steps,
            use_batch,
        )
        for start in range(0, count, size)
    ]


class ExperimentRunner:
    """Fans a trial budget out over worker processes, deterministically.

    Parameters
    ----------
    workers:
        Worker-process count; ``1`` (the default) runs in-process and
        ``"auto"`` derives a clamped count from the machine (see
        :func:`~repro.experiments.pool.resolve_workers`). Ignored when
        ``pool`` is given — the pool's size wins.
    parallel:
        Force (``True``) or forbid (``False``) multiprocessing; ``None``
        derives it from ``workers > 1``. ``parallel=False`` with many
        workers is the test mode: same chunking, no processes.
    chunk_size:
        Trials per worker task; defaults to ~4 tasks per worker so slow
        chunks load-balance. Never affects results, only scheduling.
    record_trace:
        Forwarded to the executor; ``False`` (default) is the Monte-Carlo
        fast path.
    max_steps:
        Per-trial delivery budget override (``None`` = executor default).
    pool:
        A shared :class:`~repro.experiments.pool.WorkerPool` to dispatch
        through — the caller keeps ownership (the runner never closes
        it), so many runners and many experiments reuse one set of warm
        workers. Without one, the runner lazily creates its own pool on
        first parallel use and keeps it until :meth:`close` (or GC), so
        even a single runner amortises spawn cost across its ``run()``
        calls.
    use_batch:
        Whether folded chunks may run through a scenario's vectorized
        ``run_batch`` kernel (the default). ``False`` forces the
        per-trial loop everywhere — the equivalence tests' control
        mode; results are identical either way by contract.
    chunker:
        A :class:`~repro.experiments.chunking.AdaptiveChunker` sizing
        chunks from observed per-trial seconds (every folded chunk's
        measured elapsed feeds it back). ``None`` keeps the static
        count heuristic. Callers that own a ``.timings`` sidecar (the
        sweep/campaign/serve layers) pass a chunker seeded from it; an
        explicit ``chunk_size`` always wins over both. Chunking never
        affects results, only scheduling.
    """

    def __init__(
        self,
        workers: WorkerCount = 1,
        parallel: Optional[bool] = None,
        chunk_size: Optional[int] = None,
        record_trace: bool = False,
        max_steps: Optional[int] = None,
        pool: Optional[WorkerPool] = None,
        use_batch: bool = True,
        chunker: Optional[AdaptiveChunker] = None,
    ):
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        if pool is not None:
            self.workers = pool.workers
        else:
            self.workers = resolve_workers(workers)
        self.parallel = parallel if parallel is not None else self.workers > 1
        self.chunk_size = chunk_size
        self.record_trace = record_trace
        self.max_steps = max_steps
        self.use_batch = use_batch
        self.chunker = chunker
        self._dispatches = 0
        self._pool = pool
        self._owns_pool = pool is None

    # -- pool lifecycle ------------------------------------------------

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The pool this runner dispatches through (None until first use
        when self-owned)."""
        return self._pool

    def close(self) -> None:
        """Shut down a self-owned pool; injected pools are left alone."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _shared_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.workers)
        return self._pool

    # -- internals -----------------------------------------------------

    def _dispatch(
        self,
        spec: ScenarioSpec,
        params: Params,
        base_seed: int,
        indices: Sequence[int],
        fold: bool,
        bounded: bool = False,
        chunk_size: Optional[int] = None,
    ) -> Iterable[Union[List[TrialOutcome], ChunkFold]]:
        use_pool = self.parallel and self.workers > 1 and len(indices) > 1
        payloads = chunk_payloads(
            spec,
            params,
            base_seed,
            indices,
            self.record_trace,
            self.max_steps,
            workers=self.workers,
            # A per-call override (the calibration probe) outranks the
            # runner-wide setting, which outranks the adaptive chunker.
            chunk_size=chunk_size if chunk_size is not None else self.chunk_size,
            # Streamed outcome path: per-trial results cross the process
            # boundary, so bound every dispatch's pickled payload.
            max_chunk=STREAM_CHUNK_TRIALS if use_pool and not fold else None,
            use_batch=self.use_batch,
            chunker=self.chunker,
        )
        self._dispatches += len(payloads)
        observe = self.chunker.observe if self.chunker is not None else None
        if not use_pool:
            # In-process: no pickling, so nothing to pack or bound.
            fn = _run_chunk_folded if fold else _run_chunk
            for payload in payloads:
                started = time.perf_counter()
                result = fn(payload)
                if observe is not None:
                    # Folded chunks time themselves; the streamed path's
                    # trial lists don't, so the master's clock stands in.
                    elapsed = result[4] if fold else time.perf_counter() - started
                    observe(spec.name, len(payload[3]), elapsed)
                yield result
            return
        pool = self._shared_pool()
        if fold:
            for chunk in pool.imap_unordered(
                _run_chunk_folded, payloads, bounded=bounded
            ):
                if observe is not None:
                    observe(spec.name, chunk[3], chunk[4])
                yield chunk
            return
        for packed in pool.imap_unordered(
            _run_chunk_packed, payloads, bounded=bounded
        ):
            if observe is not None:
                observe(spec.name, len(packed[0]), packed[4])
            yield _unpack_chunk(packed)

    # -- public API ----------------------------------------------------

    def run(
        self,
        scenario: ScenarioRef,
        trials: Optional[int] = None,
        base_seed: int = 0,
        params: Optional[Mapping[str, Any]] = None,
        on_outcome: Optional[Callable[[TrialOutcome], None]] = None,
        keep_outcomes: bool = True,
        budget: BudgetRef = None,
        deadline: Optional[float] = None,
    ) -> ExperimentResult:
        """Run one experiment and fold the outcomes.

        Exactly one of ``trials`` (classic fixed budget) and ``budget``
        (adaptive Wilson stop, see
        :class:`~repro.experiments.budget.BudgetPolicy`) must be given.

        ``on_outcome`` (if given) observes every trial as its chunk
        arrives — arrival order is nondeterministic under parallelism,
        but the folded result and the final ``outcomes`` list (sorted by
        trial index) are not. With ``keep_outcomes=False`` and no
        ``on_outcome``, chunks are folded *inside the workers* and only
        aggregate counters cross the process boundary; the result's
        ``outcomes`` list is then empty (the distribution, success
        proportion, and row are identical either way).

        ``deadline`` (a ``time.monotonic()`` timestamp) arms cooperative
        cancellation: the run is abandoned at the first *chunk boundary*
        past the deadline and the partial result comes back with
        ``timed_out=True`` and ``trials`` set to what actually ran. At
        least one chunk always runs — the check happens after a chunk
        folds, never before work starts — and a single pathological
        chunk can only be abandoned once it returns (per-trial hangs are
        what ``max_steps`` is for). A run whose *last* chunk folds past
        the deadline is complete, not timed out: nothing was lost. With
        a parallel pool, dispatch is windowed while a deadline is armed,
        so abandonment strands at most
        :attr:`~repro.experiments.pool.WorkerPool.dispatch_window`
        already-submitted chunks. The campaign layer uses this for
        ``--point-timeout`` / ``--max-wall-clock``; timed-out rows are
        excluded from resume identities so a rerun retries the point.
        """
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        resolved = spec.resolve_params(params)
        policy = as_policy(budget)
        if policy is not None and trials is not None:
            raise ConfigurationError(
                "pass either a fixed trials count or an adaptive budget, not both"
            )
        if policy is None:
            if trials is None:
                raise ConfigurationError("trials is required without a budget")
            if trials < 0:
                raise ConfigurationError(f"trials must be >= 0, got {trials}")
        started = time.perf_counter()
        fold = not keep_outcomes and on_outcome is None
        counts: Counter = Counter()
        outcomes: List[TrialOutcome] = []
        success_count = 0
        steps_total = 0
        ran = 0
        timed_out = False
        self._dispatches = 0

        def _consume(start: int, end: int, chunk_size: Optional[int] = None) -> None:
            nonlocal success_count, steps_total, ran, timed_out
            for chunk_result in self._dispatch(
                spec,
                resolved,
                base_seed,
                range(start, end),
                fold,
                # An armed deadline may abandon the iterator: window the
                # dispatch so abandonment strands at most a window of
                # submitted chunks, not the whole experiment.
                bounded=deadline is not None,
                chunk_size=chunk_size,
            ):
                if fold:
                    fold_counts, fold_successes, fold_steps, fold_trials = (
                        chunk_result[:4]
                    )
                    counts.update(fold_counts)
                    success_count += fold_successes
                    steps_total += fold_steps
                    ran += fold_trials
                else:
                    for trial in chunk_result:
                        counts[trial.outcome] += 1
                        success_count += int(trial.success)
                        steps_total += trial.steps
                        ran += 1
                        if keep_outcomes:
                            outcomes.append(trial)
                        if on_outcome is not None:
                            on_outcome(trial)
                if deadline is not None and time.monotonic() >= deadline:
                    # Cooperative cancellation: abandon at this chunk
                    # boundary. Closing the dispatch generator discards
                    # any in-flight parallel chunks' results.
                    timed_out = True
                    break

        if policy is None:
            probe = 0
            if self.chunker is not None and self.chunk_size is None and fold:
                # In-run calibration: an unseen scenario's first chunk
                # runs at a bounded size so its measured elapsed seeds
                # the cost model, and the rest of this same point is
                # chunked from evidence instead of the count heuristic.
                probe = self.chunker.calibration_trials(spec.name, trials)
            if probe:
                _consume(0, probe, chunk_size=probe)
            if not timed_out:
                _consume(probe, trials)
            if timed_out and ran >= trials:
                # The deadline lapsed exactly as the last chunk folded:
                # every requested trial ran, so the result is complete —
                # stamping it timed_out would discard it and retry the
                # point forever under --resume.
                timed_out = False
        else:
            done = 0
            for end in policy.batch_ends():
                if end > done:
                    _consume(done, end)
                    done = end
                if timed_out:
                    if ran == done and (
                        ran >= policy.max_trials
                        or policy.satisfied(success_count, ran, counts=counts)
                    ):
                        # Same complete-at-the-boundary case: the stop
                        # rule already decided; nothing was lost.
                        timed_out = False
                    break
                if policy.satisfied(success_count, done, counts=counts):
                    break
        outcomes.sort(key=lambda t: t.index)
        distribution = OutcomeDistribution(
            n=spec.size(resolved), trials=ran, counts=counts
        )
        return ExperimentResult(
            scenario=spec.name,
            params=resolved,
            trials=ran,
            base_seed=base_seed,
            outcomes=outcomes,
            distribution=distribution,
            successes=proportion(success_count, ran, z=policy.z if policy else 1.96),
            max_steps=self.max_steps,
            elapsed=time.perf_counter() - started,
            steps_total=steps_total,
            dispatches=self._dispatches,
            budget=policy,
            timed_out=timed_out,
        )


def _is_builtin(spec: ScenarioSpec) -> bool:
    from repro.experiments.catalog import BUILTIN_SCENARIO_NAMES
    from repro.experiments.scenario import _REGISTRY

    return spec.name in BUILTIN_SCENARIO_NAMES and _REGISTRY.get(spec.name) is spec


def run_scenario(
    scenario: ScenarioRef,
    trials: Optional[int] = None,
    base_seed: int = 0,
    params: Optional[Mapping[str, Any]] = None,
    workers: WorkerCount = 1,
    keep_outcomes: bool = True,
    budget: BudgetRef = None,
    pool: Optional[WorkerPool] = None,
    on_outcome: Optional[Callable[[TrialOutcome], None]] = None,
    chunker: Optional[AdaptiveChunker] = None,
    **runner_kwargs: Any,
) -> ExperimentResult:
    """One-shot convenience: build a runner and run one experiment.

    Chunk sizing is cost-adaptive by default (a fresh
    :class:`~repro.experiments.chunking.AdaptiveChunker` per call);
    pass ``chunker=...`` to share a seeded model, or
    ``chunk_size=...`` (via ``runner_kwargs``) to pin it.
    """
    if chunker is None and "chunk_size" not in runner_kwargs:
        chunker = AdaptiveChunker()
    runner = ExperimentRunner(
        workers=workers, pool=pool, chunker=chunker, **runner_kwargs
    )
    try:
        return runner.run(
            scenario,
            trials,
            base_seed=base_seed,
            params=params,
            on_outcome=on_outcome,
            keep_outcomes=keep_outcomes,
            budget=budget,
        )
    finally:
        runner.close()
