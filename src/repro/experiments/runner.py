"""The Monte-Carlo trial runner: deterministic fan-out over workers.

One *experiment* is ``trials`` independent executions of a scenario, each
with its own derived seed. The runner owns the loop every caller used to
hand-roll:

- **Determinism by construction.** Trial ``i`` of an experiment with
  ``base_seed`` always runs from the registry seed
  ``derive_seed(base_seed, f"spawn:{i}")`` — a pure function of
  ``(base_seed, i)``. How trials are sliced into worker chunks, and how
  many workers there are, cannot change any trial's randomness; the same
  ``(scenario, params, trials, base_seed)`` produces the same outcomes
  with ``parallel=False``, one worker, or sixteen. (This derivation is
  exactly the one :func:`repro.analysis.distribution.estimate_distribution`
  has always used, so historical results are preserved bit-for-bit.)
- **Lean hot path.** Trials run with ``record_trace=False`` by default:
  Monte-Carlo estimation reads only outcomes, so the executor skips all
  event-object allocation.
- **Streaming fold.** Worker chunks come back via ``imap_unordered`` and
  are folded into an :class:`~repro.analysis.distribution.OutcomeDistribution`
  and a success counter as they arrive; per-trial outcomes are re-sorted
  by index at the end, so the fold order never shows in the result.

The in-process mode (``parallel=False`` or one worker) runs the same
per-trial function with no multiprocessing at all — the mode tests use,
and the fallback for ad-hoc scenario specs built from closures that
cannot cross process boundaries.
"""

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.analysis.distribution import OutcomeDistribution
from repro.analysis.stats import Proportion, proportion
from repro.experiments.scenario import Params, ScenarioSpec, get_scenario
from repro.sim.execution import run_protocol
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry

#: A scenario argument: registered name or an (ad-hoc) spec object.
ScenarioRef = Union[str, ScenarioSpec]


def trial_registry(base_seed: int, index: int) -> RngRegistry:
    """The :class:`RngRegistry` trial ``index`` runs from — pure in
    ``(base_seed, index)``, independent of worker layout. Delegates to
    :meth:`RngRegistry.spawn` so the derivation stays structurally
    identical to the legacy serial loops' ``spawn(str(t))``."""
    return RngRegistry(base_seed).spawn(str(index))


@dataclass(frozen=True)
class TrialOutcome:
    """One finished trial, reduced to what experiments aggregate."""

    index: int
    outcome: Any
    steps: int
    success: bool


@dataclass
class ExperimentResult:
    """Aggregated result of one experiment (one scenario, one grid point)."""

    scenario: str
    params: Params
    trials: int
    base_seed: int
    outcomes: List[TrialOutcome]
    distribution: OutcomeDistribution
    successes: Proportion
    max_steps: Optional[int] = None  # per-trial budget the rows ran under
    elapsed: float = 0.0  # wall-clock; excluded from to_row() determinism

    @property
    def success_rate(self) -> float:
        return self.successes.estimate

    @property
    def fail_rate(self) -> float:
        return self.distribution.fail_rate

    def to_row(self) -> Dict[str, Any]:
        """A JSON-stable summary row (identical across worker counts)."""
        return {
            "scenario": self.scenario,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "trials": self.trials,
            "base_seed": self.base_seed,
            "max_steps": self.max_steps,
            "successes": self.successes.successes,
            "success_rate": round(self.success_rate, 6),
            "success_low": round(self.successes.low, 6),
            "success_high": round(self.successes.high, 6),
            "fail_rate": round(self.fail_rate, 6),
            "outcomes": {
                str(outcome): count
                for outcome, count in sorted(
                    self.distribution.counts.items(), key=lambda kv: str(kv[0])
                )
            },
        }


def run_one_trial(
    spec: ScenarioSpec,
    params: Params,
    base_seed: int,
    index: int,
    record_trace: bool = False,
    max_steps: Optional[int] = None,
) -> TrialOutcome:
    """Run trial ``index`` of an experiment and score it.

    This is *the* definition of a trial — the parallel and in-process
    paths both funnel through it, which is what makes them agree.
    Scenarios with a custom ``run_trial`` (sync engine, tree games,
    coin-toss reductions, full-information games) bypass the executor but
    keep the same registry derivation, so the determinism contract is
    identical for every registered scenario.
    """
    registry = trial_registry(base_seed, index)
    if spec.run_trial is not None:
        outcome, steps = spec.run_trial(params, registry, max_steps)
    else:
        result = _execute_trial(spec, params, registry, record_trace, max_steps)
        outcome, steps = result.outcome, result.steps
    if spec.map_outcome is not None:
        outcome = spec.map_outcome(outcome, params)
    return TrialOutcome(
        index=index,
        outcome=outcome,
        steps=steps,
        success=spec.success(outcome, params),
    )


def _execute_trial(
    spec: ScenarioSpec,
    params: Params,
    registry: RngRegistry,
    record_trace: bool,
    max_steps: Optional[int],
):
    """The executor wiring of one trial — the single definition both the
    Monte-Carlo path and :func:`run_traced_trial` share, so a traced run
    is byte-for-byte the execution the untraced trial would have been."""
    topology = spec.build_topology(params)
    protocol = spec.build_protocol(topology, params, registry.stream("scenario"))
    scheduler = spec.build_scheduler(params) if spec.build_scheduler else None
    return run_protocol(
        topology,
        protocol,
        scheduler=scheduler,
        rng=registry,
        max_steps=max_steps,
        record_trace=record_trace,
    )


def run_traced_trial(
    scenario: ScenarioRef,
    params: Optional[Mapping[str, Any]] = None,
    base_seed: int = 0,
    index: int = 0,
    max_steps: Optional[int] = None,
):
    """Run one executor trial of a scenario with the event trace ON.

    Same wiring and registry derivation as :func:`run_one_trial`, but
    returns the full :class:`~repro.sim.execution.ExecutionResult` so
    observability tooling (sync-gap ablations, message-complexity
    counts) can read the trace of exactly the execution the Monte-Carlo
    path would have run. Only available for executor-backed scenarios —
    ``run_trial`` scenarios have no event trace to record.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if spec.run_trial is not None:
        raise ConfigurationError(
            f"scenario {spec.name!r} runs outside the executor; "
            "it has no event trace"
        )
    resolved = spec.resolve_params(params)
    return _execute_trial(
        spec, resolved, trial_registry(base_seed, index), True, max_steps
    )


def _run_chunk(
    payload: Tuple[ScenarioRef, Params, int, Tuple[int, ...], bool, Optional[int]]
) -> List[TrialOutcome]:
    """Worker entry point: run a contiguous chunk of trial indices."""
    scenario, params, base_seed, indices, record_trace, max_steps = payload
    if isinstance(scenario, str):
        import repro.experiments  # noqa: F401 - registers the builtin catalog

        spec = get_scenario(scenario)
    else:
        spec = scenario
    return [
        run_one_trial(spec, params, base_seed, i, record_trace, max_steps)
        for i in indices
    ]


class ExperimentRunner:
    """Fans a trial budget out over worker processes, deterministically.

    Parameters
    ----------
    workers:
        Worker-process count. ``1`` (the default) runs in-process.
    parallel:
        Force (``True``) or forbid (``False``) multiprocessing; ``None``
        derives it from ``workers > 1``. ``parallel=False`` with many
        workers is the test mode: same chunking, no processes.
    chunk_size:
        Trials per worker task; defaults to ~4 tasks per worker so slow
        chunks load-balance. Never affects results, only scheduling.
    record_trace:
        Forwarded to the executor; ``False`` (default) is the Monte-Carlo
        fast path.
    max_steps:
        Per-trial delivery budget override (``None`` = executor default).
    """

    def __init__(
        self,
        workers: int = 1,
        parallel: Optional[bool] = None,
        chunk_size: Optional[int] = None,
        record_trace: bool = False,
        max_steps: Optional[int] = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.parallel = parallel if parallel is not None else workers > 1
        self.chunk_size = chunk_size
        self.record_trace = record_trace
        self.max_steps = max_steps

    # -- internals -----------------------------------------------------

    def _chunks(self, trials: int) -> List[Tuple[int, ...]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, trials // (self.workers * 4) or 1)
        return [
            tuple(range(start, min(start + size, trials)))
            for start in range(0, trials, size)
        ]

    def _iter_chunk_results(
        self, spec: ScenarioSpec, params: Params, trials: int, base_seed: int
    ) -> Iterable[List[TrialOutcome]]:
        chunks = self._chunks(trials)
        payloads = [
            (
                # Ship *builtin* scenarios by name so workers resolve them
                # from their own catalog import instead of unpickling
                # arbitrary callables. User-registered and ad-hoc specs go
                # by value — a worker under the spawn/forkserver start
                # methods rebuilds only the builtin catalog, so a bare name
                # would not resolve there; shipping the spec just requires
                # its factories to be picklable when run in parallel.
                spec.name if _is_builtin(spec) else spec,
                params,
                base_seed,
                chunk,
                self.record_trace,
                self.max_steps,
            )
            for chunk in chunks
        ]
        if not self.parallel or self.workers == 1 or trials <= 1:
            for payload in payloads:
                yield _run_chunk(payload)
            return
        processes = min(self.workers, len(payloads))
        with multiprocessing.Pool(processes=processes) as pool:
            for chunk_result in pool.imap_unordered(_run_chunk, payloads):
                yield chunk_result

    # -- public API ----------------------------------------------------

    def run(
        self,
        scenario: ScenarioRef,
        trials: int,
        base_seed: int = 0,
        params: Optional[Mapping[str, Any]] = None,
        on_outcome: Optional[Callable[[TrialOutcome], None]] = None,
    ) -> ExperimentResult:
        """Run ``trials`` independent executions and fold the outcomes.

        ``on_outcome`` (if given) observes every trial as its chunk
        arrives — arrival order is nondeterministic under parallelism,
        but the folded result and the final ``outcomes`` list (sorted by
        trial index) are not.
        """
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        resolved = spec.resolve_params(params)
        if trials < 0:
            raise ConfigurationError(f"trials must be >= 0, got {trials}")
        started = time.perf_counter()
        distribution = OutcomeDistribution(n=spec.size(resolved), trials=trials)
        outcomes: List[TrialOutcome] = []
        success_count = 0
        for chunk_result in self._iter_chunk_results(
            spec, resolved, trials, base_seed
        ):
            for trial in chunk_result:
                distribution.counts[trial.outcome] += 1
                success_count += int(trial.success)
                outcomes.append(trial)
                if on_outcome is not None:
                    on_outcome(trial)
        outcomes.sort(key=lambda t: t.index)
        return ExperimentResult(
            scenario=spec.name,
            params=resolved,
            trials=trials,
            base_seed=base_seed,
            outcomes=outcomes,
            distribution=distribution,
            successes=proportion(success_count, trials),
            max_steps=self.max_steps,
            elapsed=time.perf_counter() - started,
        )


def _is_builtin(spec: ScenarioSpec) -> bool:
    from repro.experiments.catalog import BUILTIN_SCENARIO_NAMES
    from repro.experiments.scenario import _REGISTRY

    return spec.name in BUILTIN_SCENARIO_NAMES and _REGISTRY.get(spec.name) is spec


def run_scenario(
    scenario: ScenarioRef,
    trials: int,
    base_seed: int = 0,
    params: Optional[Mapping[str, Any]] = None,
    workers: int = 1,
    **runner_kwargs: Any,
) -> ExperimentResult:
    """One-shot convenience: build a runner and run one experiment."""
    runner = ExperimentRunner(workers=workers, **runner_kwargs)
    return runner.run(scenario, trials, base_seed=base_seed, params=params)
