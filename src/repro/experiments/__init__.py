"""Unified Monte-Carlo experiment engine.

Five layers, each usable on its own:

- **Scenarios** (:mod:`~repro.experiments.scenario`): a
  :class:`ScenarioSpec` names a (topology, protocol/attack, scheduler,
  parameters, success predicate) bundle; the registry maps names like
  ``"attack/cubic"`` to specs. The builtin catalog
  (:mod:`~repro.experiments.catalog`) registers every protocol and
  attack from the paper at import time.
- **Worker pool** (:mod:`~repro.experiments.pool`): a persistent,
  context-managed :class:`WorkerPool` shared by consecutive experiments
  — grid points, frontier probes, fuzz campaigns — so worker processes
  spawn once, not once per experiment; ``resolve_workers("auto")``
  derives a clamped count from the machine.
- **Runner** (:mod:`~repro.experiments.runner`): an
  :class:`ExperimentRunner` fans a trial budget out over the pool —
  trial ``i`` always derives its seed from ``(base_seed, i)`` alone, so
  results are identical at any worker count — and folds outcomes into
  distributions and Wilson-interval proportions as they stream back.
  Trials run with trace recording off (the executor's Monte-Carlo fast
  path); when per-trial outcomes aren't requested, workers fold their
  own chunks and ship only counters — and when they are, outcomes
  stream back in bounded packed chunks. An adaptive budget from the
  :mod:`~repro.experiments.budget` policy registry (``wilson-width``,
  ``relative-precision``, ``fail-rate-target``) can replace the fixed
  trial count with a deterministic batch-boundary stop.
- **Sweeps** (:mod:`~repro.experiments.sweep`): cartesian parameter
  grids over a scenario, one JSON-stable row per grid point; surfaced on
  the command line as ``python -m repro sweep``.
- **Campaigns** (:mod:`~repro.experiments.campaign`): a JSON manifest of
  ``(scenario | tag, grid, trials, base_seed)`` entries run against one
  resume store with grid-level parallelism — chunks from many grid
  points interleave in the shared pool, admitted in the order a
  :class:`PointScheduler` dictates (``longest-first`` shaves stragglers;
  the row set is schedule-invariant); surfaced as ``python -m repro
  campaign`` with ``--schedule`` and a ``--dry-run`` plan listing.
- **Results store** (:mod:`~repro.experiments.store`): the same rows in
  SQLite (WAL) instead of JSONL — resume keys unique-indexed, timed-out
  markers superseded transactionally, queries indexed by (scenario,
  params). ``sweep``/``campaign --out results.db`` write to it through
  the :class:`StoreRowWriter` adapter, ``python -m repro db import``
  converts existing JSONL files, and ``python -m repro serve``
  (:mod:`repro.serve`) answers precision queries from it.

Quick taste::

    from repro.experiments import run_scenario

    result = run_scenario(
        "attack/cubic", trials=200, params={"n": 111, "k": 6}, workers=4
    )
    print(result.successes)          # forcing rate with Wilson interval
    print(result.distribution.counts)
"""

from repro.experiments.budget import (
    BudgetPolicy,
    FailRateTargetPolicy,
    OutcomeRateTargetPolicy,
    RelativePrecisionPolicy,
    WilsonWidthPolicy,
    as_policy,
    policy_names,
    register_policy,
)
from repro.experiments.campaign import (
    CampaignDeadline,
    CampaignPoint,
    CostModel,
    PointScheduler,
    PointState,
    expand_manifest,
    load_cost_model,
    load_manifest,
    retry_identity,
    row_retry_identity,
    run_campaign,
    schedule_names,
    scheduled_cost,
    slice_ranges,
    timing_record,
    timings_path,
)
from repro.experiments.chunking import (
    CALIBRATION_TRIALS,
    MIN_CHUNK_SECONDS,
    TARGET_CHUNK_SECONDS,
    AdaptiveChunker,
)
from repro.experiments.coordinator import (
    DEFAULT_LEASE_TRIALS,
    DEFAULT_LEASE_TTL,
    CampaignCoordinator,
    make_coordinator_server,
    serve_coordinator,
)
from repro.experiments.node import CoordinatorClient, lease_fold, run_node
from repro.experiments.pool import WorkerPool, resolve_workers
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    all_scenarios,
    forced_target,
    get_scenario,
    known_tags,
    no_valid_ids,
    punished,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    TrialOutcome,
    run_one_trial,
    run_scenario,
    run_traced_trial,
    trial_registry,
)
from repro.experiments.store import (
    ResultStore,
    StoreRowWriter,
    is_store_path,
    params_blob,
)
from repro.experiments.sweep import (
    RowWriter,
    canonical_params,
    classify_row_line,
    coerce_param,
    expand_grid,
    fsync_directory,
    load_completed_keys,
    resume_key,
    row_resume_key,
    sweep_scenario,
)

# Importing the catalog registers the builtin scenarios as a side effect;
# keep it last so the registry machinery above is fully initialised.
from repro.experiments import catalog  # noqa: F401  (import for effect)

__all__ = [
    "AdaptiveChunker",
    "BudgetPolicy",
    "CALIBRATION_TRIALS",
    "CampaignCoordinator",
    "CampaignDeadline",
    "CampaignPoint",
    "CoordinatorClient",
    "CostModel",
    "DEFAULT_LEASE_TRIALS",
    "DEFAULT_LEASE_TTL",
    "MIN_CHUNK_SECONDS",
    "TARGET_CHUNK_SECONDS",
    "FailRateTargetPolicy",
    "OutcomeRateTargetPolicy",
    "PointScheduler",
    "PointState",
    "RelativePrecisionPolicy",
    "RowWriter",
    "WilsonWidthPolicy",
    "WorkerPool",
    "as_policy",
    "expand_manifest",
    "lease_fold",
    "load_cost_model",
    "load_manifest",
    "make_coordinator_server",
    "policy_names",
    "register_policy",
    "resolve_workers",
    "retry_identity",
    "row_retry_identity",
    "run_campaign",
    "run_node",
    "schedule_names",
    "scheduled_cost",
    "serve_coordinator",
    "slice_ranges",
    "timing_record",
    "timings_path",
    "Params",
    "ScenarioSpec",
    "all_scenarios",
    "forced_target",
    "get_scenario",
    "known_tags",
    "no_valid_ids",
    "punished",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
    "ExperimentResult",
    "ExperimentRunner",
    "TrialOutcome",
    "run_one_trial",
    "run_scenario",
    "run_traced_trial",
    "trial_registry",
    "ResultStore",
    "StoreRowWriter",
    "canonical_params",
    "classify_row_line",
    "coerce_param",
    "expand_grid",
    "fsync_directory",
    "is_store_path",
    "load_completed_keys",
    "params_blob",
    "resume_key",
    "row_resume_key",
    "sweep_scenario",
]
