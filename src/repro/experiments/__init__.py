"""Unified Monte-Carlo experiment engine.

Three layers, each usable on its own:

- **Scenarios** (:mod:`~repro.experiments.scenario`): a
  :class:`ScenarioSpec` names a (topology, protocol/attack, scheduler,
  parameters, success predicate) bundle; the registry maps names like
  ``"attack/cubic"`` to specs. The builtin catalog
  (:mod:`~repro.experiments.catalog`) registers every protocol and
  attack from the paper at import time.
- **Runner** (:mod:`~repro.experiments.runner`): an
  :class:`ExperimentRunner` fans a trial budget out over
  ``multiprocessing`` workers — trial ``i`` always derives its seed from
  ``(base_seed, i)`` alone, so results are identical at any worker count
  — and folds outcomes into distributions and Wilson-interval
  proportions as they stream back. Trials run with trace recording off,
  the executor's Monte-Carlo fast path.
- **Sweeps** (:mod:`~repro.experiments.sweep`): cartesian parameter
  grids over a scenario, one JSON-stable row per grid point; surfaced on
  the command line as ``python -m repro sweep``.

Quick taste::

    from repro.experiments import run_scenario

    result = run_scenario(
        "attack/cubic", trials=200, params={"n": 111, "k": 6}, workers=4
    )
    print(result.successes)          # forcing rate with Wilson interval
    print(result.distribution.counts)
"""

from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    all_scenarios,
    forced_target,
    get_scenario,
    no_valid_ids,
    punished,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    TrialOutcome,
    run_one_trial,
    run_scenario,
    run_traced_trial,
    trial_registry,
)
from repro.experiments.sweep import (
    expand_grid,
    load_completed_keys,
    resume_key,
    row_resume_key,
    sweep_scenario,
)

# Importing the catalog registers the builtin scenarios as a side effect;
# keep it last so the registry machinery above is fully initialised.
from repro.experiments import catalog  # noqa: F401  (import for effect)

__all__ = [
    "Params",
    "ScenarioSpec",
    "all_scenarios",
    "forced_target",
    "get_scenario",
    "no_valid_ids",
    "punished",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
    "ExperimentResult",
    "ExperimentRunner",
    "TrialOutcome",
    "run_one_trial",
    "run_scenario",
    "run_traced_trial",
    "trial_registry",
    "expand_grid",
    "load_completed_keys",
    "resume_key",
    "row_resume_key",
    "sweep_scenario",
]
