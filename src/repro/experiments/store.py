"""SQLite results store: the resume contract as a queryable database.

JSONL ``--out`` files are the write-path artifact — append-only,
crash-tolerant, diffable — but every *consumer* of the reproduction has
been paying a linear scan (and a full re-parse) to answer "is this point
done?" or "what is the forcing rate at n=64?". A :class:`ResultStore`
keeps the same rows in SQLite so those questions are index lookups,
while preserving every contract the JSONL store established:

- **The resume key is the schema's spine.** Each completed row is
  stored under the exact :func:`~repro.experiments.sweep.resume_key`
  string the JSONL loaders compute, unique-indexed — so
  :meth:`ResultStore.completed_keys` of an imported file is *identical*
  to :func:`~repro.experiments.sweep.load_completed_keys` of the same
  file, and a campaign resuming against a ``.db`` target skips exactly
  the points it would have skipped against the JSONL original.
- **Timed-out markers keep their non-identity.** Rows with
  ``"timed_out": true`` have no resume key (column NULL — SQLite's
  UNIQUE index admits any number of NULLs), so they can never satisfy a
  resume lookup; they are stored under their
  :func:`~repro.experiments.campaign.retry_identity` instead, and the
  marker lifecycle the CLI implements line-by-line for JSONL
  (:``_hold_back_stale_timed_out``) becomes two indexed statements: a
  fresh completed row deletes its stale markers, and a marker arriving
  after its point already completed is dropped as superseded.
- **Lossless.** The original row JSON rides along in the ``row``
  column, so nothing the JSONL format carried is lost to the schema —
  export is ``SELECT row``.
- **Durable and concurrent.** WAL journal mode plus ``synchronous=FULL``
  gives the same survive-kill-9 guarantee as :class:`RowWriter`'s
  per-append fsync, and lets one writer (a campaign streaming into the
  store) coexist with any number of readers (the estimate service in
  :mod:`repro.serve`) without either blocking the other.

:class:`StoreRowWriter` adapts the store to the :class:`RowWriter`
interface (``append``/``write_lines``/``close``/context manager), which
is how ``sweep --out results.db`` and ``campaign --out results.db``
target the database without the emit loop knowing which backend it has.
"""

import json
import os
import sqlite3
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
)

from repro.experiments.campaign import retry_identity, row_retry_identity
from repro.experiments.sweep import (
    canonical_params,
    classify_row_line,
    fsync_directory,
    row_resume_key,
)
from repro.util.errors import ConfigurationError

#: File extensions routed to the SQLite backend by ``--out``/``--db``.
STORE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    id          INTEGER PRIMARY KEY,
    resume_key  TEXT,
    retry_key   TEXT NOT NULL,
    scenario    TEXT NOT NULL,
    params      TEXT NOT NULL,
    trials      INTEGER,
    base_seed   INTEGER,
    max_steps   INTEGER,
    successes   INTEGER,
    outcomes    TEXT,
    budget      TEXT,
    steps_total INTEGER,
    timed_out   INTEGER NOT NULL DEFAULT 0,
    created     REAL NOT NULL,
    row         TEXT NOT NULL
);
CREATE UNIQUE INDEX IF NOT EXISTS results_resume_key
    ON results(resume_key);
CREATE INDEX IF NOT EXISTS results_point ON results(scenario, params);
CREATE INDEX IF NOT EXISTS results_retry ON results(retry_key);
"""


def is_store_path(path: Optional[str]) -> bool:
    """Whether an ``--out``/``--db`` path names a SQLite store (by
    suffix) rather than a JSONL file."""
    return bool(path) and path.lower().endswith(STORE_SUFFIXES)


def params_blob(params: Mapping[str, Any]) -> str:
    """The indexed ``params`` column value: canonical sorted JSON.

    Built on :func:`~repro.experiments.sweep.canonical_params`, so a
    lookup spelled ``n=16.0`` finds rows stored under ``n=16`` — the
    same numeric-aliasing rule resume keys follow.
    """
    return json.dumps(canonical_params(params), sort_keys=True)


class ResultStore:
    """One SQLite results database (see the module docstring).

    Opens (and on first use creates) the database at ``path``;
    ``read_only=True`` requires the file to exist and refuses every
    mutation with :class:`~repro.util.errors.ConfigurationError` — the
    mode the estimate service's ``--read-only`` flag stands on. The
    connection is shared across threads behind one lock
    (``check_same_thread=False``), because the HTTP layer in
    :mod:`repro.serve` answers each request on its own thread.
    """

    #: Lock discipline, checked by ``python -m repro lint`` (R201):
    #: sqlite3 connections are not concurrency-safe under
    #: ``check_same_thread=False`` — ours, uniquely, is shared across
    #: the HTTP threads, so every use holds the store lock.
    _GUARDED_BY = {"_conn": "_lock"}

    def __init__(self, path: str, read_only: bool = False, timeout: float = 30.0):
        self.path = path
        self.read_only = read_only
        #: Optional callable fed every :meth:`append_row` outcome string
        #: ("stored"/"duplicate"/"marker"/"superseded") — the metrics
        #: endpoints hang append counters here. Observability only:
        #: called outside the store lock, after the row is durable.
        self.observer: Optional[Callable[[str], None]] = None
        if read_only and not os.path.exists(path):
            raise ConfigurationError(
                f"results store {path!r} does not exist (read-only mode "
                "never creates one)"
            )
        created = not os.path.exists(path)
        try:
            self._conn = sqlite3.connect(
                path, timeout=timeout, check_same_thread=False
            )
        except sqlite3.Error as exc:
            raise ConfigurationError(
                f"cannot open results store {path!r}: {exc}"
            ) from None
        self._lock = threading.Lock()
        try:
            cursor = self._conn.cursor()
            # Writers queue behind the busy handler instead of failing
            # fast: a campaign appending while the service reads is the
            # designed steady state, not a conflict.
            cursor.execute("PRAGMA busy_timeout = 5000")
            if not read_only:
                # WAL: readers never block the writer and vice versa.
                # synchronous=FULL: a committed row survives power loss
                # — the same promise RowWriter's per-append fsync makes.
                cursor.execute("PRAGMA journal_mode = WAL")
                cursor.execute("PRAGMA synchronous = FULL")
                cursor.executescript(_SCHEMA)
                self._conn.commit()
                if created:
                    # Same discipline as RowWriter: a freshly created
                    # database is only durable once its directory entry
                    # is.
                    fsync_directory(os.path.dirname(os.path.abspath(path)))
            cursor.close()
        except sqlite3.Error as exc:
            # Not-a-database files, foreign schemas, truncated stores:
            # surface them as the one configuration error callers
            # already handle instead of a backend-specific exception.
            self._conn.close()
            raise ConfigurationError(
                f"{path!r} is not a usable results store: {exc}"
            ) from None

    # -- writes --------------------------------------------------------

    def append_row(self, row: Mapping[str, Any]) -> str:
        """Store one row, returning what happened to it.

        ``"stored"``
            A completed row was inserted (any stale timed-out marker for
            the same point was deleted — the retry it announced is this
            row).
        ``"duplicate"``
            A completed row with the same resume key already exists; the
            store keeps the first copy (rows are deterministic, so the
            copies are interchangeable).
        ``"marker"``
            A timed-out marker was recorded (replacing any previous
            marker for the same point — the newest partial count wins,
            exactly like the CLI's write-back).
        ``"superseded"``
            A timed-out marker arrived for a point that already has a
            completed row; the marker is dropped — the retry it
            announces already happened.

        Malformed rows raise the same exceptions the tolerant line
        loaders catch (:class:`~repro.util.errors.ConfigurationError`,
        ``KeyError``, ``TypeError``).
        """
        self._writable()
        timed_out = bool(row.get("timed_out")) if isinstance(row, Mapping) else False
        if timed_out:
            key = None
        else:
            key = row_resume_key(row)  # raises on markers and damage
        retry = row_retry_identity(row)
        values = (
            key,
            retry,
            row["scenario"],
            params_blob(row["params"]),
            row.get("trials"),
            row.get("base_seed"),
            row.get("max_steps"),
            row.get("successes"),
            json.dumps(row.get("outcomes"), sort_keys=True)
            if row.get("outcomes") is not None
            else None,
            json.dumps(row.get("budget"), sort_keys=True)
            if row.get("budget") is not None
            else None,
            row.get("steps_total"),
            int(timed_out),
            # repro-lint: allow[R101] created-marker timestamp: scheduling metadata for the timed-out lifecycle, never part of row identity
            time.time(),
            json.dumps(row, sort_keys=True),
        )
        outcome = None
        with self._lock, self._conn:
            cursor = self._conn.cursor()
            if timed_out:
                cursor.execute(
                    "SELECT 1 FROM results WHERE retry_key = ? "
                    "AND timed_out = 0 LIMIT 1",
                    (retry,),
                )
                if cursor.fetchone() is not None:
                    outcome = "superseded"
                else:
                    cursor.execute(
                        "DELETE FROM results "
                        "WHERE retry_key = ? AND timed_out = 1",
                        (retry,),
                    )
                    cursor.execute(_INSERT, values)
                    outcome = "marker"
            else:
                cursor.execute(
                    "DELETE FROM results WHERE retry_key = ? AND timed_out = 1",
                    (retry,),
                )
                cursor.execute(_INSERT_OR_IGNORE, values)
                outcome = "stored" if cursor.rowcount else "duplicate"
        if self.observer is not None:
            self.observer(outcome)
        return outcome

    def import_lines(
        self,
        lines: Iterable[str],
        on_skip: Optional[Callable[[int, str, str], None]] = None,
    ) -> Dict[str, int]:
        """Lossless JSONL import: every line of a ``--out`` file.

        Reuses :func:`~repro.experiments.sweep.classify_row_line`'s
        tolerance — torn trailing writes and foreign content are
        *skipped* (reported to ``on_skip`` with reason ``"malformed"``,
        exactly as :func:`load_completed_keys` would), completed rows
        are stored under their resume keys, and timed-out markers are
        imported as markers (so a resume against the database retries
        exactly what a resume against the file would). Returns a count
        per :meth:`append_row` outcome plus ``"skipped"``.
        """
        report = {
            "stored": 0,
            "duplicate": 0,
            "marker": 0,
            "superseded": 0,
            "skipped": 0,
        }
        for number, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            row, _key, reason = classify_row_line(line)
            if reason == "malformed":
                report["skipped"] += 1
                if on_skip is not None:
                    on_skip(number, line, "malformed")
                continue
            try:
                report[self.append_row(row)] += 1
            except (ConfigurationError, KeyError, TypeError):
                # A marker whose identity fields are themselves damaged
                # (e.g. a torn budget object): nothing to index it by.
                report["skipped"] += 1
                if on_skip is not None:
                    on_skip(number, line, "malformed")
        return report

    # -- reads ---------------------------------------------------------

    def completed_keys(self) -> Set[str]:
        """Resume keys of every completed row — the store's answer to
        :func:`~repro.experiments.sweep.load_completed_keys`. Markers
        (NULL keys) are excluded, so their points re-run, as always."""
        return {
            key
            for (key,) in self._query(
                "SELECT resume_key FROM results WHERE resume_key IS NOT NULL"
            )
        }

    def get(self, resume_key: str) -> Optional[Dict[str, Any]]:
        """The completed row stored under ``resume_key``, or ``None``."""
        found = self._query(
            "SELECT row FROM results WHERE resume_key = ?", (resume_key,)
        )
        return json.loads(found[0][0]) if found else None

    def lookup(
        self, scenario: str, params: Mapping[str, Any]
    ) -> List[Dict[str, Any]]:
        """Every completed row for one (scenario, canonical params)
        point, whatever its trials/seed/budget — the estimate service's
        cache probe."""
        rows = self._query(
            "SELECT row FROM results WHERE scenario = ? AND params = ? "
            "AND timed_out = 0 ORDER BY id",
            (scenario, params_blob(params)),
        )
        return [json.loads(blob) for (blob,) in rows]

    def export_lines(self) -> Iterator[str]:
        """Every stored row back as JSONL lines, in insertion order.

        The exact inverse of :meth:`import_lines`: the ``row`` column is
        the lossless JSON blob of what arrived, so the exported file is
        resume-loader-compatible — completed rows keep their resume
        keys, timed-out markers keep their ``"timed_out": true`` shape
        (so :func:`~repro.experiments.sweep.load_completed_keys` skips
        them and a resume retries their points, exactly as against the
        original ``--out`` file). ``export → import`` into a fresh
        store reproduces the key set, which is what makes
        store-to-store merges a pipe.
        """
        for (blob,) in self._query("SELECT row FROM results ORDER BY id"):
            yield blob

    def pending_retries(self) -> Set[str]:
        """Retry identities of every stored timed-out marker."""
        return {
            key
            for (key,) in self._query(
                "SELECT retry_key FROM results WHERE timed_out = 1"
            )
        }

    def stats(self) -> Dict[str, int]:
        """Row counts: completed rows, timed-out markers, scenarios."""
        completed, markers, scenarios = self._query(
            "SELECT SUM(timed_out = 0), SUM(timed_out = 1), "
            "COUNT(DISTINCT scenario) FROM results"
        )[0]
        return {
            "completed": completed or 0,
            "timed_out": markers or 0,
            "scenarios": scenarios or 0,
        }

    def _query(self, sql: str, args: tuple = ()) -> list:
        with self._lock:
            try:
                return self._conn.execute(sql, args).fetchall()
            except sqlite3.Error as exc:
                # A read-only open skips the DDL, so a foreign SQLite
                # file surfaces here instead of at construction.
                raise ConfigurationError(
                    f"{self.path!r} is not a usable results store: {exc}"
                ) from None

    # -- lifecycle -----------------------------------------------------

    def _writable(self) -> None:
        if self.read_only:
            raise ConfigurationError(
                f"results store {self.path!r} is open read-only"
            )

    def close(self) -> None:
        # Under the lock: closing mid-_query on another HTTP thread
        # turns that thread's cursor into a ProgrammingError; waiting
        # for the in-flight statement is the whole point of the lock.
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_COLUMNS = (
    "resume_key, retry_key, scenario, params, trials, base_seed, "
    "max_steps, successes, outcomes, budget, steps_total, timed_out, "
    "created, row"
)
_PLACEHOLDERS = ", ".join("?" * 14)
_INSERT = f"INSERT INTO results ({_COLUMNS}) VALUES ({_PLACEHOLDERS})"
_INSERT_OR_IGNORE = (
    f"INSERT OR IGNORE INTO results ({_COLUMNS}) VALUES ({_PLACEHOLDERS})"
)


class StoreRowWriter:
    """:class:`~repro.experiments.sweep.RowWriter`-compatible adapter.

    ``sweep --out results.db`` / ``campaign --out results.db`` hand
    their row lines to this instead of a JSONL appender: each line is
    parsed back into its row and stored through
    :meth:`ResultStore.append_row`, so marker supersession and duplicate
    suppression happen at write time instead of in a file-rewrite pass.
    Appends are transactionally durable (WAL + ``synchronous=FULL``), so
    there is no staging file and nothing to promote — the database *is*
    the checkpoint at every instant.
    """

    def __init__(self, path: str, store: Optional[ResultStore] = None):
        self.path = path
        self._store = store if store is not None else ResultStore(path)

    def append(self, line: str) -> None:
        """Store one row line (the JSON text a JSONL writer would
        append)."""
        self._store.append_row(json.loads(line))

    def write_lines(self, lines: Iterable[str]) -> None:
        """Bulk path: store every non-blank line."""
        for line in lines:
            line = line.strip()
            if line:
                self.append(line)

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "StoreRowWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
