"""Builtin scenario catalog: every experiment in the paper, by name.

Importing this module (which :mod:`repro.experiments` does eagerly)
registers one scenario per honest ring protocol and one per adversarial
deviation, under the ``honest/<protocol>`` / ``attack/<name>``
convention, then pulls in the subsystem catalogs (``sync/``, ``tree/``,
``cointoss/``, ``fullinfo/``, ``blocks/``, ``fuzz/``, ``frontier/``,
``placement/`` — each a ``scenarios`` module inside its own package) so
``scenario_names()`` enumerates the whole paper. All builder functions
are module-level so the specs resolve identically in any process that
imports the package — the contract the parallel
:class:`~repro.experiments.runner.ExperimentRunner` relies on.

========================  ==================================  ===========
Scenario                  Paper reference                     Topology
========================  ==================================  ===========
honest/basic-lead         Appendix B baseline                 ring
honest/alead-uni          Section 3 / Appendix A              ring
honest/phase-async        Section 6 / Appendix E.3            ring
honest/async-complete     Section 1.1 (Shamir baseline)       complete
honest/wakeup-alead       Afek et al. wake-up block           ring
attack/basic-cheat        Claim B.1                           ring
attack/equal-spacing      Lemma 4.1 / Theorem 4.2             ring
attack/random-location    Theorem C.1                         ring
attack/cubic              Theorem 4.3                         ring
attack/partial-sum        Appendix E.4                        ring
attack/phase-rushing      Remark after Theorem 6.1            ring
attack/shamir-pool        Section 1.1 (sharp threshold)       complete
========================  ==================================  ===========

(Run ``python -m repro scenarios`` for the full, registry-generated
listing including the subsystem entries.)

Parameters left at ``None`` (e.g. ``k``) are filled with the same
size-derived defaults the CLI has always used, so ``sweep`` grid points
only need to pin what they actually vary.
"""

import math
import random
from typing import Hashable, Mapping

from repro.attacks import (
    RingPlacement,
    basic_cheat_protocol,
    cubic_attack_protocol,
    equal_spacing_attack_protocol,
    partial_sum_attack_protocol,
    phase_rushing_attack_protocol,
    random_location_attack_protocol,
    recommended_probability,
    shamir_pooling_attack_protocol,
)
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    forced_target,
    register_scenario,
    ring_topology,
    scenario_names,
)
from repro.protocols import (
    alead_uni_protocol,
    async_complete_protocol,
    basic_lead_protocol,
    default_threshold,
    phase_async_protocol,
    wakeup_alead_protocol,
)
from repro.sim.strategy import Strategy
from repro.sim.topology import Topology, complete_graph


def complete_topology(params: Params) -> Topology:
    """Complete graph on ``params['n']`` processors."""
    return complete_graph(params["n"])


# -- honest protocols --------------------------------------------------


def _honest_basic_lead(topo, params, rng):
    return basic_lead_protocol(topo)


def _honest_alead_uni(topo, params, rng):
    return alead_uni_protocol(topo)


def _honest_phase_async(topo, params, rng):
    return phase_async_protocol(topo)


def _honest_async_complete(topo, params, rng):
    return async_complete_protocol(topo)


def _honest_wakeup_alead(topo, params, rng):
    return wakeup_alead_protocol(topo)


# -- attacks -----------------------------------------------------------


def _attack_basic_cheat(topo, params, rng):
    return basic_cheat_protocol(
        topo, cheater=params["cheater"], target=params["target"]
    )


def _attack_equal_spacing(topo, params, rng):
    n = len(topo)
    k = params["k"] if params["k"] else math.isqrt(n)
    placement = RingPlacement.equal_spacing(n, k)
    return equal_spacing_attack_protocol(topo, placement, params["target"])


def _attack_random_location(
    topo: Topology, params: Params, rng: random.Random
) -> Mapping[Hashable, Strategy]:
    """Theorem C.1: each processor defects i.i.d.; placement is per-trial.

    The coalition is drawn from the trial's private ``scenario`` stream,
    so the *same* trial index always produces the same placement while
    different trials explore independent ones. When the draw yields no
    adversary (or an adversarial origin), the trial degenerates to an
    honest A-LEADuni run — which then simply does not force the target,
    exactly how the appendix accounts those executions.
    """
    n = len(topo)
    p = params["p"] if params["p"] is not None else recommended_probability(n)
    placement = RingPlacement.random_locations(n, p, rng)
    if placement is None or not placement.origin_honest:
        return alead_uni_protocol(topo)
    return random_location_attack_protocol(
        topo, placement, params["target"], window=params["window"]
    )


def _attack_cubic(topo, params, rng):
    n = len(topo)
    k = params["k"] if params["k"] else max(3, round(2 * n ** (1 / 3)))
    placement = RingPlacement.cubic(n, k)
    return cubic_attack_protocol(topo, placement, params["target"])


def _attack_partial_sum(topo, params, rng):
    return partial_sum_attack_protocol(
        topo, params["k"] if params["k"] else 4, params["target"]
    )


def _attack_phase_rushing(topo, params, rng):
    n = len(topo)
    k = params["k"] if params["k"] else math.isqrt(n) + 3
    return phase_rushing_attack_protocol(topo, k, params["target"])


def _attack_shamir_pool(topo, params, rng):
    n = len(topo)
    k = params["k"] if params["k"] else default_threshold(n)
    coalition = list(range(2, 2 + k))
    return shamir_pooling_attack_protocol(topo, coalition, params["target"])


def _register_builtins() -> None:
    for name, desc, builder, n in (
        ("basic-lead", "Basic-LEAD honestly on a ring", _honest_basic_lead, 16),
        ("alead-uni", "A-LEADuni honestly on a ring", _honest_alead_uni, 16),
        (
            "phase-async",
            "PhaseAsyncLead honestly on a ring",
            _honest_phase_async,
            16,
        ),
        (
            "async-complete",
            "Shamir-sharing election on a complete graph",
            _honest_async_complete,
            8,
        ),
        (
            "wakeup-alead",
            "wake-up phase + A-LEADuni on a ring (Afek et al. block)",
            _honest_wakeup_alead,
            16,
        ),
    ):
        register_scenario(
            ScenarioSpec(
                name=f"honest/{name}",
                description=desc,
                build_topology=(
                    complete_topology
                    if name == "async-complete"
                    else ring_topology
                ),
                build_protocol=builder,
                defaults={"n": n},
                tags=("honest",),
            )
        )

    ring_attacks = (
        (
            "basic-cheat",
            "single wait-and-cancel cheater controls Basic-LEAD (Claim B.1)",
            _attack_basic_cheat,
            {"n": 64, "cheater": 2, "target": 1},
        ),
        (
            "equal-spacing",
            "rushing coalition, evenly spaced (Lemma 4.1 / Thm 4.2)",
            _attack_equal_spacing,
            {"n": 64, "k": None, "target": 1},
        ),
        (
            "random-location",
            "i.i.d.-located rushing coalition (Thm C.1)",
            _attack_random_location,
            # Default n sits in the regime where the paper proves the
            # attack wins w.h.p.; at small n the density p = sqrt(8 ln n/n)
            # leaves segments too long and most trials get punished.
            {"n": 256, "p": None, "window": 3, "target": 1},
        ),
        (
            "cubic",
            "staircase placement forcing with k ~ 2n^(1/3) (Thm 4.3)",
            _attack_cubic,
            {"n": 111, "k": None, "target": 1},
        ),
        (
            "partial-sum",
            "covert-channel attack on the sum-output variant (App. E.4)",
            _attack_partial_sum,
            {"n": 64, "k": None, "target": 1},
        ),
        (
            "phase-rushing",
            "rushing + brute-forced f vs PhaseAsyncLead (Rem. after 6.1)",
            _attack_phase_rushing,
            {"n": 64, "k": None, "target": 1},
        ),
    )
    for name, desc, builder, defaults in ring_attacks:
        register_scenario(
            ScenarioSpec(
                name=f"attack/{name}",
                description=desc,
                build_topology=ring_topology,
                build_protocol=builder,
                defaults=defaults,
                success=forced_target,
                tags=("attack",),
            )
        )

    register_scenario(
        ScenarioSpec(
            name="attack/shamir-pool",
            description="ceil(n/2) pool reconstructs early and steers",
            build_topology=complete_topology,
            build_protocol=_attack_shamir_pool,
            defaults={"n": 8, "k": None, "target": 1},
            success=forced_target,
            tags=("attack",),
        )
    )


_register_builtins()

# The subsystem catalogs: each module registers its specs at import time,
# extending the registry beyond the ring protocols/attacks to the whole
# paper — the lockstep sync engine, the tree games, the coin-toss
# reductions, the full-information comparators, the building-block
# applications, the fuzzer, and the frontier scan families. Imported
# here (not from the subsystems' own __init__) so registration happens
# exactly once, in every process that can run experiments.
import repro.analysis.scenarios  # noqa: E402,F401  (import for effect)
import repro.blocks.scenarios  # noqa: E402,F401  (import for effect)
import repro.cointoss.scenarios  # noqa: E402,F401  (import for effect)
import repro.fullinfo.scenarios  # noqa: E402,F401  (import for effect)
import repro.sync.scenarios  # noqa: E402,F401  (import for effect)
import repro.testing.scenarios  # noqa: E402,F401  (import for effect)
import repro.trees.scenarios  # noqa: E402,F401  (import for effect)

#: Names every process rebuilds on ``import repro.experiments`` — the set
#: the parallel runner may ship across process boundaries by name alone
#: (snapshotted right after builtin registration, before any user
#: scenarios can be added).
BUILTIN_SCENARIO_NAMES = frozenset(scenario_names())
