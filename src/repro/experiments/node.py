"""The runner node: lease trial ranges, run them locally, report folds.

``python -m repro node --join HOST:PORT --workers N`` is the worker
half of the distributed campaign (see
:mod:`repro.experiments.coordinator`): register once, then loop
``lease → run → report`` until the coordinator answers ``done``. Each
lease is a ``(point, [start, end))`` trial range; the node builds the
same chunk payloads the single-host runner would
(:func:`~repro.experiments.runner.chunk_payloads` over its local
:class:`~repro.experiments.pool.WorkerPool`), folds the chunk results
into commutative counters, and reports ``(counts, successes,
steps_total, trials, elapsed)``. Outcome keys cross the wire as
``str(outcome)`` — exactly the stringification
:meth:`ExperimentResult.to_row` applies — so the coordinator's fold
and the rows it emits are byte-identical to a single-host run.

Failure model: the node is disposable. Connection errors are retried
with backoff up to ``--retries`` consecutive failures (a coordinator
restart mid-campaign looks like this); a failed report is abandoned —
the lease expires coordinator-side and the range is re-leased, and
determinism guarantees the retry folds the same numbers. ``kill -9``
needs no cleanup for the same reason.
"""

import json
import socket
import sys
import time
import urllib.error
import urllib.request
from collections import Counter
from typing import Any, Dict, Mapping, Optional

from repro.experiments.chunking import AdaptiveChunker
from repro.experiments.pool import WorkerCount, WorkerPool
from repro.experiments.runner import _run_chunk_folded, chunk_payloads
from repro.experiments.scenario import get_scenario
from repro.util.errors import ConfigurationError

#: Seconds between empty lease polls (every range is out on lease, or
#: the active points are between batch barriers).
DEFAULT_POLL_SECONDS = 0.2


class CoordinatorClient:
    """A minimal JSON-POST client for the coordinator protocol."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        if "://" not in base_url:
            base_url = "http://" + base_url
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def post(self, path: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """POST ``payload`` as JSON; returns the parsed response object.

        Raises :class:`ConfigurationError` on a 4xx (a protocol bug —
        retrying cannot help) and ``OSError`` on connection trouble
        (the retry loop's signal)."""
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error")
            except Exception:
                detail = None
            raise ConfigurationError(
                f"coordinator rejected {path}: "
                f"{detail or f'HTTP {error.code}'}"
            ) from None
        except urllib.error.URLError as error:
            reason = error.reason
            if isinstance(reason, OSError):
                raise reason
            raise OSError(str(reason)) from None


def lease_fold(
    lease: Mapping[str, Any],
    pool: WorkerPool,
    chunker: Optional[AdaptiveChunker] = None,
) -> Dict[str, Any]:
    """Run one lease's trial range and return its report payload.

    Pure with respect to the wire: everything network-related lives in
    :func:`run_node`, so tests drive a coordinator with this function
    in-process and the byte-identity contract is pinned without HTTP.
    """
    spec = get_scenario(lease["scenario"])
    params = spec.resolve_params(dict(lease.get("params") or {}))
    start, end = int(lease["start"]), int(lease["end"])
    payloads = chunk_payloads(
        spec,
        params,
        int(lease["base_seed"]),
        range(start, end),
        False,
        lease.get("max_steps"),
        workers=pool.workers,
        chunker=chunker,
    )
    counts: Counter = Counter()
    successes = steps_total = trials = 0
    started = time.perf_counter()
    for fold in pool.imap_unordered(_run_chunk_folded, payloads):
        chunk_counts, chunk_successes, chunk_steps, chunk_trials = fold[:4]
        for outcome, count in chunk_counts.items():
            # str(outcome): the same stringification to_row applies, so
            # the coordinator's JSON-keyed fold matches a local fold.
            counts[str(outcome)] += count
        successes += chunk_successes
        steps_total += chunk_steps
        trials += chunk_trials
        if chunker is not None and len(fold) > 4:
            chunker.observe(spec.name, chunk_trials, fold[4])
    return {
        "lease": lease.get("lease"),
        "point": lease["point"],
        "start": start,
        "end": end,
        "counts": dict(counts),
        "successes": successes,
        "steps_total": steps_total,
        "trials": trials,
        "elapsed": round(time.perf_counter() - started, 6),
    }


def run_node(
    join: str,
    workers: WorkerCount = 1,
    poll: float = DEFAULT_POLL_SECONDS,
    name: Optional[str] = None,
    retries: int = 30,
    retry_delay: float = 1.0,
    verbose: bool = False,
) -> int:
    """``python -m repro node``: serve leases until the campaign is done.

    Returns 0 when the coordinator reports completion, 1 after
    ``retries`` consecutive connection failures (the coordinator is
    gone for good)."""
    client = CoordinatorClient(join)
    pool = WorkerPool(workers)
    chunker = AdaptiveChunker()
    node_id: Optional[str] = None
    failures = 0
    if name is None:
        name = socket.gethostname().split(".")[0] or None

    def log(message: str) -> None:
        if verbose:
            print(f"[node] {message}", file=sys.stderr)

    try:
        while True:
            try:
                if node_id is None:
                    answer = client.post(
                        "/register", {"name": name, "workers": pool.workers}
                    )
                    node_id = answer["node"]
                    log(
                        f"registered as {node_id} "
                        f"(lease_trials={answer.get('lease_trials')})"
                    )
                answer = client.post("/lease", {"node": node_id})
            except OSError as exc:
                failures += 1
                if failures > retries:
                    print(
                        f"node: giving up after {failures} connection "
                        f"failures: {exc}",
                        file=sys.stderr,
                    )
                    return 1
                time.sleep(retry_delay)
                continue
            failures = 0
            if answer.get("done"):
                log("campaign complete")
                return 0
            leases = answer.get("leases") or []
            if not leases:
                time.sleep(poll)
                continue
            for lease in leases:
                log(
                    f"lease {lease.get('lease')}: {lease.get('scenario')} "
                    f"[{lease.get('start')}, {lease.get('end')})"
                )
                report = lease_fold(lease, pool, chunker)
                report["node"] = node_id
                try:
                    client.post("/report", report)
                except OSError as exc:
                    # The lease expires and re-leases; determinism makes
                    # the retry's fold identical, so losing this report
                    # costs wall-clock only.
                    log(f"report failed ({exc}); lease will be retried")
    finally:
        pool.close()
