"""Parameter-grid sweeps over registered scenarios, with resume support.

A sweep is the cartesian product of per-parameter value lists, each grid
point run as one experiment through the
:class:`~repro.experiments.runner.ExperimentRunner`. Rows come back as
JSON-stable dicts (see :meth:`ExperimentResult.to_row`), so the ``python
-m repro sweep`` command can stream them line-by-line and downstream
tooling can diff runs — the rows are identical whatever the worker
count.

Every grid point of one sweep dispatches through one shared
:class:`~repro.experiments.pool.WorkerPool` (injected, or owned by the
sweep's runner), so worker processes spawn once per sweep, not once per
grid point.

Long grids are resumable: every grid point has a canonical *resume key*
— a pure function of ``(scenario, resolved params, trials, base_seed,
max_steps, budget)`` — and :func:`sweep_scenario` skips points whose key
appears in the ``completed`` set, which :func:`load_completed_keys`
reconstructs from a previous run's ``--out`` file. Because the key is
computed on *resolved* parameters (defaults overlaid), it is independent
of which subset of parameters the grid happened to pin and of their
order. Adaptive-budget runs key on the *policy* — its registry name and
parameters, via :meth:`~repro.experiments.budget.BudgetPolicy.to_key`
(their realized trial count is an outcome, not an input) — and
fixed-budget keys carry no budget field at all. So fixed rows, adaptive
rows, and adaptive rows under *different* policies can never satisfy
each other's resume lookups, and pre-budget output files keep resuming
byte-for-byte (the original ``wilson-width`` policy writes the
pre-registry key format unchanged).
"""

import itertools
import json
import os
from typing import (
    Callable,
    Any,
    Collection,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.experiments.budget import BudgetRef, as_policy
from repro.experiments.chunking import AdaptiveChunker
from repro.experiments.pool import WorkerCount, WorkerPool
from repro.experiments.runner import ExperimentRunner, ExperimentResult
from repro.experiments.scenario import Params, get_scenario
from repro.util.errors import ConfigurationError

#: A grid: parameter name -> single value or list of values to sweep.
Grid = Mapping[str, Union[Any, Sequence[Any]]]


def _canonical_value(value: Any) -> Any:
    """Collapse numerically-equal parameter spellings to one value.

    ``json.dumps`` prints ``1`` and ``1.0`` differently even though they
    are equal in Python and identical as experiment inputs, so a float
    that holds an integral value is folded to the int before it joins a
    resume identity. ``bool`` is an ``int`` subclass but never a
    ``float``, so flags pass through untouched, as do non-integral
    floats, strings, and ``None``. Containers are canonicalised
    recursively so nested parameter structures alias the same way.
    """
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, Mapping):
        return {key: _canonical_value(item) for key, item in value.items()}
    return value


def canonical_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Sorted, numerically-canonical copy of a parameter mapping.

    This is the exact ``params`` object that joins :func:`resume_key`'s
    identity dict; stores that index rows by parameter value (see
    :mod:`repro.experiments.store`) serialise this same shape so lookups
    collide with keys regardless of how the caller spelled the numbers.
    """
    return {key: _canonical_value(params[key]) for key in sorted(params)}


def expand_grid(grid: Optional[Grid]) -> List[Dict[str, Any]]:
    """Cartesian-product a grid into concrete parameter dicts.

    Scalar values are treated as singleton axes; ``None`` or an empty
    grid yields one empty dict (the scenario's defaults). Axis order
    follows the grid's own key order, so callers control row ordering.
    """
    if not grid:
        return [{}]
    axes = []
    for key, values in grid.items():
        if isinstance(values, (list, tuple)):
            axis = list(values)
        else:
            axis = [values]
        axes.append([(key, value) for value in axis])
    return [dict(point) for point in itertools.product(*axes)]


def coerce_param(text: str) -> Any:
    """A textual parameter literal -> int / float / bool / None / str.

    The one grammar every textual front end shares — ``--param`` grid
    values on the CLI and query-string parameters on the estimate
    service — so ``n=8`` means the integer 8 everywhere a parameter can
    be spelled as text.

    Blank text is rejected outright: an empty query-string value
    (``?flag=``) or grid entry (``--param n=``) is a spelling mistake,
    and quietly coercing it to the empty *string* let it masquerade as
    a legal parameter value downstream.
    """
    if not text.strip():
        raise ConfigurationError(
            "blank parameter value (spell the literal out, e.g. n=8; "
            "use 'none' for null)"
        )
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    return text


def resume_key(
    scenario: str,
    params: Mapping[str, Any],
    trials: Optional[int],
    base_seed: int,
    max_steps: Optional[int] = None,
    budget: BudgetRef = None,
) -> str:
    """Canonical identity of one grid point's experiment.

    A pure function of ``(scenario, params, trials, base_seed,
    max_steps[, budget])`` — the exact tuple that determines an
    experiment's rows — serialised with sorted keys so two parameter
    dicts with equal contents always collide, whatever their insertion
    order, and with integral floats folded to ints (see
    :func:`canonical_params`) so ``n=1`` and ``n=1.0`` — equal values,
    identical experiments — collide too. ``max_steps`` is part of the
    identity because the per-trial
    delivery budget changes outcomes: a resume run must not treat rows
    produced under a different budget as done. Pass *resolved*
    parameters (defaults overlaid) so a pinned-at-default grid and an
    unpinned one produce the same key.

    For adaptive runs pass ``trials=None`` and the budget policy: the
    realized trial count is determined *by* the run, so the request is
    identified by the policy instead. The ``budget`` field joins the key
    only when present, keeping every fixed-budget key byte-identical to
    the pre-budget format (old output files resume unchanged).
    """
    identity: Dict[str, Any] = {
        "scenario": scenario,
        "params": canonical_params(params),
        "trials": trials,
        "base_seed": base_seed,
        "max_steps": max_steps,
    }
    policy = as_policy(budget)
    if policy is not None:
        identity["budget"] = policy.to_key()
    return json.dumps(identity, sort_keys=True)


def row_resume_key(row: Mapping[str, Any]) -> str:
    """The resume key of a previously written sweep row.

    Rows written before ``max_steps`` joined the row format count as
    default-budget rows (``max_steps=None``), matching how they ran.
    Rows carrying a ``"budget"`` object were adaptive: their ``trials``
    field is the realized count, so the key is rebuilt from the policy
    (``trials=None``) — exactly what a resuming adaptive sweep asks for.

    Timed-out rows (``"timed_out": true`` — a campaign deadline abandoned
    the point mid-run) have **no** resume identity: their ``trials``
    field is a scheduling-dependent partial count, and treating one as
    done would let a truncated artifact satisfy a resume lookup forever.
    Asking for their key raises, which every loader treats as "retry".
    """
    # Membership tests (not .get) so foreign JSON shapes — lists, strings
    # — fall through to the KeyError/TypeError the loaders tolerate.
    if "timed_out" in row and row["timed_out"]:
        raise ConfigurationError(
            "timed-out rows have no resume identity; the point must re-run"
        )
    budget = row["budget"] if "budget" in row else None
    return resume_key(
        row["scenario"],
        row["params"],
        None if budget is not None else row["trials"],
        row["base_seed"],
        row["max_steps"] if "max_steps" in row else None,
        budget,
    )


def classify_row_line(line):
    """Parse one output line exactly once: ``(row, key, reason)``.

    ``reason`` is ``None`` for a well-formed row (``key`` is its resume
    key), ``"timed-out"`` for a parsed mapping a deadline abandoned
    (``row`` is the parsed marker, ``key`` is ``None``), and
    ``"malformed"`` for everything else — unparseable JSON, foreign
    shapes, rows whose identity fields are missing or broken. The single
    ``json.loads`` here is the whole parse: callers that need both the
    skip reason *and* the row (resume loaders, the SQLite importer)
    thread the parsed object through instead of re-parsing the line.
    """
    try:
        row = json.loads(line)
    except ValueError:
        return None, None, "malformed"
    try:
        return row, row_resume_key(row), None
    except ConfigurationError:
        # row_resume_key refuses timed-out markers by contract; anything
        # else it rejects (a malformed budget object) is just damage.
        if isinstance(row, Mapping) and row.get("timed_out"):
            return row, None, "timed-out"
        return row, None, "malformed"
    except (KeyError, TypeError):
        return row, None, "malformed"


def load_completed_keys(
    lines: Iterable[str],
    on_skip: Optional[Callable[[int, str, str], None]] = None,
) -> Set[str]:
    """Resume keys of every well-formed sweep row in ``lines``.

    Lines that are not JSON objects carrying the identity fields
    (foreign content, partial writes, malformed budget objects) are
    skipped: an unparseable line can only cause a grid point to
    *re-run*, never to be skipped. The canonical producer of such a line
    is a run killed mid-append — the trailing row is truncated (or
    blank, if the kill landed between the text and its newline), and a
    resume must shrug it off rather than crash or trust it.

    ``on_skip(line_number, line, reason)`` (if given) observes every
    non-blank line that contributed no key, so callers can *warn* about
    a torn tail instead of silently re-running. ``reason`` is
    ``"timed-out"`` for well-formed rows a deadline abandoned (their
    retry is the resume contract working as designed) and
    ``"malformed"`` for everything else. Each line is parsed exactly
    once (see :func:`classify_row_line`), whatever its fate.
    """
    keys: Set[str] = set()
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        _, key, reason = classify_row_line(line)
        if reason is None:
            keys.add(key)
        elif on_skip is not None:
            on_skip(number, line, reason)
    return keys


def fsync_directory(path: str) -> None:
    """Best-effort fsync of a directory, pinning entries it names.

    A file's own fsync makes its *contents* durable; the entry that
    makes it reachable lives in the directory, which has its own dirty
    state. Creations and renames therefore need the parent flushed too.
    Failures are swallowed: platforms that refuse ``open``/``fsync`` on
    directories lose the hardening, not the run.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class RowWriter:
    """The one durable line-appender every row store goes through.

    A plain buffered ``write`` gives a killed run three failure shapes:
    rows lost in the userspace buffer, rows lost in the page cache, and
    a *torn* trailing line when the kill lands mid-``write``. The first
    two are this class's job — every :meth:`append` pushes the line
    through ``flush`` + ``os.fsync`` before returning, so once a row has
    been handed over it survives anything short of disk failure. The
    third is physically unavoidable (appends are not atomic), which is
    why :func:`load_completed_keys` tolerates exactly one torn tail: the
    fsync discipline here guarantees a partial line can only ever be the
    *last* one.

    Per-row fsync is noise next to a grid point's trial work (rows are
    emitted once per experiment, not per trial); the bulk
    :meth:`write_lines` path — used to seed a staging file with a
    previous run's rows — pays one fsync for the whole block instead.
    """

    def __init__(self, path: str, append: bool = False):
        self.path = path
        existed = os.path.exists(path)
        # repro-lint: allow[R301] RowWriter IS the blessed row sink — the fsync'd appender every other write routes through
        self._file = open(path, "a" if append else "w")
        if not existed:
            # A freshly created file is only durable once its directory
            # entry is: without this, every fsync'd row in a new --out
            # can vanish wholesale when the machine dies before the
            # parent directory's dirty entry reaches disk.
            fsync_directory(os.path.dirname(os.path.abspath(path)) or ".")

    def write_lines(self, lines: Iterable[str]) -> None:
        """Bulk-write already-terminated lines, then sync once."""
        self._file.writelines(lines)
        self._sync()

    def append(self, line: str) -> None:
        """Append one row line (newline added) and sync it to disk."""
        self._file.write(line + "\n")
        self._sync()

    def _sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "RowWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def sweep_scenario(
    scenario: str,
    trials: Optional[int] = None,
    grid: Optional[Grid] = None,
    base_seed: int = 0,
    workers: WorkerCount = 1,
    max_steps: Optional[int] = None,
    completed: Optional[Collection[str]] = None,
    budget: BudgetRef = None,
    pool: Optional[WorkerPool] = None,
    chunk_size: Optional[int] = None,
    chunker: Optional[AdaptiveChunker] = None,
) -> Iterator[ExperimentResult]:
    """Run ``scenario`` at every grid point, yielding results lazily.

    The scenario, the whole grid, and the budget are validated *eagerly*,
    before the first experiment runs: an unknown scenario or a grid key
    the scenario does not declare raises
    :class:`~repro.util.errors.ConfigurationError` (listing the known
    parameters) from this call itself, not from deep inside iteration —
    so a typo'd overnight grid dies immediately instead of after the
    first grid point's trials.

    Grid points whose :func:`resume_key` appears in ``completed`` are
    skipped entirely; pass :func:`load_completed_keys` of a previous
    run's output to resume a partial sweep. Remaining points run
    sequentially — each one parallelises internally over one *shared*
    worker pool (``pool``, or a pool the sweep's runner owns and closes
    when the iterator finishes), so memory stays flat however large the
    grid is, callers can stream rows as they complete, and worker
    processes spawn once for the whole sweep. ``budget`` switches every
    grid point from the fixed ``trials`` count to an adaptive Wilson
    stop (see :class:`~repro.experiments.budget.BudgetPolicy`).

    Chunk sizing is cost-adaptive by default: one
    :class:`~repro.experiments.chunking.AdaptiveChunker` is shared
    across the whole grid (a fresh one unless ``chunker`` is given), so
    the first point's measured folds size every later point's chunks.
    An explicit ``chunk_size`` pins the size instead. Neither affects
    the emitted rows, only scheduling.
    """
    spec = get_scenario(scenario)
    policy = as_policy(budget)
    if policy is not None and trials is not None:
        raise ConfigurationError(
            "pass either a fixed trials count or an adaptive budget, not both"
        )
    resolved_points: List[Params] = [
        spec.resolve_params(point) for point in expand_grid(grid)
    ]
    if chunker is None and chunk_size is None:
        chunker = AdaptiveChunker()
    runner = ExperimentRunner(
        workers=workers,
        max_steps=max_steps,
        pool=pool,
        chunk_size=chunk_size,
        chunker=chunker,
    )
    done = frozenset(completed) if completed else frozenset()
    key_trials = None if policy is not None else trials

    def _run() -> Iterator[ExperimentResult]:
        try:
            for params in resolved_points:
                if (
                    done
                    and resume_key(
                        spec.name, params, key_trials, base_seed, max_steps, policy
                    )
                    in done
                ):
                    continue
                yield runner.run(
                    spec,
                    trials,
                    base_seed=base_seed,
                    params=params,
                    keep_outcomes=False,
                    budget=policy,
                )
        finally:
            runner.close()

    return _run()
