"""Parameter-grid sweeps over registered scenarios.

A sweep is the cartesian product of per-parameter value lists, each grid
point run as one experiment through the
:class:`~repro.experiments.runner.ExperimentRunner`. Rows come back as
JSON-stable dicts (see :meth:`ExperimentResult.to_row`), so the ``python
-m repro sweep`` command can stream them line-by-line and downstream
tooling can diff runs — the rows are identical whatever the worker
count.
"""

import itertools
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.experiments.runner import ExperimentRunner, ExperimentResult
from repro.experiments.scenario import get_scenario

#: A grid: parameter name -> single value or list of values to sweep.
Grid = Mapping[str, Union[Any, Sequence[Any]]]


def expand_grid(grid: Optional[Grid]) -> List[Dict[str, Any]]:
    """Cartesian-product a grid into concrete parameter dicts.

    Scalar values are treated as singleton axes; ``None`` or an empty
    grid yields one empty dict (the scenario's defaults). Axis order
    follows the grid's own key order, so callers control row ordering.
    """
    if not grid:
        return [{}]
    axes = []
    for key, values in grid.items():
        if isinstance(values, (list, tuple)):
            axis = list(values)
        else:
            axis = [values]
        axes.append([(key, value) for value in axis])
    return [dict(point) for point in itertools.product(*axes)]


def sweep_scenario(
    scenario: str,
    trials: int,
    grid: Optional[Grid] = None,
    base_seed: int = 0,
    workers: int = 1,
    max_steps: Optional[int] = None,
) -> Iterator[ExperimentResult]:
    """Run ``scenario`` at every grid point, yielding results lazily.

    Grid points run sequentially (each one parallelises internally over
    ``workers``), so memory stays flat however large the grid is and
    callers can stream rows as they complete.
    """
    spec = get_scenario(scenario)
    runner = ExperimentRunner(workers=workers, max_steps=max_steps)
    for point in expand_grid(grid):
        yield runner.run(spec, trials, base_seed=base_seed, params=point)
