"""Adaptive trial budgets: stop when the Wilson interval is tight enough.

A fixed trial budget wastes work in both directions: an attack that
forces its target 500 times out of 500 had a conclusive answer hundreds
of trials earlier, while a borderline scenario may need far more than
the default to separate from chance. A :class:`BudgetPolicy` replaces
the fixed count with a convergence criterion — run until the Wilson
interval of the success proportion is narrower than ``ci_width`` —
bounded below by ``min_trials`` (don't trust five lucky trials) and
above by ``max_trials`` (always terminate).

Determinism is the load-bearing property. Trials are consumed in
*batches* whose boundaries are a pure function of the policy alone
(:meth:`BudgetPolicy.batch_ends` — ``min_trials`` doubling up to
``max_trials``), and the stop rule is evaluated only at batch
boundaries, on the cumulative ``(successes, trials)`` counters. Since
trial ``i``'s outcome depends only on ``(base_seed, i)`` and counter
folding is commutative, the realized trial count — and therefore the
row — is identical whatever the worker count or chunk interleaving.
Evaluating mid-batch would break this: *which* trials had finished at
evaluation time would depend on scheduling.
"""

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.analysis.stats import wilson_interval
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class BudgetPolicy:
    """An adaptive trial budget for one experiment (one grid point).

    Attributes
    ----------
    ci_width:
        Stop once ``high - low`` of the Wilson interval on the success
        proportion is ``<=`` this width (evaluated at batch boundaries).
    min_trials:
        Never stop before this many trials — also the first batch size.
    max_trials:
        Hard ceiling; the experiment stops here even if unconverged.
    z:
        Wilson critical value (1.96 = 95%); part of the identity because
        it changes where the stop rule fires.
    """

    ci_width: float
    min_trials: int
    max_trials: int
    z: float = 1.96

    def __post_init__(self):
        if not 0.0 < self.ci_width <= 1.0:
            raise ConfigurationError(
                f"ci_width must be in (0, 1], got {self.ci_width}"
            )
        if self.min_trials < 1:
            raise ConfigurationError(
                f"min_trials must be >= 1, got {self.min_trials}"
            )
        if self.max_trials < self.min_trials:
            raise ConfigurationError(
                f"max_trials ({self.max_trials}) must be >= "
                f"min_trials ({self.min_trials})"
            )
        if self.z <= 0:
            raise ConfigurationError(f"z must be > 0, got {self.z}")

    # -- identity ------------------------------------------------------

    def to_key(self) -> Dict[str, Any]:
        """JSON-stable identity dict — embedded in rows and resume keys.

        Everything that changes where the stop rule fires is here, so
        fixed-budget rows (no budget) and adaptive rows with different
        policies can never satisfy each other's resume lookups.
        """
        return {
            "ci_width": self.ci_width,
            "min_trials": self.min_trials,
            "max_trials": self.max_trials,
            "z": self.z,
        }

    @classmethod
    def from_mapping(cls, raw: Mapping[str, Any]) -> "BudgetPolicy":
        """Build a policy from manifest/row JSON, rejecting unknown keys."""
        if not isinstance(raw, Mapping):
            raise ConfigurationError(
                f"budget must be an object, got {type(raw).__name__}"
            )
        unknown = sorted(set(raw) - {"ci_width", "min_trials", "max_trials", "z"})
        if unknown:
            raise ConfigurationError(
                f"budget has unknown keys {unknown}; "
                "known: ci_width, min_trials, max_trials, z"
            )
        for required in ("ci_width", "min_trials", "max_trials"):
            if required not in raw:
                raise ConfigurationError(f"budget requires {required!r}")
        try:
            return cls(
                ci_width=float(raw["ci_width"]),
                min_trials=int(raw["min_trials"]),
                max_trials=int(raw["max_trials"]),
                z=float(raw.get("z", 1.96)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad budget value: {exc}") from None

    # -- the schedule --------------------------------------------------

    def batch_ends(self) -> Iterator[int]:
        """Cumulative trial counts at which the stop rule is evaluated.

        ``min_trials`` doubling up to ``max_trials`` — e.g. for
        ``(32, 1000)``: 32, 64, 128, 256, 512, 1000. A pure function of
        the policy, never of outcomes or worker layout: that is what
        makes the realized trial count worker-invariant.
        """
        end = self.min_trials
        while True:
            end = min(end, self.max_trials)
            yield end
            if end >= self.max_trials:
                return
            end *= 2

    def satisfied(self, successes: int, trials: int) -> bool:
        """The stop rule: is the Wilson interval narrow enough yet?"""
        if trials < self.min_trials:
            return False
        low, high = wilson_interval(successes, trials, self.z)
        return (high - low) <= self.ci_width


#: A budget argument as APIs accept it: a policy, raw manifest JSON, or
#: ``None`` for the classic fixed trial count.
BudgetRef = Union[BudgetPolicy, Mapping[str, Any], None]


def as_policy(budget: BudgetRef) -> Optional[BudgetPolicy]:
    """Normalise a budget argument to a :class:`BudgetPolicy` (or None)."""
    if budget is None or isinstance(budget, BudgetPolicy):
        return budget
    return BudgetPolicy.from_mapping(budget)
