"""Adaptive trial budgets: pluggable stop rules on one deterministic schedule.

A fixed trial budget wastes work in both directions: an attack that
forces its target 500 times out of 500 had a conclusive answer hundreds
of trials earlier, while a borderline scenario may need far more than
the default to separate from chance. A budget policy replaces the fixed
count with a convergence criterion, bounded below by ``min_trials``
(don't trust five lucky trials) and above by ``max_trials`` (always
terminate).

Four policies ship in the registry, each answering a different
experimental question about the trial outcomes:

``wilson-width``
    *How precisely is the rate known, absolutely?* Stop once the Wilson
    interval is narrower than ``ci_width``. The original policy — its
    identity dict carries no ``policy`` field, so every pre-registry
    manifest, row, and resume key keeps meaning exactly what it meant.
``relative-precision``
    *How precisely is the rate known, relative to its size?* Stop once
    the Wilson half-width is at most ``rel_precision`` times the
    estimate — the right shape for rare events, where an absolute width
    of 0.05 says nothing about a 1% forcing rate. Never fires while the
    success count is zero (relative precision of zero is undefined), so
    an all-failure point runs to the ceiling.
``fail-rate-target``
    *Is the rate above or below a threshold?* Stop once the Wilson
    interval lies entirely above or entirely below ``target`` — the
    data has decided the comparison either way. For punishment scenarios
    (success = the deviation was caught, i.e. the execution FAILed) this
    is literally a fail-rate test; points whose true rate sits at the
    threshold run to the ceiling.
``outcome-rate-target``
    *Is one specific outcome's rate above or below a threshold?* The
    distribution-level sibling of ``fail-rate-target``: instead of the
    scenario's success predicate it watches a single outcome's share of
    the histogram — e.g. "stop once we know whether leader 3 is elected
    more than 20% of the time" — and fires once the Wilson interval on
    that share excludes ``target``. Outcomes are matched by string form
    (budgets come from JSON manifests), and the rule never fires when no
    per-outcome counters reach it, so it degrades to the ``max_trials``
    ceiling rather than stopping blind.

Determinism is the load-bearing property, and it is shared machinery:
trials are consumed in *batches* whose boundaries are a pure function of
the bounds alone (:meth:`BudgetPolicy.batch_ends` — ``min_trials``
doubling up to ``max_trials``), and every stop rule is evaluated only at
batch boundaries, on the cumulative ``(successes, trials)`` counters
(plus the folded per-outcome counters, which the fold carries anyway).
Since trial ``i``'s outcome depends only on ``(base_seed, i)`` and
counter folding is commutative, the realized trial count — and therefore
the row — is identical whatever the worker count or chunk interleaving.
Evaluating mid-batch would break this: *which* trials had finished at
evaluation time would depend on scheduling.

Policy name and parameters join the resume key (see
:meth:`BudgetPolicy.to_key`), so two policies that happen to share their
numeric parameters can never satisfy each other's resume lookups.
"""

from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Dict, Iterator, List, Mapping, Optional, Type, Union

from repro.analysis.stats import wilson_interval
from repro.util.errors import ConfigurationError

#: Registered policy name -> concrete class (see :func:`register_policy`).
_POLICIES: Dict[str, Type["BudgetPolicy"]] = {}

#: Policy assumed when a budget mapping carries no ``"policy"`` field —
#: the only one that existed before the registry, so old manifests and
#: rows keep parsing (and keying) unchanged.
DEFAULT_POLICY = "wilson-width"


def precision_satisfied(
    successes: int, trials: int, ci_width: float, z: float = 1.96
) -> bool:
    """Does ``(successes, trials)`` pin the rate to within ``ci_width``?

    The ``wilson-width`` stop rule as a pure predicate on stored
    counters — shared by :class:`WilsonWidthPolicy` (evaluating live
    batches) and the estimate service (deciding whether an already
    stored row satisfies a query's requested precision without
    dispatching a single trial). Zero trials never satisfy anything:
    :func:`~repro.analysis.stats.wilson_interval` returns the vacuous
    ``(0, 1)`` there, which is wider than any valid ``ci_width``.
    """
    if trials <= 0:
        return False
    low, high = wilson_interval(successes, trials, z)
    return (high - low) <= ci_width


def register_policy(cls: Type["BudgetPolicy"]) -> Type["BudgetPolicy"]:
    """Class decorator: add a concrete policy to the registry by name."""
    if cls.policy in _POLICIES:
        raise ConfigurationError(f"budget policy {cls.policy!r} already registered")
    _POLICIES[cls.policy] = cls
    return cls


def policy_names() -> List[str]:
    """Sorted names of every registered budget policy."""
    return sorted(_POLICIES)


class BudgetPolicy:
    """Base of all adaptive trial budgets (one policy per experiment).

    Concrete policies are frozen dataclasses declaring their criterion
    field plus the shared bounds:

    ``min_trials``
        Never stop before this many trials — also the first batch size.
    ``max_trials``
        Hard ceiling; the experiment stops here even if unconverged.
    ``z``
        Wilson critical value (1.96 = 95%); part of the identity because
        it changes where the stop rule fires.

    Subclasses set two class attributes — ``policy`` (the registry name)
    and ``_SPECIFIC`` (criterion field name -> caster, used by the
    generic manifest parser and identity dict) — and implement
    :meth:`satisfied`. Registration is via :func:`register_policy`.
    """

    #: Registry name of the concrete policy (class attribute).
    policy: ClassVar[str] = ""
    #: Criterion fields beyond the shared bounds: name -> caster.
    _SPECIFIC: ClassVar[Dict[str, Callable[[Any], Any]]] = {}

    # Declared for type checkers; concrete dataclasses define the fields.
    min_trials: int
    max_trials: int
    z: float

    def __init__(self, *args, **kwargs):
        # Concrete policies are dataclasses with generated __init__s that
        # never call up here; only a direct BudgetPolicy(...) lands in
        # this body. Fail it eagerly with a pointer — the pre-registry
        # class took WilsonWidthPolicy's arguments, so old callers would
        # otherwise get an opaque TypeError (or a hollow instance that
        # only crashes deep inside a run).
        raise ConfigurationError(
            "BudgetPolicy is the abstract base of the policy registry; "
            "construct a concrete policy — e.g. WilsonWidthPolicy("
            "ci_width=..., min_trials=..., max_trials=...) — or parse "
            "one with BudgetPolicy.from_mapping({...})"
        )

    # -- shared validation ---------------------------------------------

    def _validate_bounds(self) -> None:
        if self.min_trials < 1:
            raise ConfigurationError(
                f"min_trials must be >= 1, got {self.min_trials}"
            )
        if self.max_trials < self.min_trials:
            raise ConfigurationError(
                f"max_trials ({self.max_trials}) must be >= "
                f"min_trials ({self.min_trials})"
            )
        if self.z <= 0:
            raise ConfigurationError(f"z must be > 0, got {self.z}")

    # -- identity ------------------------------------------------------

    def to_key(self) -> Dict[str, Any]:
        """JSON-stable identity dict — embedded in rows and resume keys.

        Everything that changes where the stop rule fires is here — the
        policy name, its criterion, and the shared bounds — so fixed-
        budget rows (no budget), adaptive rows with different policies,
        and same-policy rows with different parameters can never satisfy
        each other's resume lookups. (:class:`WilsonWidthPolicy` drops
        the ``policy`` field to keep its pre-registry key format.)
        """
        key: Dict[str, Any] = {"policy": self.policy}
        for name in self._SPECIFIC:
            key[name] = getattr(self, name)
        key["min_trials"] = self.min_trials
        key["max_trials"] = self.max_trials
        key["z"] = self.z
        return key

    @classmethod
    def from_mapping(cls, raw: Mapping[str, Any]) -> "BudgetPolicy":
        """Build a policy from manifest/row JSON, rejecting unknown keys.

        The ``"policy"`` field selects the registered class; a mapping
        without one is the pre-registry format and parses as
        ``wilson-width``. Dispatches from the base class, so
        ``BudgetPolicy.from_mapping`` accepts any registered policy.
        """
        if not isinstance(raw, Mapping):
            raise ConfigurationError(
                f"budget must be an object, got {type(raw).__name__}"
            )
        name = raw.get("policy", DEFAULT_POLICY)
        # isinstance before the dict lookup: a non-string (possibly
        # unhashable) "policy" value must fail the same eager way every
        # other malformed budget does, not with a bare TypeError.
        klass = _POLICIES.get(name) if isinstance(name, str) else None
        if klass is None:
            raise ConfigurationError(
                f"unknown budget policy {name!r}; "
                f"known: {', '.join(policy_names())}"
            )
        return klass._from_fields({k: v for k, v in raw.items() if k != "policy"})

    @classmethod
    def _from_fields(cls, raw: Mapping[str, Any]) -> "BudgetPolicy":
        casts: Dict[str, Callable[[Any], Any]] = dict(cls._SPECIFIC)
        casts.update(min_trials=int, max_trials=int, z=float)
        unknown = sorted(set(raw) - set(casts))
        if unknown:
            raise ConfigurationError(
                f"budget has unknown keys {unknown}; known for "
                f"{cls.policy!r}: {', '.join(['policy'] + sorted(casts))}"
            )
        for required in (*cls._SPECIFIC, "min_trials", "max_trials"):
            if required not in raw:
                raise ConfigurationError(f"budget requires {required!r}")
        try:
            return cls(**{k: cast(raw[k]) for k, cast in casts.items() if k in raw})
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad budget value: {exc}") from None

    # -- the schedule --------------------------------------------------

    def batch_ends(self) -> Iterator[int]:
        """Cumulative trial counts at which the stop rule is evaluated.

        ``min_trials`` doubling up to ``max_trials`` — e.g. for
        ``(32, 1000)``: 32, 64, 128, 256, 512, 1000. A pure function of
        the bounds, never of outcomes or worker layout — and shared by
        every policy, so two policies with the same bounds see the same
        counters at the same boundaries and differ only in when they
        declare them conclusive.
        """
        end = self.min_trials
        while True:
            end = min(end, self.max_trials)
            yield end
            if end >= self.max_trials:
                return
            end *= 2

    def satisfied(
        self,
        successes: int,
        trials: int,
        counts: Optional[Mapping[Any, int]] = None,
    ) -> bool:
        """The stop rule, evaluated on cumulative counters at a batch
        boundary. ``counts`` is the cumulative per-outcome histogram the
        fold carries alongside the success counter; proportion policies
        ignore it, distribution-level policies
        (:class:`OutcomeRateTargetPolicy`) read one outcome's share from
        it. Callers that only track ``(successes, trials)`` may omit it
        — a policy that needs counts must then refuse to fire rather
        than guess. Concrete policies implement this."""
        raise NotImplementedError

    # -- planning ------------------------------------------------------

    def planning_trials(self) -> int:
        """Trials a scheduler should budget for this policy: the ceiling.

        The realized count is an *outcome* of the run, unknown at
        planning time, so cost estimation (``longest-first`` admission,
        ``--dry-run`` makespans, the campaign
        :class:`~repro.experiments.campaign.CostModel`) plans for the
        worst case. Never part of any identity — purely advisory.
        """
        return self.max_trials


@register_policy
@dataclass(frozen=True)
class WilsonWidthPolicy(BudgetPolicy):
    """Stop once the Wilson interval is narrower than ``ci_width``.

    The original (pre-registry) policy: its identity dict carries no
    ``policy`` field, keeping every existing adaptive resume key and row
    byte-identical.
    """

    ci_width: float
    min_trials: int
    max_trials: int
    z: float = 1.96

    policy = "wilson-width"
    _SPECIFIC = {"ci_width": float}

    def __post_init__(self):
        if not 0.0 < self.ci_width <= 1.0:
            raise ConfigurationError(
                f"ci_width must be in (0, 1], got {self.ci_width}"
            )
        self._validate_bounds()

    def to_key(self) -> Dict[str, Any]:
        key = super().to_key()
        # Frozen legacy format: pre-registry rows and resume keys carry
        # no policy name, and must keep resuming byte-for-byte.
        del key["policy"]
        return key

    def satisfied(
        self,
        successes: int,
        trials: int,
        counts: Optional[Mapping[Any, int]] = None,
    ) -> bool:
        if trials < self.min_trials:
            return False
        return precision_satisfied(successes, trials, self.ci_width, self.z)


@register_policy
@dataclass(frozen=True)
class RelativePrecisionPolicy(BudgetPolicy):
    """Stop once the Wilson half-width is ``<= rel_precision x estimate``.

    The rare-event shape: a 1% forcing rate needs its interval narrow
    *relative to 1%*, not relative to the whole unit interval. With zero
    successes the criterion is undefined and never fires, so an
    all-failure point runs to ``max_trials``.
    """

    rel_precision: float
    min_trials: int
    max_trials: int
    z: float = 1.96

    policy = "relative-precision"
    _SPECIFIC = {"rel_precision": float}

    def __post_init__(self):
        if not 0.0 < self.rel_precision <= 1.0:
            raise ConfigurationError(
                f"rel_precision must be in (0, 1], got {self.rel_precision}"
            )
        self._validate_bounds()

    def satisfied(
        self,
        successes: int,
        trials: int,
        counts: Optional[Mapping[Any, int]] = None,
    ) -> bool:
        if trials < self.min_trials or successes == 0:
            return False
        low, high = wilson_interval(successes, trials, self.z)
        return (high - low) / 2.0 <= self.rel_precision * (successes / trials)


@register_policy
@dataclass(frozen=True)
class FailRateTargetPolicy(BudgetPolicy):
    """Stop once the interval excludes ``target`` — the comparison is decided.

    Fires when the Wilson interval on the success proportion lies
    entirely above or entirely below ``target``. For punishment
    scenarios (success = the deviation was punished with ``FAIL``) the
    success proportion *is* the fail rate, hence the name; for forcing
    attacks it reads as "stop once we know whether the attack clears the
    bar". A point whose true rate sits at the threshold never excludes
    it and runs to ``max_trials``.
    """

    target: float
    min_trials: int
    max_trials: int
    z: float = 1.96

    policy = "fail-rate-target"
    _SPECIFIC = {"target": float}

    def __post_init__(self):
        if not 0.0 <= self.target <= 1.0:
            raise ConfigurationError(
                f"target must be in [0, 1], got {self.target}"
            )
        self._validate_bounds()

    def satisfied(
        self,
        successes: int,
        trials: int,
        counts: Optional[Mapping[Any, int]] = None,
    ) -> bool:
        if trials < self.min_trials:
            return False
        low, high = wilson_interval(successes, trials, self.z)
        return low > self.target or high < self.target


@register_policy
@dataclass(frozen=True)
class OutcomeRateTargetPolicy(BudgetPolicy):
    """Stop once *one outcome's* rate interval excludes ``target``.

    :class:`FailRateTargetPolicy` over the histogram instead of the
    success predicate: the watched count is ``counts[outcome]`` (zero
    when the outcome never occurred), its proportion of ``trials`` gets
    the same Wilson treatment, and the rule fires once the interval lies
    entirely on one side of ``target``. Because budgets arrive as JSON
    manifests, ``outcome`` is a string and histogram keys are matched by
    their ``str()`` form — ``"3"`` watches leader 3, ``"FAIL"`` watches
    the punishment outcome, ``"0.8125"`` a sequential-coin probability.

    Needs the per-outcome counters the fold carries; a caller that
    evaluates the rule without them (``counts is None``) gets ``False``
    — never a blind stop — and the point runs to ``max_trials``.
    """

    outcome: str
    target: float
    min_trials: int
    max_trials: int
    z: float = 1.96

    policy = "outcome-rate-target"
    _SPECIFIC = {"outcome": str, "target": float}

    def __post_init__(self):
        if not self.outcome:
            raise ConfigurationError("outcome must be a non-empty string")
        if not 0.0 <= self.target <= 1.0:
            raise ConfigurationError(
                f"target must be in [0, 1], got {self.target}"
            )
        self._validate_bounds()

    def satisfied(
        self,
        successes: int,
        trials: int,
        counts: Optional[Mapping[Any, int]] = None,
    ) -> bool:
        if trials < self.min_trials or counts is None:
            return False
        count = sum(c for o, c in counts.items() if str(o) == self.outcome)
        low, high = wilson_interval(count, trials, self.z)
        return low > self.target or high < self.target


#: A budget argument as APIs accept it: a policy, raw manifest JSON, or
#: ``None`` for the classic fixed trial count.
BudgetRef = Union[BudgetPolicy, Mapping[str, Any], None]


def as_policy(budget: BudgetRef) -> Optional[BudgetPolicy]:
    """Normalise a budget argument to a :class:`BudgetPolicy` (or None)."""
    if budget is None or isinstance(budget, BudgetPolicy):
        return budget
    return BudgetPolicy.from_mapping(budget)
