"""Campaigns: a manifest of scenario grids run against one resume store.

A *campaign* is the unit above a sweep: a JSON manifest of ``(scenario |
tag, grid, trials, base_seed)`` entries — the whole experimental section
of the paper as one file — expanded into concrete
:class:`CampaignPoint`\\ s and run through one shared
:class:`~repro.experiments.pool.WorkerPool` with **grid-level
parallelism**: chunks from *different* grid points interleave in the
pool, so a wide, shallow grid (many points, few trials each) keeps every
worker busy instead of serialising point-by-point. A
:class:`PointScheduler` decides the admission order (``manifest-order``
default, ``longest-first`` to start expensive stragglers early); the
row set is schedule-invariant. Exposed on the command line as ``python
-m repro campaign manifest.json --out rows.jsonl --resume --workers N
[--schedule longest-first] [--dry-run]``.

Manifest format (top-level defaults overlaid by per-entry values; a bare
JSON list is accepted as ``entries`` with no defaults)::

    {
      "trials": 400,
      "base_seed": 0,
      "entries": [
        {"scenario": "attack/cubic", "grid": {"n": [66, 111], "target": 7}},
        {"tag": "sync", "trials": 100, "grid": {"n": [4, 8]}},
        {"scenario": "fuzz/random-deviation",
         "budget": {"ci_width": 0.1, "min_trials": 32, "max_trials": 2000}}
      ]
    }

``tag`` entries expand to every registered scenario carrying that tag.
An entry (or the campaign) may replace its fixed ``trials`` with an
adaptive ``budget`` (see :class:`~repro.experiments.budget.BudgetPolicy`).
Everything is validated eagerly at expansion time — unknown scenarios,
empty tags, grid keys a scenario does not declare, and malformed budgets
all raise before any trial runs.

Determinism contract: every row a campaign emits is identical to the row
a lone ``run_scenario``/``sweep`` call with the same identity would emit,
whatever the worker count or chunk interleaving — chunk folds are
commutative counters, and adaptive stop decisions happen only at batch
boundaries whose schedule is a pure function of the policy. Only the
*order* rows complete in is scheduling-dependent, which is why resume
keys, not file order, identify finished points.

Unattended robustness (the overnight contract):

- **Per-point deadlines** (``point_timeout=`` / ``--point-timeout``): a
  point that exceeds its budget is abandoned *cooperatively* at the next
  chunk boundary — its partial result is emitted as a ``timed_out`` row
  (excluded from resume identities, so a rerun retries it) while every
  other point keeps draining. One pathological grid point can no longer
  stall a whole manifest.
- **A global wall-clock deadline** (``max_wall_clock=`` /
  ``--max-wall-clock``): when it expires the campaign stops admitting
  work, drains in-flight chunks into ``timed_out`` rows, and raises
  :class:`CampaignDeadline` — by then every finished row has been
  yielded, so the caller's stream is a complete checkpoint (the CLI
  finalises ``--out`` and exits with a distinct code).
- **Observed-cost scheduling**: a :class:`CostModel` (EWMA per-trial
  seconds per scenario, learned from the ``<out>.timings`` sidecar of
  previous runs) feeds ``longest-first`` real seconds instead of the
  ``trials × outcome-size`` proxy, falling back to the proxy for
  scenarios it has never seen. Scheduling stays pure admission metadata:
  rows and resume keys are identical whatever the cost source.
"""

import json
import math
import queue
import time
from collections import Counter, deque
from dataclasses import dataclass, replace
from typing import (
    Any,
    Collection,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.distribution import OutcomeDistribution
from repro.analysis.stats import proportion
from repro.experiments.budget import BudgetPolicy, as_policy
from repro.experiments.chunking import AdaptiveChunker
from repro.experiments.pool import WorkerCount, WorkerPool
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    _run_chunk_folded,
    chunk_payloads,
)
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    get_scenario,
    known_tags,
    scenario_names,
)
from repro.experiments.sweep import expand_grid, resume_key
from repro.util.errors import ConfigurationError

#: Keys a manifest entry may carry.
_ENTRY_KEYS = {"scenario", "tag", "grid", "trials", "base_seed", "max_steps", "budget"}
#: Keys the manifest's top level may carry (campaign-wide defaults).
_TOP_KEYS = {"entries", "trials", "base_seed", "max_steps", "budget"}


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-resolved experiment a campaign will run.

    ``params`` are resolved (defaults overlaid); exactly one of
    ``trials`` (fixed budget) and ``budget`` (adaptive) is set.
    """

    scenario: str
    params: Params
    trials: Optional[int]
    base_seed: int
    max_steps: Optional[int]
    budget: Optional[BudgetPolicy]

    def key(self) -> str:
        """The point's resume key — same function sweep rows use, so one
        output file can be shared by sweeps and campaigns."""
        return resume_key(
            self.scenario,
            self.params,
            self.trials,
            self.base_seed,
            self.max_steps,
            self.budget,
        )


def retry_identity(
    scenario: str,
    params: Params,
    base_seed: int,
    max_steps: Optional[int],
    budget: Any,
) -> str:
    """What identifies a timed-out row with the point that retries it.

    The canonical :func:`~repro.experiments.sweep.resume_key` with
    ``trials=None`` — the full resume identity *minus* trials (a
    timed-out row's trial count is a scheduling artifact, which is
    exactly why it has no real resume key). Delegating keeps marker
    matching in lockstep with whatever the identity rules are; both the
    CLI's JSONL marker hold-back and the SQLite store's marker
    supersession key off this one function.
    """
    return resume_key(scenario, params, None, base_seed, max_steps, budget)


def row_retry_identity(row: Mapping[str, Any]) -> str:
    """:func:`retry_identity` of a previously written row (timed-out
    marker or completed), raising the same way :func:`row_resume_key`
    does on rows whose identity fields are missing or broken."""
    # Subscript access first: foreign shapes (lists, strings) raise the
    # TypeError/KeyError the tolerant loaders already catch, before any
    # .get could raise something they don't.
    return retry_identity(
        row["scenario"],
        row["params"],
        row["base_seed"],
        row.get("max_steps"),
        row.get("budget"),
    )


def load_manifest(source: Union[str, Mapping, Sequence]) -> List[CampaignPoint]:
    """Load and expand a campaign manifest into concrete points.

    ``source`` is a JSON file path, an already-parsed manifest mapping,
    or a bare entry list. Expansion validates everything eagerly and
    deduplicates points by resume key (tag overlaps, repeated entries),
    preserving first-occurrence order.
    """
    if isinstance(source, str):
        try:
            with open(source) as f:
                raw = json.load(f)
        except OSError as exc:
            raise ConfigurationError(f"cannot read manifest: {exc}") from None
        except ValueError as exc:
            raise ConfigurationError(
                f"manifest {source!r} is not valid JSON: {exc}"
            ) from None
    else:
        raw = source
    return expand_manifest(raw)


def expand_manifest(raw: Union[Mapping, Sequence]) -> List[CampaignPoint]:
    """Expand a parsed manifest into validated, deduplicated points."""
    if isinstance(raw, Mapping):
        unknown = sorted(set(raw) - _TOP_KEYS)
        if unknown:
            raise ConfigurationError(
                f"manifest has unknown top-level keys {unknown}; "
                f"known: {sorted(_TOP_KEYS)}"
            )
        entries = raw.get("entries")
        defaults = raw
    elif isinstance(raw, Sequence) and not isinstance(raw, (str, bytes)):
        entries, defaults = raw, {}
    else:
        raise ConfigurationError(
            "manifest must be an object with 'entries' or a list of entries"
        )
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise ConfigurationError("manifest 'entries' must be a list")
    if not entries:
        raise ConfigurationError("manifest has no entries")

    points: List[CampaignPoint] = []
    seen_keys = set()
    for position, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ConfigurationError(
                f"manifest entry #{position} must be an object"
            )
        unknown = sorted(set(entry) - _ENTRY_KEYS)
        if unknown:
            raise ConfigurationError(
                f"manifest entry #{position} has unknown keys {unknown}; "
                f"known: {sorted(_ENTRY_KEYS)}"
            )
        for point in _expand_entry(position, entry, defaults):
            key = point.key()
            if key not in seen_keys:
                seen_keys.add(key)
                points.append(point)
    return points


def _expand_entry(
    position: int, entry: Mapping[str, Any], defaults: Mapping[str, Any]
) -> Iterator[CampaignPoint]:
    where = f"manifest entry #{position}"
    has_scenario = "scenario" in entry
    has_tag = "tag" in entry
    if has_scenario == has_tag:
        raise ConfigurationError(
            f"{where} needs exactly one of 'scenario' or 'tag'"
        )
    if has_tag:
        names = scenario_names(tag=entry["tag"])
        if not names:
            tags = ", ".join(known_tags()) or "<none>"
            raise ConfigurationError(
                f"{where}: no registered scenario has tag {entry['tag']!r}; "
                f"known tags: {tags}"
            )
    else:
        names = [get_scenario(entry["scenario"]).name]

    def _setting(key: str) -> Any:
        return entry[key] if key in entry else defaults.get(key)

    if "budget" in entry and "trials" in entry:
        raise ConfigurationError(
            f"{where} sets both 'trials' and 'budget'; pick one"
        )
    budget = as_policy(_setting("budget")) if "budget" in entry else None
    trials = None
    if budget is None:
        # No entry-level budget: an entry-level trials wins, then the
        # campaign default trials, then the campaign default budget.
        if entry.get("trials") is not None:
            trials = entry["trials"]
        elif defaults.get("trials") is not None:
            trials = defaults["trials"]
        elif defaults.get("budget") is not None:
            budget = as_policy(defaults["budget"])
        else:
            raise ConfigurationError(
                f"{where} has no 'trials' or 'budget' "
                "(own or campaign-level)"
            )
    if trials is not None:
        if not isinstance(trials, int) or isinstance(trials, bool) or trials < 0:
            raise ConfigurationError(
                f"{where}: trials must be a non-negative integer, got {trials!r}"
            )
    base_seed = _setting("base_seed") or 0
    max_steps = _setting("max_steps")
    grid = entry.get("grid")
    if grid is not None and not isinstance(grid, Mapping):
        raise ConfigurationError(f"{where}: 'grid' must be an object")
    for name in names:
        spec = get_scenario(name)
        for grid_point in expand_grid(grid):
            yield CampaignPoint(
                scenario=name,
                params=spec.resolve_params(grid_point),
                trials=trials,
                base_seed=base_seed,
                max_steps=max_steps,
                budget=budget,
            )


# ----------------------------------------------------------------------
# Point scheduling
# ----------------------------------------------------------------------


def scheduled_cost(point: CampaignPoint, spec: Optional[ScenarioSpec] = None) -> int:
    """Rough units of work one campaign point is expected to cost.

    ``trials × outcome-space size`` — the trial count is the dominant
    axis and the scenario's outcome-space size (usually the network size
    ``n``) is the cheap, always-available proxy for per-trial work.
    Adaptive points are costed at their budget's
    :meth:`~repro.experiments.budget.BudgetPolicy.planning_trials`: the
    scheduler plans for the worst case, since the realized count is only
    known after the point runs. The estimate feeds the ``longest-first``
    strategy and the ``--dry-run`` listing; it never affects rows.
    """
    if spec is None:
        spec = get_scenario(point.scenario)
    return _planning_trials(point) * max(spec.size(point.params), 1)


def _planning_trials(point: CampaignPoint) -> int:
    """Trials to budget for when planning ``point`` (realized count for
    fixed points, the policy ceiling for adaptive ones)."""
    if point.budget is not None:
        return point.budget.planning_trials()
    return point.trials or 0


#: An admission plan: (point, scheduled cost) pairs in admission order.
CostedPoints = List[Tuple[CampaignPoint, int]]


class CostModel:
    """Observed wall-clock costs: an EWMA of per-trial seconds per scenario.

    The ``trials × outcome-size`` proxy behind :func:`scheduled_cost`
    ranks points of one scenario correctly but knows nothing about how
    expensive scenarios are *relative to each other* — a 50-trial cubic
    attack on a 170-ring dwarfs a 5000-trial coin toss in real seconds.
    A ``CostModel`` closes that gap from evidence: every completed
    (never timed-out) point contributes its realized
    ``(trials, elapsed)`` to an exponentially-weighted moving average of
    per-trial seconds for its scenario, newest observation weighted
    ``alpha``. The CLI persists observations in a ``<out>.timings``
    sidecar (see :func:`timing_record` / :func:`load_cost_model`), so a
    resumed or repeated campaign schedules on what the machine actually
    measured last time.

    Two estimation tiers, so every point stays comparable on one scale:

    - a scenario the model has **seen** is estimated at
      ``planned trials × EWMA per-trial seconds``;
    - an **unseen** scenario falls back to its proxy cost times a
      global seconds-per-proxy-unit EWMA (calibrated from the same
      observations), keeping the ranking in seconds;
    - an **empty** model estimates nothing — callers keep the raw proxy
      ordering, byte-compatible with cost-model-free campaigns.

    Determinism: the model is a pure fold over observation order, and
    estimation reads only ``(point, model)`` — the same sidecar file
    yields the same admission order at any worker count. Estimates are
    scheduling metadata only; rows and resume keys never see them.
    """

    def __init__(self, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._per_trial: Dict[str, float] = {}
        self._per_unit: Optional[float] = None

    @property
    def observed(self) -> bool:
        """Whether the model has absorbed at least one observation."""
        return bool(self._per_trial) or self._per_unit is not None

    def scenarios(self) -> List[str]:
        """Sorted scenario names with an observed per-trial cost."""
        return sorted(self._per_trial)

    def per_trial_seconds(self, scenario: str) -> Optional[float]:
        """The scenario's EWMA per-trial seconds (None when unseen)."""
        return self._per_trial.get(scenario)

    def observe(
        self,
        scenario: Any,
        trials: Any,
        elapsed: Any,
        cost_units: Any = None,
    ) -> bool:
        """Fold one completed point's wall clock into the model.

        Returns whether the observation was accepted. Foreign or
        non-positive values are *rejected*, not raised — sidecar records
        come from a file a crash may have torn, and a bad record must
        only cost the model an observation, never the campaign a run.
        """
        if not isinstance(scenario, str):
            return False
        if not isinstance(trials, int) or isinstance(trials, bool) or trials <= 0:
            return False
        # `not >` plus isfinite (instead of `<= 0`): JSON happily parses
        # NaN/Infinity, and one such record folded into the EWMA would
        # poison every estimate — and the sort built on them — forever.
        if (
            not isinstance(elapsed, (int, float))
            or isinstance(elapsed, bool)
            or not elapsed > 0
            or not math.isfinite(elapsed)
        ):
            return False
        per = elapsed / trials
        prev = self._per_trial.get(scenario)
        self._per_trial[scenario] = (
            per if prev is None else self.alpha * per + (1 - self.alpha) * prev
        )
        if (
            isinstance(cost_units, (int, float))
            and not isinstance(cost_units, bool)
            and cost_units > 0
            and math.isfinite(cost_units)
        ):
            unit = elapsed / cost_units
            self._per_unit = (
                unit
                if self._per_unit is None
                else self.alpha * unit + (1 - self.alpha) * self._per_unit
            )
        return True

    def estimate_seconds(
        self,
        point: CampaignPoint,
        cost_units: Optional[int] = None,
        spec: Optional[ScenarioSpec] = None,
    ) -> Optional[float]:
        """Estimated wall-clock seconds for ``point`` (None when the
        model is empty). ``cost_units`` (the point's already-computed
        proxy cost) spares the unseen-scenario tier a spec lookup."""
        per = self._per_trial.get(point.scenario)
        if per is not None:
            return _planning_trials(point) * per
        if self._per_unit is not None:
            units = cost_units
            if units is None:
                units = scheduled_cost(point, spec)
            return units * self._per_unit
        return None


def timings_path(out_path: str) -> str:
    """The timing-sidecar path belonging to a row store.

    Timing lives *next to* the rows, never inside them: rows are the
    deterministic artifact (byte-identical across runs, schedules, and
    worker counts — the property every resume and golden-row contract
    stands on), while wall-clock is machine noise. One sidecar line per
    completed point keeps both.
    """
    return f"{out_path}.timings"


def timing_record(result) -> Optional[Dict[str, Any]]:
    """The sidecar record of one finished result, or ``None`` when it
    carries no usable cost signal (timed-out or empty results: their
    elapsed is an artifact of the guard, and feeding it to the EWMA
    would teach the scheduler that pathological points are cheap)."""
    if result.timed_out or not result.trials or result.elapsed <= 0:
        return None
    record = {
        "scenario": result.scenario,
        "trials": result.trials,
        "elapsed": round(result.elapsed, 6),
    }
    try:
        spec = get_scenario(result.scenario)
    except ConfigurationError:
        return record  # ad-hoc scenario: per-trial tier only
    record["cost"] = result.trials * max(spec.size(result.params), 1)
    return record


def load_cost_model(path: str, alpha: float = 0.5) -> CostModel:
    """Rebuild a :class:`CostModel` from a timing sidecar file.

    Missing or unreadable files and torn/foreign lines cost
    observations, never the campaign: the model simply knows less and
    the scheduler degrades to the proxy ordering.
    """
    model = CostModel(alpha=alpha)
    try:
        with open(path) as f:
            lines = f.readlines()
    except OSError:
        return model
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, Mapping):
            model.observe(
                record.get("scenario"),
                record.get("trials"),
                record.get("elapsed"),
                record.get("cost"),
            )
    return model


#: Registered scheduling-strategy names.
_SCHEDULES = ("manifest-order", "longest-first")


def schedule_names() -> List[str]:
    """Sorted names of the registered scheduling strategies."""
    return sorted(_SCHEDULES)


class PointScheduler:
    """Decides the order campaign points are admitted to the pool.

    Two strategies:

    - ``manifest-order`` (default): points run in manifest order — the
      byte-compatible behaviour every earlier campaign had.
    - ``longest-first``: points are admitted by descending cost, so the
      expensive stragglers start while the pool still has company and
      the tail of the campaign is made of short points — the classic
      LPT heuristic for shaving makespan on wide grids. Cost is the
      ``cost_model``'s estimated *seconds* when it has observations
      (real measured time, the quantity LPT actually wants), and the
      :func:`scheduled_cost` proxy otherwise.

    Scheduling is pure admission metadata: the same rows with the same
    resume keys are emitted under every strategy (each point's trials
    depend only on its own ``(base_seed, index)`` derivation), so
    ``--schedule`` — and the cost model behind it — can change between
    a run and its ``--resume`` without invalidating anything. Only
    completion order — and wall-clock on multicore hosts — changes.
    """

    def __init__(
        self,
        name: str = "manifest-order",
        cost_model: Optional[CostModel] = None,
    ):
        if name not in _SCHEDULES:
            raise ConfigurationError(
                f"unknown schedule {name!r}; "
                f"known: {', '.join(schedule_names())}"
            )
        self.name = name
        self.cost_model = cost_model

    def estimate_seconds(
        self, point: CampaignPoint, cost_units: Optional[int] = None
    ) -> Optional[float]:
        """The cost model's seconds estimate for ``point`` (None without
        an observed model) — what ``--dry-run`` prints per line."""
        if self.cost_model is None:
            return None
        return self.cost_model.estimate_seconds(point, cost_units=cost_units)

    def plan(self, points: Sequence[CampaignPoint]) -> CostedPoints:
        """Admission-ordered ``(point, scheduled cost)`` pairs.

        Costs are computed once per point (specs resolved once per
        scenario) and carried through the ordering — the ``--dry-run``
        listing reads them straight off the plan instead of re-deriving
        them per line. The recorded cost is always the proxy; when an
        observed cost model drives ``longest-first``, the *ordering*
        uses its seconds estimates while the pairs keep the proxy
        (stable units for consumers and tests).
        """
        specs: Dict[str, ScenarioSpec] = {}
        costed = []
        for point in points:
            spec = specs.get(point.scenario)
            if spec is None:
                spec = specs[point.scenario] = get_scenario(point.scenario)
            costed.append((point, scheduled_cost(point, spec)))
        if self.name == "manifest-order":
            return costed
        ranks = self._seconds_ranks(costed)
        if ranks is None:
            ranks = [float(cost) for _, cost in costed]
        # Stable sort on descending cost: equal-cost points keep manifest
        # order, so the schedule is a pure function of (points, model).
        return [
            pair
            for _, (_, pair) in sorted(
                zip(ranks, enumerate(costed)),
                key=lambda entry: (-entry[0], entry[1][0]),
            )
        ]

    def _seconds_ranks(self, costed: CostedPoints) -> Optional[List[float]]:
        """Per-point seconds estimates, or ``None`` unless the model can
        price *every* point — a model that has per-trial observations
        but no per-unit calibration (e.g. a sidecar of cost-less
        records) cannot rank unseen scenarios in seconds, and mixing
        seconds with proxy units in one sort would be meaningless, so
        the whole plan falls back to the proxy scale together."""
        model = self.cost_model
        if model is None or not model.observed:
            return None
        ranks = []
        for point, cost in costed:
            seconds = model.estimate_seconds(point, cost_units=cost)
            if seconds is None:
                return None
            ranks.append(seconds)
        return ranks

    def order(self, points: Sequence[CampaignPoint]) -> List[CampaignPoint]:
        """The admission order of ``points`` under this strategy."""
        if self.name == "manifest-order":
            # Admission order needs no costs here — don't pay a topology
            # build per point for the default schedule.
            return list(points)
        return [point for point, _ in self.plan(points)]


#: A schedule argument as APIs accept it: a scheduler, a strategy name,
#: or ``None`` for the default (manifest order).
ScheduleRef = Union[str, PointScheduler, None]


def as_scheduler(schedule: ScheduleRef) -> PointScheduler:
    """Normalise a schedule argument to a :class:`PointScheduler`."""
    if isinstance(schedule, PointScheduler):
        return schedule
    return PointScheduler(schedule if schedule is not None else "manifest-order")


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------


class CampaignDeadline(Exception):
    """The campaign's global wall-clock budget (``max_wall_clock``) ran out.

    Raised by the :func:`run_campaign` iterator *after* it has yielded a
    row for every point that finished — and a ``timed_out`` row for each
    point the deadline abandoned mid-run — so the stream the caller
    consumed is a complete checkpoint: persist it, resume later, and
    only the unfinished points re-run. ``pending`` counts points that
    never started a trial. The CLI maps this to its own distinct exit
    code so overnight wrappers can tell "deadline, resume me" from
    success and from real failures.
    """

    def __init__(self, pending: int):
        self.pending = pending
        super().__init__(
            f"campaign wall-clock deadline reached; {pending} point(s) "
            "not started (finished rows were checkpointed)"
        )


def _campaign_chunk(tagged: Tuple[int, Any]) -> Tuple[int, Any]:
    """Worker entry point: a point-tagged folded chunk, so results from
    interleaved grid points find their way back to the right fold."""
    point_id, payload = tagged
    return (point_id, _run_chunk_folded(payload))


def slice_ranges(
    start: int, end: int, lease_trials: int
) -> List[Tuple[int, int]]:
    """Split the trial range ``[start, end)`` into consecutive
    ``[s, e)`` slices of at most ``lease_trials`` trials each.

    The distributed coordinator's shard rule: trial ``i``'s seed is a
    pure function of ``(base_seed, i)`` and folds are commutative, so a
    batch sliced into leases produces byte-identical rows however the
    slices land on nodes — slicing is pure scheduling metadata, exactly
    like chunk sizing.
    """
    if isinstance(lease_trials, bool) or not isinstance(lease_trials, int):
        raise ConfigurationError(
            f"lease_trials must be an integer, got {lease_trials!r}"
        )
    if lease_trials < 1:
        raise ConfigurationError(
            f"lease_trials must be >= 1, got {lease_trials}"
        )
    return [
        (s, min(s + lease_trials, end)) for s in range(start, end, lease_trials)
    ]


class PointState:
    """Master-side fold state of one in-flight campaign point.

    Shared between :func:`run_campaign`'s interleaved orchestrator and
    the distributed coordinator: batching (``next_batch`` — where stop
    decisions are allowed to happen), folding (commutative counters),
    the stop rule (``converged``), and finalization into an
    :class:`ExperimentResult` are one implementation, which is most of
    why a distributed campaign's rows match a single-host run's
    byte for byte.
    """

    def __init__(
        self,
        point_id: int,
        point: CampaignPoint,
        spec: ScenarioSpec,
        probe: int = 0,
    ):
        self.point_id = point_id
        self.point = point
        self.spec = spec
        self.counts: Counter = Counter()
        self.successes = 0
        self.steps_total = 0
        self.ran = 0
        self.dispatched = 0  # trial indices handed to workers so far
        self.dispatches = 0  # chunk payloads enqueued (scheduling metadata)
        self.pending = 0  # chunks of the current batch still out
        #: Calibration split for fixed-trial points of an unseen
        #: scenario: the first ``probe`` trials go out as their own
        #: batch (one bounded chunk) so the measured fold seeds the cost
        #: model before the remainder is chunked adaptively. Batch
        #: boundaries are where stop decisions happen, but a fixed
        #: budget has no stop rule — the split cannot change results.
        self.probe = probe
        self.started = time.perf_counter()
        #: Monotonic instant the point's timeout expires; armed when its
        #: first chunk *result arrives* (not at admission or submission —
        #: a point must not burn budget on pool spawn, worker imports, or
        #: sitting queued behind another point's chunks).
        self.deadline: Optional[float] = None
        #: A deadline abandoned this point: no further batches dispatch,
        #: and it finalizes into a ``timed_out`` row once its in-flight
        #: chunks drain.
        self.timed_out = False
        if point.budget is not None:
            self._batch_ends = point.budget.batch_ends()
        elif probe and point.trials and probe < point.trials:
            self._batch_ends = iter([probe, point.trials])
        else:
            self._batch_ends = iter([point.trials])

    def next_batch(self) -> Optional[Tuple[int, int]]:
        """The next ``[start, end)`` trial range to dispatch, or None."""
        for end in self._batch_ends:
            if end > self.dispatched:
                start, self.dispatched = self.dispatched, end
                return (start, end)
        return None

    def fold(self, chunk_fold) -> None:
        counts, successes, steps_total, trials = chunk_fold[:4]
        self.counts.update(counts)
        self.successes += successes
        self.steps_total += steps_total
        self.ran += trials

    def converged(self) -> bool:
        """Whether the stop rule fires at the current batch boundary."""
        budget = self.point.budget
        return budget is not None and budget.satisfied(
            self.successes, self.ran, counts=self.counts
        )

    def exhausted(self) -> bool:
        """Whether every requested trial has already arrived — i.e. the
        result is complete and a deadline lapsing *now* has nothing left
        to save. Decided without touching the batch iterator, so the
        deadline sweep can consult it safely mid-flight."""
        if self.pending > 0 or self.ran < self.dispatched:
            return False
        budget = self.point.budget
        if budget is None:
            return self.dispatched >= (self.point.trials or 0)
        return self.converged() or self.dispatched >= budget.max_trials

    def finalize(self) -> ExperimentResult:
        point = self.point
        return ExperimentResult(
            scenario=point.scenario,
            params=point.params,
            trials=self.ran,
            base_seed=point.base_seed,
            outcomes=[],
            distribution=OutcomeDistribution(
                n=self.spec.size(point.params), trials=self.ran, counts=self.counts
            ),
            successes=proportion(
                self.successes,
                self.ran,
                z=point.budget.z if point.budget else 1.96,
            ),
            max_steps=point.max_steps,
            elapsed=time.perf_counter() - self.started,
            steps_total=self.steps_total,
            dispatches=self.dispatches,
            budget=point.budget,
            timed_out=self.timed_out,
        )


def run_campaign(
    points: Sequence[CampaignPoint],
    workers: WorkerCount = 1,
    pool: Optional[WorkerPool] = None,
    completed: Optional[Collection[str]] = None,
    chunk_size: Optional[int] = None,
    schedule: ScheduleRef = None,
    point_timeout: Optional[float] = None,
    max_wall_clock: Optional[float] = None,
    chunker: Optional[AdaptiveChunker] = None,
) -> Iterator[ExperimentResult]:
    """Run campaign points against one shared pool, yielding results.

    Points whose resume key is in ``completed`` are skipped; the
    remainder are admitted in the order ``schedule`` dictates (a
    :class:`PointScheduler`, a strategy name, or ``None`` for manifest
    order). With a parallel pool, chunks from up to ``2 × workers``
    points are interleaved so shallow grids keep the workers saturated;
    results then arrive in *completion* order. Serial pools
    (``workers == 1``) run points in admission order. The emitted row
    *set* is identical whatever the schedule and worker count — only
    ordering differs.

    ``point_timeout`` (seconds) bounds each point: an exceeded point is
    abandoned cooperatively at its next chunk boundary and yielded as a
    ``timed_out`` partial result (``result.timed_out``; excluded from
    resume identities so a rerun retries it) while the other points keep
    draining. The clock starts at the point's first evidence of progress
    (serial: when the point starts; interleaved: when its first chunk
    result arrives, so pool spawn and queue wait are not charged).
    ``max_wall_clock`` (seconds, measured from the first iteration)
    bounds the whole campaign: on expiry no new work is admitted,
    in-flight points drain into ``timed_out`` rows, and the iterator
    raises :class:`CampaignDeadline` — everything yielded before the
    raise is a complete checkpoint. Timed-out rows are exact partial
    folds of the trials that ran; completed points' rows are untouched
    by either guard.

    Chunk sizing is cost-adaptive by default: a shared
    :class:`~repro.experiments.chunking.AdaptiveChunker` (a fresh one
    unless ``chunker`` is given — pass one seeded from a ``.timings``
    sidecar to start warm) learns per-trial seconds from every folded
    chunk and sizes later dispatches toward its wall-seconds target.
    An explicit ``chunk_size`` disables it and pins the size instead.
    Chunking never affects the emitted rows, only scheduling.

    The iterator is lazy; closing it (or exhausting it) closes a
    self-created pool, while an injected ``pool`` stays open for the
    caller's next campaign.
    """
    for flag, value in (
        ("point_timeout", point_timeout),
        ("max_wall_clock", max_wall_clock),
    ):
        if value is not None and (
            isinstance(value, bool)
            or not isinstance(value, (int, float))
            # `not >` (instead of `<=`) so NaN is rejected too: every
            # comparison against a NaN deadline is False, which would
            # silently disarm the guard the caller asked for.
            or not value > 0
        ):
            raise ConfigurationError(
                f"{flag} must be a positive number of seconds, got {value!r}"
            )
    scheduler = as_scheduler(schedule)
    if chunker is None and chunk_size is None:
        chunker = AdaptiveChunker()
    done = frozenset(completed) if completed else frozenset()
    # Resolve scenarios and parameters eagerly: a stale manifest or an
    # unknown parameter fails before work starts, hand-built points with
    # partial params behave identically at every worker count (workers
    # ship fully-resolved params), and resume keys are computed on
    # resolved params — the same normalisation sweep rows get.
    specs: Dict[str, ScenarioSpec] = {}
    normalized: List[CampaignPoint] = []
    for point in points:
        spec = specs.get(point.scenario)
        if spec is None:
            spec = specs[point.scenario] = get_scenario(point.scenario)
        resolved = spec.resolve_params(point.params)
        if resolved != point.params:
            point = replace(point, params=resolved)
        normalized.append(point)
    todo = scheduler.order([p for p in normalized if p.key() not in done])

    def _run() -> Iterator[ExperimentResult]:
        own_pool = pool is None
        active_pool = pool if pool is not None else WorkerPool(workers)
        wall_deadline = (
            time.monotonic() + max_wall_clock
            if max_wall_clock is not None
            else None
        )
        try:
            if not active_pool.parallel:
                yield from _run_serial(
                    todo, specs, active_pool, chunk_size,
                    point_timeout, wall_deadline, chunker,
                )
            else:
                yield from _run_interleaved(
                    todo, specs, active_pool, chunk_size,
                    point_timeout, wall_deadline, chunker,
                )
        except BaseException:
            # Error path (including KeyboardInterrupt and an abandoned
            # iterator's GeneratorExit): a graceful close would block on
            # whatever is still queued — kill a self-created pool's
            # workers instead. Injected pools stay the caller's problem.
            if own_pool:
                active_pool.terminate()
            raise
        if own_pool:
            active_pool.close()

    return _run()


def _run_serial(
    todo: Sequence[CampaignPoint],
    specs: Mapping[str, ScenarioSpec],
    pool: WorkerPool,
    chunk_size: Optional[int],
    point_timeout: Optional[float],
    wall_deadline: Optional[float],
    chunker: Optional[AdaptiveChunker],
) -> Iterator[ExperimentResult]:
    last: Optional[ExperimentResult] = None
    for position, point in enumerate(todo):
        now = time.monotonic()
        if wall_deadline is not None and now >= wall_deadline:
            raise CampaignDeadline(pending=len(todo) - position)
        deadline = None if point_timeout is None else now + point_timeout
        if wall_deadline is not None:
            deadline = (
                wall_deadline if deadline is None else min(deadline, wall_deadline)
            )
        runner = ExperimentRunner(
            pool=pool,
            max_steps=point.max_steps,
            chunk_size=chunk_size,
            chunker=chunker,
        )
        last = runner.run(
            specs[point.scenario],
            point.trials,
            base_seed=point.base_seed,
            params=point.params,
            keep_outcomes=False,
            budget=point.budget,
            deadline=deadline,
        )
        yield last
    if (
        wall_deadline is not None
        and last is not None
        and last.timed_out
        and time.monotonic() >= wall_deadline
    ):
        # The global deadline cut the final point mid-run: its retry is
        # still owed, so the campaign must not look complete.
        raise CampaignDeadline(pending=0)


def _run_interleaved(
    todo: Sequence[CampaignPoint],
    specs: Mapping[str, ScenarioSpec],
    pool: WorkerPool,
    chunk_size: Optional[int],
    point_timeout: Optional[float],
    wall_deadline: Optional[float],
    chunker: Optional[AdaptiveChunker],
) -> Iterator[ExperimentResult]:
    """Grid-level parallelism: many points' chunks share the pool.

    The master keeps up to ``2 × workers`` points *active* — enough that
    the payload queue never drains while points with tiny budgets finish
    — dispatching each point batch-by-batch (a barrier per batch is what
    keeps adaptive stop decisions worker-invariant) and folding tagged
    chunk results as the pool's callback thread hands them over. Chunks
    are trickled into the pool at most
    :attr:`~repro.experiments.pool.WorkerPool.dispatch_window` at a time
    — the same no-oversubscription cap the runner's streaming path
    enforces — with the surplus buffered master-side.

    Deadlines are enforced at the same place stop decisions are: chunk
    arrivals. A point past its timeout stops dispatching (its queued
    chunks are dropped), waits out its in-flight chunks, and finalizes
    into a ``timed_out`` row — other points keep the pool busy
    throughout. When the campaign-wide deadline passes, every active
    point is drained the same way, admissions stop, and the generator
    raises :class:`CampaignDeadline` once the pool is quiet.
    """
    results: "queue.Queue" = queue.Queue()
    waiting = deque(enumerate(todo))
    active: Dict[int, PointState] = {}
    payload_queue: deque = deque()  # (point_id, chunk payload)
    max_active = max(2 * pool.workers, 4)
    # In-flight cap: the pool's oversubscription window when workers
    # exceed cores; otherwise 2x the worker count, so every worker has a
    # spare chunk queued and never waits a master round-trip.
    window = pool.dispatch_window
    if window >= pool.workers:
        window = 2 * pool.workers
    inflight = 0
    draining = False  # global deadline hit: no admissions, no batches
    never_started = 0  # abandoned points that ran zero trials

    def _pump() -> None:
        """Top the pool up to the dispatch window from the payload queue."""
        nonlocal inflight
        while payload_queue and inflight < window:
            point_id, payload = payload_queue.popleft()
            pool.submit(
                _campaign_chunk,
                (point_id, payload),
                callback=lambda result: results.put(("ok",) + result),
                error_callback=lambda exc, pid=point_id: results.put(
                    ("err", pid, exc)
                ),
            )
            inflight += 1

    def _abandon(state: PointState) -> None:
        """Mark the point timed out and drop its not-yet-submitted
        chunks; in-flight chunks drain normally (cooperative cutoff)."""
        state.timed_out = True
        kept = [(pid, pl) for pid, pl in payload_queue if pid != state.point_id]
        state.pending -= len(payload_queue) - len(kept)
        payload_queue.clear()
        payload_queue.extend(kept)

    def _enqueue_batch(state: PointState) -> bool:
        """Queue the point's next batch; False when no work is left to
        send (zero-trial points, exhausted schedules)."""
        batch = state.next_batch()
        if batch is None:
            return False
        start, end = batch
        size = chunk_size
        if size is None and state.probe and end <= state.probe:
            # The calibration batch ships as one bounded chunk so its
            # measured fold is a clean per-trial estimate.
            size = state.probe
        payloads = chunk_payloads(
            state.spec,
            state.point.params,
            state.point.base_seed,
            range(start, end),
            False,
            state.point.max_steps,
            workers=pool.workers,
            chunk_size=size,
            chunker=chunker,
        )
        if not payloads:
            return False
        state.dispatches += len(payloads)
        state.pending = len(payloads)
        for payload in payloads:
            payload_queue.append((state.point_id, payload))
        return True

    def _activate() -> Iterator[ExperimentResult]:
        """Admit waiting points until the active window is full; points
        with no trials to run complete synchronously right here."""
        if draining:
            return
        while waiting and len(active) < max_active:
            point_id, point = waiting.popleft()
            probe = 0
            if chunker is not None and chunk_size is None and point.budget is None:
                probe = chunker.calibration_trials(
                    point.scenario, point.trials or 0
                )
            state = PointState(point_id, point, specs[point.scenario], probe=probe)
            if _enqueue_batch(state):
                active[point_id] = state
            else:
                yield state.finalize()

    yield from _activate()
    _pump()
    while active:
        kind, point_id, payload = results.get()
        inflight -= 1
        if kind == "err":
            raise ConfigurationError(
                f"campaign point {active[point_id].point.scenario!r} "
                f"{active[point_id].point.params} failed: {payload}"
            ) from payload
        state = active[point_id]
        if chunker is not None and len(payload) > 4:
            chunker.observe(state.point.scenario, payload[3], payload[4])
        state.fold(payload)
        state.pending -= 1
        if point_timeout is None and wall_deadline is None:
            # Unguarded campaigns keep PR 4's O(1) boundary check — the
            # deadline sweeps below are pure overhead when nothing can
            # ever expire.
            if state.pending == 0:
                # Batch boundary: the only place stop decisions happen.
                if state.converged() or not _enqueue_batch(state):
                    del active[point_id]
                    yield state.finalize()
                    yield from _activate()
            _pump()
            continue
        # Deadline sweep — every chunk arrival is a chunk boundary, the
        # one place cooperative cancellation may act.
        now = time.monotonic()
        if state.deadline is None and point_timeout is not None:
            # First evidence of progress arms the point's clock: pool
            # spawn, worker imports, and queue wait are not its fault.
            state.deadline = now + point_timeout
        if not draining and wall_deadline is not None and now >= wall_deadline:
            draining = True
        for other in list(active.values()):
            if (
                not other.timed_out
                # A point whose every trial already arrived is complete:
                # abandoning it would discard a finished result (and
                # retry the point forever), so the deadline spares it.
                and not other.exhausted()
                and (
                    draining
                    or (other.deadline is not None and now >= other.deadline)
                )
            ):
                _abandon(other)
        # Finalize whatever reached a boundary: the arriving point at a
        # normal batch boundary, plus any abandoned point whose
        # in-flight chunks have drained.
        for other in list(active.values()):
            if other.pending > 0:
                continue
            if other.timed_out and other.exhausted():
                # The abandoned point's in-flight chunks turned out to
                # be all of it: every dispatched trial arrived and no
                # batch remains, so the result is complete — nothing
                # was actually lost to the deadline.
                other.timed_out = False
                del active[other.point_id]
                yield other.finalize()
                yield from _activate()
            elif other.timed_out:
                del active[other.point_id]
                if other.ran:
                    yield other.finalize()
                else:
                    # Abandoned before a single trial ran (global
                    # deadline while fully queued): no partial fold to
                    # record — count it as never started.
                    never_started += 1
                yield from _activate()
            elif other is state:
                # Batch boundary: the only place stop decisions happen.
                if other.converged() or not _enqueue_batch(other):
                    del active[other.point_id]
                    yield other.finalize()
                    yield from _activate()
        _pump()
    if draining:
        raise CampaignDeadline(pending=len(waiting) + never_started)
