"""Campaigns: a manifest of scenario grids run against one resume store.

A *campaign* is the unit above a sweep: a JSON manifest of ``(scenario |
tag, grid, trials, base_seed)`` entries — the whole experimental section
of the paper as one file — expanded into concrete
:class:`CampaignPoint`\\ s and run through one shared
:class:`~repro.experiments.pool.WorkerPool` with **grid-level
parallelism**: chunks from *different* grid points interleave in the
pool, so a wide, shallow grid (many points, few trials each) keeps every
worker busy instead of serialising point-by-point. A
:class:`PointScheduler` decides the admission order (``manifest-order``
default, ``longest-first`` to start expensive stragglers early); the
row set is schedule-invariant. Exposed on the command line as ``python
-m repro campaign manifest.json --out rows.jsonl --resume --workers N
[--schedule longest-first] [--dry-run]``.

Manifest format (top-level defaults overlaid by per-entry values; a bare
JSON list is accepted as ``entries`` with no defaults)::

    {
      "trials": 400,
      "base_seed": 0,
      "entries": [
        {"scenario": "attack/cubic", "grid": {"n": [66, 111], "target": 7}},
        {"tag": "sync", "trials": 100, "grid": {"n": [4, 8]}},
        {"scenario": "fuzz/random-deviation",
         "budget": {"ci_width": 0.1, "min_trials": 32, "max_trials": 2000}}
      ]
    }

``tag`` entries expand to every registered scenario carrying that tag.
An entry (or the campaign) may replace its fixed ``trials`` with an
adaptive ``budget`` (see :class:`~repro.experiments.budget.BudgetPolicy`).
Everything is validated eagerly at expansion time — unknown scenarios,
empty tags, grid keys a scenario does not declare, and malformed budgets
all raise before any trial runs.

Determinism contract: every row a campaign emits is identical to the row
a lone ``run_scenario``/``sweep`` call with the same identity would emit,
whatever the worker count or chunk interleaving — chunk folds are
commutative counters, and adaptive stop decisions happen only at batch
boundaries whose schedule is a pure function of the policy. Only the
*order* rows complete in is scheduling-dependent, which is why resume
keys, not file order, identify finished points.
"""

import json
import queue
import time
from collections import Counter, deque
from dataclasses import dataclass, replace
from typing import (
    Any,
    Collection,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.distribution import OutcomeDistribution
from repro.analysis.stats import proportion
from repro.experiments.budget import BudgetPolicy, as_policy
from repro.experiments.pool import WorkerCount, WorkerPool
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    _run_chunk_folded,
    chunk_payloads,
)
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    get_scenario,
    known_tags,
    scenario_names,
)
from repro.experiments.sweep import expand_grid, resume_key
from repro.util.errors import ConfigurationError

#: Keys a manifest entry may carry.
_ENTRY_KEYS = {"scenario", "tag", "grid", "trials", "base_seed", "max_steps", "budget"}
#: Keys the manifest's top level may carry (campaign-wide defaults).
_TOP_KEYS = {"entries", "trials", "base_seed", "max_steps", "budget"}


@dataclass(frozen=True)
class CampaignPoint:
    """One fully-resolved experiment a campaign will run.

    ``params`` are resolved (defaults overlaid); exactly one of
    ``trials`` (fixed budget) and ``budget`` (adaptive) is set.
    """

    scenario: str
    params: Params
    trials: Optional[int]
    base_seed: int
    max_steps: Optional[int]
    budget: Optional[BudgetPolicy]

    def key(self) -> str:
        """The point's resume key — same function sweep rows use, so one
        output file can be shared by sweeps and campaigns."""
        return resume_key(
            self.scenario,
            self.params,
            self.trials,
            self.base_seed,
            self.max_steps,
            self.budget,
        )


def load_manifest(source: Union[str, Mapping, Sequence]) -> List[CampaignPoint]:
    """Load and expand a campaign manifest into concrete points.

    ``source`` is a JSON file path, an already-parsed manifest mapping,
    or a bare entry list. Expansion validates everything eagerly and
    deduplicates points by resume key (tag overlaps, repeated entries),
    preserving first-occurrence order.
    """
    if isinstance(source, str):
        try:
            with open(source) as f:
                raw = json.load(f)
        except OSError as exc:
            raise ConfigurationError(f"cannot read manifest: {exc}") from None
        except ValueError as exc:
            raise ConfigurationError(
                f"manifest {source!r} is not valid JSON: {exc}"
            ) from None
    else:
        raw = source
    return expand_manifest(raw)


def expand_manifest(raw: Union[Mapping, Sequence]) -> List[CampaignPoint]:
    """Expand a parsed manifest into validated, deduplicated points."""
    if isinstance(raw, Mapping):
        unknown = sorted(set(raw) - _TOP_KEYS)
        if unknown:
            raise ConfigurationError(
                f"manifest has unknown top-level keys {unknown}; "
                f"known: {sorted(_TOP_KEYS)}"
            )
        entries = raw.get("entries")
        defaults = raw
    elif isinstance(raw, Sequence) and not isinstance(raw, (str, bytes)):
        entries, defaults = raw, {}
    else:
        raise ConfigurationError(
            "manifest must be an object with 'entries' or a list of entries"
        )
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise ConfigurationError("manifest 'entries' must be a list")
    if not entries:
        raise ConfigurationError("manifest has no entries")

    points: List[CampaignPoint] = []
    seen_keys = set()
    for position, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise ConfigurationError(
                f"manifest entry #{position} must be an object"
            )
        unknown = sorted(set(entry) - _ENTRY_KEYS)
        if unknown:
            raise ConfigurationError(
                f"manifest entry #{position} has unknown keys {unknown}; "
                f"known: {sorted(_ENTRY_KEYS)}"
            )
        for point in _expand_entry(position, entry, defaults):
            key = point.key()
            if key not in seen_keys:
                seen_keys.add(key)
                points.append(point)
    return points


def _expand_entry(
    position: int, entry: Mapping[str, Any], defaults: Mapping[str, Any]
) -> Iterator[CampaignPoint]:
    where = f"manifest entry #{position}"
    has_scenario = "scenario" in entry
    has_tag = "tag" in entry
    if has_scenario == has_tag:
        raise ConfigurationError(
            f"{where} needs exactly one of 'scenario' or 'tag'"
        )
    if has_tag:
        names = scenario_names(tag=entry["tag"])
        if not names:
            tags = ", ".join(known_tags()) or "<none>"
            raise ConfigurationError(
                f"{where}: no registered scenario has tag {entry['tag']!r}; "
                f"known tags: {tags}"
            )
    else:
        names = [get_scenario(entry["scenario"]).name]

    def _setting(key: str) -> Any:
        return entry[key] if key in entry else defaults.get(key)

    if "budget" in entry and "trials" in entry:
        raise ConfigurationError(
            f"{where} sets both 'trials' and 'budget'; pick one"
        )
    budget = as_policy(_setting("budget")) if "budget" in entry else None
    trials = None
    if budget is None:
        # No entry-level budget: an entry-level trials wins, then the
        # campaign default trials, then the campaign default budget.
        if entry.get("trials") is not None:
            trials = entry["trials"]
        elif defaults.get("trials") is not None:
            trials = defaults["trials"]
        elif defaults.get("budget") is not None:
            budget = as_policy(defaults["budget"])
        else:
            raise ConfigurationError(
                f"{where} has no 'trials' or 'budget' "
                "(own or campaign-level)"
            )
    if trials is not None:
        if not isinstance(trials, int) or isinstance(trials, bool) or trials < 0:
            raise ConfigurationError(
                f"{where}: trials must be a non-negative integer, got {trials!r}"
            )
    base_seed = _setting("base_seed") or 0
    max_steps = _setting("max_steps")
    grid = entry.get("grid")
    if grid is not None and not isinstance(grid, Mapping):
        raise ConfigurationError(f"{where}: 'grid' must be an object")
    for name in names:
        spec = get_scenario(name)
        for grid_point in expand_grid(grid):
            yield CampaignPoint(
                scenario=name,
                params=spec.resolve_params(grid_point),
                trials=trials,
                base_seed=base_seed,
                max_steps=max_steps,
                budget=budget,
            )


# ----------------------------------------------------------------------
# Point scheduling
# ----------------------------------------------------------------------


def scheduled_cost(point: CampaignPoint, spec: Optional[ScenarioSpec] = None) -> int:
    """Rough units of work one campaign point is expected to cost.

    ``trials × outcome-space size`` — the trial count is the dominant
    axis and the scenario's outcome-space size (usually the network size
    ``n``) is the cheap, always-available proxy for per-trial work.
    Adaptive points are costed at their budget's ``max_trials``: the
    scheduler plans for the worst case, since the realized count is only
    known after the point runs. The estimate feeds the ``longest-first``
    strategy and the ``--dry-run`` listing; it never affects rows.
    """
    if spec is None:
        spec = get_scenario(point.scenario)
    trials = point.trials if point.budget is None else point.budget.max_trials
    return (trials or 0) * max(spec.size(point.params), 1)


#: An admission plan: (point, scheduled cost) pairs in admission order.
CostedPoints = List[Tuple[CampaignPoint, int]]


def _order_manifest(costed: CostedPoints) -> CostedPoints:
    return list(costed)


def _order_longest_first(costed: CostedPoints) -> CostedPoints:
    # Stable sort on descending cost: equal-cost points keep manifest
    # order, so the schedule is a pure function of the point list.
    return [
        pair
        for _, pair in sorted(
            enumerate(costed), key=lambda entry: (-entry[1][1], entry[0])
        )
    ]


#: Strategy name -> ordering function over a point sequence.
_SCHEDULES = {
    "manifest-order": _order_manifest,
    "longest-first": _order_longest_first,
}


def schedule_names() -> List[str]:
    """Sorted names of the registered scheduling strategies."""
    return sorted(_SCHEDULES)


class PointScheduler:
    """Decides the order campaign points are admitted to the pool.

    Two strategies:

    - ``manifest-order`` (default): points run in manifest order — the
      byte-compatible behaviour every earlier campaign had.
    - ``longest-first``: points are admitted by descending
      :func:`scheduled_cost`, so the expensive stragglers start while
      the pool still has company and the tail of the campaign is made of
      short points — the classic LPT heuristic for shaving makespan on
      wide grids.

    Scheduling is pure admission metadata: the same rows with the same
    resume keys are emitted under every strategy (each point's trials
    depend only on its own ``(base_seed, index)`` derivation), so
    ``--schedule`` can be changed between a run and its ``--resume``
    without invalidating anything. Only completion order — and
    wall-clock on multicore hosts — changes.
    """

    def __init__(self, name: str = "manifest-order"):
        try:
            self._order = _SCHEDULES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown schedule {name!r}; "
                f"known: {', '.join(schedule_names())}"
            ) from None
        self.name = name

    def plan(self, points: Sequence[CampaignPoint]) -> CostedPoints:
        """Admission-ordered ``(point, scheduled cost)`` pairs.

        Costs are computed once per point (specs resolved once per
        scenario) and carried through the ordering — the ``--dry-run``
        listing reads them straight off the plan instead of re-deriving
        them per line.
        """
        specs: Dict[str, ScenarioSpec] = {}
        costed = []
        for point in points:
            spec = specs.get(point.scenario)
            if spec is None:
                spec = specs[point.scenario] = get_scenario(point.scenario)
            costed.append((point, scheduled_cost(point, spec)))
        return self._order(costed)

    def order(self, points: Sequence[CampaignPoint]) -> List[CampaignPoint]:
        """The admission order of ``points`` under this strategy."""
        if self._order is _order_manifest:
            # Admission order needs no costs here — don't pay a topology
            # build per point for the default schedule.
            return list(points)
        return [point for point, _ in self.plan(points)]


#: A schedule argument as APIs accept it: a scheduler, a strategy name,
#: or ``None`` for the default (manifest order).
ScheduleRef = Union[str, PointScheduler, None]


def as_scheduler(schedule: ScheduleRef) -> PointScheduler:
    """Normalise a schedule argument to a :class:`PointScheduler`."""
    if isinstance(schedule, PointScheduler):
        return schedule
    return PointScheduler(schedule if schedule is not None else "manifest-order")


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------


def _campaign_chunk(tagged: Tuple[int, Any]) -> Tuple[int, Any]:
    """Worker entry point: a point-tagged folded chunk, so results from
    interleaved grid points find their way back to the right fold."""
    point_id, payload = tagged
    return (point_id, _run_chunk_folded(payload))


class _PointState:
    """Master-side fold state of one in-flight campaign point."""

    def __init__(self, point_id: int, point: CampaignPoint, spec: ScenarioSpec):
        self.point_id = point_id
        self.point = point
        self.spec = spec
        self.counts: Counter = Counter()
        self.successes = 0
        self.steps_total = 0
        self.ran = 0
        self.dispatched = 0  # trial indices handed to workers so far
        self.pending = 0  # chunks of the current batch still out
        self.started = time.perf_counter()
        self._batch_ends = (
            point.budget.batch_ends()
            if point.budget is not None
            else iter([point.trials])
        )

    def next_batch(self) -> Optional[Tuple[int, int]]:
        """The next ``[start, end)`` trial range to dispatch, or None."""
        for end in self._batch_ends:
            if end > self.dispatched:
                start, self.dispatched = self.dispatched, end
                return (start, end)
        return None

    def fold(self, chunk_fold) -> None:
        counts, successes, steps_total, trials = chunk_fold
        self.counts.update(counts)
        self.successes += successes
        self.steps_total += steps_total
        self.ran += trials

    def converged(self) -> bool:
        """Whether the stop rule fires at the current batch boundary."""
        budget = self.point.budget
        return budget is not None and budget.satisfied(self.successes, self.ran)

    def finalize(self) -> ExperimentResult:
        point = self.point
        return ExperimentResult(
            scenario=point.scenario,
            params=point.params,
            trials=self.ran,
            base_seed=point.base_seed,
            outcomes=[],
            distribution=OutcomeDistribution(
                n=self.spec.size(point.params), trials=self.ran, counts=self.counts
            ),
            successes=proportion(
                self.successes,
                self.ran,
                z=point.budget.z if point.budget else 1.96,
            ),
            max_steps=point.max_steps,
            elapsed=time.perf_counter() - self.started,
            steps_total=self.steps_total,
            budget=point.budget,
        )


def run_campaign(
    points: Sequence[CampaignPoint],
    workers: WorkerCount = 1,
    pool: Optional[WorkerPool] = None,
    completed: Optional[Collection[str]] = None,
    chunk_size: Optional[int] = None,
    schedule: ScheduleRef = None,
) -> Iterator[ExperimentResult]:
    """Run campaign points against one shared pool, yielding results.

    Points whose resume key is in ``completed`` are skipped; the
    remainder are admitted in the order ``schedule`` dictates (a
    :class:`PointScheduler`, a strategy name, or ``None`` for manifest
    order). With a parallel pool, chunks from up to ``2 × workers``
    points are interleaved so shallow grids keep the workers saturated;
    results then arrive in *completion* order. Serial pools
    (``workers == 1``) run points in admission order. The emitted row
    *set* is identical whatever the schedule and worker count — only
    ordering differs.

    The iterator is lazy; closing it (or exhausting it) closes a
    self-created pool, while an injected ``pool`` stays open for the
    caller's next campaign.
    """
    scheduler = as_scheduler(schedule)
    done = frozenset(completed) if completed else frozenset()
    # Resolve scenarios and parameters eagerly: a stale manifest or an
    # unknown parameter fails before work starts, hand-built points with
    # partial params behave identically at every worker count (workers
    # ship fully-resolved params), and resume keys are computed on
    # resolved params — the same normalisation sweep rows get.
    specs: Dict[str, ScenarioSpec] = {}
    normalized: List[CampaignPoint] = []
    for point in points:
        spec = specs.get(point.scenario)
        if spec is None:
            spec = specs[point.scenario] = get_scenario(point.scenario)
        resolved = spec.resolve_params(point.params)
        if resolved != point.params:
            point = replace(point, params=resolved)
        normalized.append(point)
    todo = scheduler.order([p for p in normalized if p.key() not in done])

    def _run() -> Iterator[ExperimentResult]:
        own_pool = pool is None
        active_pool = pool if pool is not None else WorkerPool(workers)
        try:
            if not active_pool.parallel:
                yield from _run_serial(todo, specs, active_pool, chunk_size)
            else:
                yield from _run_interleaved(todo, specs, active_pool, chunk_size)
        finally:
            if own_pool:
                active_pool.close()

    return _run()


def _run_serial(
    todo: Sequence[CampaignPoint],
    specs: Mapping[str, ScenarioSpec],
    pool: WorkerPool,
    chunk_size: Optional[int],
) -> Iterator[ExperimentResult]:
    for point in todo:
        runner = ExperimentRunner(
            pool=pool, max_steps=point.max_steps, chunk_size=chunk_size
        )
        yield runner.run(
            specs[point.scenario],
            point.trials,
            base_seed=point.base_seed,
            params=point.params,
            keep_outcomes=False,
            budget=point.budget,
        )


def _run_interleaved(
    todo: Sequence[CampaignPoint],
    specs: Mapping[str, ScenarioSpec],
    pool: WorkerPool,
    chunk_size: Optional[int],
) -> Iterator[ExperimentResult]:
    """Grid-level parallelism: many points' chunks share the pool.

    The master keeps up to ``2 × workers`` points *active* — enough that
    the payload queue never drains while points with tiny budgets finish
    — dispatching each point batch-by-batch (a barrier per batch is what
    keeps adaptive stop decisions worker-invariant) and folding tagged
    chunk results as the pool's callback thread hands them over. Chunks
    are trickled into the pool at most
    :attr:`~repro.experiments.pool.WorkerPool.dispatch_window` at a time
    — the same no-oversubscription cap the runner's streaming path
    enforces — with the surplus buffered master-side.
    """
    results: "queue.Queue" = queue.Queue()
    waiting = deque(enumerate(todo))
    active: Dict[int, _PointState] = {}
    payload_queue: deque = deque()  # (point_id, chunk payload)
    max_active = max(2 * pool.workers, 4)
    # In-flight cap: the pool's oversubscription window when workers
    # exceed cores; otherwise 2x the worker count, so every worker has a
    # spare chunk queued and never waits a master round-trip.
    window = pool.dispatch_window
    if window >= pool.workers:
        window = 2 * pool.workers
    inflight = 0

    def _pump() -> None:
        """Top the pool up to the dispatch window from the payload queue."""
        nonlocal inflight
        while payload_queue and inflight < window:
            point_id, payload = payload_queue.popleft()
            pool.submit(
                _campaign_chunk,
                (point_id, payload),
                callback=lambda result: results.put(("ok",) + result),
                error_callback=lambda exc, pid=point_id: results.put(
                    ("err", pid, exc)
                ),
            )
            inflight += 1

    def _enqueue_batch(state: _PointState) -> bool:
        """Queue the point's next batch; False when no work is left to
        send (zero-trial points, exhausted schedules)."""
        batch = state.next_batch()
        if batch is None:
            return False
        start, end = batch
        payloads = chunk_payloads(
            state.spec,
            state.point.params,
            state.point.base_seed,
            range(start, end),
            False,
            state.point.max_steps,
            workers=pool.workers,
            chunk_size=chunk_size,
        )
        if not payloads:
            return False
        state.pending = len(payloads)
        for payload in payloads:
            payload_queue.append((state.point_id, payload))
        return True

    def _activate() -> Iterator[ExperimentResult]:
        """Admit waiting points until the active window is full; points
        with no trials to run complete synchronously right here."""
        while waiting and len(active) < max_active:
            point_id, point = waiting.popleft()
            state = _PointState(point_id, point, specs[point.scenario])
            if _enqueue_batch(state):
                active[point_id] = state
            else:
                yield state.finalize()

    yield from _activate()
    _pump()
    while active:
        kind, point_id, payload = results.get()
        inflight -= 1
        if kind == "err":
            raise ConfigurationError(
                f"campaign point {active[point_id].point.scenario!r} "
                f"{active[point_id].point.params} failed: {payload}"
            ) from payload
        state = active[point_id]
        state.fold(payload)
        state.pending -= 1
        if state.pending == 0:
            # Batch boundary: the only place stop decisions may happen.
            if state.converged() or not _enqueue_batch(state):
                del active[point_id]
                yield state.finalize()
                yield from _activate()
        _pump()
