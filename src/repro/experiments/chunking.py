"""Cost-adaptive chunk sizing: observed seconds decide trials-per-chunk.

The static heuristic the runner shipped with — ``count // (workers * 4)``
— sizes chunks by *trial count*, which was the right proxy when every
trial cost roughly the same. PR 6's batch kernels broke that premise by
two orders of magnitude: a biased-coin trial folds in under a
microsecond while an executor-backed ring trial still takes ~11 ms, so
one heuristic now either shreds cheap work into dispatch confetti (an
adaptive budget's 32-trial batch becomes sixteen 2-trial chunks, each
paying a pool round-trip for 30 µs of arithmetic) or would starve
deadline responsiveness on slow scenarios if simply made coarser.

:class:`AdaptiveChunker` replaces the proxy with the quantity the
heuristic was always approximating: **wall-seconds per chunk**. It wraps
the same :class:`~repro.experiments.campaign.CostModel` EWMA the
campaign scheduler learns from (so a ``.timings`` sidecar seeds it
across runs, and every folded chunk sharpens it in-run) and sizes chunks
toward :data:`TARGET_CHUNK_SECONDS`, floored at
:data:`MIN_CHUNK_SECONDS` so cheap scenarios are never shredded for
load balance, and capped at an even split across the workers so
expensive ones still parallelise. Scenarios the model has never seen
fall back to the static heuristic (returning ``None`` here), optionally
after a bounded *calibration* chunk — see
:meth:`AdaptiveChunker.calibration_trials`.

The contract that makes all of this free to take: **chunking never
affects results**. Trial ``i``'s seed is a pure function of
``(base_seed, i)`` and chunk folds are commutative counters, so the
rows are byte-identical however the index range is sliced — the
1-vs-4-worker determinism and golden-row suites pin it. Chunk sizing
may therefore depend on wall-clock measurements without ever
threatening reproducibility: it is scheduling metadata, exactly like
the admission order the cost model already feeds.
"""

import math
import threading
from typing import TYPE_CHECKING, Optional

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.experiments.campaign import CostModel

#: Wall-seconds one chunk should cost: coarse enough that dispatch and
#: kernel-call overhead vanish next to trial work, fine enough that
#: deadline checks (``--point-timeout``) and pool rebalancing happen a
#: few times a second.
TARGET_CHUNK_SECONDS = 0.25

#: Wall-seconds below which a chunk is not worth a dispatch: the
#: load-balance split (one chunk per worker) is ignored rather than
#: produce chunks cheaper than this — shipping 30 µs of kernel work to
#: four processes is how the static heuristic lost its factor.
MIN_CHUNK_SECONDS = 0.05

#: Trials in the calibration chunk of a scenario the model has never
#: seen. Matches :data:`~repro.experiments.pool.STREAM_CHUNK_TRIALS`:
#: big enough to amortise per-chunk overhead out of the first per-trial
#: estimate, small enough that probing an unknown (possibly ~10 ms per
#: trial) scenario stays a few seconds at worst.
CALIBRATION_TRIALS = 256


class AdaptiveChunker:
    """Sizes worker chunks from observed per-trial seconds.

    Wraps a :class:`~repro.experiments.campaign.CostModel` (its own by
    default, or a shared one — the CLI hands the same instance to the
    chunker and the ``longest-first`` scheduler so one ``.timings``
    sidecar feeds both). Thread-safe: the estimate service observes
    folds from many request threads against one chunker.

    ``chunk_size`` answers with ``None`` for scenarios the model has no
    evidence about — the caller (:func:`~repro.experiments.runner.
    chunk_payloads`) falls back to the static count heuristic, and an
    explicit user ``chunk_size`` always wins before either is consulted.
    """

    #: Lock discipline, checked by ``python -m repro lint`` (R201):
    #: the shared CostModel is read by every dispatching thread and
    #: written by observe() — PR 9 fixed exactly this class of
    #: unlocked-read bug by hand.
    _GUARDED_BY = {"cost_model": "_lock"}

    def __init__(
        self,
        cost_model: Optional["CostModel"] = None,
        target_seconds: float = TARGET_CHUNK_SECONDS,
        min_seconds: float = MIN_CHUNK_SECONDS,
    ):
        if not target_seconds > 0 or not min_seconds > 0:
            raise ConfigurationError(
                "chunk duration targets must be positive, got "
                f"target={target_seconds!r} min={min_seconds!r}"
            )
        if min_seconds > target_seconds:
            raise ConfigurationError(
                f"min_seconds ({min_seconds}) cannot exceed "
                f"target_seconds ({target_seconds})"
            )
        if cost_model is None:
            # Imported here, not at module level: campaign.py builds on
            # the runner, which builds on this module.
            from repro.experiments.campaign import CostModel

            cost_model = CostModel()
        self.cost_model = cost_model
        self.target_seconds = target_seconds
        self.min_seconds = min_seconds
        self._lock = threading.Lock()

    def per_trial_seconds(self, scenario: str) -> Optional[float]:
        """The model's EWMA per-trial seconds (None when unseen).

        Locked like every other path to the shared model: the estimate
        service (and now the campaign coordinator) reads this from
        request threads while compute threads ``observe()`` — an
        unlocked read races the model's internal dict writes.
        """
        with self._lock:
            return self.cost_model.per_trial_seconds(scenario)

    def scenarios(self) -> list:
        """Sorted scenario names with an observed cost (locked snapshot
        — the ``/metrics`` per-scenario cost gauge iterates this)."""
        with self._lock:
            return self.cost_model.scenarios()

    def observe(self, scenario: str, trials: int, elapsed: float) -> bool:
        """Fold one chunk's measured ``(trials, elapsed)`` into the model.

        Same tolerance as :meth:`CostModel.observe`: foreign or
        non-positive values are rejected, never raised — a clock hiccup
        must only cost an observation.
        """
        with self._lock:
            return self.cost_model.observe(scenario, trials, elapsed)

    def chunk_size(self, scenario: str, count: int, workers: int = 1) -> Optional[int]:
        """Trials per chunk for ``count`` trials of ``scenario``, or
        ``None`` when the model has no estimate (caller falls back to
        the static heuristic).

        Three forces, in priority order:

        - chunks never exceed :attr:`target_seconds` (responsiveness:
          deadlines and rebalancing act at chunk boundaries);
        - subject to that, the range splits across the workers (load
          balance — trials of one point are uniform, so an even split
          is also the minimal-dispatch one);
        - but never below :attr:`min_seconds` per chunk (cheap work is
          run in fewer, larger chunks instead of being shredded —
          splitting 30 µs of kernel time four ways buys nothing but
          IPC).
        """
        if count <= 0:
            return None
        with self._lock:
            per = self.cost_model.per_trial_seconds(scenario)
        if per is None or not per > 0 or not math.isfinite(per):
            return None
        target = max(1, int(self.target_seconds / per))
        balanced = math.ceil(count / max(workers, 1))
        floor = max(1, int(self.min_seconds / per))
        size = max(min(target, balanced), floor)
        return max(1, min(size, count))

    def calibration_trials(self, scenario: str, count: int) -> int:
        """Trials the runner should probe before chunking the remaining
        ``count - probe`` trials adaptively, or ``0`` when no probe is
        warranted (the scenario is already observed, or the range is too
        small for the split to pay for itself).

        The probe is the in-run feedback path: the first chunk of an
        unknown scenario runs at a bounded size, its fold's measured
        elapsed lands in the model, and the rest of the *same point* is
        then chunked from evidence instead of the count proxy.
        """
        if count <= 2 * CALIBRATION_TRIALS:
            return 0
        if self.per_trial_seconds(scenario) is not None:
            return 0
        return CALIBRATION_TRIALS
