"""Scenario specifications and the scenario registry.

A *scenario* names everything needed to run one Monte-Carlo trial of an
experiment: how to build the topology, how to build the protocol vector
(honest or adversarial), which scheduler to use, the default parameters,
and what counts as *success* for a trial. Bundling these behind a name
means the CLI, the benchmarks, and the examples all share one wiring
instead of each hand-rolling topology/protocol/scheduler glue.

Registry usage::

    from repro.experiments import get_scenario, register_scenario

    spec = get_scenario("attack/basic-cheat")
    params = spec.resolve_params({"n": 64, "target": 40})

Scenario names are flat strings; the builtin catalog uses the
``honest/<protocol>`` and ``attack/<name>`` convention. The registry is
import-time populated (see :mod:`repro.experiments.catalog`), so worker
processes that merely ``import repro.experiments`` can resolve any
builtin scenario by name — the key property that lets the parallel
runner ship ``(name, params)`` pairs across process boundaries instead
of pickled closures.
"""

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim.execution import FAIL
from repro.sim.scheduler import Scheduler
from repro.sim.strategy import Strategy
from repro.sim.topology import Topology, unidirectional_ring
from repro.util.errors import ConfigurationError

#: Scenario parameters: plain JSON-ish dict (ints/floats/strs/bools).
Params = Dict[str, Any]

#: Builds the communication graph for one trial.
TopologyFactory = Callable[[Params], Topology]

#: Builds the full strategy vector for one trial. The third argument is a
#: private random stream (label ``scenario``) drawn from the trial's
#: :class:`~repro.util.rng.RngRegistry`, for scenarios that randomise
#: their own setup (e.g. random adversary placement); deterministic
#: scenarios simply ignore it.
ProtocolFactory = Callable[[Topology, Params, random.Random], Mapping[Hashable, Strategy]]

#: Builds the (oblivious) scheduler for one trial; ``None`` means FIFO.
SchedulerFactory = Callable[[Params], Scheduler]

#: Classifies one finished trial's outcome as success/failure.
SuccessPredicate = Callable[[Any, Params], bool]

#: A self-contained trial for scenarios that do not run on the
#: asynchronous executor (lockstep sync engine, tree games, coin-toss
#: reductions, full-information games). Receives the resolved parameters,
#: the trial's private :class:`~repro.util.rng.RngRegistry` (derived from
#: ``(base_seed, index)`` exactly like executor trials), and the runner's
#: per-trial step budget override (``None`` = subsystem default). Must
#: return ``(outcome, steps)`` with a hashable outcome — and must derive
#: *all* randomness from the given registry so the registry-wide
#: determinism contract (identical rows at any worker count) holds.
TrialRunner = Callable[[Params, Any, Optional[int]], Tuple[Any, int]]

#: Post-processes a trial's raw outcome before scoring/histogramming
#: (e.g. leader id -> coin bit, renaming assignment -> one name).
OutcomeMap = Callable[[Any, Params], Any]

#: Vectorized whole-chunk trial kernel. Receives the chunk's per-trial
#: registry master seeds (trial ``i`` of an experiment always gets
#: ``derive_seed(base_seed, f"spawn:{i}")`` — exactly the seed of
#: :func:`repro.experiments.runner.trial_registry`) and the resolved
#: parameters, and returns ``(outcome_counts, steps_total)`` where
#: ``outcome_counts`` histograms the *final* outcomes (i.e. after
#: ``map_outcome``) and ``steps_total`` sums the per-trial step counts.
#: The contract is bit-exactness: the counts must equal what running
#: ``run_one_trial`` per seed would fold to, which means deriving all
#: randomness from the same labelled streams (``derive_seed(seed,
#: label)``) the scalar path uses. A kernel may return ``None`` to
#: decline a batch (an unsupported parameter corner); the runner then
#: falls back to the per-trial loop for that chunk, so declining is
#: always safe, never wrong.
BatchRunner = Callable[[Sequence[int], Params], Optional[Tuple[Dict[Any, int], int]]]

#: Size of the election-shaped outcome space (valid ids ``1..n``) for
#: scenarios whose outcomes are not the network's processor ids.
OutcomeSize = Callable[[Params], int]


def no_valid_ids(params: Params) -> int:
    """``outcome_size`` for scenarios whose outcomes are not ids at all
    (coin bits, probabilities, certificate bounds): the histogram keeps
    every count, but the valid-id-range statistics
    (:meth:`~repro.analysis.distribution.OutcomeDistribution.max_probability`
    and friends) report an empty range instead of silently misreading
    foreign outcomes as processor ids."""
    return 0


def ring_topology(params: Params) -> Topology:
    """Unidirectional ring of ``params['n']`` processors — the builder
    most scenarios share (module-level, so it pickles to workers)."""
    return unidirectional_ring(params["n"])


def _default_success(outcome: Any, params: Params) -> bool:
    """Default success predicate: the execution did not globally fail."""
    return outcome != FAIL


def forced_target(outcome: Any, params: Params) -> bool:
    """Success predicate for forcing attacks: outcome equals ``target``."""
    return outcome == params["target"]


def punished(outcome: Any, params: Params) -> bool:
    """Success predicate for punishment demos: the deviation was caught.

    Used by scenarios whose *claim* is that cheating ends in ``FAIL``
    (the sync last-round cheater, the fuzzer's unstructured deviations):
    a "successful" trial is one where the punishment mechanism fired.
    """
    return outcome == FAIL


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, parameterised experiment setup.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"attack/cubic"``.
    description:
        One-line human summary (shown by ``python -m repro sweep --list``).
    build_topology / build_protocol / build_scheduler:
        Factories invoked once per trial. ``build_scheduler=None`` selects
        the default :class:`~repro.sim.scheduler.FifoScheduler`. Both
        builders may be omitted when ``run_trial`` is given instead.
    run_trial:
        Self-contained trial function for scenarios outside the
        asynchronous executor (sync engine, tree games, coin-toss
        reductions, full-information games); mutually exclusive with the
        topology/protocol builders. See :data:`TrialRunner`.
    run_batch:
        Optional vectorized kernel folding a whole chunk of trials at
        once (see :data:`BatchRunner`). Purely an acceleration: the
        runner prefers it on the folded (no per-trial outcomes, no
        trace, default step budget) path and the kernel must reproduce
        the per-trial fold bit for bit, so rows cannot change. Composes
        with either trial style — it replaces the loop, not the trial
        definition.
    map_outcome:
        Optional post-map applied to each trial's raw outcome before the
        success predicate and histogram see it (e.g. leader id -> coin
        bit). ``FAIL`` should normally be passed through unchanged.
    outcome_size:
        Overrides :meth:`size` — the ``n`` of the outcome histogram's
        valid-id range ``1..n``. Set this when the (possibly mapped)
        outcomes are not the topology's processor ids; use
        :func:`no_valid_ids` when they are not ids at all.
    defaults:
        Default parameter values; ``resolve_params`` overlays caller
        overrides on top and rejects unknown keys, so typos fail loudly
        instead of silently running the default grid point.
    success:
        Per-trial success classifier; defaults to "outcome is not FAIL".
    tags:
        Free-form labels (``"honest"``, ``"attack"``, ``"ring"``, ...).
    """

    name: str
    description: str
    build_topology: Optional[TopologyFactory] = None
    build_protocol: Optional[ProtocolFactory] = None
    build_scheduler: Optional[SchedulerFactory] = None
    run_trial: Optional[TrialRunner] = None
    run_batch: Optional[BatchRunner] = None
    map_outcome: Optional[OutcomeMap] = None
    outcome_size: Optional[OutcomeSize] = None
    defaults: Mapping[str, Any] = field(default_factory=dict)
    success: SuccessPredicate = _default_success
    tags: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.run_trial is not None:
            if self.build_topology or self.build_protocol or self.build_scheduler:
                raise ConfigurationError(
                    f"scenario {self.name!r}: run_trial is mutually "
                    "exclusive with the topology/protocol/scheduler builders"
                )
        elif not (self.build_topology and self.build_protocol):
            raise ConfigurationError(
                f"scenario {self.name!r} needs either run_trial or both "
                "build_topology and build_protocol"
            )

    def size(self, params: Params) -> int:
        """Outcome-space size for ``params`` — drives the histogram's
        valid-id range ``1..n``. An explicit ``outcome_size`` wins (the
        outcomes may not be processor ids, e.g. after ``map_outcome``);
        executor scenarios then measure their topology; ``run_trial``
        scenarios fall back to the ``n`` parameter (0 when absent, which
        leaves the histogram without a valid-id range)."""
        if self.outcome_size is not None:
            return self.outcome_size(params)
        if self.build_topology is not None:
            return len(self.build_topology(params))
        n = params.get("n", 0)
        return n if isinstance(n, int) else 0

    def resolve_params(self, overrides: Optional[Mapping[str, Any]] = None) -> Params:
        """Overlay ``overrides`` on the defaults, rejecting unknown keys."""
        params: Params = dict(self.defaults)
        if overrides:
            unknown = sorted(set(overrides) - set(params))
            if unknown:
                raise ConfigurationError(
                    f"scenario {self.name!r} has no parameters {unknown}; "
                    f"known: {sorted(params)}"
                )
            params.update(overrides)
        return params


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the global registry (returned for chaining).

    Re-registering an existing name requires ``replace=True``; accidental
    collisions raise :class:`~repro.util.errors.ConfigurationError`.
    """
    if spec.name in _REGISTRY and not replace:
        raise ConfigurationError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent); test helper."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def scenario_names(tag: Optional[str] = None) -> List[str]:
    """Sorted names of all registered scenarios (optionally by tag)."""
    return sorted(
        name
        for name, spec in _REGISTRY.items()
        if tag is None or tag in spec.tags
    )


def known_tags() -> List[str]:
    """Sorted union of every registered scenario's tags — what an error
    message should offer when a requested tag matches nothing."""
    return sorted({tag for spec in _REGISTRY.values() for tag in spec.tags})


def all_scenarios() -> List[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]
