"""The campaign coordinator: multi-host sharding over trial leases.

``python -m repro campaign manifest.json --coordinate --listen H:P``
turns the campaign master into a network service. Because trial ``i``'s
seed is a pure function of ``(base_seed, i)`` and chunk folds are
commutative counters, a grid point shards into disjoint
``(point, trial-range)`` *leases* for free: runner nodes
(``python -m repro node --join H:P``) register, lease ranges, run them
on their local :class:`~repro.experiments.pool.WorkerPool`, and report
the folded ``(outcome_counts, successes, steps_total, trials,
elapsed)`` back. The coordinator folds reports into the same
:class:`~repro.experiments.campaign.PointState` the single-host
orchestrator uses and emits the same
:class:`~repro.experiments.runner.ExperimentResult` stream into the one
fsync'd results store — rows are byte-identical to a single-host run
because sharding, like chunking, is pure scheduling metadata.

The contracts that keep that true:

- **Batch barriers.** Adaptive budgets decide stop/continue only at
  batch boundaries (:meth:`PointState.next_batch`). A batch is sliced
  into leases, and the point's next batch is scheduled only after
  *every* slice of the current one has folded — the same barrier the
  interleaved orchestrator enforces — so the trial count an adaptive
  point converges at cannot depend on node count or lease timing.
- **Exactly-once folding.** Every range has one state
  (queued → leased → done); the first report for a range wins and
  duplicates are acknowledged but dropped. Trials are deterministic, so
  a duplicate's payload is identical anyway — the state machine only
  protects the fold from double counting.
- **Lease expiry = retry.** A lease not reported within ``lease_ttl``
  seconds (default: the campaign's ``--point-timeout``, else
  :data:`DEFAULT_LEASE_TTL`) is assumed lost with its node and the
  range is re-queued — a ``kill -9``'d node costs wall-clock, never
  rows. A late report from the presumed-dead node is still accepted if
  the range has not refolded yet, and harmlessly dropped if it has.

Protocol (JSON over stdlib HTTP; all POST bodies/responses are
objects): ``POST /register {name?, workers?} -> {node, lease_trials,
lease_ttl}``; ``POST /lease {node} -> {done, leases: [{lease, point,
scenario, params, base_seed, max_steps, start, end}]}`` (leasing doubles
as the heartbeat); ``POST /report {node, lease, point, start, end,
counts, successes, steps_total, trials, elapsed} -> {status}`` with
status ``accepted`` | ``duplicate`` | ``unknown``; ``GET /status``,
``GET /healthz``, and ``GET /metrics`` (Prometheus text format:
trials/sec, lease queue depth, active leases, per-node EWMA per-trial
seconds, node health, report/expiry counters).
"""

import itertools
import queue
import sys
import threading
import time
from collections import Counter, deque
from http.server import ThreadingHTTPServer
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple
from urllib.parse import urlparse

from repro.experiments.campaign import (
    CampaignPoint,
    PointState,
    ScheduleRef,
    as_scheduler,
    slice_ranges,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenario import ScenarioSpec, get_scenario
from repro.httpd import JsonRequestHandler, bind_handler
from repro.metrics import MetricsRegistry, ThroughputMeter
from repro.util.errors import ConfigurationError

#: Trials per lease: coarse enough that lease round-trips vanish next to
#: trial work, fine enough that a batch spreads across a few nodes and a
#: dead node forfeits a bounded amount of work.
DEFAULT_LEASE_TRIALS = 1024

#: Seconds before an unreported lease is presumed lost with its node.
DEFAULT_LEASE_TTL = 30.0

#: A node is reported healthy while its last lease call is within this
#: many TTLs — one in-flight lease plus scheduling slack.
_HEALTH_TTLS = 3.0


def _checked_int(value: Any, name: str, minimum: int = 0) -> int:
    """An integer from the wire, with the bool-excluding guard every
    numeric field in this codebase uses (``isinstance(True, int)``)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


class _Node:
    """Coordinator-side bookkeeping for one registered runner node."""

    __slots__ = (
        "node_id", "name", "workers", "last_seen", "trials", "per_trial",
        "saw_done",
    )

    def __init__(self, node_id: str, name: str, workers: int, now: float):
        self.node_id = node_id
        self.name = name
        self.workers = workers
        self.last_seen = now
        self.trials = 0
        self.per_trial: Optional[float] = None
        self.saw_done = False

    def observe(self, trials: int, elapsed: float, alpha: float = 0.5) -> None:
        if trials <= 0 or not elapsed > 0:
            return
        per = elapsed / trials
        self.trials += trials
        self.per_trial = (
            per
            if self.per_trial is None
            else alpha * per + (1.0 - alpha) * self.per_trial
        )


class CampaignCoordinator:
    """Shards campaign points into trial-range leases for runner nodes.

    Thread-safe: every state transition happens under one lock, driven
    by HTTP handler threads calling :meth:`register` / :meth:`lease` /
    :meth:`report` and by the consumer draining :meth:`results` (whose
    idle ticks also expire leases, so a campaign whose every node died
    still re-queues the lost ranges). Finished
    :class:`ExperimentResult`\\ s stream out of :meth:`results` in
    completion order — feed them to the same row writer a single-host
    campaign uses.
    """

    #: Lock discipline, checked by ``python -m repro lint`` (R201).
    #: Not listed: ``_results`` (a thread-safe queue.Queue), ``_meter``
    #: and the metric objects (internally locked), and ``_specs``
    #: (immutable after __init__).
    _GUARDED_BY = {
        "_waiting": "_lock",
        "_active": "_lock",
        "_leasable": "_lock",
        "_ranges": "_lock",
        "_leases": "_lock",
        "_nodes": "_lock",
        "_outstanding": "_lock",
        "_finished": "_lock",
        "_lease_ids": "_lock",
        "_node_ids": "_lock",
    }

    def __init__(
        self,
        points: List[CampaignPoint],
        completed: Optional[Any] = None,
        schedule: ScheduleRef = None,
        lease_trials: int = DEFAULT_LEASE_TRIALS,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_active: int = 4,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.lease_trials = _checked_int(lease_trials, "lease_trials", 1)
        if (
            isinstance(lease_ttl, bool)
            or not isinstance(lease_ttl, (int, float))
            or not lease_ttl > 0
        ):
            raise ConfigurationError(
                f"lease_ttl must be a positive number of seconds, "
                f"got {lease_ttl!r}"
            )
        self.lease_ttl = float(lease_ttl)
        self.max_active = _checked_int(max_active, "max_active", 1)
        # Same eager resolution sweep as run_campaign: stale manifests
        # fail before any node does work, and resume keys are computed
        # on resolved params — the identical normalisation, which is a
        # precondition of byte-identical rows.
        self._specs: Dict[str, ScenarioSpec] = {}
        normalized: List[CampaignPoint] = []
        for point in points:
            spec = self._specs.get(point.scenario)
            if spec is None:
                spec = self._specs[point.scenario] = get_scenario(point.scenario)
            resolved = spec.resolve_params(point.params)
            if resolved != point.params:
                from dataclasses import replace

                point = replace(point, params=resolved)
            normalized.append(point)
        done = frozenset(completed) if completed else frozenset()
        todo = as_scheduler(schedule).order(
            [p for p in normalized if p.key() not in done]
        )
        self.total_points = len(points)
        self.skipped_points = len(points) - len(todo)

        self._lock = threading.Lock()
        self._waiting: deque = deque(enumerate(todo))
        self._active: Dict[int, PointState] = {}
        self._leasable: deque = deque()  # (point_id, start, end), queued
        self._ranges: Dict[Tuple[int, int, int], str] = {}
        self._leases: Dict[str, dict] = {}
        self._nodes: Dict[str, _Node] = {}
        self._results: "queue.Queue" = queue.Queue()
        self._outstanding = len(todo)
        self._finished = 0
        self._lease_ids = itertools.count(1)
        self._node_ids = itertools.count(1)

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._wire_metrics()
        with self._lock:
            if self._outstanding == 0:
                self._results.put(None)
            else:
                self._activate_locked()

    # -- metrics -------------------------------------------------------

    def _wire_metrics(self) -> None:
        metrics = self.metrics
        self._trials_total = metrics.counter(
            "repro_trials_total", "Trials folded from node reports"
        )
        self._leases_granted = metrics.counter(
            "repro_leases_granted_total", "Leases handed to nodes"
        )
        self._leases_expired = metrics.counter(
            "repro_leases_expired_total",
            "Leases that expired unreported and were re-queued",
        )
        self._reports = metrics.counter(
            "repro_reports_total", "Node reports received, by disposition"
        )
        self.disconnects = metrics.counter(
            "repro_http_disconnects_total",
            "Clients that hung up before the response was fully written",
        )
        self._meter = ThroughputMeter()
        rate = metrics.gauge(
            "repro_trials_per_second",
            "Trials folded over the last sliding window",
        )
        queue_depth = metrics.gauge(
            "repro_lease_queue_depth", "Trial ranges queued and leasable now"
        )
        active_leases = metrics.gauge(
            "repro_leases_active", "Leases currently held by nodes"
        )
        points_active = metrics.gauge(
            "repro_points_active", "Campaign points currently in flight"
        )
        points_pending = metrics.gauge(
            "repro_points_pending", "Campaign points not yet finished"
        )
        points_done = metrics.gauge(
            "repro_points_completed", "Campaign points finished"
        )
        nodes = metrics.gauge(
            "repro_nodes_registered", "Runner nodes ever registered"
        )
        healthy = metrics.gauge(
            "repro_node_healthy",
            "Whether the node leased work recently (1 healthy, 0 stale)",
        )
        node_cost = metrics.gauge(
            "repro_node_per_trial_seconds",
            "EWMA per-trial seconds by node (observed from reports)",
        )

        def scrape() -> None:
            rate.set(self._meter.rate())
            now = time.monotonic()
            with self._lock:
                queue_depth.set(len(self._leasable))
                active_leases.set(len(self._leases))
                points_active.set(len(self._active))
                points_pending.set(self._outstanding)
                points_done.set(self._finished)
                nodes.set(len(self._nodes))
                snapshot = list(self._nodes.values())
            horizon = _HEALTH_TTLS * self.lease_ttl
            for node in snapshot:
                healthy.set(
                    1 if now - node.last_seen <= horizon else 0,
                    node=node.name,
                )
                if node.per_trial is not None:
                    node_cost.set(node.per_trial, node=node.name)

        metrics.collect(scrape)

    # -- the node-facing API -------------------------------------------

    def register(
        self, name: Optional[str] = None, workers: Any = 1
    ) -> Dict[str, Any]:
        """Admit a runner node; returns its id and the lease settings."""
        workers = _checked_int(workers, "workers", 1)
        now = time.monotonic()
        with self._lock:
            node_id = f"{name or 'node'}-{next(self._node_ids)}"
            self._nodes[node_id] = _Node(node_id, node_id, workers, now)
        return {
            "node": node_id,
            "lease_trials": self.lease_trials,
            "lease_ttl": self.lease_ttl,
        }

    def lease(self, node_id: str, max_leases: int = 1) -> Dict[str, Any]:
        """Grant up to ``max_leases`` queued ranges to ``node_id``.

        Also the heartbeat: the call stamps the node's liveness and
        sweeps expired leases first, so the queue a node draws from
        already contains any ranges its dead peers forfeited. An empty
        grant with ``done: false`` means "poll again" (every range is
        out on lease or the active points are between batches)."""
        max_leases = _checked_int(max_leases, "max_leases", 1)
        now = time.monotonic()
        granted: List[Dict[str, Any]] = []
        with self._lock:
            self._tick_locked(now)
            node = self._nodes.get(node_id)
            if node is None:
                # A node the coordinator does not know (it restarted, or
                # the node re-joined a different instance): adopt it
                # rather than strand it — registration is bookkeeping,
                # not authorization.
                node = self._nodes[node_id] = _Node(node_id, str(node_id), 1, now)
            node.last_seen = now
            if self._outstanding == 0:
                node.saw_done = True
                return {"done": True, "leases": []}
            while self._leasable and len(granted) < max_leases:
                rng = self._leasable.popleft()
                point_id, start, end = rng
                state = self._active.get(point_id)
                if state is None or self._ranges.get(rng) != "queued":
                    continue
                lease_id = f"L{next(self._lease_ids)}"
                self._ranges[rng] = "leased"
                self._leases[lease_id] = {
                    "range": rng,
                    "node": node_id,
                    "expires": now + self.lease_ttl,
                }
                self._leases_granted.inc()
                point = state.point
                granted.append(
                    {
                        "lease": lease_id,
                        "point": point_id,
                        "scenario": point.scenario,
                        "params": dict(point.params),
                        "base_seed": point.base_seed,
                        "max_steps": point.max_steps,
                        "start": start,
                        "end": end,
                    }
                )
        return {"done": False, "leases": granted}

    def report(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Fold one lease's result; exactly-once per range.

        ``status: accepted`` — the range folded (first report wins);
        ``duplicate`` — the range already folded (late twin of a
        retried lease; dropped, which is harmless because deterministic
        trials make the copies identical); ``unknown`` — the range does
        not belong to any in-flight point (the point finalized, or the
        echo is corrupt). Malformed payloads raise
        :class:`ConfigurationError` (the HTTP layer answers 400)."""
        node_id = payload.get("node")
        lease_id = payload.get("lease")
        point_id = _checked_int(payload.get("point"), "point")
        start = _checked_int(payload.get("start"), "start")
        end = _checked_int(payload.get("end"), "end")
        trials = _checked_int(payload.get("trials"), "trials")
        successes = _checked_int(payload.get("successes"), "successes")
        steps_total = _checked_int(payload.get("steps_total"), "steps_total")
        if trials != end - start:
            raise ConfigurationError(
                f"report covers {trials} trials but echoes the range "
                f"[{start}, {end}) — a partial fold must not poison the row"
            )
        if successes > trials:
            raise ConfigurationError(
                f"successes ({successes}) cannot exceed trials ({trials})"
            )
        raw_counts = payload.get("counts")
        if not isinstance(raw_counts, Mapping):
            raise ConfigurationError(
                f"counts must be an object, got {raw_counts!r}"
            )
        counts: Counter = Counter()
        for outcome, count in raw_counts.items():
            counts[str(outcome)] = _checked_int(count, f"counts[{outcome!r}]")
        if sum(counts.values()) != trials:
            raise ConfigurationError(
                f"counts sum to {sum(counts.values())} but the report "
                f"claims {trials} trials"
            )
        elapsed = payload.get("elapsed")
        if isinstance(elapsed, bool) or not isinstance(elapsed, (int, float)):
            elapsed = 0.0

        now = time.monotonic()
        rng = (point_id, start, end)
        with self._lock:
            if isinstance(node_id, str):
                node = self._nodes.get(node_id)
                if node is not None:
                    node.last_seen = now
                    node.observe(trials, float(elapsed))
            if lease_id is not None:
                self._leases.pop(lease_id, None)
            tag = self._ranges.get(rng)
            if tag is None:
                self._reports.inc(status="unknown")
                return {"status": "unknown"}
            if tag == "done":
                self._reports.inc(status="duplicate")
                return {"status": "duplicate"}
            if tag == "queued":
                # The lease expired and the range was re-queued, but the
                # original node finished after all: accept its fold and
                # pull the range back off the queue.
                try:
                    self._leasable.remove(rng)
                except ValueError:
                    pass
            self._ranges[rng] = "done"
            state = self._active[point_id]
            state.fold((counts, successes, steps_total, trials))
            state.pending -= 1
            self._trials_total.inc(trials)
            self._reports.inc(status="accepted")
            if state.pending == 0:
                # Batch barrier: every slice of the batch has folded —
                # the only place a stop decision may happen.
                if state.converged() or not self._enqueue_batch_locked(state):
                    self._finalize_locked(state)
                    self._activate_locked()
        self._meter.observe(trials)
        return {"status": "accepted"}

    # -- consumer side -------------------------------------------------

    @property
    def done(self) -> bool:
        with self._lock:
            return self._outstanding == 0

    def results(self) -> Iterator[ExperimentResult]:
        """Yield finished point results until the campaign completes.

        Blocks between arrivals; idle waits double as the lease-expiry
        sweep, so progress resumes even if every node died (once a new
        one joins)."""
        while True:
            try:
                item = self._results.get(timeout=0.5)
            except queue.Empty:
                with self._lock:
                    self._tick_locked(time.monotonic())
                continue
            if item is None:
                return
            yield item

    def await_nodes_done(
        self, timeout: float = 5.0, stale_after: float = 2.0
    ) -> bool:
        """Linger until every live node has polled ``done`` (so it exits
        0 cleanly) or ``timeout`` elapses. Nodes silent for longer than
        ``stale_after`` seconds are presumed dead (a ``kill -9``'d node
        never polls again) and not waited for. True when every live node
        was notified."""
        deadline = time.monotonic() + timeout
        while True:
            now = time.monotonic()
            with self._lock:
                waiting = [
                    node
                    for node in self._nodes.values()
                    if not node.saw_done and now - node.last_seen < stale_after
                ]
            if not waiting:
                return True
            if now >= deadline:
                return False
            time.sleep(0.05)

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot for ``GET /status``."""
        now = time.monotonic()
        with self._lock:
            nodes = {
                node.name: {
                    "workers": node.workers,
                    "trials": node.trials,
                    "per_trial_seconds": node.per_trial,
                    "seconds_since_seen": round(now - node.last_seen, 3),
                }
                for node in self._nodes.values()
            }
            return {
                "points": self.total_points,
                "skipped": self.skipped_points,
                "completed": self._finished,
                "pending": self._outstanding,
                "active": len(self._active),
                "lease_queue": len(self._leasable),
                "leases_out": len(self._leases),
                "done": self._outstanding == 0,
                "nodes": nodes,
            }

    # -- internals (call with self._lock held) -------------------------

    def _tick_locked(self, now: float) -> None:
        """Expire overdue leases: their ranges go back to the front of
        the queue (a retried range is the oldest work outstanding)."""
        expired = [
            lease_id
            for lease_id, lease in self._leases.items()
            if now >= lease["expires"]
        ]
        for lease_id in expired:
            lease = self._leases.pop(lease_id)
            rng = lease["range"]
            if self._ranges.get(rng) == "leased":
                self._ranges[rng] = "queued"
                self._leasable.appendleft(rng)
                self._leases_expired.inc()

    def _enqueue_batch_locked(self, state: PointState) -> bool:
        """Slice the point's next batch into leases; False when the
        point has no further batch."""
        batch = state.next_batch()
        if batch is None:
            return False
        start, end = batch
        ranges = slice_ranges(start, end, self.lease_trials)
        state.pending = len(ranges)
        state.dispatches += len(ranges)
        for rng_start, rng_end in ranges:
            rng = (state.point_id, rng_start, rng_end)
            self._ranges[rng] = "queued"
            self._leasable.append(rng)
        return True

    def _activate_locked(self) -> None:
        """Admit waiting points until ``max_active`` are in flight;
        points with nothing to run finalize immediately."""
        while self._waiting and len(self._active) < self.max_active:
            point_id, point = self._waiting.popleft()
            state = PointState(point_id, point, self._specs[point.scenario])
            if self._enqueue_batch_locked(state):
                self._active[point_id] = state
            else:
                self._finalize_locked(state)

    def _finalize_locked(self, state: PointState) -> None:
        self._active.pop(state.point_id, None)
        # Purge the point's range states so duplicate late reports map
        # to "unknown" and the table does not grow with campaign size.
        for rng in [r for r in self._ranges if r[0] == state.point_id]:
            del self._ranges[rng]
        self._results.put(state.finalize())
        self._finished += 1
        self._outstanding -= 1
        if self._outstanding == 0:
            self._results.put(None)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class CoordinatorHandler(JsonRequestHandler):
    """Routes node traffic to the class-attribute ``coordinator``
    (installed per server by :func:`make_coordinator_server`)."""

    coordinator: CampaignCoordinator = None  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 (http.server's casing)
        path = urlparse(self.path).path
        if path == "/healthz":
            self._send(200, {"status": "ok", "done": self.coordinator.done})
        elif path == "/metrics":
            self._send_text(200, self.coordinator.metrics.render())
        elif path == "/status":
            self._send(200, self.coordinator.status())
        else:
            self._send(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        path = urlparse(self.path).path
        body = self.read_json_body()
        if body is None:
            body = {}
        try:
            if path == "/register":
                self._send(
                    200,
                    self.coordinator.register(
                        name=body.get("name"), workers=body.get("workers", 1)
                    ),
                )
            elif path == "/lease":
                node = body.get("node")
                if not isinstance(node, str) or not node:
                    self._send(400, {"error": "missing 'node'"})
                    return
                self._send(
                    200,
                    self.coordinator.lease(
                        node, max_leases=body.get("max_leases", 1)
                    ),
                )
            elif path == "/report":
                self._send(200, self.coordinator.report(body))
            else:
                self._send(404, {"error": f"unknown path {path!r}"})
        except ConfigurationError as exc:
            self._send(400, {"error": str(exc)})


def make_coordinator_server(
    coordinator: CampaignCoordinator, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A threading HTTP server bound to ``coordinator`` (``port=0``
    binds an ephemeral port — read ``server.server_address`` back)."""
    handler = bind_handler(
        CoordinatorHandler,
        "BoundCoordinatorHandler",
        coordinator=coordinator,
        disconnects=coordinator.disconnects,
    )
    return ThreadingHTTPServer((host, port), handler)


def serve_coordinator(
    coordinator: CampaignCoordinator,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the coordinator's server on a daemon thread and announce
    the bound address on stderr; the caller drains ``results()`` and
    shuts the pair down when the campaign finishes."""
    server = make_coordinator_server(coordinator, host, port)
    if verbose:
        server.RequestHandlerClass.verbose = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    print(
        f"coordinating campaign on http://{bound_host}:{bound_port} "
        f"({coordinator.total_points} point(s), "
        f"{coordinator.skipped_points} already done); nodes join with: "
        f"python -m repro node --join {bound_host}:{bound_port}",
        file=sys.stderr,
    )
    return server, thread
