"""A persistent worker pool shared across experiments.

The PR-1 runner created a fresh ``multiprocessing.Pool`` inside every
``ExperimentRunner.run()`` call — fine for one big experiment, but a
sweep of thirty shallow grid points paid thirty pool spawns, and the
frontier/fuzz inner loops paid one per probe. :class:`WorkerPool` is the
fix: created once (by the caller, or lazily by the first runner that
needs it) and reused for every experiment dispatched through it, so
consecutive grid points, frontier probes, and campaign entries share one
set of warm worker processes.

Two dispatch surfaces:

- :meth:`imap_unordered` — the runner's streaming path: apply a worker
  function to a payload list, yielding results as they arrive. With
  ``workers == 1`` it degenerates to a lazy in-process loop (no
  processes, no pickling), which is also the only mode that supports
  payloads built from unpicklable closures.
- :meth:`submit` — the campaign orchestrator's async path: enqueue one
  payload with a completion callback, so chunks from *different* grid
  points can interleave in the same pool and wide, shallow grids keep
  every worker busy.

Worker processes import :mod:`repro.experiments` once at start-up (so
builtin scenarios resolve by name) and then ``gc.freeze()`` the imported
world: the catalog and module objects live for the worker's whole life,
and freezing them out of the cyclic collector keeps collections off the
trial hot loop.
"""

import gc
import multiprocessing
import os
import threading
import weakref
from collections import deque
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Union

from repro.util.errors import ConfigurationError

#: A worker-count argument: an explicit count, or "auto"/None to derive
#: one from the machine (see :func:`resolve_workers`).
WorkerCount = Union[int, str, None]

#: Upper clamp for ``--workers auto``: beyond this, coordination overhead
#: on the kinds of trial loads we run outweighs extra parallelism.
MAX_AUTO_WORKERS = 8

#: Per-dispatch trial cap for the streamed per-trial-outcome path. When a
#: consumer asks for every trial (``on_outcome``/``keep_outcomes``), the
#: worker's result is a pickled batch of outcomes; without a cap its size
#: scales with the chunk size, so a coarse-chunked 50k-trial experiment
#: would ship 12.5k-outcome pickles through the result pipe in one gulp.
#: Capping the chunk bounds every IPC message at a fixed number of trials
#: — consumers receive outcomes in bounded chunks however large the
#: experiment — while staying coarse enough that dispatch overhead stays
#: invisible next to real trial work (at 128 the extra dispatch
#: round-trips on cheap trials ate the encoding win; 256 keeps both).
#: Folded dispatches (counters over IPC) don't need it: their result
#: size is already independent of the chunk size.
STREAM_CHUNK_TRIALS = 256


def resolve_workers(workers: WorkerCount) -> int:
    """Resolve a worker-count argument to a concrete process count.

    ``"auto"`` (or ``None``) asks the machine: ``os.cpu_count()`` clamped
    to ``[1, MAX_AUTO_WORKERS]``, so users stop guessing and oversized
    hosts don't spawn 128 workers for a 200-trial sweep. Integers pass
    through (validated ``>= 1``).
    """
    if workers is None or workers == "auto":
        return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers must be an integer or 'auto', got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def _init_worker() -> None:
    """Pool-process initializer: register the catalog, then freeze it.

    The import mirrors what :func:`~repro.experiments.runner._run_chunk`
    would do lazily; doing it here moves the cost off the first chunk.
    ``gc.freeze`` then permanently exempts those import-time objects from
    cyclic collection — they can never die while the worker lives, so
    scanning them on every collection is pure overhead.
    """
    import repro.experiments  # noqa: F401 - registers builtin scenarios

    gc.collect()
    gc.freeze()


def _terminate(pool: "multiprocessing.pool.Pool") -> None:
    """GC-time backstop for a pool the owner forgot to close."""
    pool.terminate()


#: Iterator-exhaustion sentinel for the windowed refill loop — a unique
#: object so ``None`` stays a legal payload value.
_NO_MORE_PAYLOADS = object()


class WorkerPool:
    """A context-managed, lazily-spawned, reusable process pool.

    Parameters
    ----------
    workers:
        Process count, or ``"auto"``/``None`` for
        :func:`resolve_workers`'s machine-derived default. ``1`` means
        strictly in-process: no child processes are ever spawned and
        payloads are never pickled.

    The underlying ``multiprocessing.Pool`` is created on the first
    parallel dispatch (``warm_up()`` forces it, e.g. to keep spawn cost
    out of a benchmark's timed region) and lives until :meth:`close` —
    every experiment dispatched in between reuses the same worker
    processes. A ``weakref.finalize`` terminates leaked pools at GC.
    """

    #: Lock discipline, checked by ``python -m repro lint`` (R201):
    #: lifecycle state under ``_pool_guard`` — serve.py dispatches
    #: campaigns from concurrent request threads, and two racing
    #: ``_ensure_pool`` calls used to each spawn a multiprocessing.Pool
    #: (the loser's workers leaked until GC) — counters under their own
    #: lock so dispatch bookkeeping never contends with lifecycle.
    _GUARDED_BY = {
        "_pool": "_pool_guard",
        "_closed": "_pool_guard",
        "_finalizer": "_pool_guard",
        "_dispatched": "_counters_lock",
        "_completed": "_counters_lock",
        "_failed": "_counters_lock",
    }

    def __init__(self, workers: WorkerCount = 1):
        self.workers = resolve_workers(workers)
        self._pool_guard = threading.Lock()
        self._pool: Optional[Any] = None
        self._finalizer = None
        self._closed = False
        # Lifetime chunk counters — observability only (the /metrics
        # endpoints mirror them); scheduling never consults them.
        self._counters_lock = threading.Lock()
        self._dispatched = 0
        self._completed = 0
        self._failed = 0

    def _count(self, dispatched: int = 0, completed: int = 0, failed: int = 0) -> None:
        with self._counters_lock:
            self._dispatched += dispatched
            self._completed += completed
            self._failed += failed

    def counters(self) -> Dict[str, int]:
        """Lifetime chunk counts: ``dispatched``/``completed``/``failed``.

        Best-effort bookkeeping for the metrics endpoints: a chunk
        abandoned by an early-exiting consumer stays dispatched without
        ever completing, and an exception raised out of
        :meth:`imap_unordered` counts the failing chunk only.
        """
        with self._counters_lock:
            return {
                "dispatched": self._dispatched,
                "completed": self._completed,
                "failed": self._failed,
            }

    # -- lifecycle -----------------------------------------------------

    @property
    def parallel(self) -> bool:
        """Whether dispatches may use worker processes at all."""
        return self.workers > 1

    @property
    def started(self) -> bool:
        """Whether the worker processes currently exist."""
        with self._pool_guard:
            return self._pool is not None

    def warm_up(self) -> "WorkerPool":
        """Spawn the worker processes now (no-op when ``workers == 1``)."""
        if self.parallel:
            self._ensure_pool()
        return self

    def close(self) -> None:
        """Shut the workers down gracefully; the pool stays closed.

        Graceful means *waiting*: queued work still runs to completion
        before the workers exit. Only use this on the clean path — after
        an exception (notably ``KeyboardInterrupt`` mid-dispatch) call
        :meth:`terminate` instead, or teardown blocks on every chunk
        still in the queue.
        """
        with self._pool_guard:
            self._closed = True
            pool = self._detach_pool_locked()
        # Joining outside the guard: a graceful close can block for as
        # long as the queued chunks take, and holding the guard that
        # whole time would stall every counters()/started probe.
        if pool is not None:
            pool.close()
            pool.join()

    def terminate(self) -> None:
        """Kill the worker processes now; in-flight chunks are lost.

        The error-path twin of :meth:`close`: a ``KeyboardInterrupt``
        during dispatch used to leave children alive behind a graceful
        ``close()`` that blocked on the unfinished queue — ``terminate``
        sends SIGTERM and joins, so Ctrl-C tears the whole process tree
        down promptly. The pool stays closed afterwards.
        """
        with self._pool_guard:
            self._closed = True
            pool = self._detach_pool_locked()
        if pool is not None:
            pool.terminate()
            pool.join()

    def _detach_pool_locked(self):
        pool, self._pool = self._pool, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        return pool

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Exceptions (KeyboardInterrupt above all) must not block on
        # queued work the user just asked to stop.
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    def _ensure_pool(self):
        # The check and the spawn are one critical section: concurrent
        # dispatches (the estimate service runs campaigns from several
        # request threads against one shared pool) must agree on a
        # single multiprocessing.Pool rather than each creating one.
        with self._pool_guard:
            if self._closed:
                raise ConfigurationError("worker pool is closed")
            if self._pool is None:
                self._pool = multiprocessing.Pool(
                    processes=self.workers, initializer=_init_worker
                )
                self._finalizer = weakref.finalize(
                    self, _terminate, self._pool
                )
            return self._pool

    # -- dispatch ------------------------------------------------------

    @property
    def dispatch_window(self) -> int:
        """Max chunks kept in flight at once: ``min(workers, cpus)``.

        A pool sized beyond the machine's cores (``workers=4`` on a
        1-core box) gains nothing from having every worker runnable at
        once — CPU-bound chunks just time-slice against each other and
        pay cache/TLB churn (~2% on the E1 loop). Capping in-flight
        chunks at the core count pipelines the surplus workers instead
        of oversubscribing them; on machines with ``cpus >= workers``
        the window equals the pool size and dispatch is unthrottled.
        """
        return max(1, min(self.workers, os.cpu_count() or self.workers))

    def imap_unordered(
        self,
        fn: Callable[[Any], Any],
        payloads: Iterable[Any],
        bounded: bool = False,
    ) -> Iterator[Any]:
        """Apply ``fn`` to every payload, yielding results as they land.

        In-process (lazy, ordered) when ``workers == 1``; otherwise the
        shared pool, throttled to :attr:`dispatch_window` in-flight
        chunks. Callers must treat arrival order as arbitrary either
        way.

        ``bounded`` forces the windowed-dispatch path even when the pool
        is not oversubscribed: at most :attr:`dispatch_window` chunks
        are ever enqueued at once, so a consumer that *abandons* the
        iterator early (the runner's cooperative deadline) strands at
        most a window of already-submitted work instead of the whole
        payload list.
        """
        if not self.parallel:
            for payload in payloads:
                self._count(dispatched=1)
                try:
                    result = fn(payload)
                except BaseException:
                    self._count(failed=1)
                    raise
                self._count(completed=1)
                yield result
            return
        pool = self._ensure_pool()
        payloads = list(payloads)
        window = self.dispatch_window
        if not bounded and (window >= self.workers or window >= len(payloads)):
            # Not oversubscribed (or nothing to throttle): the pool's own
            # task queue already caps concurrency at the process count,
            # and pre-loading it lets finished workers grab the next
            # chunk with no master round-trip.
            self._count(dispatched=len(payloads))
            try:
                for result in pool.imap_unordered(fn, payloads):
                    self._count(completed=1)
                    yield result
            except BaseException:
                self._count(failed=1)
                raise
            return
        # Bounded-window dispatch for oversubscribed pools (more workers
        # than cores): at most ``window`` chunks are enqueued at a time,
        # so at most that many workers are ever runnable together. The
        # oldest-first wait is fine — chunks are deliberately homogeneous.
        pending: "deque" = deque()
        queued = iter(payloads)
        for payload in queued:
            pending.append(pool.apply_async(fn, (payload,)))
            self._count(dispatched=1)
            if len(pending) >= window:
                break
        while pending:
            try:
                result = pending.popleft().get()
            except BaseException:
                self._count(failed=1)
                raise
            self._count(completed=1)
            nxt = next(queued, _NO_MORE_PAYLOADS)
            if nxt is not _NO_MORE_PAYLOADS:
                pending.append(pool.apply_async(fn, (nxt,)))
                self._count(dispatched=1)
            yield result

    def submit(
        self,
        fn: Callable[[Any], Any],
        payload: Any,
        callback: Callable[[Any], None],
        error_callback: Callable[[BaseException], None],
    ) -> None:
        """Enqueue one payload asynchronously (parallel pools only).

        ``callback``/``error_callback`` fire on the pool's result-handler
        thread — hand the value to a thread-safe queue, don't do work
        there. The campaign orchestrator uses this to interleave chunks
        from many grid points; serial orchestration has no queue to keep
        full, so ``workers == 1`` pools reject it.
        """
        if not self.parallel:
            raise ConfigurationError(
                "submit() requires a parallel pool; run serial work inline"
            )

        def counted(result, _callback=callback):
            self._count(completed=1)
            _callback(result)

        def counted_error(exc, _callback=error_callback):
            self._count(failed=1)
            _callback(exc)

        self._count(dispatched=1)
        self._ensure_pool().apply_async(
            fn, (payload,), callback=counted, error_callback=counted_error
        )
