"""Section 8: Fair Leader Election ⇔ Fair Coin Toss reductions."""

from repro.cointoss.reductions import (
    coin_toss_from_leader_election,
    leader_election_from_coin_toss,
    coin_bias_bound_from_fle,
    fle_bias_bound_from_coin,
)
from repro.cointoss.protocols import (
    CoinTossRunner,
    fle_coin_toss_runner,
    independent_coin_fle,
)

__all__ = [
    "coin_toss_from_leader_election",
    "leader_election_from_coin_toss",
    "coin_bias_bound_from_fle",
    "fle_bias_bound_from_coin",
    "CoinTossRunner",
    "fle_coin_toss_runner",
    "independent_coin_fle",
]
