"""The two reductions of Theorem 8.1 and their bias-propagation bounds.

- **FLE → coin toss**: elect a leader, output its id mod 2. An
  ``ε``-unbiased FLE yields a ``(n/2)·ε``-unbiased coin.
- **coin toss → FLE**: run ``log2(n)`` *independent* coin tosses and
  elect the processor whose (1-based) id minus one has that bit pattern.
  ``ε``-unbiased coins yield a ``(1/2+ε)^log2(n) - 1/n``-unbiased FLE.

The functions here are the outcome-space maps plus the paper's bias
bounds; :mod:`repro.cointoss.protocols` wires them to actual protocol
executions.
"""

import math
from typing import List, Sequence

from repro.sim.execution import FAIL
from repro.util.errors import ConfigurationError


def coin_toss_from_leader_election(outcome, n: int):
    """Map an FLE outcome to a coin outcome (id mod 2), FAIL passes through."""
    if outcome == FAIL:
        return FAIL
    if not isinstance(outcome, int) or not 1 <= outcome <= n:
        raise ConfigurationError(f"invalid FLE outcome {outcome!r}")
    return outcome % 2


def leader_election_from_coin_toss(bits: Sequence[int], n: int):
    """Map ``log2(n)`` coin outcomes to an elected id; FAIL if any failed.

    Bits are most-significant first; the elected id is the encoded value
    plus one, so a uniform bit vector elects uniformly over ``1..n``.
    """
    rounds = _log2_exact(n)
    if len(bits) != rounds:
        raise ConfigurationError(
            f"need exactly {rounds} coin results for n={n}, got {len(bits)}"
        )
    value = 0
    for b in bits:
        if b == FAIL:
            return FAIL
        if b not in (0, 1):
            raise ConfigurationError(f"invalid coin outcome {b!r}")
        value = (value << 1) | b
    return value + 1


def coin_bias_bound_from_fle(n: int, epsilon: float) -> float:
    """Theorem 8.1: coin bias from an ``ε``-unbiased FLE is ``(n/2)·ε``."""
    return 0.5 * n * epsilon


def fle_bias_bound_from_coin(n: int, epsilon: float) -> float:
    """Theorem 8.1: FLE bias from ``ε``-unbiased coins.

    ``Pr[leader = j] ≤ (1/2 + ε)^log2(n)``; we report the excess over
    ``1/n``.
    """
    rounds = _log2_exact(n)
    return (0.5 + epsilon) ** rounds - 1.0 / n


def _log2_exact(n: int) -> int:
    rounds = int(math.log2(n))
    if 2**rounds != n:
        raise ConfigurationError(
            f"coin-toss → FLE reduction needs n a power of two, got {n}"
        )
    return rounds
