"""Scenario specs for the Theorem 8.1 coin-toss reductions.

Two of the three scenarios ride the asynchronous executor directly and
only post-process the elected id through
:func:`~repro.cointoss.reductions.coin_toss_from_leader_election` (the
``map_outcome`` hook); the coin→FLE direction runs ``log2(n)``
independent elections per trial and therefore uses ``run_trial``.

Registered here (imported for effect by
:mod:`repro.experiments.catalog`):

- ``cointoss/fle-coin`` — honest A-LEADuni election, outcome mapped to
  the low bit (first direction of Theorem 8.1);
- ``cointoss/biased-coin`` — the Basic-LEAD single cheater forces an
  id, saturating the (n/2)·ε coin-bias bound (success = the coin landed
  on the forced parity);
- ``cointoss/coin-fle`` — FLE over ``n = 2^r`` built from ``r``
  independent coin tosses, each one a full A-LEADuni run.
"""

from typing import Optional, Tuple

from repro.attacks.basic_cheat import basic_cheat_protocol
from repro.cointoss.protocols import independent_coin_fle
from repro.cointoss.reductions import coin_toss_from_leader_election
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    no_valid_ids,
    register_scenario,
    ring_topology,
)
from repro.protocols.alead_uni import alead_uni_protocol
from repro.sim.execution import FAIL
from repro.sim.topology import unidirectional_ring


def _honest_alead(topo, params, rng):
    return alead_uni_protocol(topo)


def _cheating_basic_lead(topo, params, rng):
    return basic_cheat_protocol(
        topo, cheater=params["cheater"], target=params["target"]
    )


def leader_to_coin(outcome, params: Params):
    """Outcome map: elected id -> coin bit (FAIL passes through)."""
    if outcome == FAIL:
        return FAIL
    return coin_toss_from_leader_election(outcome, params["n"])


def forced_parity(outcome, params: Params) -> bool:
    """Success predicate: the coin shows the forced target's parity."""
    return outcome == params["target"] % 2


def run_coin_fle_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """One coin→FLE reduction: log2(n) independent ring elections."""
    import math

    n = params["n"]
    topo = unidirectional_ring(n)
    outcome = independent_coin_fle(topo, alead_uni_protocol, n, registry)
    return outcome, int(math.log2(n))


register_scenario(
    ScenarioSpec(
        name="cointoss/fle-coin",
        description="coin toss from one honest A-LEADuni election (Thm 8.1)",
        build_topology=ring_topology,
        build_protocol=_honest_alead,
        map_outcome=leader_to_coin,
        outcome_size=no_valid_ids,  # outcomes are coin bits, not ids
        defaults={"n": 8},
        tags=("cointoss", "honest"),
    )
)

register_scenario(
    ScenarioSpec(
        name="cointoss/biased-coin",
        description="biased FLE (Basic-LEAD cheat) propagates to the coin",
        build_topology=ring_topology,
        build_protocol=_cheating_basic_lead,
        map_outcome=leader_to_coin,
        outcome_size=no_valid_ids,  # outcomes are coin bits, not ids
        defaults={"n": 8, "cheater": 2, "target": 4},
        success=forced_parity,
        tags=("cointoss", "attack"),
    )
)

register_scenario(
    ScenarioSpec(
        name="cointoss/coin-fle",
        description="FLE over n=2^r from r independent coin tosses (Thm 8.1)",
        run_trial=run_coin_fle_trial,
        defaults={"n": 8},
        tags=("cointoss", "honest"),
    )
)
