"""Scenario specs for the Theorem 8.1 coin-toss reductions.

Two of the three scenarios ride the asynchronous executor directly and
only post-process the elected id through
:func:`~repro.cointoss.reductions.coin_toss_from_leader_election` (the
``map_outcome`` hook); the coin→FLE direction runs ``log2(n)``
independent elections per trial and therefore uses ``run_trial``.

Registered here (imported for effect by
:mod:`repro.experiments.catalog`):

- ``cointoss/fle-coin`` — honest A-LEADuni election, outcome mapped to
  the low bit (first direction of Theorem 8.1);
- ``cointoss/biased-coin`` — the Basic-LEAD single cheater forces an
  id, saturating the (n/2)·ε coin-bias bound (success = the coin landed
  on the forced parity);
- ``cointoss/coin-fle`` — FLE over ``n = 2^r`` built from ``r``
  independent coin tosses, each one a full A-LEADuni run.

All three carry ``run_batch`` kernels: an honest (or single-cheater)
ring election's outcome is a closed form over the processors' first
secret draws, so a whole chunk folds without ever touching the
executor. Each kernel draws from exactly the streams the executor
would (``proc:<pid>`` per processor) so the fold is bit-identical to
the scalar path — see :data:`repro.experiments.scenario.BatchRunner`.
"""

import math
import random
from typing import Dict, Optional, Sequence, Tuple

from repro.attacks.basic_cheat import basic_cheat_protocol
from repro.cointoss.protocols import independent_coin_fle
from repro.cointoss.reductions import coin_toss_from_leader_election
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    no_valid_ids,
    register_scenario,
    ring_topology,
)
from repro.protocols.alead_uni import alead_uni_protocol
from repro.protocols.outcome import residue_to_id
from repro.sim.execution import FAIL
from repro.sim.topology import unidirectional_ring
from repro.util.rng import derive_seed


def _honest_alead(topo, params, rng):
    return alead_uni_protocol(topo)


def _cheating_basic_lead(topo, params, rng):
    return basic_cheat_protocol(
        topo, cheater=params["cheater"], target=params["target"]
    )


def leader_to_coin(outcome, params: Params):
    """Outcome map: elected id -> coin bit (FAIL passes through)."""
    if outcome == FAIL:
        return FAIL
    return coin_toss_from_leader_election(outcome, params["n"])


def forced_parity(outcome, params: Params) -> bool:
    """Success predicate: the coin shows the forced target's parity."""
    return outcome == params["target"] % 2


def run_coin_fle_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """One coin→FLE reduction: log2(n) independent ring elections."""
    n = params["n"]
    topo = unidirectional_ring(n)
    outcome = independent_coin_fle(topo, alead_uni_protocol, n, registry)
    return outcome, int(math.log2(n))


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------
#
# An honest A-LEADuni election elects residue_to_id(sum of the n secret
# residues), each secret being the *first* randrange(n) of that
# processor's private stream proc:<pid> — so the elected leader is a
# closed form over n stream heads and the executor's ~n^2 deliveries
# per trial (message objects, contexts, scheduler picks) are pure
# overhead the kernels skip. A-LEADuni's honest run always validates
# and terminates within the default step budget in exactly n^2
# deliveries (each of the n processors sends exactly n messages), so
# the per-trial step count is closed-form too.


def _alead_leader(registry_seed: int, n: int) -> int:
    """The id an honest A-LEADuni election elects from this registry."""
    total = 0
    for pid in range(1, n + 1):
        stream = random.Random(derive_seed(registry_seed, f"proc:{pid}"))
        total += stream.randrange(n)
    return residue_to_id(total % n, n)


def run_fle_coin_batch(
    seeds: Sequence[int], params: Params
) -> Optional[Tuple[Dict[object, int], int]]:
    """Fold a chunk of ``cointoss/fle-coin`` trials in closed form."""
    n = params["n"]
    if n < 2:
        return None  # degenerate ring: let the scalar path report it
    counts = {0: 0, 1: 0}
    for seed in seeds:
        counts[_alead_leader(seed, n) % 2] += 1
    counts = {bit: c for bit, c in counts.items() if c}
    return counts, n * n * len(seeds)


def run_biased_coin_batch(
    seeds: Sequence[int], params: Params
) -> Optional[Tuple[Dict[object, int], int]]:
    """Fold a chunk of ``cointoss/biased-coin`` trials in O(1).

    Claim B.1 is deterministic: the Basic-LEAD cheater always forces
    ``target`` whatever the honest secrets, so every trial's coin is
    ``target % 2`` and no randomness needs replaying at all. Declines
    out-of-range placements so the scalar path raises the builder's
    ConfigurationError exactly as before.
    """
    n = params["n"]
    cheater, target = params["cheater"], params["target"]
    if n < 2 or cheater not in range(1, n + 1) or target not in range(1, n + 1):
        return None
    return {target % 2: len(seeds)}, n * n * len(seeds)


def run_coin_fle_batch(
    seeds: Sequence[int], params: Params
) -> Optional[Tuple[Dict[object, int], int]]:
    """Fold a chunk of ``cointoss/coin-fle`` trials in closed form.

    Round ``r`` of a trial runs a fresh A-LEADuni election from the
    child registry ``spawn:coin-round:<r>`` (the paper's independent-
    instances assumption); the elected id's low bit is that round's
    coin and the MSB-first bit string (plus one) is the elected FLE id.
    """
    n = params["n"]
    rounds = int(math.log2(n)) if n >= 2 else 0
    if n < 2 or 2**rounds != n:
        return None  # non-power-of-two: scalar path raises
    counts: Dict[object, int] = {}
    for seed in seeds:
        value = 0
        for r in range(rounds):
            child = derive_seed(seed, f"spawn:coin-round:{r}")
            value = (value << 1) | (_alead_leader(child, n) % 2)
        elected = value + 1
        counts[elected] = counts.get(elected, 0) + 1
    return counts, rounds * len(seeds)


register_scenario(
    ScenarioSpec(
        name="cointoss/fle-coin",
        description="coin toss from one honest A-LEADuni election (Thm 8.1)",
        build_topology=ring_topology,
        build_protocol=_honest_alead,
        run_batch=run_fle_coin_batch,
        map_outcome=leader_to_coin,
        outcome_size=no_valid_ids,  # outcomes are coin bits, not ids
        defaults={"n": 8},
        tags=("cointoss", "honest"),
    )
)

register_scenario(
    ScenarioSpec(
        name="cointoss/biased-coin",
        description="biased FLE (Basic-LEAD cheat) propagates to the coin",
        build_topology=ring_topology,
        build_protocol=_cheating_basic_lead,
        run_batch=run_biased_coin_batch,
        map_outcome=leader_to_coin,
        outcome_size=no_valid_ids,  # outcomes are coin bits, not ids
        defaults={"n": 8, "cheater": 2, "target": 4},
        success=forced_parity,
        tags=("cointoss", "attack"),
    )
)

register_scenario(
    ScenarioSpec(
        name="cointoss/coin-fle",
        description="FLE over n=2^r from r independent coin tosses (Thm 8.1)",
        run_trial=run_coin_fle_trial,
        run_batch=run_coin_fle_batch,
        defaults={"n": 8},
        tags=("cointoss", "honest"),
    )
)
