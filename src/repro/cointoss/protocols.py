"""Executable coin-toss protocols built from the Section 8 reductions.

A :class:`CoinTossRunner` wraps a ring-protocol factory so experiments can
toss coins (single or repeated-independent) and measure bias propagation:

- :func:`fle_coin_toss_runner` — coin toss implemented by one FLE run
  (leader id mod 2);
- :func:`independent_coin_fle` — FLE over ``n = 2^r`` implemented by ``r``
  independent coin tosses, each itself backed by an FLE run (the paper's
  independence assumption is realized by fresh randomness per round).
"""

from typing import Callable, Dict, Hashable, List

from repro.cointoss.reductions import (
    coin_toss_from_leader_election,
    leader_election_from_coin_toss,
)
from repro.sim.execution import FAIL, run_protocol
from repro.sim.topology import Topology
from repro.util.rng import RngRegistry

ProtocolFactory = Callable[[Topology], Dict[Hashable, object]]


class CoinTossRunner:
    """Runs a ring protocol and maps its outcome to a coin result.

    Parameters
    ----------
    topology, factory:
        The underlying FLE protocol (honest or adversarial — bias
        propagation experiments pass attack factories here).
    """

    def __init__(self, topology: Topology, factory: ProtocolFactory):
        self.topology = topology
        self.factory = factory

    def toss(self, rng: RngRegistry):
        """One coin toss; returns 0, 1, or ``FAIL``."""
        result = run_protocol(self.topology, self.factory(self.topology), rng=rng)
        return coin_toss_from_leader_election(result.outcome, len(self.topology))


def fle_coin_toss_runner(
    topology: Topology, factory: ProtocolFactory
) -> CoinTossRunner:
    """Coin toss from a leader election (first direction of Thm 8.1)."""
    return CoinTossRunner(topology, factory)


def independent_coin_fle(
    topology: Topology,
    factory: ProtocolFactory,
    n_leader: int,
    rng: RngRegistry,
):
    """FLE over ``1..n_leader`` from ``log2(n_leader)`` independent tosses.

    Each toss runs the ring protocol with an independently derived RNG
    (the paper's independent-instances assumption). Returns the elected id
    or ``FAIL``.
    """
    import math

    rounds = int(math.log2(n_leader))
    runner = CoinTossRunner(topology, factory)
    bits: List[int] = []
    for r in range(rounds):
        bits.append(runner.toss(rng.spawn(f"coin-round:{r}")))
    return leader_election_from_coin_toss(bits, n_leader)
