"""Basic-LEAD: the non-resilient baseline protocol (Appendix B).

Every processor draws a secret residue ``d_i``, broadcasts it around the
ring by forwarding, sums everything it receives, and elects
``residue_to_id(sum mod n)``. Each processor validates that its own value
returns as its n-th incoming message. Honest executions elect uniformly;
a *single* adversary that waits for ``n-1`` values before choosing its own
controls the outcome completely (Claim B.1 — see
:mod:`repro.attacks.basic_cheat`).
"""

from typing import Any, Dict, Hashable

from repro.protocols.outcome import residue_to_id
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.modmath import canonical_mod


class BasicLeadStrategy(Strategy):
    """Honest Basic-LEAD processor (symmetric; all wake spontaneously)."""

    __slots__ = ("n", "secret", "rounds", "total")

    def __init__(self, n: int):
        self.n = n
        self.secret: int = None
        self.rounds = 0
        self.total = 0

    def on_wakeup(self, ctx: Context) -> None:
        self.secret = ctx.rng.randrange(self.n)
        ctx.send_next(self.secret)

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        value = canonical_mod(int(value), self.n)
        self.rounds += 1
        self.total = canonical_mod(self.total + value, self.n)
        if self.rounds < self.n:
            ctx.send_next(value)
        else:
            # n-th incoming must be our own secret coming full circle.
            if value == self.secret:
                ctx.terminate(residue_to_id(self.total, self.n))
            else:
                ctx.abort("basic-lead: own secret did not return")


def basic_lead_protocol(topology: Topology) -> Dict[Hashable, Strategy]:
    """Honest Basic-LEAD strategy vector for a unidirectional ring."""
    n = len(topology)
    return {pid: BasicLeadStrategy(n) for pid in topology.nodes}
