"""PhaseAsyncLead: the paper's Θ(√n)-resilient FLE protocol (Section 6, E.3).

Execution proceeds in ``n`` logical rounds. In round ``r``:

- **data phase**: like A-LEADuni, every processor forwards its one-message
  data buffer one hop (the origin re-injects the data value it received in
  the previous round);
- **validation phase**: processor ``r`` is the round's *validator*. It
  draws a fresh validation value ``v_r ∈ [m]`` (``m = 2n²``) and sends it;
  every other processor forwards it immediately (no buffering); when ``v_r``
  completes the circle the validator checks it returned unchanged and
  consumes it.

Each processor's incoming stream must strictly alternate data (odd
positions) / validation (even positions); any parity violation is punished
by aborting. After round ``n`` every processor knows all data values
``d_1..d_n`` (its own must have returned intact) and all validation values,
and outputs ``f(d_1..d_n, v_1..v_{n-l})`` for the random function ``f``
and suffix cut ``l`` (paper: ``l = ⌈10√n⌉``).

Implementation note (documented deviation): the appendix pseudo-code lets
the origin terminate once its round counter reaches ``n``, which would drop
round ``n``'s circulating validation value and deadlock validator ``n``.
We use the reconciled semantics — the origin forwards ``v_n`` and only then
terminates — which preserves every property the proofs use (message counts,
alternation, commitment points) and actually terminates.

The module also provides the **sum-output variant** (output
``Σd_i mod n`` instead of a random ``f``) that Appendix E.4 shows is broken
by ``k = 4`` adversaries, motivating the random function.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.protocols.outcome import residue_to_id
from repro.protocols.random_function import RandomFunction, default_ell
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import mod_sum

#: Message-type tags. A PhaseAsyncLead message is the tuple ``(tag, value)``.
DATA = "D"
VALIDATION = "V"

OutputFn = Callable[[Sequence[int], Sequence[int]], int]


def sum_output(data_values: Sequence[int], validation_values: Sequence[int]) -> int:
    """The E.4 broken output rule: elect ``Σ d_i mod n`` (ignores ``v``)."""
    n = len(data_values)
    return residue_to_id(mod_sum(data_values, n), n)


@dataclass
class PhaseAsyncParams:
    """Configuration shared by all processors of one PhaseAsyncLead run.

    Attributes
    ----------
    n:
        Ring size.
    ell:
        Validation suffix cut ``l``; ``f`` reads ``v_1..v_{n-ell}``.
    m:
        Validation value space size (paper: ``2n²``).
    output_fn:
        ``(data_values, validation_values) → elected id``. Defaults to a
        keyed :class:`RandomFunction`; use :meth:`sum_variant` for the
        broken E.4 protocol.
    """

    n: int
    ell: Optional[int] = None
    m: Optional[int] = None
    key: int = 0
    output_fn: Optional[OutputFn] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"PhaseAsyncLead needs n >= 2, got {self.n}")
        if self.ell is None:
            self.ell = default_ell(self.n)
        if not 0 <= self.ell <= self.n:
            raise ConfigurationError(f"ell={self.ell} out of range [0, {self.n}]")
        if self.m is None:
            self.m = 2 * self.n * self.n
        if self.m < 2:
            raise ConfigurationError(f"m={self.m} too small")
        if self.output_fn is None:
            self.output_fn = RandomFunction(self.n, ell=self.ell, key=self.key)

    @classmethod
    def sum_variant(
        cls, n: int, ell: Optional[int] = None, m: Optional[int] = None
    ) -> "PhaseAsyncParams":
        """The E.4 variant: phase validation kept, output is the plain sum."""
        return cls(n=n, ell=ell, m=m, output_fn=sum_output)

    @property
    def num_validation_inputs(self) -> int:
        """How many validation values feed the output function."""
        return self.n - self.ell


def _require(tag_ok: bool, ctx: Context, reason: str) -> bool:
    """Abort via ``ctx`` unless ``tag_ok``; returns whether to continue."""
    if not tag_ok:
        ctx.abort(reason)
    return tag_ok


class _PhaseBase(Strategy):
    """State shared by origin and normal PhaseAsyncLead processors."""

    def __init__(self, pid: int, params: PhaseAsyncParams):
        self.pid = pid
        self.params = params
        self.n = params.n
        self.round = 0
        self.incoming = 0
        self.data_buffer: Optional[int] = None
        self.secret: Optional[int] = None
        self.validation_secret: Optional[int] = None
        self.data_values: Dict[int, int] = {}
        self.validation_values: Dict[int, int] = {}

    # -- shared helpers --------------------------------------------------

    def _unpack(self, ctx: Context, value: Any) -> Optional[Any]:
        """Enforce message framing + parity; returns payload or None."""
        self.incoming += 1
        if not (isinstance(value, tuple) and len(value) == 2):
            ctx.abort("phase-async: malformed message")
            return None
        tag, payload = value
        expect = DATA if self.incoming % 2 == 1 else VALIDATION
        if tag != expect:
            ctx.abort(
                f"phase-async: expected {expect} at incoming #{self.incoming}, "
                f"got {tag}"
            )
            return None
        if not isinstance(payload, int):
            ctx.abort("phase-async: non-integer payload")
            return None
        limit = self.n if tag == DATA else self.params.m
        return payload % limit

    def _finish(self, ctx: Context) -> None:
        """Evaluate the output function and terminate."""
        data = [self.data_values[i] for i in range(1, self.n + 1)]
        validations = [
            self.validation_values[r]
            for r in range(1, self.params.num_validation_inputs + 1)
        ]
        ctx.terminate(self.params.output_fn(data, validations))

    def _data_index(self, round_number: int) -> int:
        """Ring index whose data value arrives at this pid in ``round``."""
        idx = (self.pid - round_number) % self.n
        return self.n if idx == 0 else idx


class PhaseNormalStrategy(_PhaseBase):
    """Normal processor ``i ≠ 1`` (buffers data; validator in round ``i``)."""

    def on_wakeup(self, ctx: Context) -> None:
        self.secret = ctx.rng.randrange(self.n)
        self.data_buffer = self.secret
        self.data_values[self.pid] = self.secret

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        payload = self._unpack(ctx, value)
        if payload is None:
            return
        if self.incoming % 2 == 1:
            self._on_data(ctx, payload)
        else:
            self._on_validation(ctx, payload)

    def _on_data(self, ctx: Context, payload: int) -> None:
        ctx.send_next((DATA, self.data_buffer))
        self.round += 1
        self.data_buffer = payload
        self.data_values[self._data_index(self.round)] = payload
        if self.round == self.pid:
            self.validation_secret = ctx.rng.randrange(self.params.m)
            self.validation_values[self.round] = self.validation_secret
            ctx.send_next((VALIDATION, self.validation_secret))
        if self.round == self.n and payload != self.secret:
            ctx.abort("phase-async: own data value did not return")

    def _on_validation(self, ctx: Context, payload: int) -> None:
        if self.round == self.pid:
            # Our own validation value coming full circle: consume + check.
            if payload != self.validation_secret:
                ctx.abort("phase-async: validation value corrupted")
                return
        else:
            self.validation_values[self.round] = payload
            ctx.send_next((VALIDATION, payload))
        if self.round == self.n and not ctx.terminated:
            self._finish(ctx)


class PhaseOriginStrategy(_PhaseBase):
    """Origin (processor 1): wakes spontaneously, validator of round 1."""

    def on_wakeup(self, ctx: Context) -> None:
        self.secret = ctx.rng.randrange(self.n)
        self.data_values[self.pid] = self.secret
        self.round = 1
        ctx.send_next((DATA, self.secret))
        self.validation_secret = ctx.rng.randrange(self.params.m)
        self.validation_values[1] = self.validation_secret
        ctx.send_next((VALIDATION, self.validation_secret))

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        payload = self._unpack(ctx, value)
        if payload is None:
            return
        if self.incoming % 2 == 1:
            self._on_data(ctx, payload)
        else:
            self._on_validation(ctx, payload)

    def _on_data(self, ctx: Context, payload: int) -> None:
        # Round r's data at the origin is d_{n-r+1}; round n returns d_1.
        self.data_buffer = payload
        self.data_values[self._data_index(self.round)] = payload
        if self.round == self.n and payload != self.secret:
            ctx.abort("phase-async origin: own data value did not return")

    def _on_validation(self, ctx: Context, payload: int) -> None:
        if self.round == 1:
            if payload != self.validation_secret:
                ctx.abort("phase-async origin: validation value corrupted")
                return
        else:
            self.validation_values[self.round] = payload
            ctx.send_next((VALIDATION, payload))
        if self.round < self.n:
            ctx.send_next((DATA, self.data_buffer))
            self.round += 1
        else:
            self._finish(ctx)


def phase_async_protocol(
    topology: Topology, params: Optional[PhaseAsyncParams] = None
) -> Dict[Hashable, Strategy]:
    """Honest PhaseAsyncLead strategy vector for a unidirectional ring.

    Node ids must be ``1..n`` (round ``r``'s validator is processor ``r``,
    Appendix G's indexing phase is assumed already done).
    """
    n = len(topology)
    if set(topology.nodes) != set(range(1, n + 1)):
        raise ConfigurationError("PhaseAsyncLead requires node ids 1..n")
    if params is None:
        params = PhaseAsyncParams(n=n)
    if params.n != n:
        raise ConfigurationError(
            f"params.n={params.n} does not match topology size {n}"
        )
    protocol: Dict[Hashable, Strategy] = {}
    for pid in topology.nodes:
        if pid == 1:
            protocol[pid] = PhaseOriginStrategy(pid, params)
        else:
            protocol[pid] = PhaseNormalStrategy(pid, params)
    return protocol
