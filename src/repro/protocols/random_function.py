"""The random output function ``f`` of PhaseAsyncLead.

Theorem 6.1 is proved *with high probability over a uniformly random*
``f : [n]^n × [m]^(n-l) → [n]``. A literal random function is an
exponentially large table, so we instantiate ``f`` as a keyed BLAKE2b hash
of the canonically-serialized input tuple, reduced modulo ``n`` — the
standard random-oracle instantiation. Documented substitution (DESIGN.md §4):

- everything in the paper interacts with ``f`` only by evaluating it and by
  its lack of exploitable algebraic structure; a keyed cryptographic hash
  preserves both;
- the E.4 attack specifically exploits the linearity of ``sum``; running it
  against both the ``sum`` variant and this ``f`` shows the contrast the
  paper draws;
- experiments can re-key ``f`` to sample the "probability over f" the
  theorem quantifies, via the ``key`` parameter.
"""

import hashlib
import math
from typing import Sequence

from repro.protocols.outcome import residue_to_id


def default_ell(n: int) -> int:
    """The paper's validation-suffix cut ``l = ⌈10√n⌉``, capped at ``n``.

    ``f`` reads validation values ``v_1..v_{n-l}``. The paper assumes n is
    large enough that ``l ≤ n/k``; for the small-to-moderate rings a
    simulation can afford, ``⌈10√n⌉`` may exceed ``n``, in which case we cap
    at ``n`` and ``f`` reads no validation values at all (the protocol still
    runs all validation rounds — only the output function's input shrinks).
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    return min(int(math.ceil(10 * math.sqrt(n))), n)


class RandomFunction:
    """Keyed instantiation of the paper's random function ``f``.

    Parameters
    ----------
    n:
        Ring size; the output is a processor id in ``{1..n}``.
    ell:
        The suffix cut ``l``; ``f`` consumes ``n - ell`` validation values.
        Defaults to :func:`default_ell`.
    key:
        Re-keying ``f`` samples a fresh function from the family, which is
        how experiments estimate "with high probability over f" claims.
    """

    def __init__(self, n: int, ell: int = None, key: int = 0):
        if n < 1:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self.ell = default_ell(n) if ell is None else ell
        if not 0 <= self.ell <= n:
            raise ValueError(f"ell={self.ell} out of range [0, {n}]")
        self.key = key

    @property
    def num_validation_inputs(self) -> int:
        """How many validation values ``f`` reads (``n - l``)."""
        return self.n - self.ell

    def __call__(
        self, data_values: Sequence[int], validation_values: Sequence[int]
    ) -> int:
        """Evaluate ``f(d_1..d_n, v_1..v_{n-l})`` → elected id in ``{1..n}``.

        ``validation_values`` may be passed at full length ``n``; only the
        first ``n - l`` entries are consumed, mirroring the protocol where
        later validation values must not influence the output.
        """
        if len(data_values) != self.n:
            raise ValueError(
                f"expected {self.n} data values, got {len(data_values)}"
            )
        used_validations = list(validation_values[: self.num_validation_inputs])
        if len(used_validations) < self.num_validation_inputs:
            raise ValueError(
                f"expected at least {self.num_validation_inputs} validation "
                f"values, got {len(validation_values)}"
            )
        payload = "|".join(
            [
                f"k={self.key}",
                f"n={self.n}",
                f"l={self.ell}",
                "d=" + ",".join(str(int(d)) for d in data_values),
                "v=" + ",".join(str(int(v)) for v in used_validations),
            ]
        ).encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=16).digest()
        residue = int.from_bytes(digest, "big") % self.n
        return residue_to_id(residue, self.n)
