"""The asynchronous complete-network baseline: FLE via Shamir sharing.

Section 1.1 (citing Abraham et al. [4]): on an asynchronous *fully
connected* network, applying Shamir's secret sharing directly yields an
optimally resilient FLE — resilient to every coalition of size
``k ≤ ⌈n/2⌉ - 1``.

Protocol (threshold ``T = ⌈n/2⌉``):

1. **Share**: each processor draws ``d_i``, splits it into ``n`` shares
   of a degree-``T-1`` polynomial and sends share ``j`` to processor
   ``j``. Once ``T`` shares are out, ``d_i`` is information-theoretically
   committed.
2. **Reveal**: upon holding a share of *every* secret, a processor
   broadcasts its share vector.
3. **Reconstruct**: upon receiving all reveal vectors, reconstruct every
   ``d_i`` from its ``n`` shares, *validate* that all ``n`` lie on one
   degree-``T-1`` polynomial (tampered reveals are caught here), check
   one's own secret reconstructs intact, and elect ``Σ d_i mod n``.

A coalition of ``k < T`` holds ``k`` shares of each honest secret when it
must commit its own — information-theoretically nothing — which is the
resilience; ``k ≥ T`` breaks it by pooling (see
:mod:`repro.attacks.shamir_pool`).
"""

import math
from typing import Any, Dict, Hashable, List, Tuple

from repro.protocols.outcome import residue_to_id
from repro.secretshare.shamir import ShamirScheme, Share
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import mod_sum

#: Message tags.
SHARE = "share"  # ("share", owner_id, Share)
REVEAL = "reveal"  # ("reveal", ((owner_id, Share), ...))


def default_threshold(n: int) -> int:
    """The optimal-resilience reconstruction threshold ``⌈n/2⌉``."""
    return math.ceil(n / 2)


class AsyncCompleteLeadStrategy(Strategy):
    """Honest processor of the Shamir complete-network baseline."""

    def __init__(self, pid: int, n: int, scheme: ShamirScheme):
        self.pid = pid
        self.n = n
        self.scheme = scheme
        self.secret: int = None
        # Share of each owner's secret held by *this* processor.
        self.my_shares: Dict[int, Share] = {}
        # owner -> {evaluation point x -> Share} gathered from reveals.
        self.collected: Dict[int, Dict[int, Share]] = {}
        self.reveals_seen = 0
        self.revealed = False

    def on_wakeup(self, ctx: Context) -> None:
        self.secret = ctx.rng.randrange(self.n)
        shares = self.scheme.share(self.secret, ctx.rng)
        for j, share in zip(range(1, self.n + 1), shares):
            if j == self.pid:
                self.my_shares[self.pid] = share
            else:
                ctx.send(j, (SHARE, self.pid, share))

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        if not (isinstance(value, tuple) and len(value) >= 2):
            ctx.abort("malformed message")
            return
        tag = value[0]
        if tag == SHARE:
            self._on_share(ctx, value, sender)
        elif tag == REVEAL:
            self._on_reveal(ctx, value, sender)
        else:
            ctx.abort(f"unknown message tag {tag!r}")

    def _on_share(self, ctx: Context, value: Tuple, sender: Hashable) -> None:
        _, owner, share = value
        if owner != sender or owner in self.my_shares:
            ctx.abort("share message from wrong owner or duplicate")
            return
        if not isinstance(share, Share) or share.x != self.pid:
            ctx.abort("share not addressed to this processor")
            return
        self.my_shares[owner] = share
        if len(self.my_shares) == self.n and not self.revealed:
            self.revealed = True
            vector = tuple(sorted(self.my_shares.items()))
            for j in range(1, self.n + 1):
                if j != self.pid:
                    ctx.send(j, (REVEAL, vector))
            self._absorb_vector(vector)
            self._maybe_finish(ctx)

    def _on_reveal(self, ctx: Context, value: Tuple, sender: Hashable) -> None:
        _, vector = value
        if len(vector) != self.n:
            ctx.abort("reveal vector has wrong arity")
            return
        self.reveals_seen += 1
        self._absorb_vector(vector)
        self._maybe_finish(ctx)

    def _absorb_vector(self, vector) -> None:
        for owner, share in vector:
            self.collected.setdefault(owner, {})[share.x] = share

    def _maybe_finish(self, ctx: Context) -> None:
        # Own vector + n-1 reveals = shares from all n evaluation points.
        if not self.revealed or self.reveals_seen < self.n - 1:
            return
        values: List[int] = []
        for owner in range(1, self.n + 1):
            shares = list(self.collected.get(owner, {}).values())
            if len(shares) != self.n:
                ctx.abort(f"missing shares for secret of {owner}")
                return
            if not self.scheme.consistent(shares):
                ctx.abort(f"inconsistent sharing for {owner}: tampering")
                return
            values.append(self.scheme.reconstruct(shares))
        if values[self.pid - 1] != self.secret:
            ctx.abort("own secret reconstructed incorrectly")
            return
        ctx.terminate(residue_to_id(mod_sum(values, self.n), self.n))


def async_complete_protocol(
    topology: Topology, threshold: int = None
) -> Dict[Hashable, Strategy]:
    """Honest strategy vector for the Shamir complete-network baseline."""
    n = len(topology)
    if set(topology.nodes) != set(range(1, n + 1)):
        raise ConfigurationError("baseline requires node ids 1..n")
    for pid in topology.nodes:
        if len(set(topology.successors(pid))) != n - 1:
            raise ConfigurationError("baseline requires a complete topology")
    if threshold is None:
        threshold = default_threshold(n)
    scheme = ShamirScheme(n, threshold, modulus=n)
    return {
        pid: AsyncCompleteLeadStrategy(pid, n, scheme)
        for pid in topology.nodes
    }
