"""Appendix G: PhaseAsyncLead for non-consecutively-indexed rings.

The core protocol (Section 6) assumes processors ``1..n`` in ring order,
because processor ``r`` is round ``r``'s validator. Appendix G removes
the assumption with an *indexing phase*: the designated origin sends a
counter ``1``; each processor takes ``counter + 1`` as its index and
forwards the incremented counter; when the counter returns (value ``n``)
the origin starts the main protocol. Validator duty then follows the
learned index, not the id.

Implementation: a wrapper strategy that runs the indexing phase and then
delegates verbatim to the Section 6 strategies with ``pid := index``.
Messages are framed ``("IDX", c)`` during indexing and the usual
``("D"/"V", v)`` afterwards; framing violations are punished by abort.
"""

from typing import Any, Dict, Hashable, Optional

from repro.protocols.phase_async import (
    PhaseAsyncParams,
    PhaseNormalStrategy,
    PhaseOriginStrategy,
)
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError

#: Indexing-phase message tag.
INDEX = "IDX"


class IndexedPhaseStrategy(Strategy):
    """Indexing-phase wrapper around the Section 6 strategies."""

    def __init__(self, is_origin: bool, params: PhaseAsyncParams):
        self.is_origin = is_origin
        self.params = params
        self.index: Optional[int] = None
        self.inner: Optional[Strategy] = None

    def on_wakeup(self, ctx: Context) -> None:
        if self.is_origin:
            self.index = 1
            ctx.send_next((INDEX, 1))

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        if self.inner is not None:
            self.inner.on_receive(ctx, value, sender)
            return
        if not (isinstance(value, tuple) and len(value) == 2 and value[0] == INDEX):
            ctx.abort("expected indexing message before the main protocol")
            return
        counter = value[1]
        if self.is_origin:
            # The counter came full circle carrying n; start the protocol.
            if counter != self.params.n:
                ctx.abort(
                    f"indexing counter returned {counter}, expected "
                    f"{self.params.n}"
                )
                return
            self.inner = PhaseOriginStrategy(1, self.params)
            self.inner.on_wakeup(ctx)
            return
        if self.index is not None:
            ctx.abort("duplicate indexing message")
            return
        self.index = counter + 1
        ctx.send_next((INDEX, self.index))
        self.inner = PhaseNormalStrategy(self.index, self.params)
        # The normal strategy's wakeup only draws its secret and primes
        # the buffer — safe to run now that the index is known.
        self.inner.on_wakeup(ctx)


def indexed_phase_async_protocol(
    topology: Topology,
    origin: Hashable,
    params: Optional[PhaseAsyncParams] = None,
) -> Dict[Hashable, Strategy]:
    """PhaseAsyncLead on a unidirectional ring with arbitrary node ids.

    ``origin`` names the spontaneously waking processor (index 1). Ring
    order — hence validator order — is discovered by the counter, so the
    topology's ids can be any hashables.
    """
    n = len(topology)
    if origin not in set(topology.nodes):
        raise ConfigurationError(f"origin {origin!r} not on the ring")
    for pid in topology.nodes:
        if len(topology.successors(pid)) != 1:
            raise ConfigurationError("indexing needs a unidirectional ring")
    if params is None:
        params = PhaseAsyncParams(n=n)
    if params.n != n:
        raise ConfigurationError(
            f"params.n={params.n} does not match topology size {n}"
        )
    return {
        pid: IndexedPhaseStrategy(pid == origin, params)
        for pid in topology.nodes
    }
