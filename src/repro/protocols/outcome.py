"""Conventions mapping modular sums to elected processor ids.

The paper elects ``sum(d_i) mod n`` with ids ``V = [n] = {1..n}``. We keep
secret values as residues ``{0..n-1}`` and map residue ``0`` to id ``n`` so
every residue names a processor. Both protocols and attacks must go through
these two helpers so the convention stays consistent everywhere.
"""

from repro.util.modmath import canonical_mod


def residue_to_id(residue: int, n: int) -> int:
    """Map a residue in ``{0..n-1}`` to a processor id in ``{1..n}``."""
    r = canonical_mod(residue, n)
    return n if r == 0 else r


def id_to_residue(pid: int, n: int) -> int:
    """Inverse of :func:`residue_to_id` for ids in ``{1..n}``."""
    if not 1 <= pid <= n:
        raise ValueError(f"processor id {pid} out of range [1, {n}]")
    return canonical_mod(pid, n)
