"""Leader-election protocols from the paper.

- :mod:`repro.protocols.basic_lead` — the non-resilient baseline
  (Appendix B).
- :mod:`repro.protocols.alead_uni` — A-LEADuni of Abraham et al.
  (Section 3 / Appendix A).
- :mod:`repro.protocols.phase_async` — PhaseAsyncLead, the paper's new
  Θ(√n)-resilient protocol (Section 6 / Appendix E.3), plus its broken
  ``sum``-output variant used to motivate the random function (E.4).
"""

from repro.protocols.outcome import residue_to_id, id_to_residue
from repro.protocols.random_function import RandomFunction, default_ell
from repro.protocols.basic_lead import BasicLeadStrategy, basic_lead_protocol
from repro.protocols.alead_uni import (
    ALeadOriginStrategy,
    ALeadNormalStrategy,
    alead_uni_protocol,
    ORIGIN_ID,
)
from repro.protocols.phase_async import (
    PhaseAsyncParams,
    PhaseOriginStrategy,
    PhaseNormalStrategy,
    phase_async_protocol,
    DATA,
    VALIDATION,
)
from repro.protocols.async_complete import (
    AsyncCompleteLeadStrategy,
    async_complete_protocol,
    default_threshold,
)
from repro.protocols.indexing import (
    IndexedPhaseStrategy,
    indexed_phase_async_protocol,
)
from repro.protocols.wakeup import WakeupALeadStrategy, wakeup_alead_protocol

__all__ = [
    "residue_to_id",
    "id_to_residue",
    "RandomFunction",
    "default_ell",
    "BasicLeadStrategy",
    "basic_lead_protocol",
    "ALeadOriginStrategy",
    "ALeadNormalStrategy",
    "alead_uni_protocol",
    "ORIGIN_ID",
    "PhaseAsyncParams",
    "PhaseOriginStrategy",
    "PhaseNormalStrategy",
    "phase_async_protocol",
    "DATA",
    "VALIDATION",
    "AsyncCompleteLeadStrategy",
    "async_complete_protocol",
    "default_threshold",
    "IndexedPhaseStrategy",
    "indexed_phase_async_protocol",
    "WakeupALeadStrategy",
    "wakeup_alead_protocol",
]
