"""Appendix H / Afek et al.'s wake-up building block, composed with
A-LEADuni.

In the original model of Abraham et al. the id set is *not* known ahead;
a wake-up phase lets processors exchange ids and agree on the origin.
On a unidirectional ring the classic realization: every processor wakes
spontaneously and sends its id; ids circulate, each processor forwarding
every foreign id and absorbing its own when it returns. After ``n``
incoming ids a processor knows the full id set; the minimum id becomes
the origin and the main protocol (A-LEADuni here) starts seamlessly —
FIFO links guarantee all wake-up traffic on a link precedes the
protocol traffic.

The paper (Appendix H) notes the attacks survive this composition —
adversaries simply behave honestly during wake-up — while the resilience
proofs do not obviously extend. Tests exercise exactly that asymmetry.
"""

from typing import Any, Dict, Hashable, List, Optional

from repro.protocols.alead_uni import ALeadNormalStrategy, ALeadOriginStrategy
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError

#: Wake-up phase message tag.
WAKE = "ID"


class WakeupALeadStrategy(Strategy):
    """Wake-up phase wrapper around the A-LEADuni strategies.

    After the id collection completes, the processor with the minimum id
    instantiates the origin strategy (and fires its spontaneous send);
    everyone else instantiates the normal strategy. Subsequent untagged
    messages are delegated verbatim.
    """

    def __init__(self, pid: Hashable):
        self.pid = pid
        self.seen_ids: List[Hashable] = [pid]
        self.inner: Optional[Strategy] = None

    def on_wakeup(self, ctx: Context) -> None:
        ctx.send_next((WAKE, self.pid))

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        if self.inner is not None:
            self.inner.on_receive(ctx, value, sender)
            return
        if not (isinstance(value, tuple) and len(value) == 2 and value[0] == WAKE):
            ctx.abort("expected wake-up id message")
            return
        other = value[1]
        if other == self.pid:
            # Our id came full circle: the id set is complete.
            self._finish_wakeup(ctx)
            return
        if other in self.seen_ids:
            ctx.abort(f"duplicate id {other!r} during wake-up")
            return
        self.seen_ids.append(other)
        ctx.send_next((WAKE, other))

    def _finish_wakeup(self, ctx: Context) -> None:
        n = len(self.seen_ids)
        origin = min(self.seen_ids, key=repr)
        if self.pid == origin:
            self.inner = ALeadOriginStrategy(n)
            self.inner.on_wakeup(ctx)  # fires the origin's first secret
        else:
            self.inner = ALeadNormalStrategy(n)
            self.inner.on_wakeup(ctx)  # primes the buffer only


def wakeup_alead_protocol(topology: Topology) -> Dict[Hashable, Strategy]:
    """A-LEADuni preceded by the wake-up phase; ids may be arbitrary."""
    for pid in topology.nodes:
        if len(topology.successors(pid)) != 1:
            raise ConfigurationError("wake-up phase needs a unidirectional ring")
    return {pid: WakeupALeadStrategy(pid) for pid in topology.nodes}
