"""A-LEADuni: the Abraham et al. ring protocol (Section 3, Appendix A).

Secret sharing with a one-round buffering delay that forces processors to
commit to their secret before learning anyone else's:

- the **origin** (processor 1) wakes spontaneously, sends its secret, then
  behaves like a pipe: it forwards its first ``n-1`` incoming messages and
  validates that the n-th equals its own secret;
- every **normal** processor holds a one-message buffer primed with its
  secret: upon each incoming message it first sends the buffer, then stores
  the incoming value. Its n-th incoming message must equal its own secret.

Every processor sums its ``n`` incoming values and elects
``residue_to_id(sum mod n)``. A deviation is punished by aborting (⊥),
which forces the global outcome to ``FAIL`` (solution preference makes this
a deterrent).
"""

from typing import Any, Dict, Hashable

from repro.protocols.outcome import residue_to_id
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod

#: The distinguished spontaneously-waking processor (paper: processor 1).
ORIGIN_ID = 1


class ALeadOriginStrategy(Strategy):
    """Origin: send secret, forward ``n-1`` messages, validate the n-th."""

    __slots__ = ("n", "secret", "rounds", "total")

    def __init__(self, n: int):
        self.n = n
        self.secret: int = None
        self.rounds = 0
        self.total = 0

    def on_wakeup(self, ctx: Context) -> None:
        self.secret = ctx.rng.randrange(self.n)
        ctx.send_next(self.secret)

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        value = canonical_mod(int(value), self.n)
        self.rounds += 1
        self.total = canonical_mod(self.total + value, self.n)
        if self.rounds < self.n:
            ctx.send_next(value)  # pipe behaviour: receive and send at once
        else:
            if value == self.secret:
                ctx.terminate(residue_to_id(self.total, self.n))
            else:
                ctx.abort("alead-uni origin: own secret did not return")


class ALeadNormalStrategy(Strategy):
    """Normal processor: one-message buffer primed with the secret."""

    __slots__ = ("n", "buffer", "secret", "rounds", "total")

    def __init__(self, n: int):
        self.n = n
        self.buffer: int = None  # holds the secret until the first receive
        self.secret: int = None
        self.rounds = 0
        self.total = 0

    def on_wakeup(self, ctx: Context) -> None:
        self.secret = ctx.rng.randrange(self.n)
        self.buffer = self.secret

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        value = canonical_mod(int(value), self.n)
        ctx.send_next(self.buffer)  # send the delayed message first
        self.buffer = value
        self.rounds += 1
        self.total = canonical_mod(self.total + value, self.n)
        if self.rounds == self.n:
            if value == self.secret:
                ctx.terminate(residue_to_id(self.total, self.n))
            else:
                ctx.abort("alead-uni: own secret did not return")


def alead_uni_protocol(topology: Topology) -> Dict[Hashable, Strategy]:
    """Honest A-LEADuni strategy vector; origin is node ``1``."""
    n = len(topology)
    if ORIGIN_ID not in set(topology.nodes):
        raise ConfigurationError("A-LEADuni requires node 1 as origin")
    protocol: Dict[Hashable, Strategy] = {}
    for pid in topology.nodes:
        if pid == ORIGIN_ID:
            protocol[pid] = ALeadOriginStrategy(n)
        else:
            protocol[pid] = ALeadNormalStrategy(n)
    return protocol
