"""Shared stdlib-HTTP scaffolding for the served surfaces.

Both HTTP front ends — the estimate service (:mod:`repro.serve`) and
the campaign coordinator (:mod:`repro.experiments.coordinator`) — are
``http.server`` threading servers speaking JSON. This module holds the
plumbing they share so the two stay behaviourally identical where it
matters:

- :class:`JsonRequestHandler`: response writers (``_send`` for JSON,
  ``_send_text`` for Prometheus text) that guard the *entire* response
  write against client disconnects. A client that gives up mid-compute
  (curl timing out during a long cold estimate) used to raise
  ``BrokenPipeError``/``ConnectionResetError`` out of the handler and
  dump a traceback per request; now the write is abandoned quietly and
  counted on the bound ``disconnects`` counter so the operator sees the
  rate on ``/metrics`` instead of in a log flood.
- :func:`bind_handler`: the bound-subclass pattern — ``BaseHTTPServer``
  instantiates the handler class itself, so per-server state (the
  service object, verbosity, counters) rides on class attributes of a
  throwaway subclass rather than globals.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.metrics import TEXT_CONTENT_TYPE


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Request-handler base with disconnect-guarded response writers.

    Subclasses route in ``do_GET``/``do_POST`` and answer via
    :meth:`_send` / :meth:`_send_text`; class attributes ``verbose``
    and ``disconnects`` (a :class:`repro.metrics.Counter` or ``None``)
    are bound per server by :func:`bind_handler`.
    """

    #: Bound per server: a metrics Counter fed one inc() per client
    #: that vanished mid-response, or None to only swallow the error.
    disconnects = None
    verbose = False

    def _send(self, status, payload):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_text(self, status, text, content_type=TEXT_CONTENT_TYPE):
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(self, status, body, content_type):
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except ConnectionError:
            # The client hung up somewhere between our compute finishing
            # and the last byte going out (BrokenPipeError and
            # ConnectionResetError are both ConnectionError). There is
            # nobody left to answer; drop the connection and count it.
            self.close_connection = True
            if self.disconnects is not None:
                self.disconnects.inc()

    def read_json_body(self):
        """The request body parsed as a JSON object, or ``None`` when
        absent/malformed (callers answer 400)."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            return None
        if length <= 0:
            return None
        try:
            parsed = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError, ConnectionError):
            return None
        return parsed if isinstance(parsed, dict) else None

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)


def bind_handler(base, name, **attrs):
    """A throwaway subclass of ``base`` carrying per-server state."""
    return type(name, (base,), attrs)


class MetricsHandler(JsonRequestHandler):
    """GET-only handler exposing one registry: ``/metrics`` (Prometheus
    text), ``/healthz``. The campaign CLI binds this for plain
    single-host runs; the coordinator and estimate service keep their
    own richer handlers."""

    #: Bound per server by :func:`bind_handler`.
    registry = None

    def do_GET(self):
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send_text(200, self.registry.render())
        elif path == "/healthz":
            self._send(200, {"ok": True})
        else:
            self._send(404, {"error": f"no such path: {path}"})


def serve_metrics(registry, host="127.0.0.1", port=0, verbose=False):
    """Serve ``registry`` on a daemon thread; returns ``(server, thread)``.

    Port 0 binds an ephemeral port (read it back from
    ``server.server_address``). Callers own the teardown:
    ``server.shutdown(); server.server_close(); thread.join()``.
    """
    handler = bind_handler(
        MetricsHandler, "BoundMetricsHandler",
        registry=registry, verbose=verbose,
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="metrics-http", daemon=True
    )
    thread.start()
    return server, thread
