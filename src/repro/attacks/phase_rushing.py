"""Tightness of Theorem 6.1: ``k = √n + 3`` adversaries break PhaseAsyncLead.

The paper's remark after Theorem 6.1: rushing data while handling
validation honestly lets each adversary learn, within ``n - k`` rounds, all
honest data values and all validation values that feed ``f``. Each
adversary then still controls ``k - l_j ≥ 3`` *free* data slots in the
input its segment will reconstruct; for a random ``f`` it can brute-force
values for those slots so that ``f(·) = w`` almost surely.

Per-adversary schedule (segment length ``L = l_j ≤ k - 3``):

- data rounds ``1 .. n-k``: rush (forward the incoming value immediately);
- data rounds ``n-k+1 .. n-L``: the free slots — values solved by brute
  force at round ``n-k+1`` so the segment's reconstruction maps through
  ``f`` to the target;
- data rounds ``n-L+1 .. n``: replay ``secret(I_j)`` (incoming data rounds
  ``n-k-L+1 .. n-k``) so every honest data validation passes;
- validation rounds: perfectly honest (forward; initiate a random value in
  our own validator round; consume it on return).

Every honest segment reconstructs a *different* input vector ``x_j``
(rushing rotates attribution), so each adversary solves ``f(x_j) = w``
independently for its own segment; all segments then agree on ``w``.

The brute force needs ``f``'s validation inputs to be known by commitment
time, i.e. ``n - ell ≤ n - k`` (``ell ≥ k``) — true for the paper's
``ell = ⌈10√n⌉`` whenever ``k ≈ √n``.
"""

from itertools import product
from typing import Any, Dict, Hashable, List, Optional

from repro.attacks.placement import RingPlacement
from repro.protocols.phase_async import (
    DATA,
    VALIDATION,
    PhaseAsyncParams,
    PhaseNormalStrategy,
    PhaseOriginStrategy,
)
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError


class PhaseRushingAdversary(Strategy):
    """Coalition member of the rushing attack on PhaseAsyncLead."""

    def __init__(
        self,
        params: PhaseAsyncParams,
        pid: int,
        segment_length: int,
        k: int,
        target: int,
        max_bruteforce: int = 250_000,
    ):
        self.params = params
        self.n = params.n
        self.pid = pid
        self.seg_len = segment_length
        self.k = k
        self.target = target
        self.max_bruteforce = max_bruteforce
        self.round = 0
        self.incoming = 0
        self.data_received: List[int] = []
        self.validations: Dict[int, int] = {}
        self.choices: Optional[List[int]] = None
        self.solved = False

    def on_wakeup(self, ctx: Context) -> None:
        pass  # deviate: no data value of our own

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        self.incoming += 1
        tag, payload = value
        if self.incoming % 2 == 1:
            self._on_data(ctx, payload % self.n)
        else:
            self._on_validation(ctx, payload % self.params.m)
        if self.incoming == 2 * self.n and not ctx.terminated:
            ctx.terminate(self.target if self.solved else None)

    # -- data plane ------------------------------------------------------

    def _on_data(self, ctx: Context, payload: int) -> None:
        self.round += 1
        self.data_received.append(payload)
        r, n, k, L = self.round, self.n, self.k, self.seg_len
        if r <= n - k:
            ctx.send_next((DATA, payload))  # rush
        else:
            if self.choices is None:
                self._solve()
            if r <= n - L:
                ctx.send_next((DATA, self.choices[r - (n - k) - 1]))
            else:
                t = r - (n - L)
                ctx.send_next((DATA, self.data_received[n - k - L + t - 1]))
        if r == self.pid:
            # Our validator round: look honest.
            ctx.send_next((VALIDATION, ctx.rng.randrange(self.params.m)))

    # -- validation plane --------------------------------------------------

    def _on_validation(self, ctx: Context, payload: int) -> None:
        self.validations[self.round] = payload
        if self.round == self.pid:
            pass  # our own value returning; consume without complaint
        else:
            ctx.send_next((VALIDATION, payload))

    # -- the brute force ---------------------------------------------------

    def _reconstruction(self, choices: List[int]) -> List[int]:
        """Data vector our honest successor will feed to ``f``.

        Successor ``h1 = pid+1`` assigns its round-``r`` incoming data value
        (= our round-``r`` send) to index ``(h1 - r) mod n``.
        """
        n, k, L = self.n, self.k, self.seg_len
        sends: List[int] = list(self.data_received[: n - k])
        sends.extend(choices)
        sends.extend(self.data_received[n - k - L : n - k])
        h1 = self.pid % n + 1
        data = [0] * (n + 1)
        for r in range(1, n + 1):
            idx = (h1 - r) % n
            data[n if idx == 0 else idx] = sends[r - 1]
        return data[1:]

    def _solve(self) -> None:
        """Find free-slot values steering ``f`` to the target."""
        n, k, L = self.n, self.k, self.seg_len
        free = k - L
        v_inputs = [
            self.validations[r]
            for r in range(1, self.params.num_validation_inputs + 1)
        ]
        f = self.params.output_fn
        tried = 0
        for combo in product(range(n), repeat=min(free, 3)):
            choices = list(combo) + [0] * (free - min(free, 3))
            if f(self._reconstruction(choices), v_inputs) == self.target:
                self.choices = choices
                self.solved = True
                return
            tried += 1
            if tried >= self.max_bruteforce:
                break
        # No solution found (vanishingly unlikely for a random f): commit
        # to zeros; the run becomes a failed sample rather than a crash.
        self.choices = [0] * free
        self.solved = False


def phase_rushing_attack_protocol(
    topology: Topology,
    k: int,
    target: int,
    params: Optional[PhaseAsyncParams] = None,
) -> Dict[Hashable, Strategy]:
    """Rushing attack vector against (real, random-``f``) PhaseAsyncLead.

    Uses an equal-spacing placement; requires every segment ``l_j ≤ k - 3``
    (the paper's ``k = √n + 3`` regime) and ``ell ≥ k`` so the validation
    inputs of ``f`` are known before commitment.
    """
    n = len(topology)
    if params is None:
        params = PhaseAsyncParams(n=n)
    if params.n != n:
        raise ConfigurationError("params ring size mismatch")
    placement = RingPlacement.equal_spacing(n, k)
    distances = placement.distances()
    if max(distances) > k - 3:
        raise ConfigurationError(
            f"attack needs every segment <= k-3, got max {max(distances)} "
            f"(k={k}, n={n}; use k >= sqrt(n)+3)"
        )
    if params.ell < k:
        raise ConfigurationError(
            f"attack needs ell >= k so f's validation inputs are known "
            f"before commitment (ell={params.ell}, k={k})"
        )
    protocol: Dict[Hashable, Strategy] = {}
    coalition = set(placement.positions)
    for pid in topology.nodes:
        if pid in coalition:
            continue
        if pid == 1:
            protocol[pid] = PhaseOriginStrategy(pid, params)
        else:
            protocol[pid] = PhaseNormalStrategy(pid, params)
    for j, pid in enumerate(placement.positions):
        protocol[pid] = PhaseRushingAdversary(
            params, pid, distances[j], k, target
        )
    return protocol
