"""Theorem C.1: randomly located adversaries break A-LEADuni w.h.p.

Appendix C's randomized model: each processor is independently adversarial
with probability ``p`` (we keep the origin honest, as the paper does). The
adversaries know neither ``k`` nor their gaps ``l_j``; each one runs the
same *symmetric* deviation:

1. Forward every incoming message until detecting **circularity** — the
   first ``T > C`` with ``m[1..C] == m[T-C+1..T]`` — which reveals
   ``k' = n - T + C`` (correct unless the honest secrets happen to repeat a
   ``C``-window, probability ≤ n^(2-C) overall).
2. Send ``M = w - S(1,T) - S(n-k'-(k'-C-1)+1, n-k') (mod n)``.
3. Replay the last ``k' - C - 1`` of the first ``n - k'`` incoming
   messages, hoping ``l_j ≤ k' - C - 1`` so the tail is ``secret(I_j)``.

With ``p = √(8 ln n / n)`` (so ``k ≈ √(8 n ln n)``) the attack succeeds
w.h.p.; below that, long segments make some honest validation fail and the
outcome is ``FAIL``. Experiments measure that success curve.
"""

import math
from typing import Any, Dict, Hashable, List, Optional

from repro.attacks.placement import RingPlacement
from repro.protocols.alead_uni import ALeadNormalStrategy, ALeadOriginStrategy
from repro.protocols.outcome import id_to_residue
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod


def recommended_probability(n: int) -> float:
    """The paper's adversary density ``p = √(8 log n / n)`` (capped at 1)."""
    if n < 2:
        raise ConfigurationError("n must be at least 2")
    return min(1.0, math.sqrt(8.0 * math.log(n) / n))


class RandomLocationAdversary(Strategy):
    """Symmetric Theorem C.1 adversary: knows only ``n``, ``C``, ``w``."""

    def __init__(self, n: int, target: int, window: int = 3):
        if window < 1:
            raise ConfigurationError("circularity window C must be >= 1")
        self.n = n
        self.target = target
        self.window = window
        self.received: List[int] = []
        self.estimated_k: Optional[int] = None

    def on_wakeup(self, ctx: Context) -> None:
        pass  # deviate: no secret of our own

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        if self.estimated_k is not None:
            return  # burst already sent; ignore late traffic
        value = canonical_mod(int(value), self.n)
        self.received.append(value)
        ctx.send_next(value)  # step 1: forward while watching for the wrap
        t = len(self.received)
        c = self.window
        if t > c and self.received[:c] == self.received[t - c :]:
            self._burst(ctx, t)

    def _burst(self, ctx: Context, t: int) -> None:
        """Steps 2-3: steer the sum and replay the presumed segment tail."""
        c = self.window
        k_est = self.n - t + c
        self.estimated_k = k_est
        replay_len = k_est - c - 1
        degenerate = (
            replay_len < 0
            or replay_len > self.n - k_est  # more replay than honest secrets
            or self.n - k_est > len(self.received)
        )
        if degenerate:
            # Degenerate estimate; nothing sensible to send — stall, which
            # surfaces as a FAIL outcome (the attack failed this sample).
            ctx.terminate(self.target)
            return
        start = (self.n - k_est) - replay_len
        replay = self.received[start : self.n - k_est] if replay_len else []
        total = sum(self.received[:t]) % self.n
        m_value = canonical_mod(
            id_to_residue(self.target, self.n) - total - sum(replay), self.n
        )
        ctx.send_next(m_value)
        for v in replay:
            ctx.send_next(v)
        ctx.terminate(self.target)


def random_location_attack_protocol(
    topology: Topology,
    placement: RingPlacement,
    target: int,
    window: int = 3,
) -> Dict[Hashable, Strategy]:
    """Protocol vector: honest A-LEADuni + symmetric C.1 adversaries.

    ``placement`` normally comes from :meth:`RingPlacement.random_locations`;
    any placement with an honest origin is accepted — success is then a
    matter of probability, which is exactly what the experiment measures.
    """
    n = len(topology)
    if placement.n != n:
        raise ConfigurationError("placement ring size mismatch")
    if not 1 <= target <= n:
        raise ConfigurationError(f"target {target} out of range 1..{n}")
    if not placement.origin_honest:
        raise ConfigurationError("attack requires the origin to be honest")
    coalition = set(placement.positions)
    protocol: Dict[Hashable, Strategy] = {}
    for pid in topology.nodes:
        if pid in coalition:
            protocol[pid] = RandomLocationAdversary(n, target, window)
        elif pid == 1:
            protocol[pid] = ALeadOriginStrategy(n)
        else:
            protocol[pid] = ALeadNormalStrategy(n)
    return protocol
