"""Adversarial deviations analysed by the paper, one module per attack.

==============================  ===============================  ==========
Attack                          Paper reference                  Protocol
==============================  ===============================  ==========
Single-cheater wait-and-cancel  Claim B.1                        Basic-LEAD
Equal-spacing rushing           Lemma 4.1 / Theorem 4.2          A-LEADuni
Randomly-located rushing        Theorem C.1                      A-LEADuni
Cubic attack                    Theorem 4.3                      A-LEADuni
Partial-sum covert channel      Appendix E.4                     sum-variant
Rushing + brute-forced ``f``    Remark after Theorem 6.1         PhaseAsyncLead
==============================  ===============================  ==========
"""

from repro.attacks.placement import RingPlacement
from repro.attacks.basic_cheat import (
    BasicLeadCheaterStrategy,
    basic_cheat_protocol,
)
from repro.attacks.equal_spacing import (
    RushingAdversary,
    equal_spacing_attack_protocol,
    equal_spacing_attack_protocol_unchecked,
)
from repro.attacks.cubic import CubicAdversary, cubic_attack_protocol
from repro.attacks.random_location import (
    RandomLocationAdversary,
    random_location_attack_protocol,
    recommended_probability,
)
from repro.attacks.partial_sum import (
    PartialSumAdversary,
    partial_sum_attack_protocol,
)
from repro.attacks.phase_rushing import (
    PhaseRushingAdversary,
    phase_rushing_attack_protocol,
)
from repro.attacks.shamir_pool import (
    PoolingAdversary,
    shamir_pooling_attack_protocol,
)

__all__ = [
    "RingPlacement",
    "BasicLeadCheaterStrategy",
    "basic_cheat_protocol",
    "RushingAdversary",
    "equal_spacing_attack_protocol",
    "equal_spacing_attack_protocol_unchecked",
    "CubicAdversary",
    "cubic_attack_protocol",
    "RandomLocationAdversary",
    "random_location_attack_protocol",
    "recommended_probability",
    "PartialSumAdversary",
    "partial_sum_attack_protocol",
    "PhaseRushingAdversary",
    "phase_rushing_attack_protocol",
    "PoolingAdversary",
    "shamir_pooling_attack_protocol",
]
