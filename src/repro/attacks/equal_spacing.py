"""Lemma 4.1 / Theorem 4.2: the rushing attack on A-LEADuni.

When every honest segment has length ``l_j ≤ k - 1`` (e.g. ``k ≥ √n``
equally spaced adversaries), the coalition controls the outcome:

1. **Rush**: each adversary never selects a secret of its own and forwards
   each of its first ``n - k`` incoming messages immediately (no buffering).
   By Lemma 4.5 those messages are exactly the ``n - k`` honest secrets, in
   ring order ``secret(I_{j-1}), secret(I_{j-2}), ...``.
2. **Steer**: adversary ``a_j`` then sends ``M = w - Σ_honest - Σ_{I_j}``,
   ``k - l_j - 1`` zeros, and finally replays the last ``l_j`` received
   values — which are ``secret(I_j)`` — so every honest validation passes
   (Lemma 3.5) and every honest sum equals the target (Lemma 3.4 + 3.3).

Preconditions checked: origin honest, every ``l_j`` in ``[1, k-1]``.
"""

from typing import Any, Dict, Hashable, List

from repro.attacks.placement import RingPlacement
from repro.protocols.alead_uni import ALeadNormalStrategy, ALeadOriginStrategy
from repro.protocols.outcome import id_to_residue
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod


class RushingAdversary(Strategy):
    """One coalition member of the Lemma 4.1 attack.

    Parameters
    ----------
    n, k:
        Ring and coalition sizes.
    segment_length:
        ``l_j``, the honest segment following this adversary.
    target:
        The processor id the coalition elects.
    """

    def __init__(self, n: int, k: int, segment_length: int, target: int):
        self.n = n
        self.k = k
        self.segment_length = segment_length
        self.target = target
        self.received: List[int] = []

    def on_wakeup(self, ctx: Context) -> None:
        pass  # deviate: no secret of our own

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        value = canonical_mod(int(value), self.n)
        self.received.append(value)
        count = len(self.received)
        if count < self.n - self.k:
            ctx.send_next(value)  # rush: forward with no buffering delay
            return
        if count > self.n - self.k:
            return  # late traffic after our burst; ignore
        ctx.send_next(value)
        self._burst(ctx)

    def _burst(self, ctx: Context) -> None:
        """Send M, padding zeros, and the segment replay, then stop."""
        l = self.segment_length
        total = sum(self.received) % self.n
        replay = self.received[len(self.received) - l :] if l else []
        m_value = canonical_mod(
            id_to_residue(self.target, self.n) - total - sum(replay), self.n
        )
        ctx.send_next(m_value)
        for _ in range(self.k - l - 1):
            ctx.send_next(0)
        for v in replay:
            ctx.send_next(v)
        ctx.terminate(self.target)


def equal_spacing_attack_protocol(
    topology: Topology, placement: RingPlacement, target: int
) -> Dict[Hashable, Strategy]:
    """Full protocol vector: honest A-LEADuni + Lemma 4.1 coalition.

    Raises :class:`ConfigurationError` when the placement violates the
    lemma's preconditions (``1 ≤ l_j ≤ k-1`` for all ``j``, origin honest)
    — callers probing the failure side should catch it or use placements
    that merely *fail the attack* rather than crash it (see
    :func:`equal_spacing_attack_protocol_unchecked`).
    """
    _check_basics(topology, placement, target)
    distances = placement.distances()
    k = placement.k
    bad = [l for l in distances if not 1 <= l <= k - 1]
    if bad:
        raise ConfigurationError(
            f"Lemma 4.1 needs 1 <= l_j <= k-1 for all segments, got {bad}"
        )
    return _build(topology, placement, target)


def equal_spacing_attack_protocol_unchecked(
    topology: Topology, placement: RingPlacement, target: int
) -> Dict[Hashable, Strategy]:
    """Like :func:`equal_spacing_attack_protocol` without the ``l_j`` bound.

    Used by resilience experiments to launch the attack *below* its
    threshold and observe it failing (honest processors abort or the ring
    deadlocks), rather than refusing to run. Segments longer than ``k-1``
    make ``k - l_j - 1`` negative; the adversary then simply sends the
    replay without padding, sending fewer than ``n`` messages.
    """
    _check_basics(topology, placement, target)
    return _build(topology, placement, target)


def _check_basics(
    topology: Topology, placement: RingPlacement, target: int
) -> None:
    n = len(topology)
    if placement.n != n:
        raise ConfigurationError("placement ring size mismatch")
    if not 1 <= target <= n:
        raise ConfigurationError(f"target {target} out of range 1..{n}")
    if not placement.origin_honest:
        raise ConfigurationError("attack requires the origin to be honest")


def _build(
    topology: Topology, placement: RingPlacement, target: int
) -> Dict[Hashable, Strategy]:
    n = len(topology)
    k = placement.k
    distances = placement.distances()
    protocol: Dict[Hashable, Strategy] = {}
    coalition = set(placement.positions)
    for pid in topology.nodes:
        if pid in coalition:
            continue
        if pid == 1:
            protocol[pid] = ALeadOriginStrategy(n)
        else:
            protocol[pid] = ALeadNormalStrategy(n)
    for j, pid in enumerate(placement.positions):
        protocol[pid] = RushingAdversary(n, k, distances[j], target)
    return protocol
