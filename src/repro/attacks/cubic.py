"""Theorem 4.3: the Cubic Attack — ``k = O(n^(1/3))`` placed adversaries
control A-LEADuni.

The rushing attack of Lemma 4.1 needs ``l_j ≤ k-1`` everywhere, hence
``k ≈ √n``. The cubic attack spends the ``k`` spare messages (freed by not
selecting own secrets) to *push information faster than one hop per round*:
with segment lengths decreasing arithmetically (``l_i ≈ (k+1-i)(k-1)``),
each adversary's early zero-burst lets its successor finish earlier, so
everyone collects all ``n-k`` honest secrets in time to steer the sum.

Per-adversary schedule (paper pseudo-code, Appendix C):

1. forward the first ``n - k - l_i`` incoming messages;
2. send ``k - 1`` zeros;
3. absorb ``l_i`` more messages (receive only), reaching ``n - k`` total;
4. send ``M = w - Σ m_j (mod n)``;
5. replay ``m_{n-k-l_i+1} .. m_{n-k}`` — which is ``secret(I_i)`` by
   Lemma 4.5 — and terminate.
"""

from typing import Any, Dict, Hashable, List

from repro.attacks.placement import RingPlacement
from repro.protocols.alead_uni import ALeadNormalStrategy, ALeadOriginStrategy
from repro.protocols.outcome import id_to_residue
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod


class CubicAdversary(Strategy):
    """Adversary ``a_i`` of the cubic attack (segment length ``l_i``)."""

    def __init__(self, n: int, k: int, segment_length: int, target: int):
        self.n = n
        self.k = k
        self.segment_length = segment_length
        self.target = target
        self.received: List[int] = []

    def on_wakeup(self, ctx: Context) -> None:
        pass  # deviate: no secret of our own

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        value = canonical_mod(int(value), self.n)
        self.received.append(value)
        count = len(self.received)
        pipe_until = self.n - self.k - self.segment_length
        if count <= pipe_until:
            ctx.send_next(value)  # step 1: pipe
            if count == pipe_until:
                for _ in range(self.k - 1):  # step 2: zero burst
                    ctx.send_next(0)
                if self.segment_length == 0:
                    self._finish(ctx)
            return
        if count < self.n - self.k:
            return  # step 3: absorb without sending
        if count == self.n - self.k:
            self._finish(ctx)

    def _finish(self, ctx: Context) -> None:
        """Steps 4-5: steer the sum, replay the segment secrets."""
        total = sum(self.received) % self.n
        m_value = canonical_mod(
            id_to_residue(self.target, self.n) - total, self.n
        )
        ctx.send_next(m_value)
        l = self.segment_length
        start = (self.n - self.k) - l
        for v in self.received[start : self.n - self.k]:
            ctx.send_next(v)
        ctx.terminate(self.target)


def cubic_attack_protocol(
    topology: Topology, placement: RingPlacement, target: int
) -> Dict[Hashable, Strategy]:
    """Protocol vector for the cubic attack on A-LEADuni.

    ``placement`` should come from :meth:`RingPlacement.cubic`; the checks
    here re-validate the distance profile the termination proof
    (Lemma 4.4) relies on.
    """
    n = len(topology)
    if placement.n != n:
        raise ConfigurationError("placement ring size mismatch")
    if not 1 <= target <= n:
        raise ConfigurationError(f"target {target} out of range 1..{n}")
    if not placement.origin_honest:
        raise ConfigurationError("attack requires the origin to be honest")
    distances = placement.distances()
    k = placement.k
    if distances[-1] > k - 1:
        raise ConfigurationError(f"cubic attack needs l_k <= k-1, got {distances[-1]}")
    for i in range(k - 1):
        if distances[i] > distances[i + 1] + (k - 1):
            raise ConfigurationError(
                f"cubic attack needs l_i <= l_(i+1) + k - 1, violated at i={i}"
            )
    protocol: Dict[Hashable, Strategy] = {}
    coalition = set(placement.positions)
    for pid in topology.nodes:
        if pid in coalition:
            continue
        if pid == 1:
            protocol[pid] = ALeadOriginStrategy(n)
        else:
            protocol[pid] = ALeadNormalStrategy(n)
    for i, pid in enumerate(placement.positions):
        protocol[pid] = CubicAdversary(n, k, distances[i], target)
    return protocol
