"""Claim B.1: a single adversary controls Basic-LEAD completely.

The cheater simply waits: it forwards nothing and selects its "secret" only
after all ``n-1`` other values have arrived, choosing it to cancel the sum
to the target. Because Basic-LEAD has no commitment mechanism, the honest
processors cannot tell the difference and all validations pass.
"""

from typing import Any, Dict, Hashable

from repro.protocols.basic_lead import BasicLeadStrategy
from repro.protocols.outcome import id_to_residue, residue_to_id
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod, mod_sub


class BasicLeadCheaterStrategy(Strategy):
    """Deviating Basic-LEAD processor forcing outcome ``target``.

    The cheater buffers its first ``n-1`` incoming values (the honest
    secrets), then injects ``d = target - Σ others (mod n)`` followed by
    the buffered values, replaying the order an honest execution would
    produce so every honest validation succeeds.
    """

    __slots__ = ("n", "target", "received")

    def __init__(self, n: int, target: int):
        self.n = n
        self.target = target
        self.received: list = []

    def on_wakeup(self, ctx: Context) -> None:
        pass  # deviate: send nothing until everyone else has committed

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        self.received.append(canonical_mod(int(value), self.n))
        if len(self.received) < self.n - 1:
            return
        # All honest secrets are in hand; pick ours to force the sum.
        others = sum(self.received) % self.n
        chosen = mod_sub(id_to_residue(self.target, self.n), others, self.n)
        ctx.send_next(chosen)
        # Replay the honest forwarding pattern: each incoming value, in the
        # order received, so every honest processor still sees each secret
        # exactly once and its own secret last.
        for v in self.received[: self.n - 1]:
            ctx.send_next(v)
        ctx.terminate(self.target)


def basic_cheat_protocol(
    topology: Topology, cheater: Hashable, target: int
) -> Dict[Hashable, Strategy]:
    """Honest Basic-LEAD everywhere except ``cheater`` forcing ``target``."""
    n = len(topology)
    if cheater not in set(topology.nodes):
        raise ConfigurationError(f"cheater {cheater} not on the ring")
    if not 1 <= target <= n:
        raise ConfigurationError(f"target {target} out of range 1..{n}")
    protocol: Dict[Hashable, Strategy] = {
        pid: BasicLeadStrategy(n) for pid in topology.nodes if pid != cheater
    }
    protocol[cheater] = BasicLeadCheaterStrategy(n, target)
    return protocol
