"""Appendix E.4: why PhaseAsyncLead needs a *random* output function.

Adding phase validation to A-LEADuni while keeping the ``sum`` output rule
is broken by ``k = 4`` adversaries: validation rounds whose validator is
adversarial become a fast covert channel for partial sums.

With equal segments of length ``L = (n-k)/k`` and adversaries ``a_1..a_k``
at positions ``2, L+3, 2L+4, ...``:

1. **Rush** data (forward immediately, no own value). After ``L`` rounds
   ``a_i`` knows ``S_i = Σ_{h ∈ I_{i-1}} d_h``.
2. **Round a_2** (validator ``a_2``): instead of a random value, ``a_2``
   initiates ``S_2``; each later adversary adds its own partial sum as it
   forwards; when the message returns, ``a_1`` and ``a_2`` know
   ``S = Σ S_i``, the full honest sum.
3. **Round a_3**: ``a_2`` initiates the circulation carrying ``S`` (any
   adversary may start it — the validator ``a_3`` is adversarial so nobody
   checks); now every adversary knows ``S``.
4. **Steer**: after rushing ``n - L - k`` data messages each adversary
   sends ``M = w - S``, then ``k-1`` zeros, then replays its segment's
   secrets — all validations pass and every honest processor sums to ``w``.

Honest validators' rounds are handled perfectly honestly throughout, so
nothing is detectable. Against the *random-function* output the same
deviation fails: partial sums of the input are useless for steering ``f``,
and any tampering with stored validation values makes segments disagree.
"""

from typing import Any, Dict, Hashable, List, Optional

from repro.attacks.placement import RingPlacement
from repro.protocols.outcome import id_to_residue
from repro.protocols.phase_async import (
    DATA,
    VALIDATION,
    PhaseAsyncParams,
    PhaseNormalStrategy,
    PhaseOriginStrategy,
)
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod


class PartialSumAdversary(Strategy):
    """Coalition member of the E.4 attack on the sum-output variant.

    Parameters
    ----------
    params:
        The (sum-variant) protocol parameters.
    index:
        1-based coalition index ``i`` of this adversary.
    positions:
        All coalition positions in ring order (``positions[i-1]`` is us).
    target:
        Processor id the coalition elects.
    """

    def __init__(
        self,
        params: PhaseAsyncParams,
        index: int,
        positions: List[int],
        target: int,
    ):
        self.params = params
        self.n = params.n
        self.k = len(positions)
        self.index = index
        self.positions = list(positions)
        self.pid = positions[index - 1]
        self.target = target
        self.seg_len = (self.n - self.k) // self.k
        self.round = 0
        self.incoming = 0
        self.data_received: List[int] = []
        self.partial_sum: Optional[int] = None  # S_i, after L rounds
        self.full_sum: Optional[int] = None  # S, after the covert chain

    # -- plumbing --------------------------------------------------------

    def on_wakeup(self, ctx: Context) -> None:
        pass  # deviate: no data value of our own

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        self.incoming += 1
        tag, payload = value
        if self.incoming % 2 == 1:
            if tag != DATA:  # honest neighbours never do this; be safe
                ctx.terminate(self.target)
                return
            self._on_data(ctx, payload % self.n)
        else:
            self._on_validation(ctx, payload % self.params.m)
        if self.round == self.n and self.incoming == 2 * self.n:
            if not ctx.terminated:
                ctx.terminate(self.target)

    # -- data plane --------------------------------------------------------

    def _on_data(self, ctx: Context, payload: int) -> None:
        self.round += 1
        self.data_received.append(payload)
        r = self.round
        n, k, seg = self.n, self.k, self.seg_len
        if r == seg:
            # All of secret(I_{i-1}) received: our covert-channel share.
            self.partial_sum = sum(self.data_received) % n
        rush_until = n - seg - k
        if r <= rush_until:
            ctx.send_next((DATA, payload))
        elif r == rush_until + 1:
            assert self.full_sum is not None, "covert chain incomplete"
            m_value = canonical_mod(
                id_to_residue(self.target, n) - self.full_sum, n
            )
            ctx.send_next((DATA, m_value))
        elif r <= n - seg:
            ctx.send_next((DATA, 0))
        else:
            # Replay secret(I_i): incoming data rounds n-k-seg+1 .. n-k.
            t = r - (n - seg)
            ctx.send_next((DATA, self.data_received[n - k - seg + t - 1]))
        self._maybe_initiate_validation(ctx)

    # -- validation plane / covert channel -------------------------------

    def _maybe_initiate_validation(self, ctx: Context) -> None:
        """Initiations happen right after the round's data send."""
        r = self.round
        chain_round = self.positions[1]  # a_2's round: build S
        share_round = self.positions[2] if self.k >= 3 else None
        if r == self.pid and r not in (chain_round, share_round):
            # Our own validator round, handled honestly-looking.
            ctx.send_next((VALIDATION, ctx.rng.randrange(self.params.m)))
        elif r == chain_round and self.index == 2:
            ctx.send_next((VALIDATION, self.partial_sum))
        elif share_round is not None and r == share_round and self.index == 2:
            # a_2 (not the validator a_3!) starts the sharing circulation.
            ctx.send_next((VALIDATION, self.full_sum))

    def _on_validation(self, ctx: Context, payload: int) -> None:
        r = self.round
        chain_round = self.positions[1]
        share_round = self.positions[2] if self.k >= 3 else None
        if r == chain_round:
            if self.index == 2:
                self.full_sum = payload % self.n  # chain completed: S
            elif self.index == 1:
                self.full_sum = (payload + self.partial_sum) % self.n
                ctx.send_next((VALIDATION, self.full_sum))
            else:
                ctx.send_next(
                    (VALIDATION, (payload + self.partial_sum) % self.n)
                )
        elif share_round is not None and r == share_round:
            if self.index == 2:
                pass  # our sharing message returned; consume it
            else:
                self.full_sum = payload % self.n
                ctx.send_next((VALIDATION, payload))
        elif r == self.pid:
            pass  # our honest-looking validator round returning; consume
        else:
            ctx.send_next((VALIDATION, payload))  # honest round: forward


def partial_sum_attack_protocol(
    topology: Topology,
    k: int,
    target: int,
    params: Optional[PhaseAsyncParams] = None,
) -> Dict[Hashable, Strategy]:
    """E.4 attack vector against the sum-output PhaseAsync variant.

    Requires ``k ≥ 4``, equal segments (``(n - k) % k == 0``) with length
    ``L ≥ 4``, and ``(k - 3)·L > 3`` so the covert chain completes before
    the commitment round. Returns the full strategy vector; honest
    processors run the *sum-variant* protocol (``params`` defaults to
    :meth:`PhaseAsyncParams.sum_variant`).
    """
    n = len(topology)
    if params is None:
        params = PhaseAsyncParams.sum_variant(n)
    if params.n != n:
        raise ConfigurationError("params ring size mismatch")
    if k < 4:
        raise ConfigurationError("the E.4 attack needs k >= 4")
    if (n - k) % k != 0:
        raise ConfigurationError(
            f"equal segments need (n-k) divisible by k (n={n}, k={k})"
        )
    seg = (n - k) // k
    if seg < 4 or (k - 3) * seg <= 3:
        raise ConfigurationError(
            f"segments too short for the covert chain (L={seg}, k={k})"
        )
    placement = RingPlacement.from_distances(n, [seg] * k)
    positions = list(placement.positions)
    protocol: Dict[Hashable, Strategy] = {}
    coalition = set(positions)
    for pid in topology.nodes:
        if pid in coalition:
            continue
        if pid == 1:
            protocol[pid] = PhaseOriginStrategy(pid, params)
        else:
            protocol[pid] = PhaseNormalStrategy(pid, params)
    for i, pid in enumerate(positions, start=1):
        protocol[pid] = PartialSumAdversary(params, i, positions, target)
    return protocol
