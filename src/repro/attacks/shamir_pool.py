"""Share-pooling attack on the Shamir complete-network baseline.

Shows the baseline's ``⌈n/2⌉ - 1`` resilience is exactly tight: a
coalition of ``k ≥ ⌈n/2⌉`` (the reconstruction threshold) controls the
outcome. The adversaries *withhold* their own phase-1 shares (async
delays are legal), pool the shares honest processors have already sent
them — ``k`` shares per honest secret, enough to reconstruct — pick
their own secrets to steer the sum, and only then run the protocol
honestly. Every consistency check passes; the deviation is undetectable.

Coalition-internal coordination uses ordinary network messages on the
complete graph (no side channel is assumed): members forward their
received honest shares to a coalition leader, which reconstructs,
solves for the steering secrets, and assigns them back.
"""

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.protocols.async_complete import (
    SHARE,
    AsyncCompleteLeadStrategy,
    default_threshold,
)
from repro.protocols.outcome import id_to_residue
from repro.secretshare.shamir import ShamirScheme, Share
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import canonical_mod

#: Coalition-internal message tags (ordinary messages on real links).
POOL = "pool"  # member -> leader: shares of honest secrets
ASSIGN = "assign"  # leader -> member: the secret to use


class PoolingAdversary(AsyncCompleteLeadStrategy):
    """Coalition member: delay, pool, steer, then behave honestly.

    Inherits the honest machinery and overrides only the opening: instead
    of drawing and sharing a secret at wakeup, it waits for the honest
    phase-1 shares, participates in the pooling exchange, and starts the
    honest flow once the leader assigns its steering secret.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        scheme: ShamirScheme,
        coalition: List[int],
        target: int,
    ):
        super().__init__(pid, n, scheme)
        self.coalition = list(coalition)
        self.leader = self.coalition[0]
        self.is_leader = pid == self.leader
        self.target = target
        self.honest_ids = [
            j for j in range(1, n + 1) if j not in set(self.coalition)
        ]
        self.pooled: Dict[int, Dict[int, Share]] = {}
        self.pool_messages = 0
        self.assigned: Optional[int] = None
        self.forwarded_pool = False

    # -- opening phase: deviate -----------------------------------------

    def on_wakeup(self, ctx: Context) -> None:
        pass  # withhold our shares until the pool resolves

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        tag = value[0]
        if tag == POOL and self.is_leader:
            self._on_pool(ctx, value, sender)
            return
        if tag == ASSIGN and not self.is_leader:
            _, secret = value
            self._start_honest_flow(ctx, secret)
            return
        if tag == SHARE and self.assigned is None:
            # Phase-1 share from an honest processor, received before we
            # have committed anything: record it and feed the pool.
            _, owner, share = value
            self.my_shares[owner] = share
            if self.is_leader:
                self.pooled.setdefault(owner, {})[share.x] = share
                self._maybe_solve(ctx)
            elif (
                not self.forwarded_pool
                and all(h in self.my_shares for h in self.honest_ids)
            ):
                self.forwarded_pool = True
                payload = tuple(
                    (h, self.my_shares[h]) for h in self.honest_ids
                )
                ctx.send(self.leader, (POOL, payload))
            return
        # Anything else: we are already in the honest flow.
        super().on_receive(ctx, value, sender)

    def _on_pool(self, ctx: Context, value: Tuple, sender: Hashable) -> None:
        _, payload = value
        self.pool_messages += 1
        for owner, share in payload:
            self.pooled.setdefault(owner, {})[share.x] = share
        self._maybe_solve(ctx)

    def _maybe_solve(self, ctx: Context) -> None:
        """Leader: once k shares of every honest secret are pooled, solve."""
        if self.assigned is not None:
            return
        k = len(self.coalition)
        if self.pool_messages < k - 1:
            return
        if not all(
            len(self.pooled.get(h, {})) >= self.scheme.threshold
            for h in self.honest_ids
        ):
            return
        honest_sum = 0
        for h in self.honest_ids:
            shares = list(self.pooled[h].values())
            honest_sum += self.scheme.reconstruct(shares)
        # Members use 0; the leader's secret steers the total.
        steering = canonical_mod(
            id_to_residue(self.target, self.n) - honest_sum, self.n
        )
        for member in self.coalition[1:]:
            ctx.send(member, (ASSIGN, 0))
        self._start_honest_flow(ctx, steering)

    # -- honest continuation ----------------------------------------------

    def _start_honest_flow(self, ctx: Context, secret: int) -> None:
        """Run the honest wakeup logic with a *chosen* secret."""
        self.assigned = secret
        self.secret = secret
        shares = self.scheme.share(secret, ctx.rng)
        for j, share in zip(range(1, self.n + 1), shares):
            if j == self.pid:
                self.my_shares[self.pid] = share
            else:
                ctx.send(j, (SHARE, self.pid, share))
        # We may already hold every share (honest ones arrived first).
        if len(self.my_shares) == self.n and not self.revealed:
            self.revealed = True
            vector = tuple(sorted(self.my_shares.items()))
            from repro.protocols.async_complete import REVEAL

            for j in range(1, self.n + 1):
                if j != self.pid:
                    ctx.send(j, (REVEAL, vector))
            self._absorb_vector(vector)
            self._maybe_finish(ctx)


def shamir_pooling_attack_protocol(
    topology: Topology, coalition: List[int], target: int
) -> Dict[Hashable, Strategy]:
    """Honest Shamir baseline + a pooling coalition forcing ``target``.

    Requires ``len(coalition) ≥ ⌈n/2⌉`` (the reconstruction threshold) —
    below it the pool cannot reconstruct and the attack is impossible,
    which is exactly the baseline's resilience statement.
    """
    n = len(topology)
    threshold = default_threshold(n)
    coalition = sorted(set(coalition))
    if len(coalition) < threshold:
        raise ConfigurationError(
            f"pooling needs k >= ceil(n/2) = {threshold}, got {len(coalition)}"
        )
    if any(not 1 <= c <= n for c in coalition):
        raise ConfigurationError("coalition ids out of range")
    if not 1 <= target <= n:
        raise ConfigurationError(f"target {target} out of range 1..{n}")
    scheme = ShamirScheme(n, threshold, modulus=n)
    protocol: Dict[Hashable, Strategy] = {}
    coalition_set = set(coalition)
    for pid in topology.nodes:
        if pid in coalition_set:
            protocol[pid] = PoolingAdversary(pid, n, scheme, coalition, target)
        else:
            protocol[pid] = AsyncCompleteLeadStrategy(pid, n, scheme)
    return protocol
