"""Coalition placement geometry on the unidirectional ring.

A :class:`RingPlacement` fixes where the ``k`` adversaries ``a_1..a_k`` sit
on the ring of ``n`` processors (ids ``1..n``) and exposes the honest
segment structure the paper reasons about (Definition 3.1): ``I_j`` is the
maximal run of honest processors between ``a_j`` and ``a_{j+1}`` and ``l_j``
its length. Constructors produce the placements used by each attack:

- :meth:`RingPlacement.equal_spacing` — Lemma 4.1 / Theorem 4.2 (all gaps
  as even as possible, every ``l_j ≤ k-1`` when ``k ≥ √n``);
- :meth:`RingPlacement.cubic` — Theorem 4.3 (gaps decreasing by at most
  ``k-1`` down to ``l_k ≤ k-1``);
- :meth:`RingPlacement.random_locations` — Appendix C's randomized model
  (each processor adversarial independently with probability ``p``).

All constructors keep the origin (processor 1) honest, matching the
assumptions of the attack proofs.
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

import random

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class RingPlacement:
    """Positions of an adversarial coalition on the ring ``1..n``.

    ``positions`` lists the coalition in increasing ring order; entry ``j``
    is the paper's adversary ``a_{j+1}``.
    """

    n: int
    positions: tuple

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"ring size {self.n} too small")
        pos = list(self.positions)
        if not pos:
            raise ConfigurationError("coalition must not be empty")
        if sorted(set(pos)) != pos:
            raise ConfigurationError("positions must be strictly increasing")
        if pos[0] < 1 or pos[-1] > self.n:
            raise ConfigurationError(f"positions out of range 1..{self.n}")

    @property
    def k(self) -> int:
        """Coalition size."""
        return len(self.positions)

    def distances(self) -> List[int]:
        """Honest segment lengths ``l_1..l_k`` (``l_j`` follows ``a_j``)."""
        pos = list(self.positions)
        k = len(pos)
        out = []
        for j in range(k):
            nxt = pos[(j + 1) % k]
            # Self-wrap (k = 1) is a full circle of n, not a gap of 0.
            gap = (nxt - pos[j] - 1) % self.n + 1
            out.append(gap - 1)
        return out

    def segment(self, j: int) -> List[int]:
        """Honest processors of ``I_j`` (0-based ``j``) in ring order."""
        start = self.positions[j]
        length = self.distances()[j]
        return [(start + t - 1) % self.n + 1 for t in range(1, length + 1)]

    def honest(self) -> List[int]:
        """All honest processor ids in increasing order."""
        coalition = set(self.positions)
        return [pid for pid in range(1, self.n + 1) if pid not in coalition]

    @property
    def origin_honest(self) -> bool:
        """True if processor 1 (the origin) is outside the coalition."""
        return 1 not in set(self.positions)

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_distances(
        cls, n: int, distances: Sequence[int], first: int = 2
    ) -> "RingPlacement":
        """Place ``a_1`` at ``first`` and the rest per segment lengths.

        ``distances[j]`` is ``l_{j+1}``, the number of honest processors
        between ``a_{j+1}`` and ``a_{j+2}``; they must sum to ``n - k``.
        """
        k = len(distances)
        if any(d < 0 for d in distances):
            raise ConfigurationError("segment lengths must be non-negative")
        if sum(distances) != n - k:
            raise ConfigurationError(
                f"segment lengths sum to {sum(distances)}, expected {n - k}"
            )
        positions = [first]
        for d in distances[:-1]:
            positions.append(positions[-1] + d + 1)
        if positions[-1] > n:
            raise ConfigurationError("placement wraps past the ring end")
        return cls(n=n, positions=tuple(positions))

    @classmethod
    def equal_spacing(cls, n: int, k: int) -> "RingPlacement":
        """Gaps as even as possible; requires ``n ≥ 2k`` so every ``l_j ≥ 1``.

        With ``k ≥ √n`` this satisfies Lemma 4.1's ``l_j ≤ k - 1``
        precondition; the constructor itself does not enforce that bound —
        the attack checks it so experiments can probe the failure side too.
        """
        if k < 1 or k > n:
            raise ConfigurationError(f"k={k} out of range for n={n}")
        if n < 2 * k:
            raise ConfigurationError(
                f"equal spacing needs n >= 2k for exposed adversaries "
                f"(n={n}, k={k})"
            )
        base, extra = divmod(n - k, k)
        distances = [base + (1 if j < extra else 0) for j in range(k)]
        # Keep the short gaps last so the wrap segment containing the origin
        # is never starved below length 1.
        return cls.from_distances(n, distances)

    @classmethod
    def cubic(cls, n: int, k: int) -> "RingPlacement":
        """Theorem 4.3 placement: ``l_i ≤ l_{i+1} + (k-1)``, ``l_k ≤ k-1``.

        Uses the threshold construction: ``l_i = min(ideal_i, t)`` for the
        ideal arithmetic profile ``ideal_i = (k+1-i)(k-1)``, with the
        largest ``t`` fitting ``Σ l_i = n - k``, then +1 adjustments on the
        first few capped entries. Raises if ``k`` is too small for ``n``
        (needs roughly ``k ≥ 2·n^(1/3)``) or segments would be empty.
        """
        if k < 2:
            raise ConfigurationError("cubic attack needs k >= 2")
        ideal = [(k + 1 - i) * (k - 1) for i in range(1, k + 1)]
        budget = n - k
        if budget < k:
            raise ConfigurationError(
                f"cubic placement needs n - k >= k so every segment is "
                f"exposed (n={n}, k={k})"
            )
        if sum(ideal) < budget:
            raise ConfigurationError(
                f"k={k} too small for n={n}: max coverage "
                f"{sum(ideal) + k} < n (need roughly k >= 2*n^(1/3))"
            )
        # Largest threshold t with sum(min(ideal_i, t)) <= budget.
        t = budget // k  # lower bound; grow until it no longer fits
        while t < ideal[0] and sum(min(x, t + 1) for x in ideal) <= budget:
            t += 1
        distances = [min(x, t) for x in ideal]
        leftover = budget - sum(distances)
        capped = [i for i, x in enumerate(ideal) if x > t]
        if leftover > len(capped):
            raise ConfigurationError(
                f"internal: leftover {leftover} exceeds capped entries"
            )
        for i in range(leftover):
            distances[capped[i]] += 1
        if distances[-1] > k - 1:
            raise ConfigurationError(
                f"cubic placement infeasible: l_k={distances[-1]} > k-1"
            )
        if min(distances) < 1:
            raise ConfigurationError("cubic placement produced empty segment")
        for i in range(k - 1):
            if distances[i] > distances[i + 1] + (k - 1):
                raise ConfigurationError(
                    "internal: cubic distance profile violates the "
                    "l_i <= l_{i+1} + k - 1 constraint"
                )
        return cls.from_distances(n, distances)

    @classmethod
    def random_locations(
        cls, n: int, p: float, rng: random.Random
    ) -> Optional["RingPlacement"]:
        """Appendix C randomized model: each non-origin processor joins the
        coalition independently with probability ``p``.

        Returns ``None`` when fewer than 2 processors were selected (the
        attack degenerates); callers treat that as a failed sample.
        """
        if not 0 <= p <= 1:
            raise ConfigurationError(f"probability p={p} out of [0, 1]")
        positions = [pid for pid in range(2, n + 1) if rng.random() < p]
        if len(positions) < 2:
            return None
        return cls(n=n, positions=tuple(positions))
