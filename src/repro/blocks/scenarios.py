"""Scenario specs for the Afek et al. building-block applications.

Both blocks run on the asynchronous executor, so they take the standard
builder path; fair renaming post-maps its assignment outcome to a single
processor's new name (a hashable histogram key whose uniformity is
exactly the fairness claim E12 checks).

Registered here (imported for effect by
:mod:`repro.experiments.catalog`):

- ``blocks/fair-consensus`` — everyone decides a uniformly elected
  processor's input (inputs are the pids, so the decided value's
  distribution is directly comparable to an election's);
- ``blocks/fair-renaming`` — order-preserving renaming; the tracked
  outcome is processor 1's new name, uniform over ``1..n``.

Both carry ``run_batch`` kernels: the knowledge-sharing block elects
``residue_to_id(sum of the n payload residues)``, each residue being
the first ``randrange(n)`` of that processor's ``proc:<pid>`` stream
(drawn at wakeup), so a whole chunk folds in closed form — consensus
decides the leader's input (= the leader's pid here) and renaming
hands processor 1 the name ``(1 - leader) mod n + 1``.
"""

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.blocks.consensus import fair_consensus_protocol
from repro.blocks.renaming import fair_renaming_protocol, my_name
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    register_scenario,
    ring_topology,
)
from repro.protocols.outcome import residue_to_id
from repro.sim.execution import FAIL
from repro.util.rng import derive_seed


def _pid_input(pid):
    """Input function for consensus: each processor inputs its own pid."""
    return pid


def _consensus_protocol(topo, params, rng):
    return fair_consensus_protocol(topo, _pid_input)


def _renaming_protocol(topo, params, rng):
    return fair_renaming_protocol(topo)


def renaming_to_first_name(outcome, params: Params):
    """Outcome map: full assignment -> processor 1's new name."""
    if outcome == FAIL:
        return FAIL
    return my_name(outcome, 1)


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------
#
# Like A-LEADuni, an honest knowledge-sharing run is n^2 deliveries
# (every processor sends exactly n messages) and its elected position
# depends only on the first randrange(n) of each proc:<pid> stream.


def _block_leader(registry_seed: int, n: int) -> int:
    """The position an honest knowledge-sharing block elects."""
    total = 0
    for pid in range(1, n + 1):
        stream = random.Random(derive_seed(registry_seed, f"proc:{pid}"))
        total += stream.randrange(n)
    return residue_to_id(total % n, n)


def run_fair_consensus_batch(
    seeds: Sequence[int], params: Params
) -> Optional[Tuple[Dict[object, int], int]]:
    """Fold a chunk of ``blocks/fair-consensus`` trials: the decided
    value is the elected position's input, and inputs are the pids."""
    n = params["n"]
    if n < 2:
        return None  # degenerate ring: let the scalar path report it
    counts: Dict[object, int] = {}
    for seed in seeds:
        leader = _block_leader(seed, n)
        counts[leader] = counts.get(leader, 0) + 1
    return counts, n * n * len(seeds)


def run_fair_renaming_batch(
    seeds: Sequence[int], params: Params
) -> Optional[Tuple[Dict[object, int], int]]:
    """Fold a chunk of ``blocks/fair-renaming`` trials: processor 1's
    new name is its ring distance from the elected origin of names."""
    n = params["n"]
    if n < 2:
        return None
    counts: Dict[object, int] = {}
    for seed in seeds:
        name = (1 - _block_leader(seed, n)) % n + 1
        counts[name] = counts.get(name, 0) + 1
    return counts, n * n * len(seeds)


register_scenario(
    ScenarioSpec(
        name="blocks/fair-consensus",
        description="fair consensus over pid inputs (Afek et al. block)",
        build_topology=ring_topology,
        build_protocol=_consensus_protocol,
        run_batch=run_fair_consensus_batch,
        defaults={"n": 6},
        tags=("blocks", "honest"),
    )
)

register_scenario(
    ScenarioSpec(
        name="blocks/fair-renaming",
        description="fair renaming; outcome = processor 1's new name",
        build_topology=ring_topology,
        build_protocol=_renaming_protocol,
        run_batch=run_fair_renaming_batch,
        map_outcome=renaming_to_first_name,
        defaults={"n": 6},
        tags=("blocks", "honest"),
    )
)
