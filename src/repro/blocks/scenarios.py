"""Scenario specs for the Afek et al. building-block applications.

Both blocks run on the asynchronous executor, so they take the standard
builder path; fair renaming post-maps its assignment outcome to a single
processor's new name (a hashable histogram key whose uniformity is
exactly the fairness claim E12 checks).

Registered here (imported for effect by
:mod:`repro.experiments.catalog`):

- ``blocks/fair-consensus`` — everyone decides a uniformly elected
  processor's input (inputs are the pids, so the decided value's
  distribution is directly comparable to an election's);
- ``blocks/fair-renaming`` — order-preserving renaming; the tracked
  outcome is processor 1's new name, uniform over ``1..n``.
"""

from repro.blocks.consensus import fair_consensus_protocol
from repro.blocks.renaming import fair_renaming_protocol, my_name
from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    register_scenario,
    ring_topology,
)
from repro.sim.execution import FAIL


def _pid_input(pid):
    """Input function for consensus: each processor inputs its own pid."""
    return pid


def _consensus_protocol(topo, params, rng):
    return fair_consensus_protocol(topo, _pid_input)


def _renaming_protocol(topo, params, rng):
    return fair_renaming_protocol(topo)


def renaming_to_first_name(outcome, params: Params):
    """Outcome map: full assignment -> processor 1's new name."""
    if outcome == FAIL:
        return FAIL
    return my_name(outcome, 1)


register_scenario(
    ScenarioSpec(
        name="blocks/fair-consensus",
        description="fair consensus over pid inputs (Afek et al. block)",
        build_topology=ring_topology,
        build_protocol=_consensus_protocol,
        defaults={"n": 6},
        tags=("blocks", "honest"),
    )
)

register_scenario(
    ScenarioSpec(
        name="blocks/fair-renaming",
        description="fair renaming; outcome = processor 1's new name",
        build_topology=ring_topology,
        build_protocol=_renaming_protocol,
        map_outcome=renaming_to_first_name,
        defaults={"n": 6},
        tags=("blocks", "honest"),
    )
)
