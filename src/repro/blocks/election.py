"""A-LEADuni recomposed from the knowledge-sharing block.

Afek et al.'s observation (paper §1.1) is that A-LEADuni decomposes into
reusable blocks: the buffered knowledge-sharing sub-protocol plus the
sum-mod-n election rule on top. :func:`alead_via_blocks_protocol` is that
composition; because the block draws its payload from the same per-
processor RNG stream and moves it with the same buffering discipline,
the composition is *message-for-message identical* to the monolithic
`repro.protocols.alead_uni` on every seed — which
``tests/test_decomposition.py`` asserts, validating both the block and
the decomposition claim.
"""

from typing import Dict, Hashable, List

from repro.blocks.knowledge import knowledge_sharing_protocol
from repro.protocols.outcome import residue_to_id
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.modmath import mod_sum


def alead_via_blocks_protocol(topology: Topology) -> Dict[Hashable, Strategy]:
    """A-LEADuni expressed as knowledge-sharing + election finish."""
    n = len(topology)

    def payload_fn(ctx: Context) -> int:
        return ctx.rng.randrange(n)

    def finish_fn(values: List[int], ctx: Context) -> None:
        ctx.terminate(residue_to_id(mod_sum(values, n), n))

    return knowledge_sharing_protocol(topology, payload_fn, finish_fn)
