"""Afek et al.'s rational-agent building blocks on the ring.

The paper (Section 1.1) credits Afek et al. [5] with re-organizing the
A-LEADuni machinery into reusable building blocks — *wake-up* (see
:mod:`repro.protocols.wakeup`) and *knowledge sharing* — and with
applying them to Fair Consensus and Renaming. This package provides:

- :mod:`repro.blocks.knowledge` — the buffered knowledge-sharing
  sub-protocol generalized to arbitrary payloads (A-LEADuni's secret
  sharing is the special case payload = random residue);
- :mod:`repro.blocks.consensus` — fair consensus: all processors output
  the input of a uniformly elected processor;
- :mod:`repro.blocks.renaming` — order-preserving fair renaming: new
  names are ring positions relative to a uniformly elected origin, so
  each processor's new name is uniform over [n].
"""

from repro.blocks.knowledge import (
    KnowledgeSharingStrategy,
    knowledge_sharing_protocol,
)
from repro.blocks.consensus import (
    FairConsensusStrategy,
    fair_consensus_protocol,
)
from repro.blocks.renaming import FairRenamingStrategy, fair_renaming_protocol

__all__ = [
    "KnowledgeSharingStrategy",
    "knowledge_sharing_protocol",
    "FairConsensusStrategy",
    "fair_consensus_protocol",
    "FairRenamingStrategy",
    "fair_renaming_protocol",
]
