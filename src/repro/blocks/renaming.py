"""Fair (order-preserving) renaming on the ring (Afek et al. [5]).

Renaming assigns each processor a distinct new name in ``[n]`` such that
no coalition can bias who gets which name. The construction: elect a
uniform *origin of names* with the A-LEADuni rule, then name processors
by ring distance from it — the elected position gets name 1, its
successor 2, and so on. A uniform rotation makes every processor's new
name uniform over ``[n]`` while preserving ring order.

Every processor terminates with the *full assignment* (the same tuple
everywhere, so the unanimity outcome convention applies); use
:func:`my_name` to read a processor's own name out of the output.
"""

from typing import Dict, Hashable, List, Tuple

from repro.blocks.knowledge import KnowledgeSharingStrategy
from repro.protocols.outcome import residue_to_id
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import mod_sum

Assignment = Tuple[Tuple[int, int], ...]


class FairRenamingStrategy(KnowledgeSharingStrategy):
    """Knowledge sharing specialized to fair renaming."""

    __slots__ = ()

    def __init__(self, pid: int, n: int):
        super().__init__(
            pid,
            n,
            payload_fn=lambda ctx: ctx.rng.randrange(n),
            finish_fn=self._finish,
        )

    def _finish(self, values: List[int], ctx: Context) -> None:
        residues = [int(v) % self.n for v in values]
        leader = residue_to_id(mod_sum(residues, self.n), self.n)
        assignment = tuple(
            (pos, (pos - leader) % self.n + 1)
            for pos in range(1, self.n + 1)
        )
        ctx.terminate(assignment)


def my_name(assignment: Assignment, pid: int) -> int:
    """Read processor ``pid``'s new name from a renaming output."""
    mapping = dict(assignment)
    if pid not in mapping:
        raise ConfigurationError(f"pid {pid} not in assignment")
    return mapping[pid]


def fair_renaming_protocol(topology: Topology) -> Dict[Hashable, Strategy]:
    """Fair-renaming strategy vector for a unidirectional ring 1..n."""
    n = len(topology)
    if set(topology.nodes) != set(range(1, n + 1)):
        raise ConfigurationError("fair renaming requires node ids 1..n")
    return {pid: FairRenamingStrategy(pid, n) for pid in topology.nodes}
