"""Fair consensus on the ring (Afek et al. [5]).

Fair consensus asks every processor to output the *input* of a uniformly
chosen processor — consensus whose decision value is fair among the
participants. The construction composes the knowledge-sharing block with
the A-LEADuni election rule: each processor contributes
``(input, random residue)``; after sharing, the residues elect a uniform
position and everyone outputs that position's input. Both components are
protected by the same return-intact validation, so a deviation faces
exactly the A-LEADuni attack surface (the paper's ring thresholds apply
verbatim — the shared payload is just richer).
"""

from typing import Any, Callable, Dict, Hashable, List

from repro.blocks.knowledge import KnowledgeSharingStrategy
from repro.protocols.outcome import residue_to_id
from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError
from repro.util.modmath import mod_sum

InputFn = Callable[[int], Any]


class FairConsensusStrategy(KnowledgeSharingStrategy):
    """Knowledge sharing specialized to fair consensus."""

    __slots__ = ("input_value",)

    def __init__(self, pid: int, n: int, input_value: Any):
        self.input_value = input_value
        super().__init__(
            pid,
            n,
            payload_fn=self._payload,
            finish_fn=self._finish,
        )

    def _payload(self, ctx: Context) -> Any:
        return (self.input_value, ctx.rng.randrange(self.n))

    def _finish(self, values: List[Any], ctx: Context) -> None:
        for v in values:
            if not (isinstance(v, tuple) and len(v) == 2):
                ctx.abort("fair consensus: malformed payload")
                return
        residues = [int(v[1]) % self.n for v in values]
        leader = residue_to_id(mod_sum(residues, self.n), self.n)
        ctx.terminate(values[leader - 1][0])


def fair_consensus_protocol(
    topology: Topology, input_fn: InputFn
) -> Dict[Hashable, Strategy]:
    """Fair-consensus strategy vector; ``input_fn(pid)`` supplies inputs."""
    n = len(topology)
    if set(topology.nodes) != set(range(1, n + 1)):
        raise ConfigurationError("fair consensus requires node ids 1..n")
    return {
        pid: FairConsensusStrategy(pid, n, input_fn(pid))
        for pid in topology.nodes
    }
