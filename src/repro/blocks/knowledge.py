"""The knowledge-sharing building block (Afek et al. [5]).

A-LEADuni's secret-sharing sub-protocol, factored out and generalized:
every processor contributes an arbitrary *payload*; after the protocol,
every processor holds the full payload vector, attributed to ring
positions, with the same one-round buffering that forces contributions to
be committed before anything about the others is learned. Each processor
validates that its own payload returned intact (abort otherwise), exactly
like A-LEADuni's line-13 validation.

The strategies take a ``payload_fn(ctx) -> payload`` so callers decide
what is shared (a random residue for leader election, an input value for
consensus, an id for renaming) and a ``finish_fn(values, ctx)`` deciding
the output from the collected vector.
"""

from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.sim.strategy import Context, Strategy
from repro.sim.topology import Topology
from repro.util.errors import ConfigurationError

PayloadFn = Callable[[Context], Any]
FinishFn = Callable[[List[Any], Context], None]


def _default_finish(values: List[Any], ctx: Context) -> None:
    """Terminate with the collected vector itself (as a tuple)."""
    ctx.terminate(tuple(values))


class KnowledgeSharingStrategy(Strategy):
    """One processor of the knowledge-sharing block.

    Parameters
    ----------
    pid, n:
        Ring position (1..n, position 1 is the origin) and ring size.
    payload_fn:
        Called once at wakeup to produce this processor's contribution.
    finish_fn:
        Called with the full vector ``values[0..n-1]`` (indexed by ring
        position - 1) once sharing completes; must terminate the context.
    """

    __slots__ = (
        "pid",
        "n",
        "payload_fn",
        "finish_fn",
        "payload",
        "buffer",
        "rounds",
        "received",
    )

    def __init__(
        self,
        pid: int,
        n: int,
        payload_fn: PayloadFn,
        finish_fn: Optional[FinishFn] = None,
    ):
        self.pid = pid
        self.n = n
        self.payload_fn = payload_fn
        self.finish_fn = finish_fn if finish_fn is not None else _default_finish
        self.payload: Any = None
        self.buffer: Any = None
        self.rounds = 0
        self.received: List[Any] = []

    @property
    def is_origin(self) -> bool:
        return self.pid == 1

    def on_wakeup(self, ctx: Context) -> None:
        self.payload = self.payload_fn(ctx)
        if self.is_origin:
            ctx.send_next(self.payload)
        else:
            self.buffer = self.payload

    def on_receive(self, ctx: Context, value: Any, sender: Hashable) -> None:
        self.rounds += 1
        if self.is_origin:
            # Pipe: forward the first n-1, validate the n-th.
            self.received.append(value)
            if self.rounds < self.n:
                ctx.send_next(value)
                return
        else:
            ctx.send_next(self.buffer)
            self.buffer = value
            self.received.append(value)
            if self.rounds < self.n:
                return
        if value != self.payload:
            ctx.abort("knowledge sharing: own payload did not return")
            return
        self.finish_fn(self._attributed(), ctx)

    def _attributed(self) -> List[Any]:
        """Collected payloads re-indexed by ring position (1..n → 0..n-1).

        Processor ``p``'s round-``r`` incoming payload originates at ring
        position ``p - r mod n`` (same arithmetic as A-LEADuni).
        """
        values: List[Any] = [None] * self.n
        for r, value in enumerate(self.received, start=1):
            idx = (self.pid - r) % self.n
            values[idx - 1 if idx != 0 else self.n - 1] = value
        return values


def knowledge_sharing_protocol(
    topology: Topology,
    payload_fn: PayloadFn,
    finish_fn: Optional[FinishFn] = None,
) -> Dict[Hashable, Strategy]:
    """Knowledge-sharing strategy vector for a unidirectional ring 1..n."""
    n = len(topology)
    if set(topology.nodes) != set(range(1, n + 1)):
        raise ConfigurationError("knowledge sharing requires node ids 1..n")
    return {
        pid: KnowledgeSharingStrategy(pid, n, payload_fn, finish_fn)
        for pid in topology.nodes
    }
