"""One-round full-information coin games as boolean functions.

Ben-Or and Linial [10] study collective coin flipping where each of ``n``
players contributes one bit and the outcome is ``f(x_1..x_n)``. A
coalition ``S`` that sees the honest bits first (the asynchronous
worst case) drives the outcome to its preferred value whenever the
restriction of ``f`` to the honest assignment is non-constant over the
coalition's coordinates. The *influence* ``I_S(f)`` — the probability,
over uniform honest bits, that the coalition controls the outcome — is
the model's resilience measure:

- parity: a single player has influence 1 (the paper's Basic-LEAD analogue);
- majority: ``I_S ≈ Θ(k/√n)`` for ``|S| = k``;
- tribes: each log-sized tribe has constant influence (the
  Ben-Or–Linial lower-bound witness).
"""

import itertools
import math
import random
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.util.errors import ConfigurationError

BoolFn = Callable[[Sequence[int]], int]


def parity_function(n: int) -> BoolFn:
    """XOR of all bits — maximally non-resilient (one player controls)."""

    def f(bits: Sequence[int]) -> int:
        return sum(bits) % 2

    f.arity = n
    f.name = f"parity({n})"
    return f


def majority_function(n: int) -> BoolFn:
    """Majority of ``n`` (odd) bits — the classic Θ(√n)-resilient coin."""
    if n % 2 == 0:
        raise ConfigurationError("majority needs an odd number of players")

    def f(bits: Sequence[int]) -> int:
        return 1 if sum(bits) * 2 > len(bits) else 0

    f.arity = n
    f.name = f"majority({n})"
    return f


def tribes_function(tribe_size: int, tribes: int) -> BoolFn:
    """OR of ANDs over disjoint tribes (Ben-Or–Linial).

    With ``tribe_size ≈ log2(tribes)`` the function is near-balanced and
    any single tribe (a coalition of ``tribe_size`` players) has constant
    influence toward 1 — the witness that ``O(n/log n)`` resilience is
    the best a one-round game can do.
    """
    n = tribe_size * tribes

    def f(bits: Sequence[int]) -> int:
        for t in range(tribes):
            chunk = bits[t * tribe_size : (t + 1) * tribe_size]
            if all(chunk):
                return 1
        return 0

    f.arity = n
    f.name = f"tribes({tribe_size}x{tribes})"
    return f


def coalition_influence(
    f: BoolFn,
    coalition: Iterable[int],
    samples: int = 0,
    rng: random.Random = None,
) -> float:
    """``I_S(f)``: Pr over honest bits that ``S`` controls the outcome.

    The coalition controls the outcome on an honest assignment when it
    can complete the bit vector to evaluate to 0 *and* to 1. Exact
    enumeration for small honest sets; pass ``samples > 0`` for Monte
    Carlo at larger arities.
    """
    n = f.arity
    coalition = sorted(set(coalition))
    if any(not 0 <= i < n for i in coalition):
        raise ConfigurationError("coalition indices out of range")
    honest = [i for i in range(n) if i not in set(coalition)]
    k = len(coalition)

    def controls(honest_bits: Tuple[int, ...]) -> bool:
        seen = set()
        for combo in itertools.product((0, 1), repeat=k):
            bits = [0] * n
            for idx, b in zip(honest, honest_bits):
                bits[idx] = b
            for idx, b in zip(coalition, combo):
                bits[idx] = b
            seen.add(f(bits))
            if len(seen) == 2:
                return True
        return False

    if samples <= 0:
        total = controlled = 0
        for honest_bits in itertools.product((0, 1), repeat=len(honest)):
            total += 1
            controlled += controls(honest_bits)
        return controlled / total if total else 1.0
    rng = rng if rng is not None else random.Random(0)
    controlled = 0
    for _ in range(samples):
        honest_bits = tuple(rng.randrange(2) for _ in honest)
        controlled += controls(honest_bits)
    return controlled / samples


def best_coalition_influence(
    f: BoolFn, k: int, samples: int = 0, rng: random.Random = None
) -> Tuple[float, Tuple[int, ...]]:
    """Max influence over all coalitions of size ``k`` (exhaustive).

    Only sensible for small arities; returns (influence, coalition).
    """
    n = f.arity
    best = (0.0, tuple(range(k)))
    for coalition in itertools.combinations(range(n), k):
        inf = coalition_influence(f, coalition, samples=samples, rng=rng)
        if inf > best[0]:
            best = (inf, coalition)
        if best[0] >= 1.0:
            break
    return best
