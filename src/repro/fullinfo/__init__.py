"""The full-information (perfect-information) coin-flipping model.

Section 1.1 traces the paper's lineage to the Ben-Or–Linial model: players
broadcast in turn, everyone sees everything, and a coalition may choose
its broadcasts *after* seeing all earlier ones. The paper's random output
function is explicitly "inspired by [Alon-Naor]" from this line. This
package implements the model and its classic protocols as comparators:

- :mod:`repro.fullinfo.boolean` — one-round games defined by boolean
  functions (parity, majority, tribes) and exact/sampled coalition
  influence;
- :mod:`repro.fullinfo.games` — sequential broadcast games with
  optimally-playing coalitions (backward induction over the remaining
  randomness);
- :mod:`repro.fullinfo.baton` — Saks' *pass the baton* leader election,
  resilient to O(n / log n) coalitions.
"""

from repro.fullinfo.boolean import (
    parity_function,
    majority_function,
    tribes_function,
    coalition_influence,
    best_coalition_influence,
)
from repro.fullinfo.games import SequentialCoinGame, optimal_coalition_bias
from repro.fullinfo.baton import (
    pass_the_baton,
    baton_survival_probability,
)

__all__ = [
    "parity_function",
    "majority_function",
    "tribes_function",
    "coalition_influence",
    "best_coalition_influence",
    "SequentialCoinGame",
    "optimal_coalition_bias",
    "pass_the_baton",
    "baton_survival_probability",
]
