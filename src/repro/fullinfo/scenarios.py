"""Scenario specs for the full-information comparators (Section 1.1).

Neither workload runs on the asynchronous executor — pass-the-baton is a
sequential broadcast game and the sequential coin game is an exact
backward induction — so both use the ``run_trial`` hook.

Registered here (imported for effect by
:mod:`repro.experiments.catalog`):

- ``fullinfo/baton`` — Saks' pass-the-baton election with a greedy
  coalition; success = the leader landed in the coalition, so the
  experiment's success rate *is* the survival probability E11 traces;
- ``fullinfo/sequential-coin`` — optimal late-mover coalition play on a
  one-round boolean outcome function, evaluated exactly; the outcome is
  the forced probability (deterministic per grid point).
"""

from typing import Optional, Tuple

from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    no_valid_ids,
    register_scenario,
)
from repro.fullinfo.baton import pass_the_baton
from repro.fullinfo.boolean import majority_function, parity_function
from repro.fullinfo.games import SequentialCoinGame
from repro.util.errors import ConfigurationError


def leader_in_coalition(outcome, params: Params) -> bool:
    """Success predicate: the elected player is a coalition member."""
    return isinstance(outcome, int) and 0 <= outcome < params["k"]


def run_baton_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """One baton game; the coalition is the first ``k`` players."""
    n = params["n"]
    leader = pass_the_baton(
        n, range(params["k"]), rng=registry.stream("scenario")
    )
    return leader, n - 1


#: One-round outcome functions the sequential game can be played over.
GAMES = {
    "parity": parity_function,
    "majority": majority_function,
}


def run_sequential_coin_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """Exact forced probability for the k latest movers (rounded to 6)."""
    game_name = params["game"]
    if game_name not in GAMES:
        raise ConfigurationError(
            f"unknown sequential game {game_name!r}; known: {sorted(GAMES)}"
        )
    n = params["n"]
    f = GAMES[game_name](n)
    coalition = list(range(n - params["k"], n))
    probability = SequentialCoinGame(f, coalition).forced_probability(
        params["target"]
    )
    return round(probability, 6), 0


def bias_achieved(outcome, params: Params) -> bool:
    """Success predicate: the coalition shifts past the honest half."""
    return isinstance(outcome, float) and outcome > 0.5


register_scenario(
    ScenarioSpec(
        name="fullinfo/baton",
        description="Saks' pass-the-baton vs a greedy coalition (E11)",
        run_trial=run_baton_trial,
        outcome_size=no_valid_ids,  # players are 0-based, not ids 1..n
        defaults={"n": 64, "k": 8},
        success=leader_in_coalition,
        tags=("fullinfo", "attack"),
    )
)

register_scenario(
    ScenarioSpec(
        name="fullinfo/sequential-coin",
        description="optimal late movers on a sequential boolean coin game",
        run_trial=run_sequential_coin_trial,
        outcome_size=no_valid_ids,  # outcomes are probabilities, not ids
        defaults={"game": "majority", "n": 7, "k": 2, "target": 1},
        success=bias_achieved,
        tags=("fullinfo",),
    )
)
