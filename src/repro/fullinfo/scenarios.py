"""Scenario specs for the full-information comparators (Section 1.1).

Neither workload runs on the asynchronous executor — pass-the-baton is a
sequential broadcast game and the sequential coin game is an exact
backward induction — so both use the ``run_trial`` hook.

Registered here (imported for effect by
:mod:`repro.experiments.catalog`):

- ``fullinfo/baton`` — Saks' pass-the-baton election with a greedy
  coalition; success = the leader landed in the coalition, so the
  experiment's success rate *is* the survival probability E11 traces;
- ``fullinfo/sequential-coin`` — optimal late-mover coalition play on a
  one-round boolean outcome function, evaluated exactly; the outcome is
  the forced probability (deterministic per grid point).

Both carry ``run_batch`` kernels. The baton kernel replays the game
walk on two incrementally-maintained sorted pools instead of rebuilding
the candidate lists from scratch each pass (same ``random.Random``
draws, so bit-identical leaders); the sequential-coin game is fully
deterministic per grid point, so its kernel evaluates the backward
induction once and multiplies.
"""

import random
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.scenario import (
    Params,
    ScenarioSpec,
    no_valid_ids,
    register_scenario,
)
from repro.fullinfo.baton import pass_the_baton
from repro.fullinfo.boolean import majority_function, parity_function
from repro.fullinfo.games import SequentialCoinGame
from repro.util.errors import ConfigurationError
from repro.util.rng import derive_seed


def leader_in_coalition(outcome, params: Params) -> bool:
    """Success predicate: the elected player is a coalition member."""
    return isinstance(outcome, int) and 0 <= outcome < params["k"]


def run_baton_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """One baton game; the coalition is the first ``k`` players."""
    n = params["n"]
    leader = pass_the_baton(
        n, range(params["k"]), rng=registry.stream("scenario")
    )
    return leader, n - 1


#: One-round outcome functions the sequential game can be played over.
GAMES = {
    "parity": parity_function,
    "majority": majority_function,
}


# repro-lint: allow[R302] exact backward-induction evaluation: consumes no randomness, every trial is the same closed-form number
def run_sequential_coin_trial(
    params: Params, registry, max_steps: Optional[int]
) -> Tuple[object, int]:
    """Exact forced probability for the k latest movers (rounded to 6)."""
    game_name = params["game"]
    if game_name not in GAMES:
        raise ConfigurationError(
            f"unknown sequential game {game_name!r}; known: {sorted(GAMES)}"
        )
    n = params["n"]
    f = GAMES[game_name](n)
    coalition = list(range(n - params["k"], n))
    probability = SequentialCoinGame(f, coalition).forced_probability(
        params["target"]
    )
    return round(probability, 6), 0


def bias_achieved(outcome, params: Params) -> bool:
    """Success predicate: the coalition shifts past the honest half."""
    return isinstance(outcome, float) and outcome > 0.5


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------


def _baton_leader(scenario_seed: int, n: int, k: int) -> int:
    """One baton game, draw-for-draw identical to ``pass_the_baton``.

    ``pass_the_baton`` rebuilds the ascending candidate list (and the
    ascending honest-outsider sublist) from ``range(n)`` on every pass —
    O(n) per pass just to feed ``rng.choice`` — while this walk keeps
    both pools as sorted lists and removes taken players by bisection.
    Identical list contents in identical order mean ``rng.choice``
    consumes the same underlying randomness, so the elected player is
    bit-identical; the coalition is the first ``k`` players, matching
    :func:`run_baton_trial`.
    """
    rng = random.Random(scenario_seed)
    holder = rng.randrange(n)
    unheld = list(range(n))
    del unheld[holder]
    honest_unheld = [p for p in range(k, n) if p != holder]
    for _ in range(n - 1):
        if holder < k and honest_unheld:
            pool = honest_unheld
        else:
            pool = unheld
        holder = rng.choice(pool)
        del unheld[bisect_left(unheld, holder)]
        if holder >= k:
            del honest_unheld[bisect_left(honest_unheld, holder)]
    return holder


def run_baton_batch(
    seeds: Sequence[int], params: Params
) -> Optional[Tuple[Dict[object, int], int]]:
    """Fold a chunk of ``fullinfo/baton`` trials."""
    n, k = params["n"], params["k"]
    if n < 1 or not 0 <= k <= n:
        return None  # out-of-range coalition: scalar path raises
    counts: Dict[object, int] = {}
    for seed in seeds:
        leader = _baton_leader(derive_seed(seed, "scenario"), n, k)
        counts[leader] = counts.get(leader, 0) + 1
    return counts, (n - 1) * len(seeds)


def run_sequential_coin_batch(
    seeds: Sequence[int], params: Params
) -> Optional[Tuple[Dict[object, int], int]]:
    """Fold a chunk of ``fullinfo/sequential-coin`` trials.

    The backward induction consumes no randomness, so every trial of a
    grid point lands on the same probability: evaluate once, multiply.
    """
    outcome, steps = run_sequential_coin_trial(params, None, None)
    return {outcome: len(seeds)}, steps * len(seeds)


register_scenario(
    ScenarioSpec(
        name="fullinfo/baton",
        description="Saks' pass-the-baton vs a greedy coalition (E11)",
        run_trial=run_baton_trial,
        run_batch=run_baton_batch,
        outcome_size=no_valid_ids,  # players are 0-based, not ids 1..n
        defaults={"n": 64, "k": 8},
        success=leader_in_coalition,
        tags=("fullinfo", "attack"),
    )
)

register_scenario(
    ScenarioSpec(
        name="fullinfo/sequential-coin",
        description="optimal late movers on a sequential boolean coin game",
        run_trial=run_sequential_coin_trial,
        run_batch=run_sequential_coin_batch,
        outcome_size=no_valid_ids,  # outcomes are probabilities, not ids
        defaults={"game": "majority", "n": 7, "k": 2, "target": 1},
        success=bias_achieved,
        tags=("fullinfo",),
    )
)
