"""Saks' *pass the baton* leader election in the full-information model.

The protocol the paper cites as the early fair-leader-election benchmark
(resilient to coalitions of size ``O(n / log n)``): the baton starts at
some player; whoever holds it passes it to a player chosen uniformly from
those who have never held it; after ``n - 1`` passes the last receiver is
the leader (equivalently: the holder "eliminates" itself each step —
several equivalent formulations exist; we use the uniform-pass one).

The leader is the *last* player to receive the baton, so a coalition
holder deviates by passing to an honest un-held player whenever one
exists — burning honest players while keeping coalition members
available for the final passes. (Members are "spent" only when an honest
holder happens to pick them.) Honest play elects uniformly; under the
greedy deviation the coalition's win probability exceeds ``k/n``
increasingly with ``k``, staying negligible only for
``k = O(n / log n)`` — the resilience bound the paper quotes for Saks'
protocol.
"""

import random
from typing import Iterable, List, Optional, Sequence, Set

from repro.util.errors import ConfigurationError


def pass_the_baton(
    n: int,
    coalition: Iterable[int] = (),
    rng: Optional[random.Random] = None,
    start: Optional[int] = None,
) -> int:
    """Play one baton game; returns the elected player (0-based).

    Honest holders pass uniformly among the never-held. Coalition holders
    deviate greedily: they pass to an *honest* un-held player when one
    exists (preserving coalition members for the endgame), else they are
    forced to pass among the remaining members. The last player to
    receive the baton is the leader.
    """
    if n < 1:
        raise ConfigurationError("need at least one player")
    rng = rng if rng is not None else random.Random(0)
    coalition_set: Set[int] = set(coalition)
    if any(not 0 <= c < n for c in coalition_set):
        raise ConfigurationError("coalition indices out of range")
    holder = start if start is not None else rng.randrange(n)
    held = {holder}
    while len(held) < n:
        candidates = [p for p in range(n) if p not in held]
        if holder in coalition_set:
            outsiders = [p for p in candidates if p not in coalition_set]
            nxt = rng.choice(outsiders) if outsiders else rng.choice(candidates)
        else:
            nxt = rng.choice(candidates)
        held.add(nxt)
        holder = nxt
    return holder


def baton_survival_probability(
    n: int,
    coalition: Sequence[int],
    trials: int,
    seed: int = 0,
) -> float:
    """Monte-Carlo ``Pr[leader ∈ coalition]`` under the deviation.

    Honest play gives ``k/n``; the deviation's excess over that is the
    coalition's bias, which grows past any ε once ``k`` exceeds
    ``Θ(n / log n)`` — the shape experiment E11 traces.
    """
    coalition = list(coalition)
    wins = 0
    for t in range(trials):
        rng = random.Random((seed << 20) + t)
        leader = pass_the_baton(n, coalition, rng=rng)
        wins += leader in set(coalition)
    return wins / trials
