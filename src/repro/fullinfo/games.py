"""Sequential full-information coin games with optimal coalitions.

In the Ben-Or–Linial model players broadcast *in turn*; everyone sees the
prefix. A rational coalition therefore plays each of its turns optimally
given the broadcast history and the distribution of future honest bits.
:class:`SequentialCoinGame` evaluates exactly that: honest players
broadcast uniform bits, coalition players pick the bit maximizing the
probability of the target outcome, computed by backward induction over
the remaining randomness.

This is the sequential analogue of the paper's asynchronous-rushing
worst case, and the yardstick against which a one-round boolean game's
influence (``repro.fullinfo.boolean``) is compared.
"""

from functools import lru_cache
from typing import Sequence, Tuple

from repro.fullinfo.boolean import BoolFn
from repro.util.errors import ConfigurationError


class SequentialCoinGame:
    """A turn-order coin game over a boolean outcome function.

    Parameters
    ----------
    f:
        The outcome function; players broadcast one bit each, in index
        order ``0..n-1``.
    coalition:
        Player indices that deviate to maximize ``Pr[outcome = target]``.
    """

    def __init__(self, f: BoolFn, coalition: Sequence[int]):
        self.f = f
        self.n = f.arity
        self.coalition = frozenset(coalition)
        if any(not 0 <= i < self.n for i in self.coalition):
            raise ConfigurationError("coalition indices out of range")

    def forced_probability(self, target: int) -> float:
        """``Pr[outcome = target]`` under optimal coalition play.

        Backward induction: at an honest turn the two bit values are
        averaged; at a coalition turn the better one is taken. Exact (no
        sampling); cost ``O(2^n)`` — fine for the model-scale arities the
        experiments use.
        """

        @lru_cache(maxsize=None)
        def value(prefix: Tuple[int, ...]) -> float:
            turn = len(prefix)
            if turn == self.n:
                return 1.0 if self.f(list(prefix)) == target else 0.0
            zero = value(prefix + (0,))
            one = value(prefix + (1,))
            if turn in self.coalition:
                return max(zero, one)
            return 0.5 * (zero + one)

        result = value(())
        value.cache_clear()
        return result


def optimal_coalition_bias(f: BoolFn, coalition: Sequence[int]) -> float:
    """Max over targets of ``Pr[outcome = target] - honest probability``.

    The sequential-game analogue of the paper's ε: how much the coalition
    can shift its preferred outcome beyond the honest probability of that
    same outcome.
    """
    game = SequentialCoinGame(f, coalition)
    honest = SequentialCoinGame(f, [])
    return max(
        game.forced_probability(t) - honest.forced_probability(t)
        for t in (0, 1)
    )
