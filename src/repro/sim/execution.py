"""The execution engine: runs a protocol on a topology to completion.

Semantics follow Section 2 of the paper:

- Every processor is woken once at the start (honest ring strategies other
  than the origin do nothing observable on wakeup, so this is equivalent to
  the paper's "only the origin wakes spontaneously").
- Messages travel on unbounded per-edge FIFO links; an oblivious
  :class:`~repro.sim.scheduler.Scheduler` picks which non-empty link
  delivers next.
- A processor may send messages and/or terminate inside each callback.
  After terminating it receives nothing further.
- The **outcome** of an execution is ``o`` if *all* processors terminated
  with the same output ``o`` (and ``o`` is not ⊥); otherwise it is
  :data:`FAIL` — covering aborts, disagreement, and non-termination (an
  execution that quiesces with live processors, or exceeds ``max_steps``).
"""

from collections import deque
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.sim.events import (
    AbortEvent,
    ReceiveEvent,
    SendEvent,
    TerminateEvent,
    WakeupEvent,
)
from repro.sim.scheduler import FifoScheduler, Scheduler
from repro.sim.strategy import _ABORT_SENTINEL, Context, Strategy
from repro.sim.topology import Topology
from repro.sim.trace import Trace
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import RngRegistry

#: Global-failure outcome (paper: some processor aborted, outputs disagree,
#: or the execution never terminates).
FAIL = "FAIL"

#: The abort output ⊥ a single processor can terminate with.
ABORT = _ABORT_SENTINEL

Link = Tuple[Hashable, Hashable]


class _ReadyLinks(SequenceABC):
    """Read-only sequence view over the executor's ready-link set.

    The executor keeps ready links in an insertion-ordered dict so that
    membership tests and removals are O(1); schedulers still see the same
    first-ready-ordered :class:`~collections.abc.Sequence` they always did.
    Index 0 — the only index the default :class:`FifoScheduler` touches —
    is served in O(1) without materialising a list.
    """

    __slots__ = ("_links",)

    def __init__(self, links: "Dict[Link, None]"):
        self._links = links

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self):
        return iter(self._links)

    def __contains__(self, link: object) -> bool:
        return link in self._links

    def __getitem__(self, index):
        if index == 0:
            try:
                return next(iter(self._links))
            except StopIteration:
                raise IndexError("no ready links") from None
        return list(self._links)[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ReadyLinks({list(self._links)!r})"


@dataclass
class ExecutionResult:
    """Everything observable about one finished execution."""

    outcome: Any
    outputs: Dict[Hashable, Any]
    trace: Trace
    steps: int
    quiesced: bool
    fail_reason: Optional[str] = None
    undelivered: Dict[Link, List[Any]] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """True if the global outcome is ``FAIL``."""
        return self.outcome == FAIL


class Executor:
    """Drives one execution of ``protocol`` on ``topology``.

    Parameters
    ----------
    topology:
        The communication graph.
    protocol:
        Map pid → :class:`Strategy` instance; must cover every node.
    scheduler:
        Oblivious delivery scheduler; defaults to :class:`FifoScheduler`.
    rng:
        Registry providing each processor's private random stream
        (stream label ``proc:<pid>``).
    max_steps:
        Delivery budget after which the execution is declared
        non-terminating. Protocol runs on a ring need about ``2 n²``
        deliveries, so the default scales generously with topology size.
    record_trace:
        When ``True`` (the default) every wakeup/send/receive/terminate is
        recorded as an event object on ``result.trace``. Monte-Carlo loops
        that only read ``result.outcome`` should pass ``False``: the hot
        path then skips all event allocation and the result carries an
        empty trace.
    fast:
        Selects the allocation-free delivery loop (:meth:`_run_fast`):
        one reusable context per processor (successors and rng stream
        resolved once instead of per callback), no per-processor
        sent/received counters, no logical clock, and the default FIFO
        scheduler inlined to an O(1) dict-head read. Deliveries, rng
        consumption, and outcomes are identical to the classic loop —
        only trace-feeding bookkeeping is skipped, which is why it
        requires ``record_trace=False``. Default ``None`` means "fast
        whenever untraced", so Monte-Carlo runs get it automatically;
        pass ``False`` to force the classic loop (benchmark baselines,
        or strategies that illegitimately retain contexts between
        callbacks).
    """

    def __init__(
        self,
        topology: Topology,
        protocol: Mapping[Hashable, Strategy],
        scheduler: Optional[Scheduler] = None,
        rng: Optional[RngRegistry] = None,
        max_steps: Optional[int] = None,
        record_trace: bool = True,
        fast: Optional[bool] = None,
    ):
        missing = [v for v in topology.nodes if v not in protocol]
        if missing:
            raise ConfigurationError(f"no strategy for nodes: {missing}")
        extra = [v for v in protocol if v not in set(topology.nodes)]
        if extra:
            raise ConfigurationError(f"strategies for unknown nodes: {extra}")
        strategies = list(protocol.values())
        if len(set(map(id, strategies))) != len(strategies):
            raise ConfigurationError(
                "strategy instances must not be shared between processors"
            )
        self.topology = topology
        self.protocol = dict(protocol)
        self.scheduler = scheduler if scheduler is not None else FifoScheduler()
        self.rng = rng if rng is not None else RngRegistry(0)
        n = len(topology)
        self.max_steps = max_steps if max_steps is not None else 40 * n * n + 1000

        self._queues: Dict[Link, Deque[Any]] = {e: deque() for e in topology.edges}
        # Non-empty links in first-ready order. An insertion-ordered dict
        # doubles as an ordered set: append, membership, and removal are all
        # O(1), where the previous list needed O(ready) scans for the latter
        # two on every delivery.
        self._ready: Dict[Link, None] = {}
        self._terminated: Dict[Hashable, bool] = {v: False for v in topology.nodes}
        self._outputs: Dict[Hashable, Any] = {}
        self._sent: Dict[Hashable, int] = {v: 0 for v in topology.nodes}
        self._received: Dict[Hashable, int] = {v: 0 for v in topology.nodes}
        self._record_trace = record_trace
        if fast is None:
            fast = not record_trace
        elif fast and record_trace:
            raise ConfigurationError(
                "fast=True skips the bookkeeping event recording needs; "
                "pass record_trace=False (or fast=False) instead"
            )
        self._fast = fast
        self._trace = Trace()
        self._time = 0

    # -- internal helpers ----------------------------------------------

    def _enqueue(self, sender: Hashable, receiver: Hashable, value: Any) -> None:
        link = (sender, receiver)
        queue = self._queues.get(link)
        if queue is None:
            raise SimulationError(f"send on non-existent link {link}")
        if not queue:
            self._ready[link] = None
        queue.append(value)
        self._sent[sender] += 1
        if self._record_trace:
            self._trace.append(
                SendEvent(self._time, sender, receiver, value, self._sent[sender])
            )

    def _drain_context(self, pid: Hashable, ctx: Context) -> None:
        for to, value in ctx.sends:
            self._enqueue(pid, to, value)
        if ctx.terminated:
            self._terminated[pid] = True
            self._outputs[pid] = ctx.output
            if self._record_trace:
                self._trace.append(TerminateEvent(self._time, pid, ctx.output))
                if ctx.output == ABORT:
                    self._trace.append(
                        AbortEvent(self._time, pid, ctx.abort_reason or "abort")
                    )

    def _make_context(self, pid: Hashable) -> Context:
        return Context(
            pid=pid,
            out_neighbors=self.topology.successors(pid),
            n=len(self.topology),
            rng=self.rng.stream(f"proc:{pid}"),
        )

    # -- main loop -------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Execute to quiescence (or the step budget) and score the outcome."""
        if self._fast:
            return self._run_fast()
        for pid in self.topology.nodes:
            self._time += 1
            if self._record_trace:
                self._trace.append(WakeupEvent(self._time, pid))
            ctx = self._make_context(pid)
            self.protocol[pid].on_wakeup(ctx)
            self._drain_context(pid, ctx)

        steps = 0
        ready = self._ready
        ready_view = _ReadyLinks(ready)
        while ready and steps < self.max_steps:
            link = self.scheduler.choose(ready_view)
            if link not in ready:
                raise SimulationError(f"scheduler chose non-ready link {link}")
            queue = self._queues[link]
            value = queue.popleft()
            if not queue:
                del ready[link]
            sender, receiver = link
            steps += 1
            self._time += 1
            self._received[receiver] += 1
            if self._record_trace:
                self._trace.append(
                    ReceiveEvent(
                        self._time, sender, receiver, value, self._received[receiver]
                    )
                )
            if self._terminated[receiver]:
                continue  # terminated processors ignore late messages
            ctx = self._make_context(receiver)
            self.protocol[receiver].on_receive(ctx, value, sender)
            self._drain_context(receiver, ctx)

        quiesced = not ready
        return self._score(steps, quiesced)

    def _run_fast(self) -> ExecutionResult:
        """The untraced delivery loop, stripped to what outcomes need.

        Per-delivery allocations of the classic loop that this one
        eliminates: the fresh :class:`Context` (reused per processor,
        with successors and the ``proc:<pid>`` stream — an f-string plus
        two dict hops — resolved once up front), the event objects (no
        trace), and the ``_sent`` / ``_received`` counter updates and
        logical clock that exist only to stamp events. The scheduler
        contract is kept — a non-default scheduler sees the same
        :class:`_ReadyLinks` view and validation — but the default
        :class:`FifoScheduler`'s head-of-dict choice is inlined.
        Delivery order and rng consumption are identical to the classic
        loop, so outcomes (and therefore every experiment row) are too.
        """
        topology = self.topology
        protocol = self.protocol
        queues = self._queues
        ready = self._ready
        terminated = self._terminated
        outputs = self._outputs
        rng = self.rng

        contexts: Dict[Hashable, Context] = {}
        n = len(topology)
        for pid in topology.nodes:
            contexts[pid] = Context(
                pid=pid,
                out_neighbors=topology.successors(pid),
                n=n,
                rng=rng.stream(f"proc:{pid}"),
            )

        for pid in topology.nodes:
            ctx = contexts[pid]
            protocol[pid].on_wakeup(ctx)
            self._drain_context_fast(pid, ctx)

        steps = 0
        max_steps = self.max_steps
        scheduler = self.scheduler
        default_fifo = type(scheduler) is FifoScheduler
        ready_view = None if default_fifo else _ReadyLinks(ready)
        while ready and steps < max_steps:
            if default_fifo:
                link = next(iter(ready))
            else:
                link = scheduler.choose(ready_view)
                if link not in ready:
                    raise SimulationError(f"scheduler chose non-ready link {link}")
            queue = queues[link]
            value = queue.popleft()
            if not queue:
                del ready[link]
            steps += 1
            receiver = link[1]
            if terminated[receiver]:
                continue  # terminated processors ignore late messages
            ctx = contexts[receiver]
            protocol[receiver].on_receive(ctx, value, link[0])
            # _drain_context_fast, inlined: this runs once per delivery.
            sends = ctx.sends
            if sends:
                for to, out_value in sends:
                    out_link = (receiver, to)
                    out_queue = queues.get(out_link)
                    if out_queue is None:
                        raise SimulationError(
                            f"send on non-existent link {out_link}"
                        )
                    if not out_queue:
                        ready[out_link] = None
                    out_queue.append(out_value)
                sends.clear()
            if ctx.terminated:
                terminated[receiver] = True
                outputs[receiver] = ctx.output

        quiesced = not ready
        return self._score(steps, quiesced)

    def _drain_context_fast(self, pid: Hashable, ctx: Context) -> None:
        """Apply a reused context's actions without trace bookkeeping."""
        sends = ctx.sends
        if sends:
            queues = self._queues
            ready = self._ready
            for to, value in sends:
                link = (pid, to)
                queue = queues.get(link)
                if queue is None:
                    raise SimulationError(f"send on non-existent link {link}")
                if not queue:
                    ready[link] = None
                queue.append(value)
            sends.clear()
        if ctx.terminated:
            self._terminated[pid] = True
            self._outputs[pid] = ctx.output

    def _score(self, steps: int, quiesced: bool) -> ExecutionResult:
        undelivered = {
            link: list(queue) for link, queue in self._queues.items() if queue
        }
        outputs = dict(self._outputs)
        fail_reason = None
        if not quiesced:
            outcome: Any = FAIL
            fail_reason = f"step budget exhausted after {steps} deliveries"
        elif not all(self._terminated.values()):
            outcome = FAIL
            live = [v for v, t in self._terminated.items() if not t]
            fail_reason = f"processors never terminated: {live}"
        elif any(o == ABORT for o in outputs.values()):
            outcome = FAIL
            aborted = [v for v, o in outputs.items() if o == ABORT]
            fail_reason = f"processors aborted: {aborted}"
        else:
            distinct = set(outputs.values())
            if len(distinct) == 1:
                outcome = next(iter(distinct))
            else:
                outcome = FAIL
                fail_reason = f"outputs disagree: {sorted(distinct, key=repr)}"
        return ExecutionResult(
            outcome=outcome,
            outputs=outputs,
            trace=self._trace,
            steps=steps,
            quiesced=quiesced,
            fail_reason=fail_reason,
            undelivered=undelivered,
        )


def run_protocol(
    topology: Topology,
    protocol: Mapping[Hashable, Strategy],
    scheduler: Optional[Scheduler] = None,
    rng: Optional[RngRegistry] = None,
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
    record_trace: bool = True,
    fast: Optional[bool] = None,
) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`Executor`.

    Exactly one of ``rng`` / ``seed`` may be given; ``seed`` builds a fresh
    :class:`RngRegistry`. Pass ``record_trace=False`` for Monte-Carlo hot
    loops that only inspect the outcome (the trace comes back empty, and
    the allocation-free fast loop is selected automatically; ``fast``
    overrides — see :class:`Executor`).
    """
    if rng is not None and seed is not None:
        raise ConfigurationError("pass either rng or seed, not both")
    if rng is None:
        rng = RngRegistry(seed if seed is not None else 0)
    executor = Executor(
        topology,
        protocol,
        scheduler=scheduler,
        rng=rng,
        max_steps=max_steps,
        record_trace=record_trace,
        fast=fast,
    )
    return executor.run()
